"""Ablation: ATOM's register-save strategies (paper Section 4).

Compares the four optimization levels on the same tool+workloads:

* O0 — naive: wrappers save every caller-saved register;
* O1 — the paper's default: data-flow summary + renaming + delayed saves;
* O2 — in-frame saves (no wrapper indirection);
* O3 — application liveness, inline saves, direct calls.

The paper's claim: the summary-based saves are a real win over saving
everything, and the in-frame/liveness refinements reduce overhead further.
"""

import pytest

from repro.atom import OptLevel
from repro.eval import apply_tool
from repro.machine import run_module
from repro.tools import get_tool

from conftest import print_table

ABLATION_WORKLOADS = ("quick", "li", "crc")
LEVELS = (OptLevel.O0, OptLevel.O1, OptLevel.O2, OptLevel.O3)

_cycles: dict[OptLevel, int] = {}


@pytest.mark.parametrize("level", LEVELS)
def test_ablation_save_strategy(benchmark, apps, baselines, level):
    tool = get_tool("dyninst")
    names = [n for n in ABLATION_WORKLOADS if n in apps]

    def instrument_and_run():
        total = 0
        for name in names:
            res = apply_tool(apps[name], tool, opt=level)
            result = run_module(res.module)
            assert result.stdout == baselines[name].stdout
            total += result.cycles
        return total

    benchmark.group = "ablation: register-save strategies"
    benchmark.extra_info["level"] = level.name
    total = benchmark.pedantic(instrument_and_run, rounds=1, iterations=1)
    _cycles[level] = total
    benchmark.extra_info["cycles"] = total


def test_ablation_report(benchmark, apps, baselines):
    def noop():
        return None
    benchmark.group = "ablation: register-save strategies"
    benchmark.pedantic(noop, rounds=1, iterations=1)
    if len(_cycles) < len(LEVELS):
        pytest.skip("per-level benchmarks did not run")
    base_total = sum(baselines[n].cycles for n in ABLATION_WORKLOADS
                     if n in apps)
    rows = []
    for level in LEVELS:
        rows.append([level.name, _cycles[level],
                     f"{_cycles[level] / base_total:.2f}x"])
    print_table("Ablation: dyninst tool under each save strategy",
                ["level", "cycles", "ratio"], rows)
    # The paper's shipped optimizations beat saving everything...
    assert _cycles[OptLevel.O1] < _cycles[OptLevel.O0]
    # ...and the in-frame option beats the wrapper path.
    assert _cycles[OptLevel.O2] < _cycles[OptLevel.O1]
    # Liveness-based saves are at least as good as the naive wrapper.
    assert _cycles[OptLevel.O3] < _cycles[OptLevel.O0]
