"""Figure 5: time taken by ATOM to instrument the workload suite.

The paper reports, for each of the eleven tools, the total time to
instrument 20 SPEC92 programs and the average per program; the pipe tool
(static pipeline scheduling at instrumentation time) is the slowest and
malloc (a single procedure instrumented) the fastest.

One benchmark per tool: each instruments every workload once.  A summary
row mirroring the paper's table is printed per tool.
"""

import pytest

from repro.eval import apply_tool
from repro.tools import TOOL_NAMES, get_tool

from conftest import bench_workloads, print_table

_results: dict[str, float] = {}


@pytest.mark.parametrize("tool_name", TOOL_NAMES)
def test_fig5_instrument_suite(benchmark, apps, tool_name):
    tool = get_tool(tool_name)
    names = list(apps)

    def instrument_all():
        for name in names:
            # cache=None: this benchmark measures instrumentation time,
            # so the artifact cache must not serve pre-built modules.
            apply_tool(apps[name], tool, cache=None)

    benchmark.group = "fig5: instrument workload suite"
    benchmark.extra_info["tool"] = tool_name
    benchmark.extra_info["description"] = tool.description
    benchmark.extra_info["workloads"] = len(names)
    result = benchmark.pedantic(instrument_all, rounds=1, iterations=1,
                                warmup_rounds=0)
    _results[tool_name] = benchmark.stats.stats.mean


def test_fig5_report(benchmark, apps):
    """Prints the Figure 5 analogue and checks the headline shape:
    pipe is the slowest tool to instrument with, malloc the fastest."""
    def noop():
        return None
    benchmark.group = "fig5: instrument workload suite"
    benchmark.pedantic(noop, rounds=1, iterations=1)
    if len(_results) < len(TOOL_NAMES):
        pytest.skip("per-tool benchmarks did not run")
    nwork = len(apps)
    rows = []
    for name in TOOL_NAMES:
        tool = get_tool(name)
        total = _results[name]
        rows.append([name, tool.description, f"{total:.2f}s",
                     f"{total / nwork:.3f}s"])
    print_table(
        f"Figure 5: time to instrument {nwork} workload programs",
        ["tool", "description", "total", "avg/program"], rows)
    # Shape: pipe's static per-block scheduling makes it costlier to
    # instrument with than every non-block-level tool, and malloc (a
    # single instrumented procedure) sits in the cheapest tier.
    for cheap in ("io", "syscall", "malloc", "inline", "branch"):
        assert _results["pipe"] > _results[cheap], cheap
    ordered = sorted(_results.values())
    assert _results["malloc"] <= ordered[3], \
        "malloc (one procedure) should be among the fastest to instrument"
