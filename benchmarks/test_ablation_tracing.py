"""Ablation: address tracing versus in-process analysis.

The paper's introduction argues that trace-generating tools drown in
their own output ("extremely large even for small programs") while ATOM
passes each datum to the analysis routine and keeps only the answer.
Both pipelines here are built *with ATOM*; the only difference is where
the analysis runs.
"""

import struct

import pytest

from repro.atom import instrument_executable
from repro.baselines.tracing import TRACE_ANALYSIS, TRACE_FILE, trace_instrument
from repro.eval import apply_tool
from repro.machine import run_module
from repro.mlc import build_analysis_unit
from repro.tools import get_tool

from conftest import print_table

TRACED_WORKLOADS = ("quick", "crc", "li")

_rows: list[list] = []


def test_trace_vs_inprocess(benchmark, apps, baselines):
    names = [n for n in TRACED_WORKLOADS if n in apps]
    anal = build_analysis_unit([TRACE_ANALYSIS])

    def run_all():
        for name in names:
            app = apps[name]
            base = baselines[name]
            traced = instrument_executable(app, trace_instrument, anal)
            tr = run_module(traced.module)
            assert tr.stdout == base.stdout
            trace_bytes = len(tr.files[TRACE_FILE])

            cached = apply_tool(app, get_tool("cache"))
            cr = run_module(cached.module)
            answer_bytes = len(cr.files["cache.out"])

            refs = trace_bytes // 8
            _rows.append([name, refs, trace_bytes, answer_bytes,
                          f"{trace_bytes // max(answer_bytes, 1)}x"])
        return len(names)

    benchmark.group = "ablation: address tracing vs in-process analysis"
    benchmark.pedantic(run_all, rounds=1, iterations=1)


def test_trace_contents_sane(benchmark, apps, baselines):
    """The trace is real: the addresses in it hit mapped data regions."""
    name = next(n for n in TRACED_WORKLOADS if n in apps)
    app = apps[name]
    anal = build_analysis_unit([TRACE_ANALYSIS])

    def check():
        traced = instrument_executable(app, trace_instrument, anal)
        result = run_module(traced.module)
        blob = result.files[TRACE_FILE]
        addrs = [v for (v,) in struct.iter_unpack("<Q", blob[:8 * 1000])]
        # Valid data addresses live in the stack (below text base) or the
        # data/heap region; nothing should be null or wild.
        lo = 0x1000
        hi = app.symtab["__end"].value + (64 << 20)
        return sum(1 for a in addrs if lo <= a < hi)

    benchmark.group = "ablation: address tracing vs in-process analysis"
    plausible = benchmark.pedantic(check, rounds=1, iterations=1)
    assert plausible == 1000      # every traced address is a real datum


def test_tracing_report(benchmark):
    def noop():
        return None
    benchmark.group = "ablation: address tracing vs in-process analysis"
    benchmark.pedantic(noop, rounds=1, iterations=1)
    if not _rows:
        pytest.skip("comparison benchmark did not run")
    print_table(
        "Trace-file bytes an offline pipeline must move vs the cache "
        "tool's in-process answer",
        ["workload", "refs", "trace bytes", "answer bytes", "blowup"],
        _rows)
    # Even these small workloads produce traces 4-5 orders of magnitude
    # larger than the finished answer.
    for row in _rows:
        assert row[2] > 1000 * row[3]