"""Shared fixtures for the benchmark suite.

Set ``REPRO_BENCH_QUICK=1`` to run the matrix over a 6-workload subset
instead of all 20 (the full matrix is the faithful Figure 5/6
reproduction; the subset keeps CI fast).
"""

import os

import pytest

from repro.eval import analysis_unit_for, apply_tool
from repro.machine import run_module
from repro.tools import TOOL_NAMES, get_tool
from repro.workloads import WORKLOAD_NAMES, build_workload

QUICK_SET = ("quick", "matrix", "li", "nqueens", "fileio", "crc")


def bench_workloads() -> tuple[str, ...]:
    if os.environ.get("REPRO_BENCH_QUICK"):
        return QUICK_SET
    return WORKLOAD_NAMES


@pytest.fixture(scope="session")
def workload_names():
    return bench_workloads()


@pytest.fixture(scope="session")
def apps(workload_names):
    """name -> linked executable (session-cached)."""
    return {name: build_workload(name) for name in workload_names}


@pytest.fixture(scope="session")
def baselines(apps):
    """name -> uninstrumented RunResult."""
    return {name: run_module(module) for name, module in apps.items()}


class InstrumentedMatrix:
    """Lazily instruments (tool, workload) pairs and caches results."""

    def __init__(self, apps):
        self._apps = apps
        self._cache = {}

    def get(self, tool_name: str, workload: str):
        key = (tool_name, workload)
        if key not in self._cache:
            tool = get_tool(tool_name)
            self._cache[key] = apply_tool(self._apps[workload], tool)
        return self._cache[key]


@pytest.fixture(scope="session")
def matrix(apps):
    return InstrumentedMatrix(apps)


@pytest.fixture(scope="session")
def ratio_table():
    """Shared container the Figure 6 benchmarks fill and print."""
    return {}


@pytest.fixture(scope="session")
def bench_baseline():
    """The committed ``BENCH_interp.json`` report, or None if absent.

    Benchmarks may compare fresh measurements against this trajectory
    (simulated-cycle fields are deterministic and safe to assert on;
    wall-clock fields are host-dependent and informational only).
    """
    from repro.perf.bench import load_report
    try:
        return load_report()
    except ValueError as exc:
        pytest.fail(f"committed BENCH_interp.json is invalid: {exc}")


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print a result table and append it to benchmarks/latest_tables.txt
    (so the figures survive pytest's output capture)."""
    lines = [f"\n=== {title} ==="]
    widths = [max(len(str(r[i])) for r in [header] + rows)
              for i in range(len(header))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    lines.append(line)
    lines.append("-" * len(line))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w)
                               for c, w in zip(row, widths)))
    text = "\n".join(lines)
    print(text)
    with open(os.path.join(os.path.dirname(__file__),
                           "latest_tables.txt"), "a") as f:
        f.write(text + "\n")
