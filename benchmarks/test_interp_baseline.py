"""Consume the committed ``BENCH_interp.json`` baseline.

Only the simulated side of the report is asserted on — cycles and
instruction counts are deterministic functions of the workload, so any
drift means the interpreter or a workload changed behaviour.  Wall-clock
fields (insts/sec, speedups) are host-dependent and left alone.
"""

import pytest

from repro.machine import run_module
from repro.workloads import build_workload


@pytest.fixture(scope="session")
def baseline_or_skip(bench_baseline):
    if bench_baseline is None:
        pytest.skip("no committed BENCH_interp.json baseline")
    return bench_baseline


def test_simulated_counts_match_baseline(baseline_or_skip):
    """A fresh run of each recorded workload reproduces the baseline's
    simulated cycles and instruction count exactly."""
    for name, row in baseline_or_skip["interpreter"].items():
        result = run_module(build_workload(name))
        assert result.inst_count == row["insts"], name
        assert result.cycles == row["cycles"], name


def test_tool_rows_are_consistent(baseline_or_skip):
    """Every recorded tool cell shows instrumentation overhead >= 1 and
    internally consistent cycle ratios."""
    rows = baseline_or_skip["tools"]
    assert rows
    for row in rows:
        assert row["instr_cycles"] >= row["base_cycles"], row
        assert row["cycle_overhead"] >= 1.0, row
        ratio = row["instr_cycles"] / row["base_cycles"]
        assert abs(ratio - row["cycle_overhead"]) < 0.01, row
