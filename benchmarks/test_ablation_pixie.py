"""Ablation: ATOM's dyninst tool versus the Pixie-style baseline.

Same job — per-block execution counts — two generations of mechanism:
Pixie steals three registers, shadows application uses of them through
memory, and writes raw counts to a file for offline analysis; ATOM steals
nothing and processes counts in-process through direct procedure calls.

Both must agree exactly with the machine's ground-truth instruction count.
"""

import pytest

from repro.baselines.pixie import pixie_instrument, read_counts
from repro.eval import apply_tool
from repro.machine import run_module
from repro.om import build_ir
from repro.tools import get_tool

from conftest import print_table

PIXIE_WORKLOADS = ("quick", "nqueens", "crc")

_rows: list[list] = []


@pytest.mark.parametrize("system", ["pixie", "atom"])
def test_block_counting_systems(benchmark, apps, baselines, system):
    names = [n for n in PIXIE_WORKLOADS if n in apps]

    def run_all():
        out = []
        for name in names:
            app = apps[name]
            base = baselines[name]
            if system == "pixie":
                res = pixie_instrument(app)
                result = run_module(res.module)
                counts = read_counts(result, res)
                prog = build_ir(app)
                sizes = [len(b.insts)
                         for p in prog.procs for b in p.blocks]
                counted = sum(c * s for c, s in zip(counts, sizes))
            else:
                res = apply_tool(app, get_tool("dyninst"))
                result = run_module(res.module)
                text = result.files["dyninst.out"].decode()
                counted = int(text.split("dynamic instructions: ")[1]
                              .split("\n")[0])
            assert result.stdout == base.stdout
            assert counted == base.inst_count, (system, name)
            out.append((name, result.cycles / base.cycles))
        return out

    benchmark.group = "ablation: pixie vs atom block counting"
    benchmark.extra_info["system"] = system
    ratios = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, ratio in ratios:
        _rows.append([system, name, f"{ratio:.2f}x"])


def test_pixie_report(benchmark):
    def noop():
        return None
    benchmark.group = "ablation: pixie vs atom block counting"
    benchmark.pedantic(noop, rounds=1, iterations=1)
    if not _rows:
        pytest.skip("system benchmarks did not run")
    print_table("Pixie (register stealing, offline counts file) vs "
                "ATOM dyninst (no stolen registers, in-process analysis)",
                ["system", "workload", "cycle ratio"], sorted(_rows))
