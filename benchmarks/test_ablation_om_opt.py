"""Ablation: OM's link-time address-calculation optimization (ref [12]).

ATOM is built on OM, whose day job is link-time optimization; the
companion PLDI'94 paper optimizes address calculation on the 64-bit
Alpha.  This bench applies the reproduced pass — literal-table loads of
gp-reachable data rewritten to direct ``lda disp(gp)`` — to every
workload and reports the cycle savings, plus the composition with ATOM
(optimize, then instrument).
"""

import pytest

from repro.eval import apply_tool
from repro.machine import run_module
from repro.om import build_ir, emit, optimize_address_calculation, optimize_got_loads
from repro.tools import get_tool

from conftest import print_table

_rows: list[list] = []


def test_address_calculation_savings(benchmark, apps, baselines):
    def run_all():
        total_rewrites = 0
        for name, app in apps.items():
            base = baselines[name]
            prog = build_ir(app)
            n = optimize_address_calculation(prog)
            n += optimize_got_loads(prog)
            result = run_module(emit(prog).module)
            assert result.stdout == base.stdout, name
            assert result.cycles <= base.cycles, name
            saving = 100 * (base.cycles - result.cycles) / base.cycles
            _rows.append([name, n, f"{saving:.2f}%"])
            total_rewrites += n
        return total_rewrites

    benchmark.group = "ablation: OM address-calculation optimization"
    total = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert total > 0


def test_optimize_then_instrument(benchmark, apps, baselines):
    """The link-time optimizer and ATOM compose."""
    name = next(iter(apps))
    app = apps[name]
    base = baselines[name]

    def pipeline():
        prog = build_ir(app)
        optimize_address_calculation(prog)
        optimized = emit(prog).module
        res = apply_tool(optimized, get_tool("malloc"))
        return run_module(res.module)

    benchmark.group = "ablation: OM address-calculation optimization"
    result = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    assert result.stdout == base.stdout


def test_om_opt_report(benchmark):
    def noop():
        return None
    benchmark.group = "ablation: OM address-calculation optimization"
    benchmark.pedantic(noop, rounds=1, iterations=1)
    if not _rows:
        pytest.skip("savings benchmark did not run")
    print_table("OM link-time address-calculation optimization "
                "(GOT loads -> lda disp(gp))",
                ["workload", "loads rewritten", "cycles saved"], _rows)
