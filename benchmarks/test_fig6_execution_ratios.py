"""Figure 6: execution time of instrumented programs relative to
uninstrumented, per tool.

The paper's ratios (Alpha 3000/400 wall clock): cache 11.84x; branch
3.03x; unalign 2.93x; dyninst 2.91x; gprof 2.70x; prof 2.33x; pipe 1.80x;
inline 1.03x; malloc 1.02x; io 1.01x; syscall 1.01x.

Ours are simulated-cycle ratios.  Absolute magnitudes are higher (a
single-issue cost model and a naive analysis-code generator versus a
dual-issue Alpha), but the *shape* is the reproduction target:

* per-memory-reference tools (cache, unalign) cost the most;
* per-block tools (dyninst, gprof, prof, branch, pipe) sit in the middle;
* procedure-level tools (inline, malloc, io, syscall) are ~1.0x.

Each per-tool benchmark times the instrumented suite run and records the
geometric-mean cycle ratio; the report test prints the Figure 6 analogue
and asserts the shape.
"""

import math

import pytest

from repro.machine import run_module
from repro.tools import TOOL_NAMES, get_tool

from conftest import print_table

_ratios: dict[str, float] = {}

#: Paper Figure 6 ratios, for side-by-side display.
PAPER_RATIOS = {
    "branch": 3.03, "cache": 11.84, "dyninst": 2.91, "gprof": 2.70,
    "inline": 1.03, "io": 1.01, "malloc": 1.02, "pipe": 1.80,
    "prof": 2.33, "syscall": 1.01, "unalign": 2.93,
}


@pytest.mark.parametrize("tool_name", TOOL_NAMES)
def test_fig6_run_instrumented(benchmark, apps, baselines, matrix,
                               tool_name):
    names = list(apps)
    instrumented = {name: matrix.get(tool_name, name) for name in names}

    def run_all():
        return {name: run_module(instrumented[name].module)
                for name in names}

    benchmark.group = "fig6: run instrumented workload suite"
    benchmark.extra_info["tool"] = tool_name
    results = benchmark.pedantic(run_all, rounds=1, iterations=1,
                                 warmup_rounds=0)
    log_sum = 0.0
    for name, result in results.items():
        base = baselines[name]
        assert result.stdout == base.stdout, \
            f"{tool_name} perturbed {name}'s output"
        assert result.status == base.status
        log_sum += math.log(result.cycles / base.cycles)
    ratio = math.exp(log_sum / len(results))
    _ratios[tool_name] = ratio
    benchmark.extra_info["cycle_ratio"] = round(ratio, 2)


def test_fig6_report(benchmark, apps):
    def noop():
        return None
    benchmark.group = "fig6: run instrumented workload suite"
    benchmark.pedantic(noop, rounds=1, iterations=1)
    if len(_ratios) < len(TOOL_NAMES):
        pytest.skip("per-tool benchmarks did not run")

    rows = []
    for name in TOOL_NAMES:
        tool = get_tool(name)
        rows.append([name, tool.points, tool.args,
                     f"{_ratios[name]:.2f}x", f"{PAPER_RATIOS[name]:.2f}x"])
    print_table(
        f"Figure 6: execution ratio, instrumented vs uninstrumented "
        f"({len(apps)} workloads, geometric mean of cycle ratios)",
        ["tool", "instrumentation points", "args", "ours", "paper"],
        rows)

    r = _ratios
    # Shape assertions mirroring the paper's ordering claims.
    # 1. cache is the most expensive tool.
    assert r["cache"] == max(r.values())
    # 2. per-memory-reference tools dominate per-block tools.
    assert r["cache"] > r["dyninst"]
    assert r["unalign"] > r["inline"]
    # 3. block-level tools cost real overhead.
    for name in ("branch", "dyninst", "gprof", "prof", "pipe"):
        assert r[name] > 1.3, name
    # 4. procedure-level tools are nearly free; inline (every call site,
    #    including the library's) sits just above them, as in the paper.
    for name in ("malloc", "io", "syscall"):
        assert r[name] < 1.5, name
    assert r["inline"] < 2.5
    # 5. ...and cheaper than every block-level tool.
    cheap = max(r[n] for n in ("malloc", "io", "syscall"))
    costly = min(r[n] for n in ("branch", "dyninst", "gprof", "prof"))
    assert cheap < costly
