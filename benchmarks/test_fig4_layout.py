"""Figure 4: the instrumented-program memory layout.

Not a timing figure — a structural one.  This benchmark instruments every
workload with a representative tool and verifies each Figure 4 invariant,
then prints the memory map of one instrumented program in the figure's
shape.
"""

import pytest

from repro.machine import run_module
from repro.objfile.sections import BSS, DATA, LITA, TEXT

from conftest import print_table


def test_fig4_layout_invariants(benchmark, apps, baselines, matrix):
    def check_all():
        failures = []
        for name, app in apps.items():
            res = matrix.get("dyninst", name)
            mod = res.module
            # Program data addresses unchanged.
            for sec in (LITA, DATA, BSS):
                if mod.section(sec).vaddr != app.section(sec).vaddr:
                    failures.append((name, sec, "moved"))
            # Program data bytes unchanged.
            if bytes(mod.section(DATA).data) != \
                    bytes(app.section(DATA).data):
                failures.append((name, DATA, "contents changed"))
            # Analysis segments inside the text-data gap.
            gap_lo = app.section(TEXT).vaddr
            gap_hi = app.section(LITA).vaddr
            for seg_name, vaddr, blob in mod.extra_segments:
                if not (gap_lo < vaddr and vaddr + len(blob) <= gap_hi):
                    failures.append((name, seg_name, "outside gap"))
            # Stack and heap anchors identical at run time.
            base = baselines[name]
            result = run_module(mod)
            if result.heap_base != base.heap_base:
                failures.append((name, "heap", "moved"))
            if result.initial_sp != base.initial_sp:
                failures.append((name, "stack", "moved"))
        return failures

    benchmark.group = "fig4: layout invariants"
    failures = benchmark.pedantic(check_all, rounds=1, iterations=1)
    assert failures == []


def test_fig4_memory_map(benchmark, apps, matrix):
    """Print the Figure 4 memory map for one instrumented workload."""
    name = next(iter(apps))
    app = apps[name]
    res = matrix.get("dyninst", name)
    mod = res.module

    def build_map():
        rows = []
        text = mod.section(TEXT)
        rows.append(["stack (grows down)", f"below {text.vaddr:#x}", ""])
        rows.append([
            "program+analysis text", f"{text.vaddr:#x}",
            f"{text.vaddr + text.size:#x}"])
        for seg_name, vaddr, blob in mod.extra_segments:
            rows.append([f"analysis {seg_name}", f"{vaddr:#x}",
                         f"{vaddr + len(blob):#x}"])
        for sec in (LITA, DATA, BSS):
            s = mod.section(sec)
            rows.append([f"program {sec} (unmoved)", f"{s.vaddr:#x}",
                         f"{s.vaddr + s.size:#x}"])
        end = mod.symtab["__end"].value
        rows.append(["heap (grows up)", f"{end:#x}", ""])
        return rows

    benchmark.group = "fig4: layout invariants"
    rows = benchmark.pedantic(build_map, rounds=1, iterations=1)
    print_table(f"Figure 4 memory layout: {name} instrumented with "
                f"dyninst", ["region", "start", "end"], rows)
    # Two gp values, as drawn in the figure.
    assert mod.gp_value == app.gp_value
    assert mod.analysis_gp not in (0, mod.gp_value)
