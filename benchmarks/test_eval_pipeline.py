"""Eval-pipeline throughput: cold versus warm artifact cache.

ATOM's pitch is cheap repeat tool runs; the artifact cache is our
mechanical version of that claim.  This benchmark instruments one
workload with one tool cold (compile everything) and warm (rehydrate
the instrumented executable from the content-addressed store) and
asserts the warm path is both faster and bit-identical.
"""

import pytest

from repro.eval import apply_tool
from repro.eval.cache import ArtifactCache
from repro.tools import get_tool
from repro.workloads import build_workload

CELLS = (("dyninst", "fileio"), ("cache", "li"))


@pytest.mark.parametrize("tool_name,workload", CELLS)
def test_warm_cache_beats_cold_instrumentation(benchmark, tmp_path,
                                               tool_name, workload):
    app = build_workload(workload)
    tool = get_tool(tool_name)
    store = ArtifactCache(tmp_path / "cache")
    cold = apply_tool(app, tool, cache=store)     # populate the store

    def warm_apply():
        return apply_tool(app, tool, cache=store)

    benchmark.group = "eval pipeline: warm apply_tool"
    benchmark.extra_info["tool"] = tool_name
    benchmark.extra_info["workload"] = workload
    warm = benchmark.pedantic(warm_apply, rounds=3, iterations=1,
                              warmup_rounds=1)
    assert warm.cached and not cold.cached
    assert warm.module.to_bytes() == cold.module.to_bytes()
    assert warm.stats == cold.stats
