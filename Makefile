PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test bench bench-smoke validate-baseline

# Tier-1 gate: full test suite, then a bench smoke run whose report (and
# the committed baseline, if present) must satisfy the v1 schema.
check: test bench-smoke validate-baseline

test:
	$(PYTHON) -m pytest -x -q

# Full matrix; rewrites the committed baseline at the repo root.
bench:
	$(PYTHON) -m repro.perf.bench --out BENCH_interp.json

# One workload/tool/opt cell, written to a scratch path.
bench-smoke:
	$(PYTHON) -m repro.perf.bench --quick --reps 1 --out /tmp/bench_smoke.json

validate-baseline:
	$(PYTHON) -c "import json, sys; \
	from repro.perf.bench import validate_report, load_report; \
	validate_report(json.load(open('/tmp/bench_smoke.json'))); \
	base = load_report(); \
	print('baseline ok' if base else 'no committed baseline', \
	      file=sys.stderr)"
