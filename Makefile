PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test bench bench-smoke validate-baseline check-bench check-jit check-matrix eval-matrix check-obs check-profile check-fuzz check-taint check-serve check-metrics fuzz-corpus

# Tier-1 gate: full test suite, then a bench smoke run whose report (and
# the committed baseline, if present) must satisfy the v1 schema.
check: test bench-smoke validate-baseline

test:
	$(PYTHON) -m pytest -x -q

# Full matrix; rewrites the committed baseline at the repo root.
bench:
	$(PYTHON) -m repro.perf.bench --out BENCH_interp.json

# One workload/tool/opt cell, written to a scratch path.
bench-smoke:
	$(PYTHON) -m repro.perf.bench --quick --reps 1 --out /tmp/bench_smoke.json

# Regression gate: rerun the default matrix to a scratch path and compare
# against the committed baseline.  Fails (exit 1) when any cell's excess
# instrumentation cycles grow beyond the threshold (default 10%), or when
# same-host interpreter throughput drops beyond it.  The fresh run uses
# the same best-of-3 timing as `make bench`: a best-of-1 fresh side is
# biased slow against a best-of-3 baseline and flakes the wall-clock leg.
check-bench:
	$(PYTHON) -m repro.perf.bench --out /tmp/bench_fresh.json
	$(PYTHON) -m repro.perf.bench --compare BENCH_interp.json /tmp/bench_fresh.json

# Region-JIT lane: the jit on/off differential suites (machine-level
# state identity plus the end-to-end instrumented/profiled lane), then
# the bench regression gate so a JIT throughput regression fails CI
# (interpreter insts/sec gates only on same-host comparisons; the
# deterministic cycle legs gate everywhere).
check-jit:
	$(PYTHON) -m pytest -q tests/machine/test_jit.py \
	    tests/eval/test_jit_differential.py tests/machine/test_superblocks.py
	$(PYTHON) -m repro.perf.bench --out /tmp/bench_jit.json
	$(PYTHON) -m repro.perf.bench --compare BENCH_interp.json /tmp/bench_jit.json

# Parallel conformance/differential matrix lane (pytest -m matrix).
# Deterministically sharded: `make check-matrix SHARD=0 SHARDS=2` runs
# half the matrix; run every shard to cover all of it.  Set
# WRL_MATRIX_FULL=1 for all 20 workloads instead of the quick set.
SHARD ?= 0
SHARDS ?= 1
check-matrix:
	WRL_EVAL_SHARD=$(SHARD) WRL_EVAL_SHARDS=$(SHARDS) \
	$(PYTHON) -m pytest -q -m matrix tests/eval/test_parallel_matrix.py

# Full matrix through the parallel pipeline; rewrites EVAL_matrix.json.
eval-matrix:
	$(PYTHON) -m repro.eval --jobs 2 --out EVAL_matrix.json

# Observability lane: tracer unit tests plus the overhead-budget
# benchmark (asserts disabled tracing costs <2% on the bench workloads).
check-obs:
	$(PYTHON) -m pytest -q tests/obs
	$(PYTHON) -m repro.obs.overhead --quick --out /tmp/obs_overhead.json

# Guest-profiler lane: runtime-profiler unit tests, the sampling-off
# overhead budget (the sampler branch must cost nothing when disabled;
# same <2% gate as tracing), then an end-to-end profile of prof@O4 —
# flamegraph stacks + annotated disassembly written to PROFILE_DIR
# (uploaded as a CI artifact), failing if >1% of samples are
# unattributable.
PROFILE_DIR ?= /tmp/wrl-profile
check-profile:
	$(PYTHON) -m pytest -q tests/obs/test_runtime.py
	$(PYTHON) -m repro.obs.overhead --quick --out /tmp/obs_overhead.json
	$(PYTHON) -m repro.obs.runtime --workload fib --tool prof --opt 4 \
	    --interval 997 --out-dir $(PROFILE_DIR)
	$(PYTHON) -m repro.obs.cli profile $(PROFILE_DIR)/profile.json --top 5
	$(PYTHON) -m repro.obs.annotate $(PROFILE_DIR)/module.wof \
	    $(PROFILE_DIR)/profile.json -o $(PROFILE_DIR)/annotated-cli.txt

# Fuzz lane: the deep pytest suite (generator/reducer/matrix/corpus,
# `-m fuzz`), then a fixed-seed wrl-fuzz smoke over fresh programs under
# a hard time budget.  A divergence writes a reduced repro program to
# FUZZ_DIR (uploaded as a CI artifact) and fails the lane.  The deep
# lane is tunable without code changes: make check-fuzz FUZZ_SEED=100
# FUZZ_COUNT=50 FUZZ_BUDGET=600.
FUZZ_DIR ?= /tmp/wrl-fuzz
FUZZ_SEED ?= 0
FUZZ_COUNT ?= 8
FUZZ_BUDGET ?= 60
check-fuzz:
	$(PYTHON) -m pytest -q -m fuzz tests/fuzz
	$(PYTHON) -m repro.eval.fuzz_matrix --seed $(FUZZ_SEED) \
	    --count $(FUZZ_COUNT) --time-budget $(FUZZ_BUDGET) \
	    --jobs 2 --out $(FUZZ_DIR)

# Taint lane: shadow-semantics property tests and the end-to-end taint
# tool tests, pristine attribution under the densest instrumentation
# regime, a taint-only differential over the committed corpus
# (time-budgeted; a divergence writes a reduced repro to TAINT_DIR),
# then the taint rows of the bench regression gate against the
# committed baseline.
TAINT_DIR ?= /tmp/wrl-taint
TAINT_BUDGET ?= 240
check-taint:
	$(PYTHON) -m pytest -q tests/tools/test_taint_shadow.py \
	    tests/tools/test_tools.py -k "taint or Taint"
	$(PYTHON) -m pytest -q tests/obs/test_runtime.py -k taint
	$(PYTHON) -m repro.eval.fuzz_matrix --corpus tests/fuzz/corpus \
	    --tools taint --no-rotate-tools --time-budget $(TAINT_BUDGET) \
	    --jobs 2 --out $(TAINT_DIR)
	$(PYTHON) -m repro.perf.bench --tools taint --out /tmp/bench_taint.json
	$(PYTHON) -m repro.perf.bench --compare BENCH_interp.json /tmp/bench_taint.json

# Daemon lane: the serve test suite, then a live differential replay —
# start a real wrl-serve daemon, push a corpus slice through concurrent
# duplicated thin clients, and require (1) byte-identity against the
# cold-process artifacts and (2) a minimum dedup hit rate.  On failure
# the daemon trace + failure report land in SERVE_DIR (uploaded as a CI
# artifact).
SERVE_DIR ?= /tmp/wrl-serve-artifacts
check-serve:
	$(PYTHON) -m pytest -q tests/serve
	$(PYTHON) -m repro.serve.check --limit 10 --dup 3 \
	    --min-dedup-rate 0.34 --artifacts $(SERVE_DIR)

# Telemetry lane: metrics-registry + dashboard unit tests, the
# end-to-end trace/metrics/SLO suite against live daemons (golden
# Prometheus exposition included), then the metrics overhead budget —
# a metrics-on daemon must serve pings within 2% of a metrics-off
# daemon.  On failure the exposition text + stats snapshots land in
# METRICS_DIR (uploaded as a CI artifact).
METRICS_DIR ?= /tmp/wrl-metrics-artifacts
check-metrics:
	$(PYTHON) -m pytest -q tests/obs/test_metrics.py \
	    tests/obs/test_top.py tests/serve/test_telemetry.py
	$(PYTHON) -m repro.serve.overhead --quick \
	    --out /tmp/serve_overhead.json --artifacts $(METRICS_DIR)

# Regenerate the committed seed corpus (policy in DESIGN.md): only when
# the generator's output changes deliberately, never to paper over a
# divergence.
fuzz-corpus:
	$(PYTHON) -m repro.mlc.fuzz --seed 0 --count 25 \
	    --out-dir tests/fuzz/corpus

validate-baseline:
	$(PYTHON) -c "import json, sys; \
	from repro.perf.bench import validate_report, load_report; \
	validate_report(json.load(open('/tmp/bench_smoke.json'))); \
	base = load_report(); \
	print('baseline ok' if base else 'no committed baseline', \
	      file=sys.stderr)"
