"""The committed seed corpus (tests/fuzz/corpus/).

The corpus is the regression net: 25 generator outputs frozen in-tree
so the differential lane keeps exercising exactly these programs even
as the generator evolves.  Policy (DESIGN.md): regenerate only via
``make fuzz-corpus`` when the generator's output changes deliberately —
never edit a corpus file by hand, and never regenerate to make a
failing differential pass.
"""

from pathlib import Path

import pytest

from repro.eval.fuzz_matrix import check_program
from repro.mlc.fuzz import generate_program, profile_for

CORPUS = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS.glob("seed_*.mlc"))


def test_corpus_is_committed_and_big_enough():
    assert len(CORPUS_FILES) >= 25


def test_corpus_matches_generator_byte_for_byte():
    """Catches accidental generator drift: any change to emitted text
    must come with a deliberate `make fuzz-corpus` regeneration."""
    for path in CORPUS_FILES:
        seed = int(path.stem.split("_")[1])
        assert path.read_text() == generate_program(seed, profile_for(seed)), \
            f"{path.name} no longer matches the generator; " \
            f"see the regeneration policy in DESIGN.md"


@pytest.mark.fuzz
@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_corpus_base_dispatch_identity(path):
    """Every corpus program, uninstrumented: all three dispatch tiers
    byte-identical including the sampled profile document."""
    report = check_program(path.read_text(),
                           seed=int(path.stem.split("_")[1]),
                           tools=())
    assert report.ok, [d.describe() for d in report.divergences]


@pytest.mark.fuzz
@pytest.mark.parametrize("path", CORPUS_FILES[::5], ids=lambda p: p.stem)
def test_corpus_instrumented_differential(path):
    """A rotating slice of the corpus through an instrumented column
    (prof at the O0/O4 extremes) — the full matrix for these programs
    runs in the wrl-fuzz smoke that follows in the same CI lane."""
    report = check_program(path.read_text(),
                           seed=int(path.stem.split("_")[1]),
                           tools=("prof",), opts=("O0", "O4"))
    assert report.ok, [d.describe() for d in report.divergences]
