"""The fuzz generator's contract: deterministic, valid, bounded.

Every program it emits must compile through the real mlc pipeline and
terminate quickly on the simulated machine — the differential matrix is
only as good as the generator's validity rate, so a 100% rate is pinned
here, not sampled.
"""

import subprocess
import sys

from repro.machine import run_module
from repro.mlc import build_executable
from repro.mlc.fuzz import (PROFILES, GrammarWeights, corpus_sources,
                            generate_program, profile_for)

SMOKE_SEEDS = (0, 1, 2, 3)


def test_generation_is_deterministic():
    for seed in SMOKE_SEEDS:
        a = generate_program(seed, profile_for(seed))
        b = generate_program(seed, profile_for(seed))
        assert a == b


def test_seeds_differ():
    sources = {generate_program(s, profile_for(s)) for s in range(8)}
    assert len(sources) == 8


def test_profile_rotation_is_seed_stable():
    names = sorted(PROFILES)
    for seed in range(10):
        assert profile_for(seed) is PROFILES[names[seed % len(names)]]
        # an explicit profile always wins over rotation
        assert profile_for(seed, "loops") is PROFILES["loops"]


def test_profiles_change_the_program():
    by_profile = {name: generate_program(0, PROFILES[name])
                  for name in PROFILES}
    assert len(set(by_profile.values())) == len(PROFILES)


def test_programs_compile_and_terminate():
    for seed in SMOKE_SEEDS:
        src = generate_program(seed, profile_for(seed))
        exe = build_executable([src])
        result = run_module(exe, max_insts=5_000_000, fuse=False, jit=False)
        assert 0 <= result.status < 64          # main returns CHK & 63
        assert result.stdout.startswith(b"chk=")
        # bounded: big enough to promote JIT regions, small enough that
        # a full instrumented matrix stays affordable
        assert 1_000 < result.inst_count < 100_000


def test_custom_weights_accepted():
    heavy_loops = GrammarWeights(loop_for=20.0)
    src = generate_program(5, heavy_loops)
    result = run_module(build_executable([src]), max_insts=5_000_000)
    assert result.stdout.startswith(b"chk=")


def test_corpus_sources_rotates_and_orders():
    programs = corpus_sources(4, seed0=10)
    assert [seed for seed, _ in programs] == [10, 11, 12, 13]
    for seed, text in programs:
        assert text == generate_program(seed, profile_for(seed))


def test_cli_writes_corpus(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.mlc.fuzz", "--seed", "3",
         "--count", "2", "--out-dir", str(tmp_path)],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
    files = sorted(p.name for p in tmp_path.glob("*.mlc"))
    assert files == ["seed_0003.mlc", "seed_0004.mlc"]
    assert (tmp_path / "seed_0003.mlc").read_text() == \
        generate_program(3, profile_for(3))
    assert "wrote 2 programs" in proc.stderr
