"""The structural reducer, and the end-to-end divergence-to-repro path.

The marquee test injects a real codegen fault into the region JIT
(xor results corrupted inside compiled regions only), lets the harness
catch the divergence, and requires the reducer to shrink the fuzzed
program to a handful of lines that still reproduce it — the workflow a
human debugging a genuine miscompile would follow.
"""

import pytest

import repro.machine.jit as jitmod
from repro.eval.fuzz_matrix import (check_program, divergence_predicate,
                                    reduce_divergence)
from repro.mlc import build_executable
from repro.mlc.fuzz import generate_program, profile_for
from repro.mlc.reduce import checked_predicate, reduce_source

SMALL = r"""
long G[4];

long helper(long x) { return x * 3; }

int main() {
    long i, acc = 0;
    for (i = 0; i < 10; i++) {
        G[i & 3] = i;
        acc = acc + helper(i);
    }
    if (acc > 100) {
        acc = acc - 5;
    }
    printf("MAGIC %d\n", acc);
    return 0;
}
"""


def test_reduce_keeps_predicate_true():
    predicate = checked_predicate(lambda s: build_executable([s]),
                                  lambda s: "MAGIC" in s)
    reduced = reduce_source(SMALL, predicate)
    assert "MAGIC" in reduced
    build_executable([reduced])                 # still valid mlc
    # everything inessential is gone: helper, the loop, the branch
    assert "helper" not in reduced
    assert "for" not in reduced
    assert len(reduced.splitlines()) <= 5
    assert all(ln.strip() for ln in reduced.splitlines())


def test_reduce_rejects_noncompiling_candidates():
    """Deleting ``long v;`` alone breaks compilation, so the reducer
    must keep declaration and use together or drop both."""
    src = "int main() {\n    long v;\n    v = 7;\n    printf(\"k=%d\\n\", v);\n    return 0;\n}\n"
    predicate = checked_predicate(lambda s: build_executable([s]),
                                  lambda s: "printf" in s)
    reduced = reduce_source(src, predicate)
    build_executable([reduced])
    assert "printf" in reduced
    # printf still reads v, so its declaration must have survived even
    # though the (deletable) assignment may be gone
    assert "long v;" in reduced


def test_reduce_unwraps_compound_statements():
    src = ("int main() {\n    long x = 1;\n"
           "    if (x) {\n        printf(\"KEEP %d\\n\", x);\n    }\n"
           "    return 0;\n}\n")
    predicate = checked_predicate(lambda s: build_executable([s]),
                                  lambda s: "KEEP" in s)
    reduced = reduce_source(src, predicate)
    assert "KEEP" in reduced
    assert "if" not in reduced                  # unwrapped, then deleted


@pytest.fixture
def broken_jit_xor(monkeypatch):
    """Corrupt every xor result inside JIT-compiled regions only."""
    orig = jitmod._gen_inst_jit

    def sabotaged(inst, pc, slot):
        lines, traps = orig(inst, pc, slot)
        if getattr(inst, "mnemonic", None) == "xor" and inst.rc != 31:
            lines = list(lines) + [f"g{inst.rc} = g{inst.rc} ^ 2"]
        return lines, traps

    monkeypatch.setattr(jitmod, "_gen_inst_jit", sabotaged)


@pytest.mark.fuzz
def test_injected_jit_fault_is_caught_and_reduced(broken_jit_xor):
    src = generate_program(0, profile_for(0))
    report = check_program(src, seed=0, tools=("prof",), opts=("O0",),
                           stop_on_first=True)
    assert not report.ok
    div = report.divergences[0]
    assert div.kind == "dispatch"
    assert div.cell_b == "jit"

    reduced = reduce_divergence(src, div)
    assert len(reduced.splitlines()) <= 20      # acceptance bar
    # the reduced program still reproduces the divergence on its own
    assert divergence_predicate(div)(reduced)
    # ... and is healthy once the sabotage is gone (the fault is in the
    # JIT, not the program): checked by the matrix smoke test elsewhere.


@pytest.mark.fuzz
def test_injected_fault_vanishes_without_sabotage():
    src = generate_program(0, profile_for(0))
    report = check_program(src, seed=0, tools=("prof",), opts=("O0",),
                           stop_on_first=True)
    assert report.ok, [d.describe() for d in report.divergences]
