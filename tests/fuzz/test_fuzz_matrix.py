"""The differential harness itself: fingerprints, matrix, parallel leg.

The quick tests run in tier-1; the ``fuzz``-marked ones are the deep
lane behind ``make check-fuzz``.
"""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.eval.fuzz_matrix import (DISPATCH, _analysis_view, _canon,
                                    _fingerprint, check_program)
from repro.mlc import build_executable
from repro.mlc.fuzz import generate_program, profile_for

FAULTING_PROGRAM = r"""
int main() {
    int i, d = 0, acc = 0;
    for (i = 0; i < 200; i++) acc += i;
    printf("acc=%d\n", acc);
    return acc / d;
}
"""


def test_fingerprint_shape():
    exe = build_executable([generate_program(0, profile_for(0))])
    fp = _fingerprint(exe, fuse=True, jit=True, max_insts=5_000_000,
                      sample_interval=97)
    assert set(fp) == {"status", "stdout", "stderr", "files", "cycles",
                       "inst_count", "profile"}
    assert '"wrl-profile/v1"' in fp["profile"]
    # hex round-trips: the fingerprint is lossless on the observables
    assert bytes.fromhex(fp["stdout"]).startswith(b"chk=")
    json.dumps(fp)                              # canonical-JSON-able


def test_fingerprint_captures_faults_identically():
    """A guest fault is part of the fingerprint, not a harness crash —
    and it must be the *same* fault in every dispatch tier."""
    exe = build_executable([FAULTING_PROGRAM])
    fps = {}
    for name, (fuse, jit) in DISPATCH.items():
        fps[name] = _fingerprint(exe, fuse=fuse, jit=jit,
                                 max_insts=5_000_000, sample_interval=None)
    assert "error" in fps["simple"]
    assert "MachineError" in fps["simple"]["error"]
    assert _canon(fps["simple"]) == _canon(fps["fused"]) == _canon(fps["jit"])


def test_fingerprint_budget_exhaustion_is_deterministic():
    exe = build_executable([generate_program(0, profile_for(0))])
    fps = [_fingerprint(exe, fuse=fuse, jit=jit, max_insts=2_000,
                        sample_interval=None)
           for fuse, jit in DISPATCH.values()]
    assert "BudgetExhausted" in fps[0]["error"]
    assert len({_canon(fp) for fp in fps}) == 1


def test_analysis_view_drops_cost_and_named_files():
    fp = {"status": 0, "stdout": "61", "stderr": "", "cycles": 9,
          "inst_count": 5, "files": {"prof.out": "00", "data": "ff"}}
    view = _analysis_view(fp, drop=("prof.out",))
    assert view == {"status": 0, "stdout": "61", "stderr": "",
                    "files": {"data": "ff"}}
    assert _analysis_view({"error": "MachineError: x"}) == \
        {"error": "MachineError: x"}


def test_check_program_smoke():
    """One seed, one tool, two opt levels, serial only — the quick
    tier-1 proof that the matrix plumbing holds together."""
    report = check_program(generate_program(0, profile_for(0)), seed=0,
                           tools=("prof",), opts=("O0", "O4"))
    assert report.ok, [d.describe() for d in report.divergences]
    assert report.seconds > 0


@pytest.mark.fuzz
def test_full_matrix_with_parallel_leg():
    """The acceptance-shaped cell: O0–O4 x three dispatch tiers x
    serial+parallel, byte-identical, for both default tools."""
    src = generate_program(1, profile_for(1))
    with ProcessPoolExecutor(max_workers=2) as pool:
        report = check_program(src, seed=1, tools=("prof", "dyninst"),
                               pool=pool)
    assert report.ok, [d.describe() for d in report.divergences]


@pytest.mark.fuzz
def test_several_seeds_all_profiles():
    for seed in range(2, 6):                    # covers every profile
        src = generate_program(seed, profile_for(seed))
        report = check_program(src, seed=seed, tools=("prof",),
                               opts=("O0", "O2", "O4"))
        assert report.ok, (seed, [d.describe() for d in report.divergences])
