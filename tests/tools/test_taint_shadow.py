"""Property tests for the taint tool's byte-granular shadow semantics.

The invariants under test mirror ``tests/machine/test_memory.py``'s
mixed-width traffic suite, but for the *shadow* plane: overlapping
stores of different widths, page-straddling accesses, and source
fills/wipes must leave the page-sparse :class:`ShadowMemory` in exactly
the state a flat per-byte dict would be in.  The same structure is
implemented in MLC inside every taint-instrumented executable
(``tools/taint/analysis.mlc``); the end-to-end cross-check against that
implementation lives in ``test_tools.py``'s ``TestTaint``.
"""

from hypothesis import given, settings, strategies as st

from repro.tools.taint.shadow import (DIR_PAGES, PAGE_SIZE, ShadowMemory,
                                      parse_report)

# A window spanning three pages, with accesses biased toward the page
# boundaries so straddling is common, mirroring the machine memory
# suite's traffic shape.
WINDOW = 3 * PAGE_SIZE

addrs = st.one_of(
    st.integers(min_value=0, max_value=WINDOW - 9),
    st.builds(lambda page, d: page * PAGE_SIZE + d,
              st.integers(min_value=1, max_value=2),
              st.integers(min_value=-8, max_value=7)),
)
sizes = st.sampled_from([1, 2, 4, 8])

ops = st.lists(
    st.one_of(
        st.tuples(st.just("store"), addrs, sizes, st.booleans(),
                  st.integers(min_value=4, max_value=2 ** 20)),
        st.tuples(st.just("load"), addrs, sizes),
        st.tuples(st.just("fill"), addrs,
                  st.integers(min_value=1, max_value=32),
                  st.integers(min_value=1, max_value=2 ** 20)),
        st.tuples(st.just("wipe"), addrs,
                  st.integers(min_value=1, max_value=32)),
    ),
    max_size=60,
)


class FlatShadow:
    """The obviously-correct reference: one dict entry per tainted byte,
    value = origin pc."""

    def __init__(self):
        self.bytes = {}

    def store(self, addr, size, taint, pc):
        for a in range(addr, addr + size):
            if taint:
                self.bytes[a] = pc
            else:
                self.bytes.pop(a, None)

    def load(self, addr, size):
        return int(any(a in self.bytes for a in range(addr, addr + size)))

    def fill(self, start, length, origin):
        for a in range(start, start + length):
            self.bytes[a] = origin

    def wipe(self, start, length):
        for a in range(start, start + length):
            self.bytes.pop(a, None)

    def ranges(self):
        out, run = [], None
        for a in sorted(self.bytes):
            if run and a == run[0] + run[1]:
                run[1] += 1
            else:
                if run:
                    out.append(tuple(run))
                run = [a, 1]
        if run:
            out.append(tuple(run))
        return out


@given(ops)
@settings(max_examples=200, deadline=None)
def test_shadow_matches_flat_reference(trace):
    shadow, flat = ShadowMemory(), FlatShadow()
    for op in trace:
        if op[0] == "store":
            _, addr, size, taint, pc = op
            shadow.store(addr, size, taint, pc)
            flat.store(addr, size, taint, pc)
        elif op[0] == "load":
            _, addr, size = op
            assert shadow.load(addr, size) == flat.load(addr, size)
        elif op[0] == "fill":
            _, start, length, origin = op
            shadow.fill(start, length, origin)
            flat.fill(start, length, origin)
        else:
            _, start, length = op
            shadow.wipe(start, length)
            flat.wipe(start, length)
    assert shadow.tainted_bytes == len(flat.bytes)
    assert shadow.ranges() == flat.ranges()
    for a, origin in flat.bytes.items():
        assert shadow.get_byte(a) == 1
        assert shadow.origin(a) == origin


@given(addrs, sizes, st.integers(min_value=4, max_value=2 ** 20))
@settings(max_examples=100, deadline=None)
def test_load_taint_is_or_of_covered_bytes(addr, size, pc):
    """A load's taint is exactly the OR over its covered shadow bytes —
    tainting any single covered byte flips it, any byte outside the
    access never does."""
    shadow = ShadowMemory()
    assert shadow.load(addr, size) == 0
    for i in range(size):
        shadow.set_byte(addr + i, 1, pc)
        assert shadow.load(addr, size) == 1
        assert shadow.origin(addr + i) == pc
        shadow.set_byte(addr + i, 0, 0)
        assert shadow.load(addr, size) == 0
    shadow.set_byte(addr + size, 1, pc)     # one past the access
    assert shadow.load(addr, size) == 0


@given(st.integers(min_value=1, max_value=2),
       st.integers(min_value=1, max_value=7), sizes)
@settings(max_examples=60, deadline=None)
def test_page_straddling_store_taints_both_pages(page, back, size):
    """A store beginning ``back`` bytes before a page boundary covers
    bytes on both sides; the halves must land in the right pages."""
    addr = page * PAGE_SIZE - back
    shadow = ShadowMemory()
    shadow.store(addr, size, True, 0x1234)
    assert shadow.tainted_bytes == size
    for i in range(size):
        assert shadow.get_byte(addr + i) == 1
    if size > back:                          # genuinely straddles
        assert shadow.get_byte(page * PAGE_SIZE - 1) == 1
        assert shadow.get_byte(page * PAGE_SIZE) == 1
        assert shadow.ranges() == [(addr, size)]


def test_strong_update_untaints():
    """An untainted store over a tainted range clears exactly the bytes
    it covers — strong update, not union."""
    shadow = ShadowMemory()
    shadow.fill(100, 16, origin=7)
    shadow.store(104, 8, False, 0)
    assert shadow.tainted_bytes == 8
    assert shadow.ranges() == [(100, 4), (112, 4)]
    # Re-tainting updates the origin (pc of the newest writer).
    shadow.store(104, 4, True, 0xBEEF)
    assert shadow.origin(104) == 0xBEEF
    assert shadow.origin(100) == 7


def test_out_of_directory_accesses_are_ignored():
    """Addresses past the 256 MB directory (matching analysis.mlc's
    bounds checks) neither taint nor crash."""
    shadow = ShadowMemory()
    beyond = DIR_PAGES * PAGE_SIZE + 5
    shadow.store(beyond, 8, True, 1)
    shadow.store(-9, 8, True, 1)
    assert shadow.tainted_bytes == 0
    assert shadow.load(beyond, 8) == 0
    # A store straddling the directory edge taints only the in-range part.
    edge = DIR_PAGES * PAGE_SIZE - 4
    shadow.store(edge, 8, True, 1)
    assert shadow.tainted_bytes == 4


def test_parse_report_roundtrip():
    text = ("taint report v1\n"
            "sources: argv=1 stdin=0 ranges=2\n"
            "tainted bytes: 9\n"
            "map:\n"
            "  0xff8 +5\n"
            "  0x2000 +4\n"
            "ranges: 2\n"
            "sinks:\n"
            "  fd 1: writes=3 bytes=40 tainted_writes=1\n"
            "  fd 1: tainted_bytes=5 first_pc=0x120004\n"
            "  fd 1: first_origin=0x120010\n")
    doc = parse_report(text)
    assert doc["tainted"] == 9
    assert doc["map"] == [(0xFF8, 5), (0x2000, 4)]
    assert doc["ranges"] == 2
    assert doc["sinks"][1]["writes"] == 3
    assert doc["sinks"][1]["tainted_bytes"] == 5
    assert doc["sinks"][1]["first_pc"] == 0x120004
    assert doc["sinks"][1]["first_origin"] == 0x120010
