"""Pixie baseline tests: register stealing, counting accuracy, offline
analysis."""

import pytest

from repro.baselines.pixie import STOLEN, PixieResult, pixie_instrument, read_counts
from repro.machine import run_module
from repro.mlc import build_executable
from repro.om import build_ir
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def app():
    return build_workload("nqueens")


def test_behavior_preserved(app):
    base = run_module(app)
    res = pixie_instrument(app)
    out = run_module(res.module)
    assert out.stdout == base.stdout
    assert out.status == base.status


def test_counts_exact(app):
    base = run_module(app)
    res = pixie_instrument(app)
    out = run_module(res.module)
    counts = read_counts(out, res)
    prog = build_ir(app)
    sizes = [len(b.insts) for p in prog.procs for b in p.blocks]
    assert len(counts) == res.nblocks == len(sizes)
    assert sum(c * s for c, s in zip(counts, sizes)) == base.inst_count


def test_stolen_register_shadowing():
    """A program that actively uses the stolen registers still works.

    MLC's temp pool includes t9/t10/t11, so a deep expression forces the
    application to genuinely fight pixie for them.
    """
    terms = " + ".join(f"(a{i} * {i + 2})" for i in range(12))
    decls = "".join(f"long a{i} = {i + 1};" for i in range(12))
    src = ("int main() { %s long r = %s; printf(\"r=%%d\\n\", r); "
           "return 0; }" % (decls, terms))
    app = build_executable([src])
    base = run_module(app)
    res = pixie_instrument(app)
    out = run_module(res.module)
    assert out.stdout == base.stdout


def test_overhead_is_nontrivial(app):
    """Pixie adds code to every block; cycles must grow measurably."""
    base = run_module(app)
    out = run_module(pixie_instrument(app).module)
    assert out.cycles > base.cycles * 1.1


def test_counts_file_is_the_transport(app):
    """Unlike ATOM, pixie communicates through a file analyzed offline."""
    res = pixie_instrument(app)
    out = run_module(res.module)
    assert "pixie.counts" in out.files
    assert len(out.files["pixie.counts"]) == 8 * res.nblocks
