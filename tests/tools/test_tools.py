"""Tests for all eleven tools of the paper's evaluation.

Each test instruments a representative application, runs it, and checks
the analysis report — and that the application's own behaviour is
untouched.
"""

import pytest

from repro.eval import apply_tool, run_instrumented, run_uninstrumented
from repro.mlc import build_executable
from repro.tools import TOOL_NAMES, all_tools, get_tool

APP = r"""
long sums[32];

long work(long n) {
    long i, acc = 0;
    long *buf = (long *)malloc(n * sizeof(long));
    for (i = 0; i < n; i++) {
        buf[i] = i * 7 % 13;
        if (buf[i] & 1) acc += buf[i];
        else acc -= buf[i];
        sums[i & 31] += buf[i];
    }
    free(buf);
    return acc;
}

int main() {
    long r1 = work(50);
    long r2 = work(80);
    printf("r1=%d r2=%d\n", r1, r2);
    return 0;
}
"""


@pytest.fixture(scope="module")
def app():
    return build_executable([APP])


@pytest.fixture(scope="module")
def baseline(app):
    return run_uninstrumented(app)


def run_tool(app, name, **kw):
    tool = get_tool(name)
    res = apply_tool(app, tool, **kw)
    result = run_instrumented(res)
    return tool, res, result


def report(result, tool):
    return result.files[tool.output_file].decode()


class TestRegistry:
    def test_all_eleven_present(self):
        assert len(TOOL_NAMES) == 11
        tools = all_tools()
        assert [t.name for t in tools] == list(TOOL_NAMES)
        for tool in tools:
            assert tool.description and tool.points
            assert tool.args >= 1
            assert tool.analysis_source.strip()

    def test_unknown_tool_rejected(self):
        with pytest.raises(KeyError):
            get_tool("valgrind")

    def test_figure6_metadata(self):
        """Points/args columns match the paper's Figure 6."""
        expected = {
            "branch": ("each conditional branch", 3),
            "cache": ("each memory reference", 1),
            "dyninst": ("each basic block", 3),
            "gprof": ("each procedure/each basic block", 2),
            "inline": ("each call site", 1),
            "io": ("before/after write procedure", 4),
            "malloc": ("before/after malloc procedure", 1),
            "pipe": ("each basic block", 2),
            "prof": ("each procedure/each basic block", 2),
            "syscall": ("before/after each system call", 2),
            "unalign": ("each memory reference", 3),
        }
        for tool in all_tools():
            points, args = expected[tool.name]
            assert tool.points == points, tool.name
            assert tool.args == args, tool.name


@pytest.mark.parametrize("name", TOOL_NAMES)
def test_tool_preserves_behavior(app, baseline, name):
    _tool, _res, result = run_tool(app, name)
    assert result.stdout == baseline.stdout
    assert result.status == baseline.status


class TestBranch:
    def test_report(self, app, baseline):
        tool, _res, result = run_tool(app, "branch")
        text = report(result, tool)
        assert "predicted:" in text
        # The loop branches are overwhelmingly predictable.
        accuracy = int(text.split("(")[1].split("%")[0])
        assert accuracy > 60
        dynamic = int(text.split("static, ")[1].split(" dynamic")[0])
        assert dynamic > 100


class TestCache:
    def test_report(self, app, baseline):
        tool, _res, result = run_tool(app, "cache")
        text = report(result, tool)
        refs = int(text.split("references: ")[1].split("\n")[0])
        misses = int(text.split("misses: ")[1].split("\n")[0])
        assert 0 < misses < refs
        # Every load/store executed is one reference.
        assert refs > 500


class TestDyninst:
    def test_counts_match_machine(self, app, baseline):
        """The tool's dynamic instruction count equals the simulator's
        count for the uninstrumented run — an end-to-end cross-check of
        tool, ATOM, and machine."""
        tool, _res, result = run_tool(app, "dyninst")
        text = report(result, tool)
        counted = int(text.split("dynamic instructions: ")[1]
                      .split("\n")[0])
        assert counted == baseline.inst_count


class TestGprof:
    def test_call_graph(self, app, baseline):
        tool, _res, result = run_tool(app, "gprof")
        text = report(result, tool)
        assert "work\t2\t" in text                 # work called twice
        assert "main -> work: 2" in text
        assert "work -> malloc: 2" in text


class TestInline:
    def test_hot_sites(self, app, baseline):
        tool, _res, result = run_tool(app, "inline")
        text = report(result, tool)
        total = int(text.split("dynamic calls")[0].split(",")[-1].strip())
        assert total > 4
        assert "inlining candidates:" in text


class TestIo:
    def test_write_summary(self, app, baseline):
        tool, _res, result = run_tool(app, "io")
        text = report(result, tool)
        lines = [l for l in text.splitlines()[1:] if l]
        by_fd = {int(l.split("\t")[0]): l for l in lines}
        assert 1 in by_fd                         # stdout was written
        wr_bytes = int(by_fd[1].split("\t")[2])
        assert wr_bytes == len(baseline.stdout)


class TestMalloc:
    def test_histogram(self, app, baseline):
        tool, _res, result = run_tool(app, "malloc")
        text = report(result, tool)
        calls = int(text.split("malloc calls: ")[1].split(",")[0])
        # work() allocates twice; fopen-free app side allocates none.
        assert calls == 2
        total = int(text.split("bytes: ")[1].split("\n")[0])
        assert total == 50 * 8 + 80 * 8


class TestPipe:
    def test_stall_accounting(self, app, baseline):
        tool, _res, result = run_tool(app, "pipe")
        text = report(result, tool)
        dual = int(text.split("scheduled cycles: ")[1].split("\n")[0])
        single = int(text.split("single-issue cycles: ")[1]
                     .split("\n")[0])
        stalls = int(text.split("stall cycles: ")[1].split("\n")[0])
        speedup = int(text.split("dual-issue speedup: ")[1]
                      .split(" per")[0])
        # Dual-issue can at best halve the single-issue schedule, and a
        # schedule can never beat ceil(n/2) issue slots.
        assert baseline.inst_count / 2 <= dual <= single
        assert stalls >= 0
        assert 1000 <= speedup <= 2000


class TestSyscall:
    def test_summary(self, app, baseline):
        tool, _res, result = run_tool(app, "syscall")
        text = report(result, tool)
        issued = int(text.split("system calls: ")[1].split(" issued")[0])
        # write (printf) + sbrk (malloc) at least.
        assert issued >= 2
        numbers = {int(l.split("\t")[0])
                   for l in text.splitlines()[2:] if "\t" in l}
        assert 2 in numbers                      # SYS_WRITE
        assert 6 in numbers                      # SYS_SBRK


class TestUnalign:
    def test_aligned_app_is_clean(self, app, baseline):
        tool, _res, result = run_tool(app, "unalign")
        text = report(result, tool)
        checked = int(text.split("checked: ")[1].split("\n")[0])
        unaligned = int(text.split("unaligned: ")[1].split("\n")[0])
        assert checked > 100
        assert unaligned == 0                    # MLC aligns everything

    def test_detects_unaligned(self):
        app = build_executable([r"""
        char raw[64];
        int main() {
            long *p = (long *)(raw + 3);     // deliberately misaligned
            *p = 42;
            printf("%d\n", (int)*p);
            return 0;
        }
        """])
        tool, _res, result = run_tool(app, "unalign")
        text = report(result, tool)
        unaligned = int(text.split("unaligned: ")[1].split("\n")[0])
        assert unaligned >= 2                    # the store and the load
        assert "at 0x" in text
