"""Tests for the paper's eleven evaluation tools plus the taint tool.

Each test instruments a representative application, runs it, and checks
the analysis report — and that the application's own behaviour is
untouched.
"""

import pytest

from repro.eval import apply_tool, run_instrumented, run_uninstrumented
from repro.mlc import build_executable
from repro.tools import TOOL_NAMES, all_tools, get_tool

APP = r"""
long sums[32];

long work(long n) {
    long i, acc = 0;
    long *buf = (long *)malloc(n * sizeof(long));
    for (i = 0; i < n; i++) {
        buf[i] = i * 7 % 13;
        if (buf[i] & 1) acc += buf[i];
        else acc -= buf[i];
        sums[i & 31] += buf[i];
    }
    free(buf);
    return acc;
}

int main() {
    long r1 = work(50);
    long r2 = work(80);
    printf("r1=%d r2=%d\n", r1, r2);
    return 0;
}
"""


@pytest.fixture(scope="module")
def app():
    return build_executable([APP])


@pytest.fixture(scope="module")
def baseline(app):
    return run_uninstrumented(app)


def run_tool(app, name, **kw):
    tool = get_tool(name)
    res = apply_tool(app, tool, **kw)
    result = run_instrumented(res)
    return tool, res, result


def report(result, tool):
    return result.files[tool.output_file].decode()


class TestRegistry:
    def test_all_eleven_present(self):
        # the paper's eleven plus the taint dataflow tool
        assert len(TOOL_NAMES) == 12
        assert "taint" in TOOL_NAMES
        tools = all_tools()
        assert [t.name for t in tools] == list(TOOL_NAMES)
        for tool in tools:
            assert tool.description and tool.points
            assert tool.args >= 1
            assert tool.analysis_source.strip()

    def test_unknown_tool_rejected(self):
        with pytest.raises(KeyError):
            get_tool("valgrind")

    def test_figure6_metadata(self):
        """Points/args columns match the paper's Figure 6."""
        expected = {
            "branch": ("each conditional branch", 3),
            "cache": ("each memory reference", 1),
            "dyninst": ("each basic block", 3),
            "gprof": ("each procedure/each basic block", 2),
            "inline": ("each call site", 1),
            "io": ("before/after write procedure", 4),
            "malloc": ("before/after malloc procedure", 1),
            "pipe": ("each basic block", 2),
            "prof": ("each procedure/each basic block", 2),
            "syscall": ("before/after each system call", 2),
            "taint": ("each load/store/ALU op/reg-writing transfer"
                      "/syscall", 5),
            "unalign": ("each memory reference", 3),
        }
        for tool in all_tools():
            points, args = expected[tool.name]
            assert tool.points == points, tool.name
            assert tool.args == args, tool.name


@pytest.mark.parametrize("name", TOOL_NAMES)
def test_tool_preserves_behavior(app, baseline, name):
    _tool, _res, result = run_tool(app, name)
    assert result.stdout == baseline.stdout
    assert result.status == baseline.status


class TestBranch:
    def test_report(self, app, baseline):
        tool, _res, result = run_tool(app, "branch")
        text = report(result, tool)
        assert "predicted:" in text
        # The loop branches are overwhelmingly predictable.
        accuracy = int(text.split("(")[1].split("%")[0])
        assert accuracy > 60
        dynamic = int(text.split("static, ")[1].split(" dynamic")[0])
        assert dynamic > 100


class TestCache:
    def test_report(self, app, baseline):
        tool, _res, result = run_tool(app, "cache")
        text = report(result, tool)
        refs = int(text.split("references: ")[1].split("\n")[0])
        misses = int(text.split("misses: ")[1].split("\n")[0])
        assert 0 < misses < refs
        # Every load/store executed is one reference.
        assert refs > 500


class TestDyninst:
    def test_counts_match_machine(self, app, baseline):
        """The tool's dynamic instruction count equals the simulator's
        count for the uninstrumented run — an end-to-end cross-check of
        tool, ATOM, and machine."""
        tool, _res, result = run_tool(app, "dyninst")
        text = report(result, tool)
        counted = int(text.split("dynamic instructions: ")[1]
                      .split("\n")[0])
        assert counted == baseline.inst_count


class TestGprof:
    def test_call_graph(self, app, baseline):
        tool, _res, result = run_tool(app, "gprof")
        text = report(result, tool)
        assert "work\t2\t" in text                 # work called twice
        assert "main -> work: 2" in text
        assert "work -> malloc: 2" in text


class TestInline:
    def test_hot_sites(self, app, baseline):
        tool, _res, result = run_tool(app, "inline")
        text = report(result, tool)
        total = int(text.split("dynamic calls")[0].split(",")[-1].strip())
        assert total > 4
        assert "inlining candidates:" in text


class TestIo:
    def test_write_summary(self, app, baseline):
        tool, _res, result = run_tool(app, "io")
        text = report(result, tool)
        lines = [l for l in text.splitlines()[1:] if l]
        by_fd = {int(l.split("\t")[0]): l for l in lines}
        assert 1 in by_fd                         # stdout was written
        wr_bytes = int(by_fd[1].split("\t")[2])
        assert wr_bytes == len(baseline.stdout)


class TestMalloc:
    def test_histogram(self, app, baseline):
        tool, _res, result = run_tool(app, "malloc")
        text = report(result, tool)
        calls = int(text.split("malloc calls: ")[1].split(",")[0])
        # work() allocates twice; fopen-free app side allocates none.
        assert calls == 2
        total = int(text.split("bytes: ")[1].split("\n")[0])
        assert total == 50 * 8 + 80 * 8


class TestPipe:
    def test_stall_accounting(self, app, baseline):
        tool, _res, result = run_tool(app, "pipe")
        text = report(result, tool)
        dual = int(text.split("scheduled cycles: ")[1].split("\n")[0])
        single = int(text.split("single-issue cycles: ")[1]
                     .split("\n")[0])
        stalls = int(text.split("stall cycles: ")[1].split("\n")[0])
        speedup = int(text.split("dual-issue speedup: ")[1]
                      .split(" per")[0])
        # Dual-issue can at best halve the single-issue schedule, and a
        # schedule can never beat ceil(n/2) issue slots.
        assert baseline.inst_count / 2 <= dual <= single
        assert stalls >= 0
        assert 1000 <= speedup <= 2000


class TestSyscall:
    def test_summary(self, app, baseline):
        tool, _res, result = run_tool(app, "syscall")
        text = report(result, tool)
        issued = int(text.split("system calls: ")[1].split(" issued")[0])
        # write (printf) + sbrk (malloc) at least.
        assert issued >= 2
        numbers = {int(l.split("\t")[0])
                   for l in text.splitlines()[2:] if "\t" in l}
        assert 2 in numbers                      # SYS_WRITE
        assert 6 in numbers                      # SYS_SBRK


class TestTaint:
    # argv[1] flows byte-by-byte through a copy loop into the stdout
    # write; the stderr write carries only constant data.
    TAINT_APP = r"""
    char buf[64];
    char pad[64];

    int main(int argc, char **argv) {
        long i = 0;
        char *s = argv[1];
        while (s[i]) { buf[i] = s[i]; i++; }
        buf[i] = '\n';
        write(1, buf, i + 1);
        write(2, "done\n", 5);
        return 0;
    }
    """

    @pytest.fixture(scope="class")
    def taint_app(self):
        return build_executable([self.TAINT_APP])

    @staticmethod
    def run_taint(app, tool_args=(), **kw):
        tool = get_tool("taint")
        res = apply_tool(app, tool, tool_args=tool_args, **kw)
        result = run_instrumented(res, args=("secret",))
        return tool, result

    def test_argv_taint_reaches_the_sink(self, taint_app):
        from repro.tools.taint.shadow import parse_report
        tool, result = self.run_taint(taint_app, tool_args=("argv",))
        assert result.stdout == b"secret\n"
        doc = parse_report(report(result, tool))
        assert doc["sources"] == "argv=1 stdin=0 ranges=0"
        # "prog\0" + "secret\0" from argv, plus the copies into buf.
        assert doc["tainted"] >= 5 + 7 + 6
        # The map is consistent: runs are disjoint, sorted, and sum to
        # the tainted-byte total.
        assert doc["ranges"] == len(doc["map"])
        assert sum(n for _, n in doc["map"]) == doc["tainted"]
        starts = [a for a, _ in doc["map"]]
        assert starts == sorted(starts)
        for (a, n), (b, _m) in zip(doc["map"], doc["map"][1:]):
            assert a + n < b                 # coalesced: no touching runs
        # stdout got the 6 copied "secret" bytes (the '\n' came from a
        # constant store); stderr got only constants.
        assert doc["sinks"][1]["writes"] == 1
        assert doc["sinks"][1]["bytes"] == 7
        assert doc["sinks"][1]["tainted_writes"] == 1
        assert doc["sinks"][1]["tainted_bytes"] == 6
        assert doc["sinks"][1]["first_pc"] != 0
        # first tainted byte's origin: the copy-loop store, an original
        # app text pc.
        assert doc["sinks"][1]["first_origin"] != 0
        assert doc["sinks"][2]["tainted_writes"] == 0
        assert doc["sinks"][2]["tainted_bytes"] == 0
        assert doc["sinks"][2]["first_pc"] == 0

    def test_range_source_cross_checks_shadow_model(self, taint_app):
        """Taint a never-written global range: the MLC report's map must
        equal the Python ShadowMemory model's prediction exactly."""
        from repro.tools.taint.shadow import ShadowMemory, parse_report
        pad = taint_app.symtab.get("pad").value
        tool, result = self.run_taint(taint_app,
                                      tool_args=(f"range:{pad + 8}:24",))
        doc = parse_report(report(result, tool))
        model = ShadowMemory()
        model.fill(pad + 8, 24)
        assert doc["tainted"] == model.tainted_bytes == 24
        assert doc["map"] == model.ranges() == [(pad + 8, 24)]
        assert doc["sinks"][1]["tainted_bytes"] == 0

    def test_no_sources_means_no_taint(self, taint_app):
        from repro.tools.taint.shadow import parse_report
        tool, result = self.run_taint(taint_app, tool_args=("none",))
        doc = parse_report(report(result, tool))
        assert doc["tainted"] == 0
        assert doc["map"] == []
        assert doc["sinks"][1]["writes"] == 1    # sink table still counts

    def test_env_sources_fallback(self, taint_app, monkeypatch):
        from repro.tools.taint.shadow import parse_report
        monkeypatch.setenv("WRL_TAINT_SOURCES", "none")
        tool, result = self.run_taint(taint_app, cache=None)
        doc = parse_report(report(result, tool))
        assert doc["sources"] == "argv=0 stdin=0 ranges=0"
        assert doc["tainted"] == 0

    def test_bad_source_args_rejected(self):
        from repro.tools.taint import TaintArgsError, parse_sources
        assert parse_sources(["argv", "range:0x100:8"]) == \
            (True, False, ((0x100, 8),))
        with pytest.raises(TaintArgsError):
            parse_sources(["argh"])
        with pytest.raises(TaintArgsError):
            parse_sources(["range:10"])
        with pytest.raises(TaintArgsError):
            parse_sources(["range:x:8"])
        with pytest.raises(TaintArgsError):
            parse_sources(["range:8:0"])


class TestUnalign:
    def test_aligned_app_is_clean(self, app, baseline):
        tool, _res, result = run_tool(app, "unalign")
        text = report(result, tool)
        checked = int(text.split("checked: ")[1].split("\n")[0])
        unaligned = int(text.split("unaligned: ")[1].split("\n")[0])
        assert checked > 100
        assert unaligned == 0                    # MLC aligns everything

    def test_detects_unaligned(self):
        app = build_executable([r"""
        char raw[64];
        int main() {
            long *p = (long *)(raw + 3);     // deliberately misaligned
            *p = 42;
            printf("%d\n", (int)*p);
            return 0;
        }
        """])
        tool, _res, result = run_tool(app, "unalign")
        text = report(result, tool)
        unaligned = int(text.split("unaligned: ")[1].split("\n")[0])
        assert unaligned >= 2                    # the store and the load
        assert "at 0x" in text
