"""Thin-client tests: wrl-run/wrl-eval driving a live daemon must
produce the same artifacts, reports, and exit codes as their local
cold-process paths."""

import json
import os

import pytest

from repro.eval import parallel
from repro.eval.parallel import (TaskSpec, default_jobs, run_matrix,
                                 run_matrix_via_server)
from repro.machine import cli as machine_cli
from repro.serve import DaemonThread
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve-clients")
    with DaemonThread(socket_path=tmp / "serve.sock", jobs=2,
                      cache_root=tmp / "cache") as dt:
        yield dt


@pytest.fixture(scope="module")
def exe_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("exe") / "fib.wof"
    path.write_bytes(build_workload("fib").to_bytes())
    return path


def test_default_jobs_is_affinity_aware():
    jobs = default_jobs()
    assert isinstance(jobs, int) and jobs >= 1
    if hasattr(os, "sched_getaffinity"):
        # The cgroup/affinity-aware count, not the raw host CPU count.
        assert jobs == len(os.sched_getaffinity(0))


def test_wrl_run_server_byte_identical(daemon, exe_path, capfdbinary):
    local_status = machine_cli.main([str(exe_path), "12", "--stats"])
    local = capfdbinary.readouterr()
    served_status = machine_cli.main(
        ["--server", str(daemon.socket_path), str(exe_path), "12",
         "--stats"])
    served = capfdbinary.readouterr()
    assert served_status == local_status
    assert served.out == local.out
    # stderr carries the deterministic [cycles= insts=] stats line.
    # The [jit ...] counters are host observability, not artifacts: a
    # warm daemon worker reports code-cache hits where a cold process
    # reports compiles, so that one line is exempt from byte-identity.
    def arch_lines(err: bytes) -> list[bytes]:
        return [line for line in err.splitlines()
                if not line.startswith(b"[jit ")]

    assert arch_lines(served.err) == arch_lines(local.err)
    assert any(line.startswith(b"[jit ") for line in
               served.err.splitlines())


def test_wrl_run_server_timeout_exit_code(daemon, exe_path,
                                          capfdbinary):
    local_status = machine_cli.main(
        [str(exe_path), "15", "--max-insts", "1000"])
    local = capfdbinary.readouterr()
    served_status = machine_cli.main(
        ["--server", str(daemon.socket_path), str(exe_path), "15",
         "--max-insts", "1000"])
    served = capfdbinary.readouterr()
    assert local_status == served_status == 124
    assert served.err == local.err      # same "wrl-run: ..." message


def test_wrl_run_server_rejects_local_only_flags(daemon, exe_path):
    with pytest.raises(SystemExit):
        machine_cli.main(["--server", str(daemon.socket_path),
                          "--profile", "/tmp/p.json", str(exe_path)])


def test_run_matrix_via_server_matches_local(daemon):
    specs = [
        TaskSpec(tool="prof", workload="fib", wl_args=("10",)),
        TaskSpec(tool="branch", workload="fib", wl_args=("10",),
                 opt="O2"),
    ]
    local = run_matrix(specs, jobs=0, cache_spec=False)
    served = run_matrix_via_server(specs, daemon.socket_path,
                                   tenant="matrix", jobs=2)
    assert len(local) == len(served)
    for ref, got in zip(local, served):
        assert got.identity() == ref.identity()
        assert got.attempts == ref.attempts
        assert got.quarantined == ref.quarantined


def test_wrl_eval_cli_via_server(daemon, tmp_path, capsys):
    out = tmp_path / "matrix.json"
    status = parallel.main(
        ["--server", str(daemon.socket_path), "--tenant", "cli",
         "--tools", "prof", "--workloads", "fib", "--opts", "O1",
         "--jobs", "2", "--out", str(out)])
    text = capsys.readouterr().out
    assert status == 0
    assert "via server" in text
    report = json.loads(out.read_text())
    parallel.validate_matrix_report(report)
    assert report["config"]["server"] == str(daemon.socket_path)
    assert report["config"]["tenant"] == "cli"
    assert report["summary"]["ok"] == report["summary"]["total"] == 1


def test_server_error_becomes_error_record(tmp_path):
    # No daemon at this socket: records carry structured serve errors
    # instead of raising, mirroring the local never-raise contract.
    specs = [TaskSpec(tool="prof", workload="fib", wl_args=("10",))]
    records = run_matrix_via_server(specs, tmp_path / "nope.sock",
                                    jobs=1)
    assert records[0].status == "error"
    assert records[0].error.startswith("serve:")
    assert records[0].quarantined is True
