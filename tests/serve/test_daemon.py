"""End-to-end daemon tests over a live in-process ``DaemonThread``:
byte-identity with the cold path, dedup coalescing (N identical
requests, one execution), protocol edge cases (oversized requests,
overload shedding, client disconnect mid-stream), stale-socket
recovery, and timeout/quarantine parity with the serial runner."""

import socket
import threading
import time

import pytest

from repro.eval.parallel import TaskResult, TaskSpec, run_with_retries
from repro.eval.runner import run_uninstrumented
from repro.serve import DaemonThread, ServeClient, ServeError
from repro.serve.protocol import encode_frame
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def exe() -> bytes:
    return build_workload("fib").to_bytes()


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve")
    with DaemonThread(socket_path=tmp / "serve.sock", jobs=2,
                      batch_window=0.05,
                      cache_root=tmp / "cache") as dt:
        yield dt


@pytest.fixture(scope="module")
def client(daemon) -> ServeClient:
    return ServeClient(daemon.socket_path, timeout=300.0)


def test_ping_and_stats_ops(client):
    assert client.ping()["type"] == "pong"
    stats = client.stats()
    for key in ("uptime_s", "jobs", "queue_depth", "dedup_hits",
                "overloaded", "executed", "batches", "latency_ms",
                "tenants"):
        assert key in stats


def test_run_byte_identity_with_cold_path(client, exe):
    from repro.objfile.module import Module
    ref = run_uninstrumented(Module.from_bytes(exe), args=("12",),
                             max_insts=500_000_000)
    heartbeats = []
    reply = client.run_exe(exe, args=("12",),
                           on_heartbeat=heartbeats.append)
    assert not reply.timeout
    assert reply.status == ref.status
    assert reply.stdout == ref.stdout
    assert reply.stderr == ref.stderr
    assert reply.files == ref.files
    assert reply.cycles == ref.cycles
    assert reply.insts == ref.inst_count
    phases = [h["args"]["phase"] for h in heartbeats]
    assert "queued" in phases and "dispatch" in phases


def test_eval_record_matches_serial_runner(client):
    spec = TaskSpec(tool="prof", workload="fib", wl_args=("10",))
    ref = run_with_retries(spec, False, True, 1)
    record = client.eval_task(spec, tenant="parity")
    record.pop("trace", None)
    served = TaskResult(**record)
    assert served.identity() == ref.identity()
    assert served.attempts == ref.attempts == 1
    assert served.quarantined == ref.quarantined is False


def test_timeout_parity_with_serial_runner(client):
    """Satellite (f): a task timing out under the daemon produces the
    same record — status, error text, attempts, quarantine — as under
    the serial wrl-eval path (timeouts are deterministic: one attempt,
    quarantined, never retried)."""
    spec = TaskSpec(tool="prof", workload="fib", wl_args=("15",),
                    base_max_insts=1000)
    ref = run_with_retries(spec, False, True, 1)
    assert ref.status == "timeout"          # the premise of the test
    record = client.eval_task(spec, tenant="parity", retries=1)
    record.pop("trace", None)
    served = TaskResult(**record)
    assert served.identity() == ref.identity()
    assert served.status == "timeout"
    assert served.error == ref.error
    assert served.attempts == ref.attempts == 1
    assert served.quarantined is True


def test_dedup_coalesces_concurrent_identical_requests(client, exe):
    before = client.stats()
    n = 6
    replies, errors = [], []

    def one():
        try:
            replies.append(client.run_exe(exe, args=("20",)))
        except Exception as error:            # noqa: BLE001
            errors.append(error)

    threads = [threading.Thread(target=one) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(replies) == n
    assert all(r.stdout == replies[0].stdout
               and r.cycles == replies[0].cycles for r in replies)
    after = client.stats()
    # Exactly one execution for the burst; the rest were dedup hits.
    assert after["executed"] - before["executed"] == 1
    assert after["dedup_hits"] - before["dedup_hits"] == n - 1


def test_tenant_quota_tracked_per_namespace(client, daemon):
    spec = TaskSpec(tool="branch", workload="fib", wl_args=("10",))
    client.eval_task(spec, tenant="quota-a")
    stats = client.stats()
    assert "quota-a" in stats["tenants"]
    usage = stats["tenants"]["quota-a"]
    assert usage["blobs"] >= 1
    assert usage["bytes"] > 0


def test_oversized_request_gets_structured_error(tmp_path):
    with DaemonThread(socket_path=tmp_path / "s.sock", jobs=1,
                      cache_root=tmp_path / "cache",
                      limit=8192) as dt:
        client = ServeClient(dt.socket_path, timeout=60.0)
        with pytest.raises(ServeError) as exc:
            client.run_exe(b"\x00" * 32768)   # ~44KB line > 8KB limit
        assert exc.value.kind == "oversized"
        # The daemon survives and keeps serving.
        assert client.ping()["type"] == "pong"


def test_overload_sheds_with_structured_response(tmp_path, exe):
    """Admission control: past max_queue the daemon answers
    ``overloaded`` immediately instead of queueing."""
    with DaemonThread(socket_path=tmp_path / "s.sock", jobs=1,
                      batch_window=0.5, max_queue=1,
                      cache_root=tmp_path / "cache") as dt:
        client = ServeClient(dt.socket_path, timeout=60.0)
        results = {}

        def fire(arg):
            try:
                results[arg] = client.run_exe(exe, args=(arg,))
            except ServeError as error:
                results[arg] = error

        # First request occupies the only queue slot for >= the batch
        # window; the distinct followers must be shed.
        t1 = threading.Thread(target=fire, args=("18",))
        t1.start()
        time.sleep(0.15)
        fire("19")
        fire("20")
        t1.join()
        kinds = [r.kind for r in results.values()
                 if isinstance(r, ServeError)]
        assert kinds.count("overloaded") == 2
        assert not isinstance(results["18"], ServeError)
        assert dt.daemon.stats.overloaded == 2


def test_disconnect_cancels_only_own_subscription(tmp_path, exe):
    """A client hanging up mid-stream must not take down deduped
    siblings waiting on the same work."""
    with DaemonThread(socket_path=tmp_path / "s.sock", jobs=1,
                      batch_window=0.4,
                      cache_root=tmp_path / "cache") as dt:
        client = ServeClient(dt.socket_path, timeout=60.0)
        sibling = {}

        def wait_for_result():
            sibling["reply"] = client.run_exe(exe, args=("21",))

        # First subscriber: a raw socket we will slam shut mid-queue.
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.connect(str(dt.socket_path))
        import base64
        # Same parameters as ServeClient.run_exe's defaults, so both
        # subscribers land on the same dedup key.
        raw.sendall(encode_frame({"op": "run",
                                  "exe": base64.b64encode(exe).decode(),
                                  "args": ["21"],
                                  "max_insts": 500_000_000}))
        time.sleep(0.1)            # inside the 400ms batch window
        t = threading.Thread(target=wait_for_result)
        t.start()
        time.sleep(0.1)            # sibling subscribed to same entry
        raw.close()                # first client gone
        t.join(timeout=60.0)
        assert not t.is_alive()
        assert sibling["reply"].stdout   # sibling still got the result
        # Exactly one subscription was cancelled, one executed.
        stats = ServeClient(dt.socket_path).stats()
        assert stats["cancelled"] == 1
        assert stats["executed"] == 1
        assert stats["dedup_hits"] == 1


def test_stale_socket_is_reclaimed_and_no_socket_left(tmp_path):
    sock = tmp_path / "s.sock"
    sock.write_bytes(b"")          # stale leftover, nobody listening
    with DaemonThread(socket_path=sock, jobs=1,
                      cache_root=tmp_path / "cache") as dt:
        assert ServeClient(sock, timeout=30.0).ping()["type"] == "pong"
    deadline = time.monotonic() + 10.0
    while sock.exists() and time.monotonic() < deadline:
        time.sleep(0.02)
    assert not sock.exists()       # restart leaves no stale socket
    # ... so a fresh daemon can bind the same path immediately.
    with DaemonThread(socket_path=sock, jobs=1,
                      cache_root=tmp_path / "cache"):
        assert ServeClient(sock, timeout=30.0).ping()["type"] == "pong"


def test_second_daemon_refuses_live_socket(tmp_path):
    sock = tmp_path / "s.sock"
    with DaemonThread(socket_path=sock, jobs=1,
                      cache_root=tmp_path / "cache"):
        with pytest.raises(RuntimeError):
            DaemonThread(socket_path=sock, jobs=1,
                         cache_root=tmp_path / "cache").start()


def test_unknown_op_and_bad_requests(daemon):
    def ask(request):
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.settimeout(30.0)
        raw.connect(str(daemon.socket_path))
        raw.sendall(request)
        with raw.makefile("rb") as stream:
            import json
            return json.loads(stream.readline())

    frame = ask(encode_frame({"op": "frobnicate"}))
    assert frame["error"]["kind"] == "unknown-op"
    frame = ask(b"this is not json\n")
    assert frame["error"]["kind"] == "bad-request"
    frame = ask(encode_frame({"op": "eval", "spec": {"tool": "nope",
                                                     "workload": "fib"}}))
    assert frame["error"]["kind"] == "bad-request"
    frame = ask(encode_frame({"op": "run", "exe": "AAAA",
                              "tenant": "bad/tenant"}))
    assert frame["error"]["kind"] == "bad-request"


def test_shutdown_op_stops_daemon(tmp_path):
    dt = DaemonThread(socket_path=tmp_path / "s.sock", jobs=1,
                      cache_root=tmp_path / "cache").start()
    client = ServeClient(dt.socket_path, timeout=30.0)
    assert client.shutdown()["type"] == "ok"
    dt._thread.join(timeout=30.0)
    assert not dt._thread.is_alive()
    assert not dt.socket_path.exists()
