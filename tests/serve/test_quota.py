"""Per-tenant cache namespace and quota tests: a tenant over quota
evicts only its own blobs, and byte quotas bound the store's footprint
independently of the entry cap."""

from repro.eval.cache import ArtifactCache
from repro.serve.quota import TenantCaches

#: Blobs land on disk as sha256-digest + payload; byte quotas meter the
#: on-disk size, so every payload costs this much extra.
_OVERHEAD = 32


def _fill(cache: ArtifactCache, n: int, size: int = 16,
          prefix: str = "k") -> list[str]:
    keys = []
    for i in range(n):
        key = f"{prefix}{i:04d}"
        cache.put(key, bytes([i % 256]) * size)
        keys.append(key)
    return keys


def test_tenant_namespaces_are_disjoint(tmp_path):
    tc = TenantCaches(tmp_path, cap=4)
    a, b = tc.cache("alice"), tc.cache("bob")
    a.put("shared-key", b"alice data")
    b.put("shared-key", b"bob data")
    assert a.get("shared-key") == b"alice data"
    assert b.get("shared-key") == b"bob data"
    assert a.root != b.root
    assert str(tc.root) in str(a.root)


def test_quota_evicts_only_own_blobs(tmp_path):
    tc = TenantCaches(tmp_path, cap=4)
    alice, bob = tc.cache("alice"), tc.cache("bob")
    bob_keys = _fill(bob, 3, prefix="b")
    # Alice blows through her cap several times over.
    _fill(alice, 20, prefix="a")
    assert len(alice) <= 4
    # Bob's namespace is untouched: every blob still readable.
    for key in bob_keys:
        assert bob.get(key) is not None
    assert len(bob) == 3


def test_byte_quota_evicts_lru_first(tmp_path):
    blob = 40 + _OVERHEAD                 # 72 bytes on disk each
    cache = ArtifactCache(tmp_path / "c", cap=1000,
                          max_bytes=2 * blob + 6)
    cache.put("old", b"x" * 40)
    cache.put("mid", b"y" * 40)
    cache.get("old")              # refresh: "mid" is now LRU
    cache.put("new", b"z" * 40)   # 3 blobs > quota: must evict
    assert cache.total_bytes() <= 2 * blob + 6
    assert cache.get("mid") is None
    assert cache.get("old") is not None
    assert cache.get("new") is not None


def test_byte_quota_and_cap_both_enforced(tmp_path):
    cache = ArtifactCache(tmp_path / "c", cap=3, max_bytes=10_000)
    _fill(cache, 10, size=8)
    assert len(cache) <= 3
    quota = 3 * (16 + _OVERHEAD)
    cache2 = ArtifactCache(tmp_path / "c2", cap=1000, max_bytes=quota)
    _fill(cache2, 10, size=16)
    assert cache2.total_bytes() <= quota
    assert len(cache2) == 3


def test_overwrite_keeps_byte_accounting_sane(tmp_path):
    cache = ArtifactCache(tmp_path / "c", cap=10, max_bytes=10_000)
    cache.put("k", b"a" * 100)
    cache.put("k", b"b" * 300)    # overwrite with different size
    assert cache.total_bytes() == 300 + _OVERHEAD
    cache.put("k2", b"c" * 50)
    assert cache.total_bytes() == 350 + 2 * _OVERHEAD


def test_usage_reporting(tmp_path):
    tc = TenantCaches(tmp_path, cap=8, max_bytes=4096)
    _fill(tc.cache("alice"), 3, size=32)
    usage = tc.usage("alice")
    assert usage["blobs"] == 3
    assert usage["bytes"] == 3 * (32 + _OVERHEAD)
    assert usage["cap"] == 8 and usage["max_bytes"] == 4096
    # usage_all sees tenants from disk even with fresh bookkeeping.
    fresh = TenantCaches(tmp_path, cap=8)
    assert "alice" in fresh.usage_all()


def test_cache_spec_is_picklable_tuple(tmp_path):
    import pickle

    from repro.eval.parallel import _resolve_worker_cache
    tc = TenantCaches(tmp_path, cap=8, max_bytes=4096)
    spec = tc.cache_spec("alice")
    assert spec == pickle.loads(pickle.dumps(spec))
    cache = _resolve_worker_cache(spec)
    cache.put("k", b"v")
    assert tc.cache("alice").get("k") == b"v"
