"""End-to-end telemetry tests for the serving stack: one merged trace
per request across client, daemon, and worker processes; dedup
follower linkage; the ``metrics`` op's Prometheus exposition; the SLO
watchdog; idle-daemon stats; and v1/v2 terminal-frame byte identity."""

import io
import os
import socket as socketlib
import threading

import pytest

from repro.eval.parallel import TaskSpec
from repro.obs import TRACE, mint_trace_id
from repro.obs.metrics import parse_text
from repro.serve import DaemonThread, ServeClient
from repro.serve.protocol import (TERMINAL_TYPES, decode_frame,
                                  encode_frame)
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def exe() -> bytes:
    return build_workload("fib").to_bytes()


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("telemetry")
    with DaemonThread(socket_path=tmp / "serve.sock", jobs=2,
                      batch_window=0.05,
                      cache_root=tmp / "cache") as dt:
        yield dt


@pytest.fixture(scope="module")
def client(daemon) -> ServeClient:
    return ServeClient(daemon.socket_path, timeout=300.0)


# ---- the acceptance criterion: one merged trace per request ----------------


def test_one_request_produces_one_merged_trace(tmp_path):
    """A single served eval produces client, daemon, and worker spans
    sharing one trace id, merged into one trace, and renderable as one
    timeline by ``wrl-trace summary --trace-id``."""
    trace_id = mint_trace_id()
    TRACE.reset()
    TRACE.enable()
    try:
        with DaemonThread(socket_path=tmp_path / "serve.sock", jobs=1,
                          batch_window=0.02,
                          cache_root=tmp_path / "cache") as dt:
            client = ServeClient(dt.socket_path, timeout=300.0)
            spec = TaskSpec(tool="prof", workload="fib",
                            wl_args=("10",))
            record = client.eval_task(spec, tenant="traced",
                                      trace_id=trace_id)
            assert record["status"] == "ok"
            # The wire record never carries the worker snapshot — it is
            # merged daemon-side, keeping terminal frames v1-identical.
            assert record["trace"] is None
        snap = TRACE.snapshot()
    finally:
        TRACE.disable()
        TRACE.reset()

    tagged = [ev for ev in snap["events"]
              if ev.get("args", {}).get("trace_id") == trace_id]
    names = {ev["name"] for ev in tagged}
    # Client-side span, daemon queue/execute/request spans, and the
    # worker's compile/instrument spans all share the one id.
    assert "serve.client" in names
    assert {"serve.queue", "serve.execute",
            "serve.request"} <= names
    # Worker-side instrument + interpret spans carry the id too.
    # (compile.analysis is absent when the fork inherited a memoized
    # analysis object, so assert on the phases that always run.)
    assert "apply_tool" in names
    assert any(name.startswith("interpret.") for name in names)
    # ... and they genuinely span processes: the worker pid differs.
    pids = {ev["pid"] for ev in tagged}
    assert os.getpid() in pids and len(pids) >= 2

    # wrl-trace summary --trace-id renders the same timeline.
    from repro.obs.cli import timeline
    out = io.StringIO()
    shown = timeline(snap, trace_id, out=out)
    assert shown == len(tagged) >= 5
    text = out.getvalue()
    assert f"trace {trace_id}" in text
    assert "serve/serve.client" in text
    assert "process(es)" in text


def test_deduped_follower_is_linked_to_executing_request(client, exe):
    """Concurrent identical requests coalesce; each follower's
    heartbeat stream carries its own trace id plus ``linked_to`` naming
    the executing entry's id."""
    n = 5
    ids = [f"dedup-trace-{i}" for i in range(n)]
    beats: dict[str, list] = {tid: [] for tid in ids}
    errors: list = []
    barrier = threading.Barrier(n)

    def worker(tid: str) -> None:
        try:
            barrier.wait()
            client.run_exe(exe, args=("14",), trace_id=tid,
                           on_heartbeat=beats[tid].append)
        except Exception as exc:              # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(tid,))
               for tid in ids]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors

    dedup_beats = [hb for hbs in beats.values() for hb in hbs
                   if hb["args"].get("phase") == "deduped"]
    assert dedup_beats, "no request was coalesced"
    for hb in dedup_beats:
        args = hb["args"]
        # Follower keeps its id; linked_to names a *different* minted
        # id — the executing entry's.
        assert args["trace_id"] in ids
        assert args["linked_to"] in ids
        assert args["linked_to"] != args["trace_id"]


# ---- metrics op ------------------------------------------------------------


def test_metrics_op_emits_parseable_prometheus_text(client, exe):
    spec = TaskSpec(tool="branch", workload="fib", wl_args=("10",))
    client.eval_task(spec, tenant="team-a")
    client.run_exe(exe, args=("12",), tenant="team-a")
    reply = client.metrics()
    assert reply["enabled"] is True

    families = parse_text(reply["text"])
    for required in ("wrl_requests_total", "wrl_request_latency_ms",
                     "wrl_queue_depth", "wrl_dedup_hits_total",
                     "wrl_executed_total", "wrl_batches_total",
                     "wrl_tenant_cache_blobs", "wrl_tenant_cache_bytes"):
        assert required in families, f"missing {required}"
    assert families["wrl_request_latency_ms"]["type"] == "histogram"

    # Per-op request counts appear as labeled samples.
    ops = {s[1].get("op") for s
           in families["wrl_requests_total"]["samples"]}
    assert {"eval", "run", "metrics"} <= ops
    # Tenant cache gauges are refreshed at exposition time.
    tenants = {s[1].get("tenant") for s
               in families["wrl_tenant_cache_bytes"]["samples"]}
    assert "team-a" in tenants

    # The JSON half carries the same families plus rolling rates.
    doc = reply["metrics"]
    entry = doc["metrics"]["wrl_requests_total"]
    assert set(entry["rates"]) == {"1s", "10s", "60s"}
    assert entry["rates"]["60s"] > 0


def test_metrics_disabled_daemon_still_serves(tmp_path, exe):
    with DaemonThread(socket_path=tmp_path / "serve.sock", jobs=1,
                      cache_root=tmp_path / "cache",
                      metrics=False) as dt:
        client = ServeClient(dt.socket_path, timeout=300.0)
        reply_run = client.run_exe(exe, args=("10",))
        assert not reply_run.timeout
        reply = client.metrics()
        assert reply["enabled"] is False
        assert reply["text"] == "# wrl metrics disabled\n"
        stats = client.stats()
        assert stats["metrics_enabled"] is False
        # The stats-side latency summaries don't depend on the registry.
        assert stats["latency_ms"]["count"] == 1


# ---- SLO watchdog ----------------------------------------------------------


def test_slo_watchdog_flags_p99_breach(tmp_path, exe):
    # A sub-microsecond p99 target: every completed request breaches.
    with DaemonThread(socket_path=tmp_path / "serve.sock", jobs=1,
                      cache_root=tmp_path / "cache",
                      slo_p99_ms=0.0001) as dt:
        client = ServeClient(dt.socket_path, timeout=300.0)
        client.run_exe(exe, args=("10",))
        stats = client.stats()
        reply = client.metrics()

    slo = stats["slo"]
    assert slo["configured"] is True
    assert slo["p99_ms"] == 0.0001 and slo["window_s"] == 60
    assert slo["breaches"].get("p99_ms", 0) >= 1
    last = slo["last_breach"]
    assert last["metric"] == "p99_ms"
    assert last["value"] > last["threshold"]
    assert slo["current"]["samples"] >= 1
    # Configuring an SLO force-enables the registry, and breaches are
    # counted there too.
    assert stats["metrics_enabled"] is True
    families = parse_text(reply["text"])
    breach_samples = families["wrl_slo_breaches_total"]["samples"]
    assert any(s[1].get("metric") == "p99_ms" and s[2] >= 1
               for s in breach_samples)


def test_unconfigured_slo_reports_inactive(client):
    slo = client.stats()["slo"]
    assert slo["configured"] is False
    assert slo["breaches"] == {} and slo["last_breach"] is None


# ---- satellite: idle stats + per-op latency breakdown ----------------------


def test_idle_daemon_stats_are_all_zero(tmp_path):
    with DaemonThread(socket_path=tmp_path / "serve.sock", jobs=1,
                      cache_root=tmp_path / "cache") as dt:
        client = ServeClient(dt.socket_path, timeout=60.0)
        stats = client.stats()
        reply = client.metrics()

    assert stats["executed"] == stats["errors"] == 0
    assert stats["dedup_hits"] == 0 and stats["dedup_rate"] == 0.0
    zero = {"count": 0, "mean": 0.0, "max": 0, "p50": 0, "p90": 0,
            "p99": 0}
    assert stats["latency_ms"] == zero
    assert stats["latency_ms_by_op"] == {"eval": zero, "run": zero}
    assert stats["batch_size"]["count"] == 0
    assert stats["slo"]["current"] == {"p99_ms": 0.0,
                                       "error_rate": 0.0, "samples": 0}
    # The exposition is parseable even before any traffic.
    parse_text(reply["text"])


def test_stats_latency_has_mean_max_and_per_op_split(client, exe):
    spec = TaskSpec(tool="prof", workload="fib", wl_args=("11",))
    client.eval_task(spec, tenant="split")
    client.run_exe(exe, args=("11",), tenant="split")
    stats = client.stats()

    lat = stats["latency_ms"]
    for key in ("count", "mean", "max", "p50", "p90", "p99"):
        assert key in lat
    assert lat["count"] >= 2
    assert 0 < lat["mean"] <= lat["max"]
    assert lat["p50"] <= lat["p99"] <= lat["max"]

    by_op = stats["latency_ms_by_op"]
    assert set(by_op) == {"eval", "run"}
    assert by_op["eval"]["count"] >= 1 and by_op["run"]["count"] >= 1
    assert lat["count"] >= by_op["eval"]["count"] + by_op["run"]["count"]


# ---- satellite: v1 clients round-trip byte-identically ---------------------


def _raw_terminal(sock_path, request: dict) -> bytes:
    sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    sock.settimeout(300.0)
    try:
        sock.connect(str(sock_path))
        sock.sendall(encode_frame(request))
        with sock.makefile("rb") as stream:
            for line in stream:
                if decode_frame(line).get("type") in TERMINAL_TYPES:
                    return line
    finally:
        sock.close()
    raise AssertionError("no terminal frame")


def test_v1_client_gets_byte_identical_terminal_frame(daemon, exe):
    """A v1 request (no ``trace_id``) and a v2 request for the same
    work receive byte-identical terminal frames: trace context may ride
    on heartbeats and in the trace, never in results."""
    import base64
    # jit=False: the JIT's code-cache counters are warm-worker history
    # (hits vs compiles), the one legitimately non-repeatable field.
    base = {"op": "run", "id": "v1-compat",
            "exe": base64.b64encode(exe).decode(),
            "args": ["13"], "max_insts": 500_000_000,
            "fuse": True, "jit": False}
    v1 = _raw_terminal(daemon.socket_path, dict(base))
    v2 = _raw_terminal(daemon.socket_path,
                       dict(base, trace_id="v2-trace-id"))
    assert v1 == v2
    frame = decode_frame(v1)
    assert frame["type"] == "result"
    assert "trace_id" not in frame and "trace" not in frame["run"]
