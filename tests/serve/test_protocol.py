"""Unit tests for the wrl-serve wire protocol: framing, validation,
dedup-key identity, and the heartbeat-frame format contract."""

import base64
import json

import pytest

from repro.eval.parallel import TaskSpec
from repro.serve import protocol
from repro.serve.protocol import (ProtocolError, decode_frame,
                                  encode_frame, error_frame,
                                  eval_dedup_key, heartbeat_frame,
                                  run_dedup_key, spec_from_wire,
                                  spec_to_wire, validate_tenant,
                                  validate_trace_id)


def test_frame_roundtrip():
    frame = {"op": "ping", "id": "abc"}
    line = encode_frame(frame)
    assert line.endswith(b"\n") and b"\n" not in line[:-1]
    assert decode_frame(line) == frame


def test_decode_rejects_garbage():
    with pytest.raises(ProtocolError) as exc:
        decode_frame(b"not json\n")
    assert exc.value.kind == "bad-request"
    with pytest.raises(ProtocolError):
        decode_frame(b"[1, 2, 3]\n")          # not an object


def test_error_frame_is_structured():
    frame = error_frame("id1", "overloaded", "queue full")
    assert frame["type"] == "error"
    assert frame["error"] == {"kind": "overloaded",
                              "message": "queue full"}


def test_heartbeat_frame_matches_jsonl_row_shape():
    """Daemon heartbeats must parse as WRL_HEARTBEAT JSONL rows."""
    frame = heartbeat_frame("prof:fib:O1:linked", "queued",
                            queue_depth=3)
    # The obs JSONL row contract: type/name/cat/ts_ns/dur_ns/pid/args.
    for key in ("type", "name", "cat", "ts_ns", "dur_ns", "pid",
                "args"):
        assert key in frame
    assert frame["type"] == "span" and frame["name"] == "heartbeat"
    row = json.loads(encode_frame(frame))
    assert row["args"]["task"] == "prof:fib:O1:linked"
    assert row["args"]["phase"] == "queued"


def test_spec_wire_roundtrip():
    spec = TaskSpec(tool="prof", workload="fib", opt="O2",
                    wl_args=("10",), stdin=b"\x00\xff",
                    base_max_insts=123, max_insts=456, reps=2,
                    warmup=True)
    assert spec_from_wire(spec_to_wire(spec)) == spec


@pytest.mark.parametrize("wire, fragment", [
    ("not a dict", "spec must be an object"),
    ({"tool": "nope", "workload": "fib"}, "unknown tool"),
    ({"tool": "prof", "workload": "nope"}, "unknown workload"),
    ({"tool": "prof", "workload": "fib", "opt": "O9"}, "unknown opt"),
    ({"tool": "prof", "workload": "fib", "bogus": 1},
     "unknown spec fields"),
    ({"tool": "prof", "workload": "fib", "stdin": "!!"}, "base64"),
    ({"tool": "prof", "workload": "fib", "max_insts": 0},
     "max_insts"),
    ({"tool": "prof", "workload": "fib", "max_insts": True},
     "max_insts"),
    ({"tool": "prof", "workload": "fib", "wl_args": [1]},
     "list of strings"),
])
def test_spec_from_wire_rejects(wire, fragment):
    with pytest.raises(ProtocolError) as exc:
        spec_from_wire(wire)
    assert exc.value.kind == "bad-request"
    assert fragment in str(exc.value)


def test_validate_tenant():
    assert validate_tenant(None) == "default"
    assert validate_tenant("team-a.prod_1") == "team-a.prod_1"
    for bad in ("", "a/b", "a b", "x" * 65, 42):
        with pytest.raises(ProtocolError):
            validate_tenant(bad)


def test_validate_trace_id_accepts_v1_absence_and_v2_ids():
    # v1 requests carry no trace_id: None passes through so the daemon
    # knows to mint a server-side id.
    assert validate_trace_id(None) is None
    # v2 ids: same alphabet as tenants.
    assert validate_trace_id("a3f0c1d2e4b59876") == "a3f0c1d2e4b59876"
    assert validate_trace_id("req-1.retry_2") == "req-1.retry_2"
    for bad in ("", "a b", "id/with/slash", "x" * 65, 42, ["id"]):
        with pytest.raises(ProtocolError) as exc:
            validate_trace_id(bad)
        assert exc.value.kind == "bad-request"


def test_schema_is_v2_and_ops_include_metrics():
    assert protocol.SERVE_SCHEMA.startswith("wrl-serve/v2/")
    assert protocol.SERVE_SCHEMA_V1.startswith("wrl-serve/v1/")
    assert "metrics" in protocol.OPS
    assert "metrics" in protocol.TERMINAL_TYPES


def test_eval_dedup_key_identity():
    spec = TaskSpec(tool="prof", workload="fib", wl_args=("10",))
    key = eval_dedup_key(spec, "default", True, 1)
    assert key == eval_dedup_key(spec, "default", True, 1)
    # Anything that can change the record changes the key.
    assert key != eval_dedup_key(spec, "other", True, 1)
    assert key != eval_dedup_key(spec, "default", False, 1)
    assert key != eval_dedup_key(spec, "default", True, 2)
    other = TaskSpec(tool="prof", workload="fib", wl_args=("11",))
    assert key != eval_dedup_key(other, "default", True, 1)


def test_run_dedup_key_uses_exe_hash():
    key = run_dedup_key(b"exe", ("a",), b"", 100, True, True, "t")
    assert key == run_dedup_key(b"exe", ("a",), b"", 100, True, True,
                                "t")
    assert key != run_dedup_key(b"exe2", ("a",), b"", 100, True, True,
                                "t")
    assert key != run_dedup_key(b"exe", ("b",), b"", 100, True, True,
                                "t")
    assert key != run_dedup_key(b"exe", ("a",), b"x", 100, True, True,
                                "t")
    assert key != run_dedup_key(b"exe", ("a",), b"", 101, True, True,
                                "t")
    assert key != run_dedup_key(b"exe", ("a",), b"", 100, True, True,
                                "u")


def test_stdin_hashed_not_embedded_in_eval_key():
    big = bytes(range(256)) * 64
    spec = TaskSpec(tool="prof", workload="fib", stdin=big)
    key = eval_dedup_key(spec, "default", True, 1)
    assert base64.b64encode(big).decode() not in key
    assert len(key) == 64                     # sha256 hex
