"""Workload suite tests: all 20 programs build, run, and are deterministic."""

import pytest

from repro.workloads import WORKLOAD_NAMES, build_workload, load_source, run_workload


def test_twenty_workloads():
    assert len(WORKLOAD_NAMES) == 20
    assert len(set(WORKLOAD_NAMES)) == 20


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        load_source("doom")


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_runs_clean(name):
    result = run_workload(name)
    assert result.status == 0, result.stderr
    assert result.stdout.startswith(name.encode()[:3]) or result.stdout
    assert result.inst_count > 10_000        # substantial work happened


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_deterministic(name):
    a = run_workload(name)
    b = run_workload(name)
    assert a.stdout == b.stdout
    assert a.cycles == b.cycles
    assert a.inst_count == b.inst_count


def test_scale_argument():
    small = run_workload("quick", args=("200",))
    big = run_workload("quick", args=("800",))
    assert small.status == big.status == 0
    assert small.inst_count < big.inst_count


def test_profiles_are_diverse():
    """The suite should cover memory-, branch-, and call-heavy shapes."""
    from repro.om import build_ir

    mem_frac = {}
    for name in ("matrix", "bitops", "fib"):
        exe = build_workload(name)
        prog = build_ir(exe)
        total = mem = 0
        for proc in prog.procs:
            for ir in proc.instructions():
                total += 1
                if ir.inst.is_memory_ref():
                    mem += 1
        mem_frac[name] = mem / total
    # matrix is distinctly more memory-bound than bitops in its kernels;
    # the static fraction is a weak proxy, so just check spread exists.
    assert max(mem_frac.values()) - min(mem_frac.values()) > 0.0


def test_workload_cache_returns_fresh_modules():
    a = build_workload("sieve")
    b = build_workload("sieve")
    assert a is not b
    assert a.to_bytes() == b.to_bytes()
