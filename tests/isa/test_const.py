"""Property tests for constant materialization (isa.const)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa import const, opcodes, registers
from repro.isa.instruction import Instruction

MASK = (1 << 64) - 1


def evaluate(insts: list[Instruction], rd: int) -> int:
    """Interpret the lda/ldah/sll subset used by materialize."""
    regs = [0] * 32
    for inst in insts:
        if inst.op is opcodes.LDA:
            regs[inst.ra] = (regs[inst.rb] + inst.disp) & MASK
        elif inst.op is opcodes.LDAH:
            regs[inst.ra] = (regs[inst.rb] + (inst.disp << 16)) & MASK
        elif inst.op is opcodes.SLL:
            src2 = inst.lit if inst.is_lit else regs[inst.rb]
            regs[inst.rc] = (regs[inst.ra] << (src2 & 63)) & MASK
        else:
            raise AssertionError(f"unexpected op {inst.op.mnemonic}")
        regs[31] = 0
    return regs[rd]


@given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
def test_materialize_is_exact(value):
    insts = const.materialize(value, registers.T0)
    assert evaluate(insts, registers.T0) == value & MASK


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_materialize_accepts_raw_bit_patterns(value):
    insts = const.materialize(value, registers.T1)
    assert evaluate(insts, registers.T1) == value & MASK


def test_cost_ladder_matches_paper():
    """16-bit constants take 1 instruction, 32-bit take 2 (paper Sec. 4)."""
    assert const.cost(0) == 1
    assert const.cost(42) == 1
    assert const.cost(-42) == 1
    assert const.cost(0x7FFF) == 1
    assert const.cost(0x8000) == 2
    assert const.cost(0x12345678) == 2
    assert const.cost(0x1234_5678_9ABC) >= 3
    # Values just below 2**31 have no signed hi/lo split but must still work.
    assert const.cost(0x7FFF_FFFF) >= 3


def test_hi_lo_split_roundtrip():
    for value in (0, 1, -1, 0x7FFF, 0x8000, -0x8000,
                  -0x8000_0000, 0x1234_5678, 0x7FFF_7FFF):
        hi, lo = const.split_hi_lo(value)
        assert (hi << 16) + const.sext16(lo & 0xFFFF) == value


@given(hi=st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1),
       lo=st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1))
def test_hi_lo_split_property(hi, lo):
    """Every representable in-domain (hi, lo) combination round-trips."""
    from hypothesis import assume
    value = (hi << 16) + lo
    assume(-(1 << 31) <= value < (1 << 31))
    got_hi, got_lo = const.split_hi_lo(value)
    assert (got_hi << 16) + got_lo == value
    assert -(1 << 15) <= got_hi < (1 << 15)
    assert -(1 << 15) <= got_lo < (1 << 15)


def test_unsplittable_values_rejected():
    import pytest
    with pytest.raises(ValueError):
        const.split_hi_lo(0x7FFF_FFFF)
    with pytest.raises(ValueError):
        const.split_hi_lo(1 << 40)


def test_sext16():
    assert const.sext16(0x7FFF) == 0x7FFF
    assert const.sext16(0x8000) == -0x8000
    assert const.sext16(0xFFFF) == -1
    assert const.sext16(0x1_0005) == 5
