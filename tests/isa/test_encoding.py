"""Encode/decode round-trip tests for every WRL-64 instruction format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import encoding, opcodes
from repro.isa.encoding import EncodingError, decode, decode_stream, encode, encode_stream
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format

MEMORY_OPS = [o for o in opcodes.ALL_OPS if o.format is Format.MEMORY]
BRANCH_OPS = [o for o in opcodes.ALL_OPS if o.format is Format.BRANCH]
JUMP_OPS = [o for o in opcodes.ALL_OPS if o.format is Format.JUMP]
OPERATE_OPS = [o for o in opcodes.ALL_OPS if o.format is Format.OPERATE]

regs = st.integers(min_value=0, max_value=31)


@given(op=st.sampled_from(MEMORY_OPS), ra=regs, rb=regs,
       disp=st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1))
def test_memory_roundtrip(op, ra, rb, disp):
    inst = Instruction(op, ra=ra, rb=rb, disp=disp)
    back = decode(encode(inst))
    assert (back.op, back.ra, back.rb, back.disp) == (op, ra, rb, disp)


@given(op=st.sampled_from(BRANCH_OPS), ra=regs,
       disp=st.integers(min_value=-(1 << 20), max_value=(1 << 20) - 1))
def test_branch_roundtrip(op, ra, disp):
    inst = Instruction(op, ra=ra, disp=disp)
    back = decode(encode(inst))
    assert (back.op, back.ra, back.disp) == (op, ra, disp)


@given(op=st.sampled_from(JUMP_OPS), ra=regs, rb=regs)
def test_jump_roundtrip(op, ra, rb):
    back = decode(encode(Instruction(op, ra=ra, rb=rb)))
    assert (back.op, back.ra, back.rb) == (op, ra, rb)


@given(op=st.sampled_from(OPERATE_OPS), ra=regs, rb=regs, rc=regs)
def test_operate_reg_roundtrip(op, ra, rb, rc):
    back = decode(encode(Instruction(op, ra=ra, rb=rb, rc=rc)))
    assert (back.op, back.ra, back.rb, back.rc, back.is_lit) == \
        (op, ra, rb, rc, False)


@given(op=st.sampled_from(OPERATE_OPS), ra=regs,
       lit=st.integers(min_value=0, max_value=255), rc=regs)
def test_operate_lit_roundtrip(op, ra, lit, rc):
    back = decode(encode(Instruction(op, ra=ra, lit=lit, is_lit=True, rc=rc)))
    assert (back.op, back.ra, back.lit, back.rc, back.is_lit) == \
        (op, ra, lit, rc, True)


def test_system_roundtrip():
    back = decode(encode(Instruction(opcodes.SYS, imm=123)))
    assert back.op is opcodes.SYS and back.imm == 123
    assert decode(encode(Instruction(opcodes.HALT))).op is opcodes.HALT


def test_memory_disp_out_of_range_rejected():
    with pytest.raises(EncodingError):
        encode(Instruction(opcodes.LDQ, ra=1, rb=2, disp=1 << 15))
    with pytest.raises(EncodingError):
        encode(Instruction(opcodes.LDQ, ra=1, rb=2, disp=-(1 << 15) - 1))


def test_branch_disp_out_of_range_rejected():
    with pytest.raises(EncodingError):
        encode(Instruction(opcodes.BR, disp=1 << 20))


def test_literal_out_of_range_rejected():
    with pytest.raises(EncodingError):
        encode(Instruction(opcodes.ADDQ, ra=1, lit=256, is_lit=True, rc=2))


def test_illegal_opcode_rejected():
    # 0x3F is used (bgt); find an unused opcode number.
    used = set(opcodes.BY_OPCODE)
    free = next(n for n in range(64) if n not in used)
    with pytest.raises(EncodingError):
        decode(free << 26)


def test_stream_roundtrip():
    insts = [Instruction(opcodes.LDA, ra=1, rb=2, disp=-8),
             Instruction(opcodes.ADDQ, ra=1, rb=2, rc=3),
             Instruction(opcodes.RET, ra=31, rb=26)]
    blob = encode_stream(insts)
    assert len(blob) == 12
    back = decode_stream(blob)
    assert [b.op for b in back] == [i.op for i in insts]


def test_stream_rejects_ragged_length():
    with pytest.raises(EncodingError):
        decode_stream(b"\x00\x01\x02")


def test_branch_reach_helper():
    assert encoding.branch_reach_ok(0)
    assert encoding.branch_reach_ok((1 << 20) - 1)
    assert not encoding.branch_reach_ok(1 << 20)
    assert encoding.branch_reach_ok(-(1 << 20))
    assert not encoding.branch_reach_ok(-(1 << 20) - 1)
