"""Def/use sets and classification predicates of Instruction."""

from repro.isa import opcodes, registers as R
from repro.isa.instruction import Instruction, nop


def test_load_def_use():
    inst = Instruction(opcodes.LDQ, ra=R.T0, rb=R.SP, disp=8)
    assert inst.defs() == {R.T0}
    assert inst.uses() == {R.SP}
    assert inst.is_load() and inst.is_memory_ref() and not inst.is_store()


def test_store_def_use():
    inst = Instruction(opcodes.STQ, ra=R.T0, rb=R.SP, disp=8)
    assert inst.defs() == frozenset()
    assert inst.uses() == {R.T0, R.SP}
    assert inst.is_store() and inst.is_memory_ref()


def test_lda_def_use():
    inst = Instruction(opcodes.LDA, ra=R.A0, rb=R.ZERO, disp=5)
    assert inst.defs() == {R.A0}
    assert inst.uses() == frozenset()        # zero never appears


def test_operate_def_use():
    inst = Instruction(opcodes.ADDQ, ra=R.T0, rb=R.T1, rc=R.T2)
    assert inst.defs() == {R.T2}
    assert inst.uses() == {R.T0, R.T1}
    lit = Instruction(opcodes.ADDQ, ra=R.T0, lit=4, is_lit=True, rc=R.T2)
    assert lit.uses() == {R.T0}


def test_cmov_uses_destination():
    inst = Instruction(opcodes.CMOVEQ, ra=R.T0, rb=R.T1, rc=R.T2)
    assert R.T2 in inst.uses()
    assert inst.defs() == {R.T2}


def test_cond_branch_def_use():
    inst = Instruction(opcodes.BNE, ra=R.T3, disp=4)
    assert inst.is_cond_branch() and inst.ends_block()
    assert inst.uses() == {R.T3}
    assert inst.defs() == frozenset()        # link register is zero


def test_bsr_defines_link_register():
    inst = Instruction(opcodes.BSR, ra=R.RA, disp=100)
    assert inst.is_call() and inst.ends_block()
    assert inst.defs() == {R.RA}


def test_jsr_def_use():
    inst = Instruction(opcodes.JSR, ra=R.RA, rb=R.PV)
    assert inst.is_call()
    assert inst.defs() == {R.RA}
    assert inst.uses() == {R.PV}


def test_ret_def_use():
    inst = Instruction(opcodes.RET, ra=R.ZERO, rb=R.RA)
    assert inst.is_ret() and inst.ends_block()
    assert inst.uses() == {R.RA}
    assert inst.defs() == frozenset()


def test_syscall_conservative_sets():
    inst = Instruction(opcodes.SYS)
    assert inst.is_syscall() and inst.ends_block()
    assert R.V0 in inst.defs()
    assert {R.V0, R.A0, R.A5} <= inst.uses()


def test_writes_to_zero_are_discarded():
    inst = Instruction(opcodes.ADDQ, ra=R.T0, rb=R.T1, rc=R.ZERO)
    assert inst.defs() == frozenset()


def test_nop_has_no_effects():
    inst = nop()
    assert inst.defs() == frozenset()
    assert inst.uses() == frozenset()
    assert not inst.ends_block()


def test_zero_not_in_uses_even_as_source():
    inst = Instruction(opcodes.ADDQ, ra=R.ZERO, rb=R.ZERO, rc=R.T0)
    assert inst.uses() == frozenset()


def test_block_enders():
    assert Instruction(opcodes.BR).ends_block()
    assert Instruction(opcodes.JMP, ra=R.ZERO, rb=R.T0).ends_block()
    assert Instruction(opcodes.HALT).ends_block()
    assert not Instruction(opcodes.LDQ, ra=R.T0, rb=R.SP).ends_block()
    assert not Instruction(opcodes.SYS).is_control_transfer()
    assert Instruction(opcodes.BR).is_control_transfer()


def test_str_rendering():
    assert "ldq t0, 8(sp)" in str(Instruction(opcodes.LDQ, ra=R.T0, rb=R.SP,
                                              disp=8))
    assert "addq t0, #4, t1" in str(
        Instruction(opcodes.ADDQ, ra=R.T0, lit=4, is_lit=True, rc=R.T1))
