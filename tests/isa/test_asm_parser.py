"""Unit tests for the assembler's line/operand parsing layer."""

import pytest

from repro.isa.asm.parser import (AsmSyntaxError, parse_expr, parse_int,
                                  parse_line, parse_operand, strip_comment)


class TestParseInt:
    def test_bases(self):
        assert parse_int("42") == 42
        assert parse_int("0x2A") == 42
        assert parse_int("-8") == -8
        assert parse_int("0") == 0

    def test_char_literals(self):
        assert parse_int("'A'") == 65
        assert parse_int("'\\n'") == 10
        assert parse_int("'\\0'") == 0
        assert parse_int("'\\\\'") == 92

    def test_bad_literals(self):
        with pytest.raises(ValueError):
            parse_int("'ab'")
        with pytest.raises(ValueError):
            parse_int("'\\q'")
        with pytest.raises(ValueError):
            parse_int("pear")


class TestParseExpr:
    def test_plain_symbol(self):
        e = parse_expr("main")
        assert e.symbol == "main" and e.addend == 0 and e.modifier is None

    def test_symbol_plus_offset(self):
        e = parse_expr("table + 16")
        assert e.symbol == "table" and e.addend == 16
        e = parse_expr("table-8")
        assert e.addend == -8

    def test_modifiers(self):
        for mod in ("hi", "lo", "got"):
            e = parse_expr(f"%{mod}(sym)")
            assert e.modifier == mod and e.symbol == "sym"
        e = parse_expr("%got(buf + 8)")
        assert e.symbol == "buf" and e.addend == 8

    def test_const(self):
        e = parse_expr("100")
        assert e.is_const and e.addend == 100

    def test_dollar_names(self):
        e = parse_expr("$str12")
        assert e.symbol == "$str12"


class TestParseOperand:
    def test_register(self):
        op = parse_operand("t3")
        assert op.kind == "reg" and op.reg == 4

    def test_memory(self):
        op = parse_operand("-16(sp)")
        assert op.kind == "mem" and op.expr.addend == -16 and op.base == 30

    def test_bare_paren_reg(self):
        op = parse_operand("(ra)")
        assert op.kind == "mem" and op.base == 26 and op.expr.addend == 0

    def test_got_memory(self):
        op = parse_operand("%got(msg)(gp)")
        assert op.kind == "mem" and op.base == 29
        assert op.expr.modifier == "got" and op.expr.symbol == "msg"

    def test_symbol_operand(self):
        op = parse_operand("loop")
        assert op.kind == "expr" and op.expr.symbol == "loop"


class TestStripComment:
    def test_hash_and_semicolon(self):
        assert strip_comment("addq t0, t1, t2 # sum") == "addq t0, t1, t2 "
        assert strip_comment("nop ; note") == "nop "

    def test_comment_chars_inside_strings(self):
        line = '.asciiz "a#b;c"  # trailing'
        assert strip_comment(line) == '.asciiz "a#b;c"  '

    def test_char_literal_hash(self):
        assert strip_comment("li t0, '#' # cmt") == "li t0, '#' "


class TestParseLine:
    def test_label_only(self):
        (line,) = parse_line("top:", 1)
        assert line.label == "top" and line.mnemonic is None

    def test_label_plus_statement(self):
        (line,) = parse_line("top: addq t0, t1, t2", 3)
        assert line.label == "top" and line.mnemonic == "addq"
        assert len(line.operands) == 3

    def test_directive_keeps_raw_args(self):
        (line,) = parse_line('.asciiz "a, b"', 1)
        assert line.mnemonic == ".asciiz"
        assert line.raw_args == '"a, b"'

    def test_empty_and_comment_lines(self):
        assert parse_line("", 1) == []
        assert parse_line("   # nothing", 2) == []

    def test_operand_commas_in_parens(self):
        (line,) = parse_line("ldq a0, 8(sp)", 1)
        assert len(line.operands) == 2
