"""Assembler tests: directives, labels, pseudo-ops, fixups, errors."""

import pytest

from repro.isa import encoding, opcodes, registers as R
from repro.isa.asm import AsmSyntaxError, assemble
from repro.objfile.relocs import RelocType
from repro.objfile.sections import BSS, DATA, TEXT
from repro.objfile.symtab import SymBind, SymKind


def insts_of(mod):
    return encoding.decode_stream(bytes(mod.section(TEXT).data))


def test_simple_text():
    mod = assemble("""
        addq t0, t1, t2
        subq t0, 8, t1
        ldq  a0, 16(sp)
        stq  a0, -8(sp)
    """)
    insts = insts_of(mod)
    assert [i.op for i in insts] == [opcodes.ADDQ, opcodes.SUBQ,
                                     opcodes.LDQ, opcodes.STQ]
    assert insts[1].is_lit and insts[1].lit == 8
    assert insts[3].disp == -8


def test_labels_and_local_branch_resolution():
    mod = assemble("""
loop:   subq t0, 1, t0
        bne  t0, loop
        br   end
        nop
end:    ret
    """)
    insts = insts_of(mod)
    assert insts[1].disp == -2          # back to loop
    assert insts[2].disp == 1           # skip the nop
    assert mod.relocs == []             # everything resolved locally


def test_forward_branch_backpatched():
    mod = assemble("""
        beq t0, fwd
        nop
        nop
fwd:    ret
    """)
    assert insts_of(mod)[0].disp == 2


def test_external_branch_becomes_reloc():
    mod = assemble("bsr ra, printf")
    assert len(mod.relocs) == 1
    rel = mod.relocs[0]
    assert rel.type is RelocType.BRANCH21 and rel.symbol == "printf"
    assert not mod.symtab["printf"].defined


def test_call_pseudo():
    mod = assemble("call helper")
    inst = insts_of(mod)[0]
    assert inst.op is opcodes.BSR and inst.ra == R.RA
    assert mod.relocs[0].symbol == "helper"


def test_data_directives():
    mod = assemble("""
        .data
vals:   .quad 1, 2, 3
        .long 7
        .word 5
        .byte 0xff, 'A'
s:      .asciiz "hi\\n"
    """)
    data = bytes(mod.section(DATA).data)
    assert data[:24] == (1).to_bytes(8, "little") + \
        (2).to_bytes(8, "little") + (3).to_bytes(8, "little")
    assert data[24:28] == (7).to_bytes(4, "little")
    assert data[28:30] == (5).to_bytes(2, "little")
    assert data[30:32] == b"\xffA"
    assert data[32:] == b"hi\n\x00"
    assert mod.symtab["s"].value == 32


def test_quad_with_symbol_ref_emits_reloc():
    mod = assemble("""
        .data
tbl:    .quad main, main+8
        .text
main:   ret
    """)
    relocs = [r for r in mod.relocs if r.type is RelocType.QUAD64]
    assert len(relocs) == 2
    assert relocs[1].addend == 8


def test_bss_and_comm():
    mod = assemble("""
        .bss
        .align 3
buf:    .space 128
        .comm shared, 64
    """)
    assert mod.section(BSS).bss_size == 192
    assert mod.symtab["buf"].section == BSS
    shared = mod.symtab["shared"]
    assert shared.bind is SymBind.GLOBAL and shared.size == 64


def test_ent_end_sets_function_size():
    mod = assemble("""
        .text
        .ent f
f:      nop
        nop
        ret
        .end f
    """)
    sym = mod.symtab["f"]
    assert sym.kind is SymKind.FUNC
    assert sym.size == 12


def test_globl():
    mod = assemble("""
        .globl f
f:      ret
    """)
    assert mod.symtab["f"].bind is SymBind.GLOBAL


def test_got_load_and_la():
    mod = assemble("""
        ldq a0, %got(msg)(gp)
        la  a1, msg
    """)
    got = [r for r in mod.relocs if r.type is RelocType.GOT16]
    assert len(got) == 2
    insts = insts_of(mod)
    assert insts[0].rb == R.GP and insts[1].rb == R.GP


def test_got_requires_gp_base():
    with pytest.raises(AsmSyntaxError):
        assemble("ldq a0, %got(msg)(t0)")


def test_laa_absolute_pair():
    mod = assemble("laa a0, msg")
    insts = insts_of(mod)
    assert insts[0].op is opcodes.LDAH and insts[1].op is opcodes.LDA
    types = [r.type for r in mod.relocs]
    assert types == [RelocType.HI16, RelocType.LO16]


def test_ldgp_pair():
    mod = assemble("ldgp")
    insts = insts_of(mod)
    assert insts[0].ra == R.GP and insts[1].ra == R.GP
    types = [r.type for r in mod.relocs]
    assert types == [RelocType.GPHI16, RelocType.GPLO16]


def test_li_widths():
    small = assemble("li t0, 100")
    assert len(insts_of(small)) == 1
    mid = assemble("li t0, 0x123456")
    assert len(insts_of(mid)) == 2
    big = assemble("li t0, 0x123456789a")
    assert len(insts_of(big)) >= 3


def test_mov_clr_not_negq():
    mod = assemble("""
        mov t0, t1
        clr t2
        not t0, t3
        negq t0, t4
    """)
    insts = insts_of(mod)
    assert insts[0].op is opcodes.BIS and insts[0].ra == R.T0
    assert insts[1].rc == R.T2
    assert insts[2].op is opcodes.ORNOT and insts[2].ra == R.ZERO
    assert insts[3].op is opcodes.SUBQ and insts[3].ra == R.ZERO


def test_negative_literal_folding():
    mod = assemble("addq t0, -8, t0")
    inst = insts_of(mod)[0]
    assert inst.op is opcodes.SUBQ and inst.lit == 8


def test_oversized_literal_materialized_via_at():
    mod = assemble("addq t0, 1000, t1")
    insts = insts_of(mod)
    assert insts[-1].op is opcodes.ADDQ and insts[-1].rb == R.AT
    assert len(insts) == 2


def test_sext_two_operand_form():
    mod = assemble("sextl t0, t1")
    inst = insts_of(mod)[0]
    assert inst.op is opcodes.SEXTL and inst.rb == R.T0 and inst.rc == R.T1


def test_ret_forms():
    mod = assemble("""
        ret
        ret (ra)
        ret zero, (ra)
        jsr (pv)
        jsr ra, (pv)
        jmp (t0)
    """)
    insts = insts_of(mod)
    assert all(i.rb == R.RA for i in insts[:3])
    assert insts[3].ra == R.RA and insts[3].rb == R.PV
    assert insts[5].op is opcodes.JMP and insts[5].ra == R.ZERO


def test_comments_and_char_literals():
    mod = assemble("""
        li t0, 'A'      # letter A
        li t1, '\\n'     ; newline
    """)
    insts = insts_of(mod)
    assert insts[0].disp == 65 and insts[1].disp == 10


def test_duplicate_label_rejected():
    with pytest.raises(AsmSyntaxError):
        assemble("x: nop\nx: nop")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AsmSyntaxError):
        assemble("frobnicate t0, t1, t2")


def test_instruction_in_data_rejected():
    with pytest.raises(AsmSyntaxError):
        assemble(".data\naddq t0, t1, t2")


def test_branch_out_of_range_rejected():
    lines = ["b: nop"] + ["nop"] * ((1 << 20) + 2) + ["br b"]
    with pytest.raises(AsmSyntaxError):
        assemble("\n".join(lines))


def test_ent_without_end_rejected():
    with pytest.raises(AsmSyntaxError):
        assemble(".ent f\nf: ret")


def test_alignment():
    mod = assemble("""
        .data
        .byte 1
        .align 3
q:      .quad 2
    """)
    assert mod.symtab["q"].value == 8
