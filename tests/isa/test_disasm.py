"""Disassembler tests."""

from repro.isa import disasm, opcodes, registers as R
from repro.isa.asm import assemble
from repro.isa.encoding import encode_stream
from repro.isa.instruction import Instruction
from repro.objfile.linker import link


def test_branch_target_math():
    inst = Instruction(opcodes.BR, ra=R.ZERO, disp=3)
    assert disasm.branch_target(inst, 0x1000) == 0x1000 + 4 + 12
    back = Instruction(opcodes.BEQ, ra=R.T0, disp=-2)
    assert disasm.branch_target(back, 0x1000) == 0x1000 + 4 - 8
    assert disasm.branch_target(
        Instruction(opcodes.ADDQ, ra=0, rb=0, rc=0), 0x1000) is None


def test_render_annotates_symbols():
    inst = Instruction(opcodes.BSR, ra=R.RA, disp=1)
    text = disasm.render(inst, 0x1000, {0x1008: "helper"})
    assert "helper" in text and "0x1008" in text


def test_disassemble_stream():
    insts = [Instruction(opcodes.LDA, ra=R.SP, rb=R.SP, disp=-16),
             Instruction(opcodes.STQ, ra=R.RA, rb=R.SP, disp=0),
             Instruction(opcodes.RET, ra=R.ZERO, rb=R.RA)]
    lines = disasm.disassemble(encode_stream(insts), 0x2000)
    assert len(lines) == 3
    assert "0x00002000" in lines[0]
    assert "lda sp, -16(sp)" in lines[0]
    assert "ret" in lines[2]


def test_symbol_map_from_module():
    exe = link([assemble("""
        .globl __start
        .ent __start
__start:
        bsr ra, f
        li v0, 1
        sys
        .end __start
        .globl f
        .ent f
f:      ret
        .end f
    """, "t.s")])
    symbols = disasm.symbol_map(exe)
    assert symbols[exe.entry] == "__start"
    assert symbols[exe.addr_of("f")] == "f"
    text = "\n".join(disasm.disassemble(
        bytes(exe.section(".text").data), exe.section(".text").vaddr,
        symbols))
    assert "<f>" in text
    assert "f:" in text
