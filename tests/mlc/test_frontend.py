"""MLC front-end unit tests: lexer, parser, and checker diagnostics."""

import pytest

from repro.mlc import MlcError, compile_source, compile_to_asm
from repro.mlc.check import CheckError, check
from repro.mlc.lexer import LexError, Token, tokenize
from repro.mlc.parser import ParseError, const_eval, parse


class TestLexer:
    def test_token_kinds(self):
        toks = tokenize("int x = 42; // comment\nchar *s = \"hi\";")
        kinds = [(t.kind, t.text) for t in toks if t.kind != "eof"]
        assert ("kw", "int") in kinds
        assert ("id", "x") in kinds
        assert ("op", "=") in kinds
        assert ("op", ";") in kinds

    def test_numbers(self):
        toks = tokenize("10 0x1F 017 42L 7u")
        values = [t.value for t in toks if t.kind == "int"]
        assert values == [10, 31, 15, 42, 7]

    def test_char_literals(self):
        toks = tokenize(r"'a' '\n' '\\' '\x41' '\0'")
        values = [t.value for t in toks if t.kind == "int"]
        assert values == [97, 10, 92, 65, 0]

    def test_string_escapes(self):
        toks = tokenize(r'"a\tb\n\x21"')
        assert toks[0].value == b"a\tb\n\x21"

    def test_block_comment(self):
        toks = tokenize("a /* lots \n of \n lines */ b")
        assert [t.text for t in toks if t.kind == "id"] == ["a", "b"]
        assert toks[1].line == 3      # line numbers survive comments

    def test_maximal_munch(self):
        toks = tokenize("a+++b <<= c")
        ops = [t.text for t in toks if t.kind == "op"]
        assert ops == ["++", "+", "<<="]

    def test_errors(self):
        with pytest.raises(LexError):
            tokenize('"unterminated')
        with pytest.raises(LexError):
            tokenize("/* unterminated")
        with pytest.raises(LexError):
            tokenize("'ab'")
        with pytest.raises(LexError):
            tokenize("@")


class TestParser:
    def test_const_eval(self):
        def ev(src):
            prog = parse(f"long x[{src}];")
            return prog.decls[0].var_type.length
        assert ev("3 + 4 * 2") == 11
        assert ev("1 << 6") == 64
        assert ev("sizeof(long) * 4") == 32
        assert ev("10 / 3") == 3
        assert ev("1 ? 5 : 9") == 5

    def test_declarator_shapes(self):
        prog = parse("""
        long a;
        long *b;
        long c[4];
        long *d[4];
        long (*e)(long);
        long (*f[2])(void);
        """)
        types = [str(d.var_type) for d in prog.decls]
        assert types[0] == "long"
        assert types[1] == "long*"
        assert types[2] == "long[4]"
        assert types[3] == "long*[4]"
        assert "(" in types[4]            # function pointer
        assert types[5].endswith("[2]")

    def test_precedence_tree(self):
        from repro.mlc import astnodes as A
        prog = parse("long x[1 + 2 * 3];")
        assert prog.decls[0].var_type.length == 7

    def test_errors(self):
        for bad in ("int f( {",
                    "int f() { return }",
                    "int f() { if }",
                    "struct { long x; } v;"):
            with pytest.raises((ParseError, LexError)):
                parse(bad)

    def test_struct_redefinition_rejected(self):
        with pytest.raises(ParseError):
            parse("struct S { long a; }; struct S { long b; };")


class TestChecker:
    def run(self, src):
        return check(parse(src))

    def test_undeclared_identifier(self):
        with pytest.raises(CheckError, match="undeclared"):
            self.run("int main() { return missing; }")

    def test_redeclaration(self):
        with pytest.raises(CheckError, match="redeclaration"):
            self.run("int main() { long x; long x; return 0; }")

    def test_scopes_nest(self):
        self.run("""
        int main() {
            long x = 1;
            { long x = 2; }
            return (int)x;
        }
        """)

    def test_call_arity(self):
        with pytest.raises(CheckError, match="args"):
            self.run("long f(long a) { return a; } "
                     "int main() { return (int)f(1, 2); }")

    def test_call_non_function(self):
        with pytest.raises(CheckError, match="callable"):
            self.run("int main() { long x = 1; return (int)x(); }")

    def test_break_outside_loop(self):
        with pytest.raises(CheckError, match="break"):
            self.run("int main() { break; return 0; }")

    def test_void_return_mismatch(self):
        with pytest.raises(CheckError):
            self.run("void f() { return 1; }")
        with pytest.raises(CheckError):
            self.run("long f() { return; }")

    def test_lvalue_required(self):
        with pytest.raises(CheckError, match="lvalue"):
            self.run("int main() { 1 = 2; return 0; }")
        with pytest.raises(CheckError, match="lvalue"):
            self.run("int main() { long a = 0; (a + 1)++; return 0; }")

    def test_deref_non_pointer(self):
        with pytest.raises(CheckError, match="dereference"):
            self.run("int main() { long a = 0; return (int)*a; }")

    def test_member_of_non_struct(self):
        with pytest.raises(CheckError):
            self.run("int main() { long a = 0; return (int)a.x; }")

    def test_unknown_member(self):
        with pytest.raises(Exception, match="member"):
            self.run("struct S { long a; }; "
                     "int main() { struct S s; return (int)s.b; }")

    def test_va_start_outside_variadic(self):
        with pytest.raises(CheckError, match="variadic"):
            self.run("int main() { long *p = __va_start(); return 0; }")

    def test_global_redefinition(self):
        with pytest.raises(CheckError, match="redefined"):
            self.run("long g = 1; long g = 2;")
        # extern + definition is fine, in either order.
        self.run("extern long g; long g = 1;")
        self.run("long g = 1; extern long g;")

    def test_function_redefinition(self):
        with pytest.raises(CheckError, match="redefined"):
            self.run("long f() { return 1; } long f() { return 2; }")

    def test_incomplete_struct_variable(self):
        with pytest.raises(CheckError, match="incomplete"):
            self.run("struct Later; int main() "
                     "{ struct Later x; return 0; }")


class TestDriver:
    def test_error_carries_source_name(self):
        with pytest.raises(MlcError, match="bad.mlc"):
            compile_source("int main() { return missing; }", "bad.mlc")

    def test_prelude_line_numbers_adjusted(self):
        try:
            compile_to_asm("\nint main() { return missing; }", "x.mlc")
        except MlcError as exc:
            assert "line 2" in str(exc)
        else:
            pytest.fail("expected MlcError")

    def test_asm_output_shape(self):
        asm = compile_to_asm("long g = 7; int main() { return (int)g; }")
        assert "\t.ent main" in asm
        assert "\t.globl main" in asm
        assert "\t.frame " in asm
        assert "g:" in asm and "\t.quad 7" in asm
