"""Differential testing: MLC-compiled arithmetic versus a Python oracle.

Hypothesis generates random expression trees over signed 64-bit variables;
the same expression is evaluated by the compiled program on the machine
and by a Python model with wrap-around semantics.  Any divergence is a
compiler, assembler, linker, or simulator bug.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import run_module
from repro.mlc import build_executable

MASK = (1 << 64) - 1
VARS = ("a", "b", "c", "d")


class Node:
    def __init__(self, op, left=None, right=None, leaf=None):
        self.op = op
        self.left = left
        self.right = right
        self.leaf = leaf

    def to_c(self) -> str:
        if self.op == "var":
            return self.leaf
        if self.op == "const":
            return str(self.leaf)
        if self.op == "neg":
            # The space stops "-(-1)" lexing as a decrement token.
            return f"(- {self.left.to_c()})"
        if self.op == "not":
            return f"(~{self.left.to_c()})"
        if self.op in ("<<", ">>"):
            return f"({self.left.to_c()} {self.op} " \
                   f"({self.right.to_c()} & 31))"
        return f"({self.left.to_c()} {self.op} {self.right.to_c()})"

    def evaluate(self, env) -> int:
        if self.op == "var":
            return env[self.leaf]
        if self.op == "const":
            return self.leaf & MASK
        if self.op == "neg":
            return (-self.left.evaluate(env)) & MASK
        if self.op == "not":
            return (~self.left.evaluate(env)) & MASK
        a = self.left.evaluate(env)
        b = self.right.evaluate(env)
        if self.op == "+":
            return (a + b) & MASK
        if self.op == "-":
            return (a - b) & MASK
        if self.op == "*":
            return (a * b) & MASK
        if self.op == "&":
            return a & b
        if self.op == "|":
            return a | b
        if self.op == "^":
            return a ^ b
        if self.op == "<<":
            return (a << (b & 31)) & MASK
        if self.op == ">>":
            # MLC >> on signed long is arithmetic.
            sa = a - (1 << 64) if a & (1 << 63) else a
            return (sa >> (b & 31)) & MASK
        raise AssertionError(self.op)


def node_strategy():
    leaves = st.one_of(
        st.sampled_from(VARS).map(lambda v: Node("var", leaf=v)),
        st.integers(min_value=-100, max_value=100).map(
            lambda v: Node("const", leaf=v)))

    # Unary wrapping only at the leaves so trees cannot grow unbounded
    # towers of neg/not (which blow the oracle's recursion limit without
    # consuming leaves).
    wrapped = st.one_of(
        leaves,
        st.builds(lambda op, l: Node(op, l),
                  st.sampled_from(["neg", "not"]), leaves))

    def extend(children):
        return st.builds(
            lambda op, l, r: Node(op, l, r),
            st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>"]),
            children, children)
    return st.recursive(wrapped, extend, max_leaves=12)


@settings(max_examples=40, deadline=None)
@given(tree=node_strategy(),
       values=st.lists(st.integers(min_value=-(1 << 63),
                                   max_value=(1 << 63) - 1),
                       min_size=len(VARS), max_size=len(VARS)))
def test_expression_differential(tree, values):
    env = {name: v & MASK for name, v in zip(VARS, values)}
    decls = "".join(f"long {n} = {v - (1 << 64) if v >> 63 else v};\n"
                    for n, v in env.items())
    src = f"""
    {decls}
    int main() {{
        unsigned long r = (unsigned long)({tree.to_c()});
        printf("%x %x\\n", r >> 32, r & 0xFFFFFFFF);
        return 0;
    }}
    """
    exe = build_executable([src])
    result = run_module(exe)
    assert result.status == 0, result.stderr
    hi, lo = (int(x, 16) for x in result.stdout.split())
    got = ((hi << 32) | lo) & MASK
    expected = tree.evaluate(env)
    assert got == expected, f"{tree.to_c()} with {env}"


@settings(max_examples=20, deadline=None)
@given(values=st.lists(st.integers(min_value=-(1 << 31),
                                   max_value=(1 << 31) - 1),
                       min_size=6, max_size=6))
def test_division_differential(values):
    """Signed division/remainder truncate toward zero, like C."""
    pairs = [(values[i], values[i + 1] or 7) for i in (0, 2, 4)]
    checks = []
    lines = []
    for i, (a, b) in enumerate(pairs):
        lines.append(f'printf("%d %d\\n", (long){a} / (long){b}, '
                     f'(long){a} % (long){b});')
        q = abs(a) // abs(b) * (1 if (a < 0) == (b < 0) else -1)
        checks.append((q, a - b * q))
    src = "int main() { " + " ".join(lines) + " return 0; }"
    result = run_module(build_executable([src]))
    got = [tuple(map(int, line.split()))
           for line in result.output_text().splitlines()]
    assert got == checks
