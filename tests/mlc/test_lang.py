"""End-to-end MLC language tests: compile, link, run, check output."""


class TestBasics:
    def test_return_status(self, run_c):
        assert run_c("int main() { return 42; }").status == 42

    def test_arithmetic(self, run_c):
        r = run_c(r"""
        int main() {
            long a = 7, b = 3;
            printf("%d %d %d %d %d\n", a + b, a - b, a * b, a / b, a % b);
            return 0;
        }
        """)
        assert r.output_text() == "10 4 21 2 1\n"

    def test_precedence_and_parens(self, run_c):
        r = run_c(r"""
        int main() {
            printf("%d\n", 2 + 3 * 4 - (1 << 2) / 2);
            printf("%d\n", (2 + 3) * 4);
            printf("%d\n", 10 - 4 - 3);
            return 0;
        }
        """)
        assert r.output_text() == "12\n20\n3\n"

    def test_negative_numbers(self, run_c):
        r = run_c(r"""
        int main() {
            long x = -5;
            printf("%d %d %d\n", x, -x, x * -3);
            printf("%d %d\n", -7 / 2, -7 % 2);
            return 0;
        }
        """)
        assert r.output_text() == "-5 5 15\n-3 -1\n"

    def test_bitwise(self, run_c):
        r = run_c(r"""
        int main() {
            printf("%d %d %d %d\n", 12 & 10, 12 | 10, 12 ^ 10, ~0 & 255);
            printf("%d %d\n", 1 << 10, 1024 >> 3);
            return 0;
        }
        """)
        assert r.output_text() == "8 14 6 255\n1024 128\n"

    def test_comparisons(self, run_c):
        r = run_c(r"""
        int main() {
            printf("%d%d%d%d%d%d\n", 1 < 2, 2 <= 2, 3 > 2, 2 >= 3,
                   5 == 5, 5 != 5);
            return 0;
        }
        """)
        assert r.output_text() == "111010\n"

    def test_unsigned_comparison(self, run_c):
        r = run_c(r"""
        int main() {
            unsigned long big = -1;
            long small = 5;
            printf("%d\n", big > (unsigned long)small);
            printf("%d\n", (long)big > small);
            return 0;
        }
        """)
        assert r.output_text() == "1\n0\n"

    def test_logical_short_circuit(self, run_c):
        r = run_c(r"""
        long calls;
        long bump() { calls++; return 1; }
        int main() {
            long r = 0 && bump();
            r = r + (1 || bump());
            printf("r=%d calls=%d\n", r, calls);
            printf("%d %d\n", 1 && 2, 0 || 0);
            return 0;
        }
        """)
        assert r.output_text() == "r=1 calls=0\n1 0\n"

    def test_ternary(self, run_c):
        r = run_c(r"""
        int main() {
            long x = 5;
            printf("%s\n", x > 3 ? "big" : "small");
            printf("%d\n", x < 3 ? 1 : 2);
            return 0;
        }
        """)
        assert r.output_text() == "big\n2\n"

    def test_comma_operator(self, run_c):
        r = run_c(r"""
        int main() {
            long a, b;
            a = (b = 3, b + 1);
            printf("%d %d\n", a, b);
            return 0;
        }
        """)
        assert r.output_text() == "4 3\n"


class TestControlFlow:
    def test_if_else_chain(self, run_c):
        r = run_c(r"""
        char *grade(long score) {
            if (score >= 90) return "A";
            else if (score >= 80) return "B";
            else if (score >= 70) return "C";
            else return "F";
        }
        int main() {
            printf("%s%s%s%s\n", grade(95), grade(85), grade(75), grade(10));
            return 0;
        }
        """)
        assert r.output_text() == "ABCF\n"

    def test_while_break_continue(self, run_c):
        r = run_c(r"""
        int main() {
            long i = 0, sum = 0;
            while (1) {
                i++;
                if (i > 10) break;
                if (i % 2) continue;
                sum += i;
            }
            printf("%d\n", sum);
            return 0;
        }
        """)
        assert r.output_text() == "30\n"

    def test_do_while(self, run_c):
        r = run_c(r"""
        int main() {
            long i = 10, n = 0;
            do { n++; i--; } while (i > 0);
            printf("%d\n", n);
            do { n++; } while (0);
            printf("%d\n", n);
            return 0;
        }
        """)
        assert r.output_text() == "10\n11\n"

    def test_nested_for(self, run_c):
        r = run_c(r"""
        int main() {
            long i, j, total = 0;
            for (i = 0; i < 5; i++)
                for (j = 0; j <= i; j++)
                    total += j;
            printf("%d\n", total);
            return 0;
        }
        """)
        assert r.output_text() == "20\n"

    def test_switch(self, run_c):
        r = run_c(r"""
        char *name(long op) {
            switch (op) {
            case 1: return "add";
            case 2: return "sub";
            case 100: return "mul";
            default: return "?";
            }
        }
        int main() {
            printf("%s %s %s %s\n", name(1), name(2), name(100), name(7));
            return 0;
        }
        """)
        assert r.output_text() == "add sub mul ?\n"

    def test_switch_fallthrough(self, run_c):
        r = run_c(r"""
        int main() {
            long x = 2, n = 0;
            switch (x) {
            case 1: n += 1;
            case 2: n += 2;
            case 3: n += 4; break;
            case 4: n += 8;
            }
            printf("%d\n", n);
            return 0;
        }
        """)
        assert r.output_text() == "6\n"

    def test_for_with_decl(self, run_c):
        r = run_c(r"""
        int main() {
            long sum = 0;
            for (long i = 0; i < 4; i++) sum += i;
            printf("%d\n", sum);
            return 0;
        }
        """)
        assert r.output_text() == "6\n"


class TestFunctions:
    def test_recursion(self, run_c):
        r = run_c(r"""
        long fact(long n) { return n <= 1 ? 1 : n * fact(n - 1); }
        int main() { printf("%d\n", fact(10)); return 0; }
        """)
        assert r.output_text() == "3628800\n"

    def test_mutual_recursion(self, run_c):
        r = run_c(r"""
        long is_odd(long n);
        long is_even(long n) { return n == 0 ? 1 : is_odd(n - 1); }
        long is_odd(long n) { return n == 0 ? 0 : is_even(n - 1); }
        int main() {
            printf("%d %d %d\n", is_even(10), is_odd(10), is_odd(7));
            return 0;
        }
        """)
        assert r.output_text() == "1 0 1\n"

    def test_many_arguments_stack_passing(self, run_c):
        r = run_c(r"""
        long sum9(long a, long b, long c, long d, long e,
                  long f, long g, long h, long i) {
            return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h + 9*i;
        }
        int main() {
            printf("%d\n", sum9(1, 2, 3, 4, 5, 6, 7, 8, 9));
            return 0;
        }
        """)
        assert r.output_text() == "285\n"

    def test_function_pointer(self, run_c):
        r = run_c(r"""
        long add(long a, long b) { return a + b; }
        long sub(long a, long b) { return a - b; }
        int main() {
            long (*op)(long, long);
            op = add;
            printf("%d ", op(10, 4));
            op = sub;
            printf("%d\n", (*op)(10, 4));
            return 0;
        }
        """)
        assert r.output_text() == "14 6\n"

    def test_function_pointer_table(self, run_c):
        r = run_c(r"""
        long add(long a, long b) { return a + b; }
        long sub(long a, long b) { return a - b; }
        long mul(long a, long b) { return a * b; }
        long (*ops[3])(long, long) = { add, sub, mul };
        int main() {
            long i;
            for (i = 0; i < 3; i++) printf("%d ", ops[i](8, 2));
            printf("\n");
            return 0;
        }
        """)
        assert r.output_text() == "10 6 16 \n"

    def test_void_function(self, run_c):
        r = run_c(r"""
        long counter;
        void bump(void) { counter += 7; }
        int main() { bump(); bump(); printf("%d\n", counter); return 0; }
        """)
        assert r.output_text() == "14\n"

    def test_expression_temps_across_calls(self, run_c):
        r = run_c(r"""
        long f(long x) { return x * 2; }
        int main() {
            long a = 3;
            printf("%d\n", a + f(a) + a * f(a + 1));
            return 0;
        }
        """)
        assert r.output_text() == "33\n"

    def test_deeply_nested_expression(self, run_c):
        # Forces temp-stack spilling past the 12-register pool.
        terms = "+".join(f"(a{i}*2)" for i in range(14))
        decls = "".join(f"long a{i} = {i + 1};" for i in range(14))
        r = run_c("int main() { %s printf(\"%%d\\n\", ((((((((((((((%s))))))))))))))); return 0; }"
                  % (decls, terms))
        assert r.output_text() == str(sum(2 * (i + 1) for i in range(14))) + "\n"


class TestPointersArrays:
    def test_array_basics(self, run_c):
        r = run_c(r"""
        int main() {
            long a[5];
            long i, sum = 0;
            for (i = 0; i < 5; i++) a[i] = i * i;
            for (i = 0; i < 5; i++) sum += a[i];
            printf("%d\n", sum);
            return 0;
        }
        """)
        assert r.output_text() == "30\n"

    def test_pointer_arith(self, run_c):
        r = run_c(r"""
        int main() {
            long a[4];
            long *p = a;
            a[0] = 10; a[1] = 20; a[2] = 30; a[3] = 40;
            printf("%d %d %d\n", *p, *(p + 2), p[3]);
            p++;
            printf("%d %d\n", *p, (long)(p - a));
            return 0;
        }
        """)
        assert r.output_text() == "10 30 40\n20 1\n"

    def test_pointer_diff(self, run_c):
        r = run_c(r"""
        int main() {
            long a[10];
            long *p = &a[7];
            long *q = &a[2];
            printf("%d\n", p - q);
            return 0;
        }
        """)
        assert r.output_text() == "5\n"

    def test_char_pointers_and_strings(self, run_c):
        r = run_c(r"""
        int main() {
            char *s = "hello";
            long n = 0;
            while (*s) { n++; s++; }
            printf("%d %d\n", n, strlen("world!"));
            return 0;
        }
        """)
        assert r.output_text() == "5 6\n"

    def test_2d_array(self, run_c):
        r = run_c(r"""
        long m[3][4];
        int main() {
            long i, j, sum = 0;
            for (i = 0; i < 3; i++)
                for (j = 0; j < 4; j++)
                    m[i][j] = i * 10 + j;
            for (i = 0; i < 3; i++) sum += m[i][3];
            printf("%d %d\n", sum, sizeof(m));
            return 0;
        }
        """)
        assert r.output_text() == "39 96\n"

    def test_pointer_to_pointer(self, run_c):
        r = run_c(r"""
        int main() {
            long x = 42;
            long *p = &x;
            long **pp = &p;
            **pp = 43;
            printf("%d\n", x);
            return 0;
        }
        """)
        assert r.output_text() == "43\n"

    def test_argv(self, run_c):
        r = run_c(r"""
        int main(int argc, char **argv) {
            long i;
            for (i = 1; i < argc; i++) printf("[%s]", argv[i]);
            printf("\n");
            return 0;
        }
        """, args=("alpha", "beta"))
        assert r.output_text() == "[alpha][beta]\n"

    def test_global_array_initializer(self, run_c):
        r = run_c(r"""
        long primes[5] = { 2, 3, 5, 7, 11 };
        char *names[3] = { "one", "two", "three" };
        int main() {
            printf("%d %s\n", primes[4], names[1]);
            return 0;
        }
        """)
        assert r.output_text() == "11 two\n"


class TestStructs:
    def test_struct_members(self, run_c):
        r = run_c(r"""
        struct Point { long x; long y; };
        int main() {
            struct Point p;
            p.x = 3; p.y = 4;
            printf("%d\n", p.x * p.x + p.y * p.y);
            return 0;
        }
        """)
        assert r.output_text() == "25\n"

    def test_struct_pointer_arrow(self, run_c):
        r = run_c(r"""
        struct Node { long value; struct Node *next; };
        int main() {
            struct Node a, b;
            a.value = 1; a.next = &b;
            b.value = 2; b.next = 0;
            printf("%d %d\n", a.next->value, a.next->next == 0);
            return 0;
        }
        """)
        assert r.output_text() == "2 1\n"

    def test_array_of_structs(self, run_c):
        """The paper's branch-statistics pattern: bstats[n].taken++."""
        r = run_c(r"""
        struct BranchInfo { long taken; long notTaken; };
        struct BranchInfo *bstats;
        int main() {
            long i;
            bstats = (struct BranchInfo *)
                malloc(4 * sizeof(struct BranchInfo));
            for (i = 0; i < 4; i++) {
                bstats[i].taken = 0;
                bstats[i].notTaken = 0;
            }
            bstats[2].taken++;
            bstats[2].taken++;
            bstats[2].notTaken++;
            printf("%d %d\n", bstats[2].taken, bstats[2].notTaken);
            return 0;
        }
        """)
        assert r.output_text() == "2 1\n"

    def test_linked_list(self, run_c):
        r = run_c(r"""
        struct Node { long value; struct Node *next; };
        int main() {
            struct Node *head = 0;
            struct Node *n;
            long i, sum = 0;
            for (i = 0; i < 5; i++) {
                n = (struct Node *)malloc(sizeof(struct Node));
                n->value = i;
                n->next = head;
                head = n;
            }
            for (n = head; n; n = n->next) sum = sum * 10 + n->value;
            printf("%d\n", sum);
            return 0;
        }
        """)
        assert r.output_text() == "43210\n"

    def test_struct_layout_alignment(self, run_c):
        r = run_c(r"""
        struct Mixed { char c; long q; int i; };
        int main() {
            printf("%d\n", sizeof(struct Mixed));
            return 0;
        }
        """)
        assert r.output_text() == "24\n"

    def test_typedef(self, run_c):
        r = run_c(r"""
        struct Pair_ { long a; long b; };
        typedef struct Pair_ Pair;
        typedef long Number;
        int main() {
            Pair p;
            Number n = 5;
            p.a = n; p.b = n * 2;
            printf("%d %d\n", p.a, p.b);
            return 0;
        }
        """)
        assert r.output_text() == "5 10\n"


class TestTypesAndCasts:
    def test_char_signedness(self, run_c):
        r = run_c(r"""
        int main() {
            char c = -1;
            unsigned char u = -1;
            printf("%d %d\n", (long)c, (long)u);
            return 0;
        }
        """)
        assert r.output_text() == "-1 255\n"

    def test_int_truncation_via_memory(self, run_c):
        r = run_c(r"""
        int main() {
            int x;
            x = 0x1_0000_0005;   // doesn't fit in int
            printf("%d\n", x);
            return 0;
        }
        """.replace("_", ""))
        assert r.output_text() == "5\n"

    def test_short_roundtrip(self, run_c):
        r = run_c(r"""
        int main() {
            short s = -2;
            unsigned short u = 0xFFFE;
            printf("%d %d\n", (long)s, (long)u);
            return 0;
        }
        """)
        assert r.output_text() == "-2 65534\n"

    def test_cast_truncations(self, run_c):
        r = run_c(r"""
        int main() {
            long v = 0x1234567890;
            printf("%x %x %x\n", (long)(unsigned char)v,
                   (long)(unsigned short)v, (unsigned long)(unsigned int)v);
            return 0;
        }
        """)
        assert r.output_text() == "90 7890 34567890\n"

    def test_sizeof(self, run_c):
        r = run_c(r"""
        int main() {
            long x;
            printf("%d %d %d %d %d %d\n", sizeof(char), sizeof(short),
                   sizeof(int), sizeof(long), sizeof(char *), sizeof x);
            return 0;
        }
        """)
        assert r.output_text() == "1 2 4 8 8 8\n"

    def test_increment_decrement(self, run_c):
        r = run_c(r"""
        int main() {
            long x = 5;
            printf("%d ", x++);
            printf("%d ", x);
            printf("%d ", ++x);
            printf("%d ", x--);
            printf("%d\n", --x);
            return 0;
        }
        """)
        assert r.output_text() == "5 6 7 7 5\n"

    def test_compound_assignment(self, run_c):
        r = run_c(r"""
        int main() {
            long x = 10;
            x += 5; x -= 3; x *= 4; x /= 2; x %= 13;
            x <<= 2; x >>= 1; x |= 8; x &= 14; x ^= 5;
            printf("%d\n", x);
            return 0;
        }
        """)
        x = 10
        x += 5; x -= 3; x *= 4; x //= 2; x %= 13
        x <<= 2; x >>= 1; x |= 8; x &= 14; x ^= 5
        assert r.output_text() == f"{x}\n"

    def test_pointer_compound_assignment(self, run_c):
        r = run_c(r"""
        int main() {
            long a[5];
            long *p = a;
            a[3] = 99;
            p += 3;
            printf("%d\n", *p);
            return 0;
        }
        """)
        assert r.output_text() == "99\n"
