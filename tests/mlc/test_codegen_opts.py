"""Code-generator optimization tests: leaf functions, register params,
frame elision, gp elision — and that none of it changes behaviour."""

from repro.machine import run_module
from repro.mlc import build_executable, compile_to_asm


def asm_of(src: str, fn: str) -> list[str]:
    asm = compile_to_asm(src, use_prelude=True)
    lines = asm.splitlines()
    start = lines.index(f"\t.ent {fn}")
    end = lines.index(f"\t.end {fn}")
    return [l.strip() for l in lines[start:end]]


class TestLeafOptimizations:
    def test_frameless_leaf(self):
        body = asm_of("long add3(long a, long b, long c) "
                      "{ return a + b + c; }", "add3")
        text = "\n".join(body)
        assert "lda sp" not in text          # no frame at all
        assert "stq ra" not in text          # leaf: no ra save
        assert "ldgp" not in text            # no globals touched
        assert ".frame 0, 0" in text

    def test_leaf_keeps_params_in_registers(self):
        body = asm_of("long mix(long a, long b) { return a * 2 + b; }",
                      "mix")
        text = "\n".join(body)
        assert "stq a0" not in text
        assert "mov a0" in text or "addq a0" in text

    def test_nonleaf_saves_ra(self):
        body = asm_of("""
        long helper(long x) { return x; }
        long outer(long a) { return helper(a) + 1; }
        """, "outer")
        text = "\n".join(body)
        assert "stq ra" in text
        assert "ldq ra" in text
        assert "lda sp" in text

    def test_global_access_keeps_ldgp(self):
        body = asm_of("long g; long get(void) { return g; }", "get")
        assert any("ldgp" in l for l in body)

    def test_address_taken_param_stays_in_memory(self):
        body = asm_of("""
        long deref(long *p);
        long f(long a) { return a + *(&a); }
        """, "f")
        text = "\n".join(body)
        assert "stq a0" in text or "stl a0" in text

    def test_assigned_param_stays_in_memory(self):
        body = asm_of("long dec(long a) { a--; return a; }", "dec")
        text = "\n".join(body)
        # a is written, so it lives in a slot (loads/stores present).
        assert "ldq" in text or "stq" in text

    def test_variadic_never_register_params(self):
        body = asm_of("""
        long first(long n, ...) {
            long *ap = __va_start();
            return ap[0] + n;
        }
        """, "first")
        text = "\n".join(body)
        # All six argument registers spilled to the va area.
        for reg in ("a0", "a1", "a2", "a3", "a4", "a5"):
            assert f"stq {reg}" in text


class TestOptimizationsPreserveSemantics:
    def test_leaf_functions_behave(self):
        exe = build_executable([r"""
        long add3(long a, long b, long c) { return a + b + c; }
        long square(long x) { return x * x; }
        long g = 5;
        long useg(long x) { return g + x; }
        long wrapped(long a) { return add3(a, square(a), useg(a)); }
        int main() {
            printf("%d %d %d %d\n", add3(1, 2, 3), square(7),
                   useg(10), wrapped(3));
            return 0;
        }
        """])
        result = run_module(exe)
        assert result.output_text() == "6 49 15 20\n"

    def test_recursive_leaf_boundary(self):
        # Recursion means non-leaf: ra handling must be intact.
        exe = build_executable([r"""
        long ack(long m, long n) {
            if (m == 0) return n + 1;
            if (n == 0) return ack(m - 1, 1);
            return ack(m - 1, ack(m, n - 1));
        }
        int main() { printf("%d\n", ack(2, 3)); return 0; }
        """])
        assert run_module(exe).output_text() == "9\n"

    def test_deep_expression_in_leaf(self):
        # Spill slots force the frame back on in an otherwise-leaf fn.
        terms = "+".join(f"(a * {i})" for i in range(1, 16))
        exe = build_executable([
            "long f(long a) { return %s; }\n"
            "int main() { printf(\"%%d\\n\", f(2)); return 0; }" % terms])
        assert run_module(exe).output_text() == \
            f"{sum(2 * i for i in range(1, 16))}\n"
