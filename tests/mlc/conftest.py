import pytest

from repro.machine import run_module
from repro.mlc import build_executable


@pytest.fixture
def run_c():
    """Compile an MLC program (with libc) and run it."""

    def runner(source: str, *, stdin: bytes = b"", args=(),
               preload_files=None, max_insts=50_000_000):
        exe = build_executable([source])
        return run_module(exe, stdin=stdin, args=tuple(args),
                          preload_files=preload_files or {},
                          max_insts=max_insts)
    return runner
