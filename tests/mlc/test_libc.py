"""Runtime library tests: stdio, strings, heap, varargs, syscall surface."""


class TestPrintf:
    def test_basic_directives(self, run_c):
        r = run_c(r"""
        int main() {
            printf("%d|%u|%x|%X|%o|%c|%s|%%|%p\n",
                   -42, 42, 255, 255, 8, 'Z', "str", (void *)0x10);
            return 0;
        }
        """)
        assert r.output_text() == "-42|42|ff|FF|10|Z|str|%|0x10\n"

    def test_width_and_flags(self, run_c):
        r = run_c(r"""
        int main() {
            printf("[%5d][%-5d][%05d]\n", 42, 42, 42);
            printf("[%8x]\n", 0xbeef);
            return 0;
        }
        """)
        assert r.output_text() == "[   42][42   ][00042]\n[    beef]\n"

    def test_unsigned_full_range(self, run_c):
        r = run_c(r"""
        int main() {
            unsigned long big = -1;
            printf("%u\n", big);
            printf("%u\n", (unsigned long)1 << 63);
            return 0;
        }
        """)
        assert r.output_text() == \
            "18446744073709551615\n9223372036854775808\n"

    def test_long_modifier_ignored(self, run_c):
        r = run_c('int main() { printf("%ld %lx\\n", 7, 15); return 0; }')
        assert r.output_text() == "7 f\n"

    def test_sprintf(self, run_c):
        r = run_c(r"""
        int main() {
            char buf[64];
            long n = sprintf(buf, "x=%d y=%s", 5, "q");
            printf("%s|%d\n", buf, n);
            return 0;
        }
        """)
        assert r.output_text() == "x=5 y=q|7\n"

    def test_fprintf_to_file(self, run_c):
        r = run_c(r"""
        int main() {
            FILE *f = fopen("out.txt", "w");
            fprintf(f, "PC\tTaken\n");
            fprintf(f, "0x%x\t%d\n", 4096, 17);
            fclose(f);
            return 0;
        }
        """)
        assert r.file_text("out.txt") == "PC\tTaken\n0x1000\t17\n"


class TestStdio:
    def test_puts_putchar(self, run_c):
        r = run_c(r"""
        int main() {
            puts("line");
            putchar('A');
            putchar('\n');
            return 0;
        }
        """)
        assert r.output_text() == "line\nA\n"

    def test_fopen_read(self, run_c):
        r = run_c(r"""
        int main() {
            FILE *f = fopen("in.dat", "r");
            long c, n = 0;
            if (!f) return 1;
            while ((c = fgetc(f)) != -1) n++;
            fclose(f);
            printf("%d\n", n);
            return 0;
        }
        """, preload_files={"in.dat": b"hello world"})
        assert r.output_text() == "11\n"

    def test_fopen_missing_returns_null(self, run_c):
        r = run_c(r"""
        int main() {
            FILE *f = fopen("nope", "r");
            printf("%d\n", f == 0);
            return 0;
        }
        """)
        assert r.output_text() == "1\n"

    def test_fwrite_fread_roundtrip(self, run_c):
        r = run_c(r"""
        int main() {
            long data[4];
            long back[4];
            long i;
            FILE *f;
            for (i = 0; i < 4; i++) data[i] = i * 100;
            f = fopen("bin", "w");
            fwrite(data, sizeof(long), 4, f);
            fclose(f);
            f = fopen("bin", "r");
            fread(back, sizeof(long), 4, f);
            fclose(f);
            printf("%d %d\n", back[3], back[1]);
            return 0;
        }
        """)
        assert r.output_text() == "300 100\n"

    def test_getchar_stdin(self, run_c):
        r = run_c(r"""
        int main() {
            long c, n = 0;
            while ((c = getchar()) != -1) n += c == 'a';
            printf("%d\n", n);
            return 0;
        }
        """, stdin=b"banana")
        assert r.output_text() == "3\n"

    def test_append_mode(self, run_c):
        r = run_c(r"""
        int main() {
            FILE *f = fopen("log", "w");
            fputs("one.", f);
            fclose(f);
            f = fopen("log", "a");
            fputs("two.", f);
            fclose(f);
            return 0;
        }
        """)
        assert r.file_text("log") == "one.two."


class TestStrings:
    def test_strcmp_family(self, run_c):
        r = run_c(r"""
        int main() {
            printf("%d %d %d ", strcmp("abc", "abc") == 0,
                   strcmp("abc", "abd") < 0, strcmp("b", "a") > 0);
            printf("%d %d\n", strncmp("hello", "help", 3) == 0,
                   strncmp("hello", "help", 4) < 0);
            return 0;
        }
        """)
        assert r.output_text() == "1 1 1 1 1\n"

    def test_strcpy_strcat_strchr(self, run_c):
        r = run_c(r"""
        int main() {
            char buf[32];
            strcpy(buf, "foo");
            strcat(buf, "bar");
            printf("%s %d\n", buf, strchr(buf, 'b') - buf);
            return 0;
        }
        """)
        assert r.output_text() == "foobar 3\n"

    def test_mem_family(self, run_c):
        r = run_c(r"""
        int main() {
            char a[8];
            char b[8];
            memset(a, 'x', 8);
            memcpy(b, a, 8);
            printf("%d %c\n", memcmp(a, b, 8), b[7]);
            b[7] = 'y';
            printf("%d\n", memcmp(a, b, 8) < 0);
            return 0;
        }
        """)
        assert r.output_text() == "0 x\n1\n"

    def test_atol(self, run_c):
        r = run_c(r"""
        int main() {
            printf("%d %d %d %d\n", atol("123"), atol("-45"),
                   atol("  77x"), atoi("+9"));
            return 0;
        }
        """)
        assert r.output_text() == "123 -45 77 9\n"


class TestHeap:
    def test_malloc_free_reuse(self, run_c):
        r = run_c(r"""
        int main() {
            char *a = (char *)malloc(100);
            char *b;
            free(a);
            b = (char *)malloc(50);    // fits in the freed block
            printf("%d\n", a == b);
            return 0;
        }
        """)
        assert r.output_text() == "1\n"

    def test_calloc_zeroes(self, run_c):
        r = run_c(r"""
        int main() {
            long *p = (long *)calloc(10, sizeof(long));
            long i, sum = 0;
            for (i = 0; i < 10; i++) sum += p[i];
            printf("%d\n", sum);
            return 0;
        }
        """)
        assert r.output_text() == "0\n"

    def test_realloc_preserves(self, run_c):
        r = run_c(r"""
        int main() {
            long *p = (long *)malloc(2 * sizeof(long));
            p[0] = 11; p[1] = 22;
            p = (long *)realloc(p, 64 * sizeof(long));
            p[63] = 33;
            printf("%d %d %d\n", p[0], p[1], p[63]);
            return 0;
        }
        """)
        assert r.output_text() == "11 22 33\n"

    def test_many_allocations(self, run_c):
        r = run_c(r"""
        int main() {
            long i;
            long *ptrs[100];
            for (i = 0; i < 100; i++) {
                ptrs[i] = (long *)malloc(24);
                *ptrs[i] = i;
            }
            long sum = 0;
            for (i = 0; i < 100; i++) sum += *ptrs[i];
            printf("%d\n", sum);
            return 0;
        }
        """)
        assert r.output_text() == "4950\n"

    def test_sbrk_direct(self, run_c):
        r = run_c(r"""
        int main() {
            char *a = (char *)sbrk(4096);
            char *b = (char *)sbrk(0);
            printf("%d\n", b - a);
            return 0;
        }
        """)
        assert r.output_text() == "4096\n"


class TestVarargs:
    def test_user_variadic_function(self, run_c):
        r = run_c(r"""
        long sum_n(long n, ...) {
            long *ap = __va_start();
            long total = 0;
            long i;
            for (i = 0; i < n; i++) total += ap[i];
            return total;
        }
        int main() {
            printf("%d %d\n", sum_n(3, 10, 20, 30),
                   sum_n(8, 1, 2, 3, 4, 5, 6, 7, 8));
            return 0;
        }
        """)
        assert r.output_text() == "60 36\n"

    def test_varargs_spanning_stack(self, run_c):
        """More than 6 total args: the va area and stack args are contiguous."""
        r = run_c(r"""
        long pick(long idx, ...) {
            long *ap = __va_start();
            return ap[idx];
        }
        int main() {
            printf("%d %d %d\n",
                   pick(0, 100, 200, 300, 400, 500, 600, 700, 800),
                   pick(4, 100, 200, 300, 400, 500, 600, 700, 800),
                   pick(7, 100, 200, 300, 400, 500, 600, 700, 800));
            return 0;
        }
        """)
        assert r.output_text() == "100 500 800\n"


class TestMisc:
    def test_rand_deterministic(self, run_c):
        src = r"""
        int main() {
            long i;
            srand(42);
            for (i = 0; i < 5; i++) printf("%d ", rand() % 100);
            printf("\n");
            return 0;
        }
        """
        a = run_c(src).output_text()
        b = run_c(src).output_text()
        assert a == b
        values = [int(x) for x in a.split()]
        assert len(values) == 5 and all(0 <= v < 100 for v in values)

    def test_ctype(self, run_c):
        r = run_c(r"""
        int main() {
            printf("%d%d%d%d%d%d\n", isdigit('5'), isdigit('x'),
                   isalpha('g'), isalpha('!'), isspace(' '), isspace('.'));
            return 0;
        }
        """)
        assert r.output_text() == "101010\n"

    def test_labs(self, run_c):
        r = run_c('int main() { printf("%d %d\\n", labs(-7), labs(7)); '
                  'return 0; }')
        assert r.output_text() == "7 7\n"

    def test_exit_status(self, run_c):
        r = run_c(r"""
        int main() {
            printf("before\n");
            exit(3);
            printf("after\n");
            return 0;
        }
        """)
        assert r.status == 3
        assert r.output_text() == "before\n"
