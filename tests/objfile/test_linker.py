"""Linker tests: merging, layout, GOT, archives, relocation, relocate_unit."""

import struct

import pytest

from repro.isa import encoding
from repro.isa.asm import assemble
from repro.objfile import BSS, DATA, LITA, TEXT, Module, RelocType
from repro.objfile.archive import Archive
from repro.objfile.linker import (GP_OFFSET, LinkConfig, LinkError,
                                  apply_relocation, link, relocate_unit)


def _word(mod, addr):
    text = mod.section(TEXT)
    return struct.unpack_from("<I", text.data, addr - text.vaddr)[0]


def test_simple_link_layout():
    main = assemble("""
        .globl __start
__start: call f
        ret
        .data
d:      .quad 1
    """, "main.o")
    helper = assemble("""
        .globl f
f:      ret
        .bss
        .globl buf
buf:    .space 64
    """, "f.o")
    exe = link([main, helper])
    assert exe.linked
    text = exe.section(TEXT)
    assert text.vaddr == 0x0010_0000
    assert exe.entry == text.vaddr
    assert exe.addr_of("f") == text.vaddr + 8
    lita = exe.section(LITA)
    assert lita.vaddr >= 0x0200_0000
    assert exe.gp_value == lita.vaddr + GP_OFFSET
    data = exe.section(DATA)
    bss = exe.section(BSS)
    assert data.vaddr >= lita.vaddr + lita.size
    assert bss.vaddr >= data.vaddr + data.size
    assert exe.addr_of("buf") == bss.vaddr
    assert exe.addr_of("__end") >= bss.vaddr + 64


def test_cross_module_call_resolved():
    main = assemble(".globl __start\n__start: call f\n ret", "main.o")
    helper = assemble(".globl f\nf: ret", "f.o")
    exe = link([main, helper])
    word = _word(exe, exe.entry)
    disp = word & 0x1FFFFF
    if disp & (1 << 20):
        disp -= 1 << 21
    assert exe.entry + 4 + 4 * disp == exe.addr_of("f")


def test_undefined_symbol_rejected():
    main = assemble(".globl __start\n__start: call nowhere", "main.o")
    with pytest.raises(LinkError, match="nowhere"):
        link([main])


def test_duplicate_global_rejected():
    a = assemble(".globl f\nf: ret", "a.o")
    b = assemble(".globl f\nf: nop", "b.o")
    c = assemble(".globl __start\n__start: ret", "c.o")
    with pytest.raises(LinkError, match="multiply defined"):
        link([c, a, b])


def test_local_symbols_do_not_collide():
    a = assemble(".globl __start\n__start: br done\ndone: ret", "a.o")
    b = assemble(".globl f\nf: br done\ndone: nop\n ret", "b.o")
    exe = link([a, b])
    names = {s.name for s in exe.symtab}
    assert "done@0" in names and "done@1" in names


def test_missing_entry_rejected():
    mod = assemble(".globl f\nf: ret", "f.o")
    with pytest.raises(LinkError, match="entry"):
        link([mod])


def test_entry_optional_for_units():
    mod = assemble(".globl f\nf: ret", "f.o")
    unit = link([mod], config=LinkConfig(require_entry=False))
    assert unit.linked and unit.entry == 0


def test_got_slots_shared_and_patched():
    mod = assemble("""
        .globl __start
__start:
        la a0, msg
        la a1, msg          # same symbol: same slot
        la a2, other
        ret
        .data
msg:    .asciiz "x"
other:  .quad 0
    """, "m.o")
    exe = link([mod])
    lita = exe.section(LITA)
    assert lita.size == 16       # two distinct slots
    slot0 = struct.unpack_from("<Q", lita.data, 0)[0]
    slot1 = struct.unpack_from("<Q", lita.data, 8)[0]
    assert {slot0, slot1} == {exe.addr_of("msg@0"), exe.addr_of("other@0")}
    # The two 'msg' loads carry identical displacements.
    w0, w1 = _word(exe, exe.entry), _word(exe, exe.entry + 4)
    assert (w0 & 0xFFFF) == (w1 & 0xFFFF)


def test_gp_materialization():
    mod = assemble(".globl __start\n__start: ldgp\n ret", "m.o")
    exe = link([mod])
    w_hi, w_lo = _word(exe, exe.entry), _word(exe, exe.entry + 4)
    hi = w_hi & 0xFFFF
    lo = w_lo & 0xFFFF
    hi_signed = hi - 0x10000 if hi & 0x8000 else hi
    lo_signed = lo - 0x10000 if lo & 0x8000 else lo
    assert (hi_signed << 16) + lo_signed == exe.gp_value


def test_quad_reloc_to_text_symbol():
    mod = assemble("""
        .globl __start
__start: ret
        .data
ptr:    .quad __start
    """, "m.o")
    exe = link([mod])
    data = exe.section(DATA)
    value = struct.unpack_from("<Q", data.data, 0)[0]
    assert value == exe.entry


def test_archive_pull_on_demand():
    lib = Archive([
        assemble(".globl used\nused: call also\n ret", "used.o"),
        assemble(".globl unused\nunused: ret", "unused.o"),
        assemble(".globl also\nalso: ret", "also.o"),
    ])
    main = assemble(".globl __start\n__start: call used\n ret", "main.o")
    exe = link([main], [lib])
    names = {s.name for s in exe.symtab if s.defined}
    assert "used" in names and "also" in names
    assert "unused" not in names


def test_archive_roundtrip():
    lib = Archive([assemble(".globl f\nf: ret", "f.o")], name="libx.a")
    back = Archive.from_bytes(lib.to_bytes())
    assert back.member_defining("f") is not None
    assert back.member_defining("g") is None
    assert back.defined_symbols() == {"f"}


def test_text_overrun_rejected():
    mod = assemble(".globl __start\n__start: ret", "m.o")
    cfg = LinkConfig(text_base=0x1000, data_base=0x1000)
    with pytest.raises(LinkError, match="overruns"):
        link([mod], config=cfg)


def test_relocate_unit_shifts_everything():
    mod = assemble("""
        .globl f
f:      ldgp
        la a0, msg
        laa a1, f
        ret
        .data
msg:    .asciiz "hi"
        .align 3
ptr:    .quad f
    """, "m.o")
    unit = link([mod], config=LinkConfig(require_entry=False))
    old_f = unit.addr_of("f")
    old_gp = unit.gp_value

    relocate_unit(unit, 0x0050_0000, 0x0060_0000)
    new_f = unit.addr_of("f")
    assert new_f == 0x0050_0000
    assert unit.gp_value != old_gp
    assert unit.section(LITA).vaddr >= 0x0060_0000
    # The GOT slot for msg now holds the shifted address.
    lita = unit.section(LITA)
    slot = struct.unpack_from("<Q", lita.data, 0)[0]
    assert slot == unit.addr_of("msg@0")
    # The laa pair resolves to the new text address.  Layout of f:
    # ldgp (2 words), la (1 word), then the laa pair at +12/+16.
    w_hi, w_lo = _word(unit, new_f + 12), _word(unit, new_f + 16)
    hi = w_hi & 0xFFFF
    lo = w_lo & 0xFFFF
    hi_s = hi - 0x10000 if hi & 0x8000 else hi
    lo_s = lo - 0x10000 if lo & 0x8000 else lo
    assert (hi_s << 16) + lo_s == new_f
    # The data-segment function pointer tracks the move too.
    data = unit.section(DATA)
    assert struct.unpack_from("<Q", data.data, 8)[0] == new_f
    assert old_f != new_f


def test_relocate_unit_requires_linked():
    mod = assemble("f: ret", "m.o")
    with pytest.raises(LinkError):
        relocate_unit(mod, 0x1000, 0x2000)


def test_branch_out_of_range_at_link_time():
    # Force a cross-module call whose displacement cannot reach.
    far = assemble(".globl f\nf: ret", "f.o")
    main = assemble(".globl __start\n__start: call f\n ret", "main.o")
    cfg = LinkConfig(text_base=0x0010_0000, data_base=0x7000_0000)
    # Pad the text segment with a huge module between them.
    filler_src = ".text\n" + "nop\n" * 0x130000
    filler = assemble(filler_src, "filler.o")
    with pytest.raises(LinkError, match="out of range"):
        link([main, filler, far], config=cfg)


def test_linker_symbols_present():
    mod = assemble(".globl __start\n__start: ret", "m.o")
    exe = link([mod])
    for name in ("_gp", "__text_start", "__text_end", "__data_start",
                 "__bss_start", "__end"):
        assert exe.symtab[name].defined, name
    assert exe.symtab["__text_start"].value == exe.section(TEXT).vaddr
