"""WOF module serialization round-trips and section/symbol semantics."""

import pytest

from repro.objfile import (BSS, DATA, TEXT, Module, ObjError, Relocation,
                           RelocType, Section, SymBind, SymKind)
from repro.objfile.symtab import Symbol, SymbolTable


def test_section_append_and_reserve():
    sec = Section(TEXT)
    assert sec.append(b"\x01\x02") == 0
    assert sec.append(b"\x03") == 2
    assert sec.size == 3
    assert sec.reserve(5) == 3
    assert sec.size == 8
    assert bytes(sec.data[3:]) == b"\x00" * 5


def test_bss_reserve_only():
    sec = Section(BSS)
    assert sec.reserve(16) == 0
    assert sec.size == 16
    with pytest.raises(ValueError):
        sec.append(b"x")


def test_align_to():
    sec = Section(DATA)
    sec.append(b"abc")
    sec.align_to(8)
    assert sec.size == 8
    sec.align_to(8)
    assert sec.size == 8      # already aligned: no-op


def test_contains_addr():
    sec = Section(DATA)
    sec.append(b"\x00" * 16)
    assert not sec.contains_addr(0x1000)   # not laid out yet
    sec.vaddr = 0x1000
    assert sec.contains_addr(0x1000)
    assert sec.contains_addr(0x100F)
    assert not sec.contains_addr(0x1010)


def test_symbol_define_and_redefine():
    tab = SymbolTable()
    tab.define("f", TEXT, 0, kind=SymKind.FUNC, bind=SymBind.GLOBAL)
    with pytest.raises(ValueError):
        tab.define("f", TEXT, 4)
    assert tab["f"].kind is SymKind.FUNC


def test_refer_creates_undefined():
    tab = SymbolTable()
    sym = tab.refer("printf")
    assert not sym.defined
    assert tab.undefined() == [sym]


def test_module_roundtrip():
    mod = Module(name="m.o")
    mod.section(TEXT).append(b"\x01\x02\x03\x04")
    mod.section(DATA).append(b"hello")
    mod.section(BSS).reserve(32)
    mod.symtab.define("main", TEXT, 0, kind=SymKind.FUNC,
                      bind=SymBind.GLOBAL, size=4)
    mod.symtab.refer("printf")
    mod.relocs.append(Relocation(TEXT, 0, RelocType.BRANCH21, "printf", 0))
    mod.relocs.append(Relocation(DATA, 0, RelocType.QUAD64, "main", 8))
    mod.meta["text_base"] = 0x100000
    mod.pc_map[0x100004] = 0x100000

    back = Module.from_bytes(mod.to_bytes())
    assert back.name == "m.o"
    assert bytes(back.section(TEXT).data) == b"\x01\x02\x03\x04"
    assert bytes(back.section(DATA).data) == b"hello"
    assert back.section(BSS).bss_size == 32
    main = back.symtab["main"]
    assert main.kind is SymKind.FUNC and main.bind is SymBind.GLOBAL
    assert main.size == 4
    assert not back.symtab["printf"].defined
    assert len(back.relocs) == 2
    assert back.relocs[0].type is RelocType.BRANCH21
    assert back.relocs[1].addend == 8
    assert back.meta["text_base"] == 0x100000
    assert back.pc_map == {0x100004: 0x100000}


def test_linked_module_roundtrip():
    mod = Module(name="a.out", linked=True, entry=0x100000,
                 gp_value=0x200_8000, analysis_gp=0x180_8000)
    sec = mod.section(TEXT)
    sec.append(b"\x00" * 8)
    sec.vaddr = 0x100000
    back = Module.from_bytes(mod.to_bytes())
    assert back.linked and back.entry == 0x100000
    assert back.gp_value == 0x200_8000
    assert back.analysis_gp == 0x180_8000
    assert back.section(TEXT).vaddr == 0x100000


def test_bad_magic_rejected():
    with pytest.raises(ObjError):
        Module.from_bytes(b"NOPE" + b"\x00" * 40)


def test_truncated_rejected():
    mod = Module()
    mod.section(TEXT).append(b"\x00" * 4)
    blob = mod.to_bytes()
    with pytest.raises(ObjError):
        Module.from_bytes(blob[:len(blob) // 2])


def test_unknown_section_rejected():
    with pytest.raises(ObjError):
        Module().section(".weird")


def test_addr_of_requires_linked():
    mod = Module()
    mod.symtab.define("x", DATA, 0)
    with pytest.raises(ObjError):
        mod.addr_of("x")


def test_functions_sorted():
    mod = Module()
    mod.symtab.define("b", TEXT, 8, kind=SymKind.FUNC)
    mod.symtab.define("a", TEXT, 0, kind=SymKind.FUNC)
    mod.symtab.define("d", DATA, 4, kind=SymKind.OBJECT)
    assert [s.name for s in mod.functions_sorted()] == ["a", "b"]
