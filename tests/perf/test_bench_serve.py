"""The bench report's serve section: schema, regression gate, and the
committed baseline's daemon-speedup acceptance floor."""

import pytest

from repro.perf.bench import (compare_reports, load_report,
                              validate_report)

_HOST = {"implementation": "CPython", "machine": "x86_64",
         "system": "Linux"}


def _serve_report(warm_rps, host=_HOST):
    return {
        "host": dict(host),
        "tools": [],
        "interpreter": {},
        "serve": {"workload": "fib", "requests": 6, "jobs": 2,
                  "cold_rps": 3.0, "warm_rps": warm_rps,
                  "speedup": round(warm_rps / 3.0, 2),
                  "dedup_burst": 6, "dedup_hits": 5,
                  "dedup_latency_ms_p50": 40.0},
    }


class TestServeCompareLeg:
    def test_throughput_collapse_flagged_same_host(self):
        regressions = compare_reports(_serve_report(15.0),
                                      _serve_report(2.0))
        assert any("serve" in r for r in regressions)

    def test_jitter_within_threshold_passes(self):
        assert not compare_reports(_serve_report(15.0),
                                   _serve_report(11.0))

    def test_cross_host_serve_numbers_never_gate(self):
        other = dict(_HOST, machine="arm64")
        assert not compare_reports(_serve_report(15.0),
                                   _serve_report(1.0, host=other))

    def test_reports_without_serve_section_compare_clean(self):
        old = _serve_report(15.0)
        del old["serve"]
        assert not compare_reports(old, _serve_report(1.0))


class TestServeSchema:
    def test_malformed_serve_section_rejected(self):
        report = {
            "schema": "repro-bench-interp/v4",
            "created": "x", "host": {}, "config": {},
            "interpreter": {"w": {"insts": 1, "cycles": 1,
                                  "fused_ips": 1, "simple_ips": 1,
                                  "speedup": 1.0, "jit_ips": 1,
                                  "jit_speedup": 1.0}},
            "tools": [], "overhead": {},
            "serve": {"workload": "fib"},       # missing the numbers
        }
        with pytest.raises(ValueError):
            validate_report(report)


class TestCommittedBaseline:
    def test_baseline_carries_serve_section_with_speedup_floor(self):
        """Acceptance: warm-daemon throughput >= 3x cold-process,
        recorded in the committed BENCH_interp.json."""
        report = load_report()
        if report is None:
            pytest.skip("no committed baseline")
        assert "serve" in report, \
            "committed baseline lost its serve section"
        serve = report["serve"]
        assert serve["speedup"] >= 3.0
        assert serve["warm_rps"] > serve["cold_rps"]
        # The dedup burst must have coalesced onto one execution.
        assert serve["dedup_hits"] == serve["dedup_burst"] - 1