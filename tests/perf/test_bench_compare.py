"""The --compare regression gate: baseline clamping and absolute slack.

A baseline cell whose excess cycles are zero (or negative — possible on
cells where instrumentation happened to measure as free) has no
meaningful *relative* limit; the gate clamps the baseline to zero and
grants ``EXCESS_CYCLE_FLOOR`` cycles of absolute slack instead of
flagging any nonzero growth as an infinite-percentage regression.
"""

from repro.perf.bench import EXCESS_CYCLE_FLOOR, compare_reports


def _report(excess, base=1_000_000):
    return {"tools": [{"workload": "w", "tool": "t", "opt": "O4",
                       "base_cycles": base,
                       "instr_cycles": base + excess}]}


class TestCompareExcessClamp:
    def test_real_regression_still_flagged(self):
        assert compare_reports(_report(10_000), _report(12_000))

    def test_within_threshold_growth_passes(self):
        assert not compare_reports(_report(10_000), _report(10_900))

    def test_zero_baseline_growth_within_floor_passes(self):
        assert not compare_reports(_report(0), _report(EXCESS_CYCLE_FLOOR))

    def test_zero_baseline_growth_beyond_floor_flagged(self):
        assert compare_reports(_report(0),
                               _report(EXCESS_CYCLE_FLOOR * 50))

    def test_negative_baseline_does_not_invert_threshold(self):
        # Clamped limit is floor cycles above zero, never negative:
        # shrinking excess is clean, real growth still gates.
        assert not compare_reports(_report(-5_000), _report(-4_000))
        assert compare_reports(_report(-5_000),
                               _report(EXCESS_CYCLE_FLOOR * 50))

    def test_new_cells_are_never_regressions(self):
        assert not compare_reports({"tools": []},
                                   _report(10_000_000))
