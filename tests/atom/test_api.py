"""AtomContext query/traversal API tests (paper Section 3 primitives)."""

import pytest

from repro.atom import (AtomError, InstTypeCall, InstTypeCondBr,
                        InstTypeLoad, InstTypeMemRef, InstTypeRet,
                        InstTypeStore, InstTypeSyscall)
from repro.atom.api import AtomContext
from repro.isa import registers as R
from repro.mlc import build_executable
from repro.om import build_ir

SOURCE = r"""
long table[4] = { 2, 4, 6, 8 };

long lookup(long i) {
    return table[i & 3];
}

int main() {
    return (int)(lookup(1) + lookup(2));
}
"""


@pytest.fixture(scope="module")
def ctx():
    return AtomContext(build_ir(build_executable([SOURCE])))


class TestTraversal:
    def test_classic_walk_covers_everything(self, ctx):
        procs = blocks = insts = 0
        p = ctx.GetFirstProc()
        while p is not None:
            procs += 1
            b = ctx.GetFirstBlock(p)
            while b is not None:
                blocks += 1
                i = ctx.GetFirstInst(b)
                while i is not None:
                    insts += 1
                    i = ctx.GetNextInst(i)
                b = ctx.GetNextBlock(b)
            p = ctx.GetNextProc(p)
        assert procs == len(list(ctx.procs()))
        assert blocks == len(list(ctx.blocks()))
        assert insts == ctx.GetProgramInstCount()

    def test_first_last_inst(self, ctx):
        main = ctx.GetNamedProc("main")
        block = ctx.GetFirstBlock(main)
        assert ctx.GetFirstInst(block) is block.insts[0]
        assert ctx.GetLastInst(block) is block.insts[-1]

    def test_named_proc_missing(self, ctx):
        assert ctx.GetNamedProc("no_such") is None

    def test_counts_consistent(self, ctx):
        lookup = ctx.GetNamedProc("lookup")
        total = sum(ctx.GetBlockInstCount(b) for b in ctx.blocks(lookup))
        assert total == ctx.GetProcInstCount(lookup)


class TestQueries:
    def test_proc_metadata(self, ctx):
        lookup = ctx.GetNamedProc("lookup")
        assert ctx.ProcName(lookup) == "lookup"
        assert ctx.ProcPC(lookup) == lookup.orig_addr
        assert ctx.BlockPC(ctx.GetFirstBlock(lookup)) == lookup.orig_addr

    def test_inst_types_partition(self, ctx):
        """Every load is a memref; no instruction is both load and store."""
        for ir in ctx.insts():
            load = ctx.IsInstType(ir, InstTypeLoad)
            store = ctx.IsInstType(ir, InstTypeStore)
            mem = ctx.IsInstType(ir, InstTypeMemRef)
            assert not (load and store)
            assert mem == (load or store)

    def test_memory_queries(self, ctx):
        loads = [i for i in ctx.insts(ctx.GetNamedProc("lookup"))
                 if ctx.IsInstType(i, InstTypeLoad)]
        assert loads
        for ir in loads:
            assert ctx.InstMemAccessSize(ir) in (1, 2, 4, 8)
            assert 0 <= ctx.InstMemBaseReg(ir) < 32
            ctx.InstMemDisp(ir)

    def test_memory_queries_reject_non_memory(self, ctx):
        rets = [i for i in ctx.insts() if ctx.IsInstType(i, InstTypeRet)]
        with pytest.raises(AtomError):
            ctx.InstMemAccessSize(rets[0])
        with pytest.raises(AtomError):
            ctx.InstMemBaseReg(rets[0])

    def test_branch_target_of_call(self, ctx):
        main = ctx.GetNamedProc("main")
        calls = [i for i in ctx.insts(main)
                 if ctx.IsInstType(i, InstTypeCall)]
        lookup = ctx.GetNamedProc("lookup")
        targets = {ctx.InstBranchTarget(i) for i in calls}
        assert ctx.ProcPC(lookup) in targets

    def test_reg_defs_uses(self, ctx):
        for ir in ctx.insts():
            defs = ctx.InstRegDefs(ir)
            uses = ctx.InstRegUses(ir)
            assert R.ZERO not in defs and R.ZERO not in uses

    def test_opcode_and_cycles(self, ctx):
        for ir in ctx.insts(ctx.GetNamedProc("lookup")):
            assert isinstance(ctx.InstOpcode(ir), str)
            assert ctx.InstCycles(ir) >= 1

    def test_syscall_instrumentable(self, ctx):
        sys_insts = [i for i in ctx.insts()
                     if ctx.IsInstType(i, InstTypeSyscall)]
        assert sys_insts            # _exit's trap at least

    def test_inst_pc_within_original_text(self, ctx):
        pcs = [ctx.InstPC(i) for i in ctx.insts()]
        assert pcs == sorted(pcs)          # layout order
        assert len(set(pcs)) == len(pcs)   # unique


class TestProtoRegistry:
    def test_conflicting_redefinition_rejected(self, ctx):
        ctx.AddCallProto("Once(int)")
        ctx.AddCallProto("Once(int)")      # identical: fine
        with pytest.raises(AtomError, match="conflicting"):
            ctx.AddCallProto("Once(long, long)")
