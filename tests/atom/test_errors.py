"""ATOM failure modes: layout overflow, missing hooks, bare-metal units."""

import pytest

from repro.atom import (AtomError, LayoutError, ProcBefore, ProgramAfter,
                        instrument_executable)
from repro.isa.asm import assemble
from repro.machine import run_module
from repro.mlc import build_analysis_unit, build_executable
from repro.objfile.linker import LinkConfig, link


def test_analysis_too_big_for_gap():
    """A deliberately tiny text-data gap must produce a clean LayoutError."""
    app_src = """
        .globl __start
        .ent __start
__start:
        clr a0
        li v0, 1
        sys
        .end __start
        .globl _exit
        .ent _exit
_exit:
        li v0, 1
        sys
        halt
        .end _exit
    """
    app = link([assemble(app_src, "tiny.s")],
               config=LinkConfig(text_base=0x0010_0000,
                                 data_base=0x0010_2000))
    anal = build_analysis_unit(["""
    long big[100000];
    void Tick(void) { big[0]++; }
    """])

    def Instrument(iargc, iargv, atom):
        atom.AddCallProto("Tick()")
        atom.AddCallProc(atom.GetFirstProc(), ProcBefore, "Tick")

    with pytest.raises(LayoutError, match="gap"):
        instrument_executable(app, Instrument, anal)


def test_program_after_without_exit_proc():
    """ProgramAfter needs a _exit procedure to hook."""
    app = link([assemble("""
        .globl __start
        .ent __start
__start:
        clr a0
        li v0, 1
        sys
        .end __start
    """, "noexit.s")])
    anal = build_analysis_unit(["void Done(void) { }"])

    def Instrument(iargc, iargv, atom):
        atom.AddCallProto("Done()")
        atom.AddCallProgram(ProgramAfter, "Done")

    with pytest.raises(AtomError, match="_exit"):
        instrument_executable(app, Instrument, anal)


def test_bare_assembly_analysis_unit():
    """An analysis unit written in pure assembly (no libc, no
    __libc_init) still works: the veneer simply skips initialization."""
    app = build_executable(["int main() { return 7; }"])
    base = run_module(app)
    anal_asm = assemble("""
        .text
        .globl  RawTick
        .ent    RawTick
RawTick:
        la      t0, hits
        ldq     t1, 0(t0)
        addq    t1, 1, t1
        stq     t1, 0(t0)
        ret     (ra)
        .end    RawTick
        .data
        .align 3
        .globl  hits
hits:   .quad 0
    """, "raw.s")
    anal = link([anal_asm], config=LinkConfig(require_entry=False))

    def Instrument(iargc, iargv, atom):
        atom.AddCallProto("RawTick()")
        atom.AddCallProc(atom.GetNamedProc("main"), ProcBefore, "RawTick")

    res = instrument_executable(app, Instrument, anal)
    result = run_module(res.module)
    assert result.status == base.status == 7


def test_partitioned_heap_requires_libc_sbrk():
    app = build_executable(["int main() { return 0; }"])
    anal = link([assemble("""
        .globl NoOp
        .ent NoOp
NoOp:   ret
        .end NoOp
    """, "n.s")], config=LinkConfig(require_entry=False))

    def Instrument(iargc, iargv, atom):
        atom.AddCallProto("NoOp()")
        atom.AddCallProc(atom.GetFirstProc(), ProcBefore, "NoOp")

    with pytest.raises(AtomError, match="sbrk"):
        instrument_executable(app, Instrument, anal,
                              heap_mode="partitioned")


def test_symbol_collision_rejected():
    """An application defining a name in ATOM's reserved partition."""
    app = build_executable(["int main() { return 0; }"])
    # Sneak a colliding symbol into the application's table.
    from repro.objfile.symtab import SymBind, Symbol
    app.symtab.add(Symbol(name="anal$printf", is_abs=True, value=1,
                          bind=SymBind.GLOBAL))
    anal = build_analysis_unit(["void T(void) { printf(\"x\"); }"])

    def Instrument(iargc, iargv, atom):
        atom.AddCallProto("T()")
        atom.AddCallProc(atom.GetNamedProc("main"), ProcBefore, "T")

    with pytest.raises(AtomError, match="collision"):
        instrument_executable(app, Instrument, anal)
