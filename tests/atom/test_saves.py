"""Unit tests for the register-save machinery (wrappers, delayed saves,
in-frame transformation)."""

import pytest

from repro.atom.saves import (SAVE_CANDIDATES, OptLevel, compute_plans,
                              wrapper_body)
from repro.isa import registers as R
from repro.mlc import build_analysis_unit
from repro.om import build_ir

SIMPLE = r"""
long counter;
void Tick(long n) { counter += n; }
"""

CHAINED = r"""
long total;
long helper(long x) {
    char buf[64];
    sprintf(buf, "%d and %d and %d", x, x * 2, x * 3);
    return strlen(buf);
}
void Validate(long v) {
    if (v < 0) total += helper(v);   // error path only
    total += 1;
}
"""

LOOPED = r"""
long total;
long leaf(long x) { return x + 1; }
void Spin(long n) {
    long i;
    for (i = 0; i < n; i++) total += leaf(i);   // call inside a loop
}
"""


def plans_for(source: str, targets: dict, level):
    ir = build_ir(build_analysis_unit([source]))
    return ir, compute_plans(ir, targets, level)


class TestSaveSets:
    def test_o0_saves_everything(self):
        _ir, plans = plans_for(SIMPLE, {"Tick": 1}, OptLevel.O0)
        plan = plans.plan("Tick")
        expected = SAVE_CANDIDATES - {R.A0, R.RA}
        assert set(plan.saves) == expected

    def test_o1_saves_only_modified(self):
        _ir, plans = plans_for(SIMPLE, {"Tick": 1}, OptLevel.O1)
        plan = plans.plan("Tick")
        assert len(plan.saves) < len(SAVE_CANDIDATES) - 2
        assert R.GP in plan.saves          # Tick touches a global
        assert R.A0 not in plan.saves      # inline-saved at every site
        assert R.RA not in plan.saves      # wrapper handles its own ra

    def test_unknown_routine_rejected(self):
        with pytest.raises(KeyError, match="Nope"):
            plans_for(SIMPLE, {"Nope": 0}, OptLevel.O1)

    def test_save_order_deterministic(self):
        _ir, a = plans_for(SIMPLE, {"Tick": 1}, OptLevel.O1)
        _ir, b = plans_for(SIMPLE, {"Tick": 1}, OptLevel.O1)
        assert a.plan("Tick").saves == b.plan("Tick").saves


class TestDelayedSaves:
    def test_error_path_routine_gets_delayed(self):
        ir, plans = plans_for(CHAINED, {"Validate": 1}, OptLevel.O1)
        plan = plans.plan("Validate")
        assert plan.delayed
        # v0 and pv always join the delayed set (callee return values
        # and indirect-call scratch must survive).
        assert R.V0 in plan.saves and R.PV in plan.saves
        # Internal wrappers were appended for the redirected callees.
        names = {p.name for p in ir.procs}
        assert "__atomiw$helper" in names

    def test_delayed_smaller_than_full(self):
        _ir, delayed = plans_for(CHAINED, {"Validate": 1}, OptLevel.O1)
        _ir, full = plans_for(CHAINED, {"Validate": 1}, OptLevel.O0)
        assert len(delayed.plan("Validate").saves) < \
            len(full.plan("Validate").saves)

    def test_call_in_loop_disables_delay(self):
        ir, plans = plans_for(LOOPED, {"Spin": 1}, OptLevel.O1)
        plan = plans.plan("Spin")
        assert not plan.delayed
        names = {p.name for p in ir.procs}
        assert not any(n.startswith("__atomiw$") for n in names)

    def test_calls_redirected_in_ir(self):
        ir, plans = plans_for(CHAINED, {"Validate": 1}, OptLevel.O1)
        validate = ir.find_proc("Validate")
        callees = {i.target[1] for i in validate.instructions()
                   if i.inst.is_call() and i.target}
        assert callees and all(c.startswith("__atomiw$") for c in callees)


class TestWrapperBody:
    def test_near_wrapper_uses_bsr(self):
        insts = wrapper_body((R.T0, R.GP), target=("symbol", "F"))
        mnems = [i.inst.mnemonic for i in insts]
        assert "bsr" in mnems and "jsr" not in mnems
        assert mnems[0] == "lda" and mnems[-1] == "ret"

    def test_far_wrapper_loads_pv(self):
        insts = wrapper_body((R.T0,), target=("absolute", "F"))
        mnems = [i.inst.mnemonic for i in insts]
        assert "jsr" in mnems and "ldah" in mnems
        # pv is implicitly added to the save list.
        saved = {i.inst.ra for i in insts if i.inst.mnemonic == "stq"}
        assert R.PV in saved

    def test_saves_balanced(self):
        insts = wrapper_body((R.T0, R.T1, R.V0), target=("symbol", "F"))
        stores = [i for i in insts if i.inst.mnemonic == "stq"]
        loads = [i for i in insts if i.inst.mnemonic == "ldq"]
        assert len(stores) == len(loads)          # incl. ra
        assert {(i.inst.ra, i.inst.disp) for i in stores} == \
            {(i.inst.ra, i.inst.disp) for i in loads}

    def test_stack_args_copied(self):
        insts = wrapper_body((), target=("symbol", "F"), copy_args=8)
        frame = -insts[0].inst.disp
        # Copies read from the caller frame (disp >= our frame size).
        copies = [i for i in insts
                  if i.inst.mnemonic == "ldq" and i.inst.ra == R.AT
                  and i.inst.disp >= frame]
        assert len(copies) == 2                   # args 7 and 8
        stores = [i for i in insts
                  if i.inst.mnemonic == "stq" and i.inst.ra == R.AT
                  and i.inst.disp < 16]
        assert len(stores) == 2                   # landed at sp+0, sp+8

    def test_frame_is_16_aligned(self):
        for saves in ((), (R.T0,), (R.T0, R.T1, R.T2)):
            insts = wrapper_body(saves, target=("symbol", "F"))
            assert insts[0].inst.disp % 16 == 0


class TestInFrame:
    def test_frame_bumped_and_refs_shifted(self):
        ir, plans = plans_for(SIMPLE, {"Tick": 1}, OptLevel.O2)
        plan = plans.plan("Tick")
        tick = ir.find_proc("Tick")
        if plan.mode != "inframe":
            pytest.skip("Tick compiled frameless; wrapper fallback is "
                        "the correct behaviour")
        # The prologue adjust reflects the bumped frame.
        first = tick.blocks[0].insts[0].inst
        assert first.mnemonic == "lda" and first.ra == R.SP
        assert -first.disp == tick.frame_size
        assert tick.frame_size % 16 == 0

    def test_inframe_on_framed_routine(self):
        source = r"""
        long log[64];
        long n;
        void Record(long a, long b) {
            long tmp[4];
            tmp[0] = a; tmp[1] = b; tmp[2] = a + b; tmp[3] = a * b;
            log[n & 63] = tmp[0] + tmp[2] + tmp[3];
            n++;
        }
        """
        ir, plans = plans_for(source, {"Record": 2}, OptLevel.O2)
        plan = plans.plan("Record")
        assert plan.mode == "inframe"
        record = ir.find_proc("Record")
        stores = [i.inst for i in record.instructions()
                  if i.inst.mnemonic == "stq" and i.inst.rb == R.SP]
        saved_regs = {s.ra for s in stores}
        assert set(plan.saves) <= saved_regs
