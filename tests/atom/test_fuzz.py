"""Fuzzing ATOM with randomized instrumentation plans.

Hypothesis picks arbitrary subsets of instrumentation points, placements,
argument shapes, and optimization levels; whatever it picks, the
instrumented program must behave exactly like the uninstrumented one and
the analysis counters must be internally consistent.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.atom import (BlockAfter, BlockBefore, InstBefore, OptLevel,
                        ProcAfter, ProcBefore, ProgramAfter,
                        instrument_executable)
from repro.machine import run_module
from repro.mlc import build_analysis_unit, build_executable

APP = r"""
long fib(long n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
long grid[8][8];

int main() {
    long i, j, acc = 0;
    for (i = 0; i < 8; i++)
        for (j = 0; j < 8; j++)
            grid[i][j] = fib((i + j) % 10);
    for (i = 0; i < 8; i++) acc += grid[i][i];
    printf("acc=%d\n", acc);
    return 0;
}
"""

ANALYSIS = r"""
long counters[16];
void Bump(long n) { counters[n & 15]++; }
void BumpBy(long n, long k) { counters[n & 15] += k; }
void Dump(void) {
    FILE *f = fopen("fuzz.out", "w");
    long i;
    for (i = 0; i < 16; i++) fprintf(f, "%d\n", counters[i]);
    fclose(f);
}
"""

_app = None
_anal = None
_base = None


def _fixtures():
    global _app, _anal, _base
    if _app is None:
        _app = build_executable([APP])
        _anal = build_analysis_unit([ANALYSIS])
        _base = run_module(_app)
    return _app, _anal, _base


plan_entry = st.tuples(
    st.sampled_from(["proc_before", "proc_after", "block_before",
                     "block_after", "inst_before"]),
    st.integers(min_value=0, max_value=10_000),   # point selector
    st.sampled_from(["Bump", "BumpBy"]),
    st.integers(min_value=0, max_value=15),
)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(plan=st.lists(plan_entry, min_size=1, max_size=12),
       level=st.sampled_from([OptLevel.O0, OptLevel.O1, OptLevel.O2]))
def test_random_plans_preserve_behavior(plan, level):
    app, anal, base = _fixtures()

    def Instrument(iargc, iargv, atom):
        atom.AddCallProto("Bump(int)")
        atom.AddCallProto("BumpBy(int, long)")
        atom.AddCallProto("Dump()")
        procs = list(atom.procs())
        for kind, selector, proc_name, slot in plan:
            proc = procs[selector % len(procs)]
            args = (slot,) if proc_name == "Bump" else (slot, 2)
            if kind == "proc_before":
                atom.AddCallProc(proc, ProcBefore, proc_name, *args)
            elif kind == "proc_after":
                atom.AddCallProc(proc, ProcAfter, proc_name, *args)
            else:
                blocks = proc.blocks
                block = blocks[selector % len(blocks)]
                if kind == "block_before":
                    atom.AddCallBlock(block, BlockBefore, proc_name,
                                      *args)
                elif kind == "block_after":
                    atom.AddCallBlock(block, BlockAfter, proc_name, *args)
                else:
                    inst = block.insts[selector % len(block.insts)]
                    if inst.inst.is_control_transfer():
                        inst = block.insts[0]
                    if inst.inst.is_control_transfer():
                        continue   # single-branch block: skip
                    atom.AddCallInst(inst, InstBefore, proc_name, *args)
        atom.AddCallProgram(ProgramAfter, "Dump")

    res = instrument_executable(app, Instrument, anal, opt=level)
    result = run_module(res.module)
    assert result.stdout == base.stdout
    assert result.status == base.status
    counters = [int(x) for x in result.files["fuzz.out"].split()]
    assert len(counters) == 16
    assert all(c >= 0 for c in counters)
