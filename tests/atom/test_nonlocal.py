"""Non-local control flow under instrumentation.

The paper claims (Section 4) that because ATOM steals no registers —
allocating stack space, saving and restoring around each inserted call —
"mechanisms such as signals, setjmp and vfork work correctly without
needing any special attention".  We verify the setjmp/longjmp half on a
program that longjmps out of deep recursion, instrumented at every level.
"""

import pytest

from repro.atom import BlockBefore, OptLevel, ProgramAfter, instrument_executable
from repro.baselines.pixie import pixie_instrument
from repro.machine import run_module
from repro.mlc import build_analysis_unit, build_executable

SETJMP_APP = r"""
long env[11];
long depth_reached;

void dive(long depth) {
    depth_reached = depth;
    if (depth == 37) longjmp(env, depth);
    dive(depth + 1);
}

int main() {
    long code = setjmp(env);
    if (code) {
        printf("escaped at %d (code %d)\n", depth_reached, code);
        return 0;
    }
    printf("diving\n");
    dive(1);
    printf("unreachable\n");
    return 1;
}
"""

COUNT_ANALYSIS = r"""
long blocks;
void Count(void) { blocks++; }
void Report(void) {
    FILE *f = fopen("blocks.out", "w");
    fprintf(f, "%d\n", blocks);
    fclose(f);
}
"""


def Instrument(iargc, iargv, atom):
    atom.AddCallProto("Count()")
    atom.AddCallProto("Report()")
    for p in atom.procs():
        for b in atom.blocks(p):
            atom.AddCallBlock(b, BlockBefore, "Count")
    atom.AddCallProgram(ProgramAfter, "Report")


@pytest.fixture(scope="module")
def app():
    return build_executable([SETJMP_APP])


@pytest.fixture(scope="module")
def analysis():
    return build_analysis_unit([COUNT_ANALYSIS])


def test_setjmp_longjmp_uninstrumented(app):
    result = run_module(app)
    assert result.status == 0
    assert result.stdout == b"diving\nescaped at 37 (code 37)\n"


@pytest.mark.parametrize("level", [OptLevel.O0, OptLevel.O1, OptLevel.O2])
def test_setjmp_longjmp_instrumented(app, analysis, level):
    base = run_module(app)
    res = instrument_executable(app, Instrument, analysis, opt=level)
    result = run_module(res.module)
    assert result.stdout == base.stdout
    assert result.status == base.status
    assert int(result.files["blocks.out"]) > 100


def test_setjmp_longjmp_under_pixie(app):
    """Pixie's shadow-memory discipline must survive longjmp too."""
    base = run_module(app)
    result = run_module(pixie_instrument(app).module)
    assert result.stdout == base.stdout


def test_longjmp_through_instrumented_frames_balances_stack(app,
                                                            analysis):
    """The inserted snippets bump sp and restore it; a longjmp that skips
    the restores must still land on a consistent stack (it restores sp
    from the jmp_buf, exactly why ATOM's no-stolen-state design works)."""
    res = instrument_executable(app, Instrument, analysis)
    result = run_module(res.module)
    assert result.status == 0


def test_corrupt_jmp_buf_aborts():
    app = build_executable([r"""
    long env[11];
    int main() {
        env[10] = 0;            // clobber the sentinel
        longjmp(env, 1);
        return 0;
    }
    """])
    result = run_module(app)
    assert result.status == 125
