"""Prototype parser tests (AddCallProto grammar)."""

import pytest

from repro.atom.proto import ParamKind, ProtoError, parse_proto


def test_no_args():
    proto = parse_proto("CloseFile()")
    assert proto.name == "CloseFile" and proto.arg_count == 0
    assert parse_proto("F(void)").arg_count == 0


def test_paper_examples():
    proto = parse_proto("CondBranch(int, VALUE)")
    assert proto.name == "CondBranch"
    assert [p.kind for p in proto.params] == [ParamKind.INT,
                                              ParamKind.VALUE]
    proto = parse_proto("PrintBranch(int, long)")
    assert all(p.kind is ParamKind.INT for p in proto.params)


def test_regv():
    proto = parse_proto("Watch(REGV, REGV)")
    assert all(p.kind is ParamKind.REGV for p in proto.params)


def test_string_and_pointers():
    proto = parse_proto("Log(char *, void *, long *)")
    kinds = [p.kind for p in proto.params]
    assert kinds == [ParamKind.STRING, ParamKind.INT, ParamKind.INT]


def test_arrays():
    proto = parse_proto("Table(long[], int[])")
    assert proto.params[0].kind is ParamKind.ARRAY
    assert proto.params[0].elem_size == 8
    assert proto.params[1].elem_size == 4


def test_all_int_spellings():
    proto = parse_proto(
        "F(char, short, int, long, unsigned, unsigned long, long long)")
    assert all(p.kind is ParamKind.INT for p in proto.params)


def test_whitespace_tolerant():
    proto = parse_proto("  Foo ( int ,  VALUE ) ")
    assert proto.name == "Foo" and proto.arg_count == 2


def test_malformed_rejected():
    for bad in ("", "noparens", "F(", "F)x(", "123(int)"):
        with pytest.raises(ProtoError):
            parse_proto(bad)


def test_unknown_type_rejected():
    with pytest.raises(ProtoError):
        parse_proto("F(double)")
    with pytest.raises(ProtoError):
        parse_proto("F(struct x)")
    with pytest.raises(ProtoError):
        parse_proto("F(VALUE[])")
