"""O3-specific tests: liveness-restricted saves must never drop a register
whose original value the snippet itself needs."""

import pytest

from repro.atom import (OptLevel, ProcAfter, ProcBefore, ProgramAfter,
                        instrument_executable)
from repro.atom.lowering import Lowerer
from repro.isa import registers as R
from repro.machine import run_module
from repro.mlc import build_analysis_unit, build_executable

ANALYSIS = r"""
long seen[4];
void Grab2(long a, long b) { seen[0] = a; seen[1] = b; }
void Dump(void) {
    FILE *f = fopen("o3.out", "w");
    fprintf(f, "%d %d\n", seen[0], seen[1]);
    fclose(f);
}
"""


@pytest.fixture(scope="module")
def anal():
    return build_analysis_unit([ANALYSIS])


def test_regv_source_in_clobbered_argreg(anal):
    """Passing REGV(a1) as the *first* argument: materializing a0 must
    not be allowed to corrupt the read of a1, and vice versa — source
    registers keep their save slots even when dead."""
    app = build_executable([r"""
    long probe(long x, long y) { return x * 100 + y; }
    int main() { return (int)probe(1, 7) % 256; }
    """])
    base = run_module(app)

    def Instrument(iargc, iargv, atom):
        atom.AddCallProto("Grab2(REGV, REGV)")
        atom.AddCallProto("Dump()")
        probe = atom.GetNamedProc("probe")
        # Swapped order on purpose: arg0 <- a1's value, arg1 <- a0's.
        atom.AddCallProc(probe, ProcBefore, "Grab2", R.A1, R.A0)
        atom.AddCallProgram(ProgramAfter, "Dump")

    res = instrument_executable(app, Instrument, anal, opt=OptLevel.O3)
    result = run_module(res.module)
    assert result.status == base.status
    a, b = map(int, result.files["o3.out"].split())
    assert (a, b) == (7, 1)          # original y and x, uncorrupted


def test_o3_skips_dead_saves_but_stays_correct(anal):
    """An O3 build is cheaper than O1 on the same plan yet behaves the
    same."""
    app = build_executable([r"""
    long noisy(long x) {
        long a = x * 3;
        long b = a ^ 0x55;
        return a + b;
    }
    int main() {
        long i, acc = 0;
        for (i = 0; i < 200; i++) acc += noisy(i);
        printf("%d\n", acc & 0xFFFF);
        return 0;
    }
    """])
    base = run_module(app)

    def Instrument(iargc, iargv, atom):
        atom.AddCallProto("Grab2(REGV, REGV)")
        atom.AddCallProto("Dump()")
        noisy = atom.GetNamedProc("noisy")
        atom.AddCallProc(noisy, ProcBefore, "Grab2", R.A0, R.SP)
        atom.AddCallProgram(ProgramAfter, "Dump")

    cycles = {}
    for level in (OptLevel.O1, OptLevel.O3):
        res = instrument_executable(app, Instrument, anal, opt=level)
        result = run_module(res.module)
        assert result.stdout == base.stdout, level
        cycles[level] = result.cycles
    assert cycles[OptLevel.O3] < cycles[OptLevel.O1]


def test_proc_after_snippets_get_exit_liveness_at_o3(anal, monkeypatch):
    """ProcAfter splices must receive the registers live before the ret,
    not None (regression: O3 liveness was silently dropped for them)."""
    app = build_executable([r"""
    long probe(long x) { return x + 1; }
    int main() { return (int)probe(41) % 256; }
    """])
    captured = []
    original = Lowerer.snippet

    def spy(self, actions, app_inst=None, live=None):
        if actions:
            captured.append(live)
        return original(self, actions, app_inst, live)

    monkeypatch.setattr(Lowerer, "snippet", spy)

    def Instrument(iargc, iargv, atom):
        atom.AddCallProto("Grab2(REGV, REGV)")
        probe = atom.GetNamedProc("probe")
        atom.AddCallProc(probe, ProcAfter, "Grab2", R.V0, R.SP)

    instrument_executable(app, Instrument, anal, opt=OptLevel.O3)
    assert captured, "the ProcAfter action was never lowered"
    assert all(live is not None for live in captured), \
        "ProcAfter snippet lowered without exit liveness at O3"
    # Exit liveness never includes dead caller-saved temporaries.
    for live in captured:
        assert R.T0 not in live


def test_proc_after_saves_shrink_at_o3(anal):
    """An O3 ProcAfter build must be cheaper than the O1 build of the
    same plan, and behave identically."""
    app = build_executable([r"""
    long noisy(long x) {
        long a = x * 3;
        long b = a ^ 0x55;
        return a + b;
    }
    int main() {
        long i, acc = 0;
        for (i = 0; i < 200; i++) acc += noisy(i);
        printf("%d\n", acc & 0xFFFF);
        return 0;
    }
    """])
    base = run_module(app)

    def Instrument(iargc, iargv, atom):
        atom.AddCallProto("Grab2(REGV, REGV)")
        atom.AddCallProto("Dump()")
        noisy = atom.GetNamedProc("noisy")
        atom.AddCallProc(noisy, ProcAfter, "Grab2", R.V0, R.SP)
        atom.AddCallProgram(ProgramAfter, "Dump")

    cycles = {}
    for level in (OptLevel.O1, OptLevel.O3):
        res = instrument_executable(app, Instrument, anal, opt=level)
        result = run_module(res.module)
        assert result.stdout == base.stdout, level
        assert result.status == base.status, level
        cycles[level] = result.cycles
    assert cycles[OptLevel.O3] < cycles[OptLevel.O1]


def test_regv_sp_reports_original_stack_pointer(anal):
    """REGV of sp must report the *pre-snippet* stack pointer."""
    app = build_executable([r"""
    long witness(long x) { return x; }
    int main() { return (int)witness(5); }
    """])
    base = run_module(app)
    captured = {}

    def Instrument(iargc, iargv, atom):
        atom.AddCallProto("Grab2(REGV, REGV)")
        atom.AddCallProto("Dump()")
        witness = atom.GetNamedProc("witness")
        atom.AddCallProc(witness, ProcBefore, "Grab2", R.SP, R.SP)
        atom.AddCallProgram(ProgramAfter, "Dump")

    for level in (OptLevel.O1, OptLevel.O3):
        res = instrument_executable(app, Instrument, anal, opt=level)
        result = run_module(res.module)
        assert result.status == base.status
        a, b = map(int, result.files["o3.out"].split())
        assert a == b
        captured[level] = a
    # Same application point, same original sp — regardless of strategy.
    assert captured[OptLevel.O1] == captured[OptLevel.O3]
    # And it is a plausible stack address (below the text base).
    assert 0 < captured[OptLevel.O1] < 0x0010_0000
