"""Command-line driver tests: atom, mlc, wrl-as, wrl-ld, wrl-run."""

import pytest

from repro.atom.driver import main as atom_main
from repro.isa.asm.driver import main as as_main
from repro.machine.cli import main as run_main
from repro.mlc.driver import main as mlc_main
from repro.objfile.linker import main as ld_main
from repro.objfile.module import Module

APP = r"""
int main() {
    printf("sum=%d\n", 1 + 2 + 3);
    return 0;
}
"""

INSTRUMENTATION = '''
from repro.atom import ProcBefore, ProgramAfter


def Instrument(iargc, iargv, atom):
    atom.AddCallProto("Count()")
    atom.AddCallProto("Report()")
    atom.AddCallProc(atom.GetNamedProc("main"), ProcBefore, "Count")
    atom.AddCallProgram(ProgramAfter, "Report")
    # tool arguments arrive after "--"
    assert list(iargv[1:]) == ["--tag", "demo"], iargv
'''

ANALYSIS = r"""
long hits;
void Count(void) { hits++; }
void Report(void) {
    FILE *f = fopen("count.out", "w");
    fprintf(f, "%d\n", hits);
    fclose(f);
}
"""


@pytest.fixture
def workspace(tmp_path):
    (tmp_path / "app.mlc").write_text(APP)
    (tmp_path / "inst.py").write_text(INSTRUMENTATION)
    (tmp_path / "anal.mlc").write_text(ANALYSIS)
    return tmp_path


def test_mlc_then_atom_then_run(workspace, capsys):
    prog = workspace / "prog.wof"
    out = workspace / "prog.atom"
    assert mlc_main([str(workspace / "app.mlc"), "-o", str(prog)]) == 0
    assert Module.load(prog).linked

    rc = atom_main([str(prog), str(workspace / "inst.py"),
                    str(workspace / "anal.mlc"), "-o", str(out),
                    "--", "--tag", "demo"])
    captured = capsys.readouterr()
    assert rc == 0, captured.err
    assert "points" in captured.out

    rc = run_main([str(out), "--dump-files"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "sum=6" in captured.out


def test_atom_opt_and_heap_flags(workspace, capsys):
    prog = workspace / "prog.wof"
    mlc_main([str(workspace / "app.mlc"), "-o", str(prog)])
    inst = workspace / "inst2.py"
    inst.write_text(INSTRUMENTATION.replace(
        'assert list(iargv[1:]) == ["--tag", "demo"], iargv',
        'pass'))
    for extra in (["-O", "0"], ["-O", "2"],
                  ["--heap", "partitioned", "--heap-offset", "0x100000"]):
        out = workspace / "o.atom"
        rc = atom_main([str(prog), str(inst), str(workspace / "anal.mlc"),
                        "-o", str(out)] + extra)
        capsys.readouterr()
        assert rc == 0, extra
        assert run_main([str(out)]) == 0
        capsys.readouterr()


def test_atom_reports_missing_instrument(workspace, capsys):
    prog = workspace / "prog.wof"
    mlc_main([str(workspace / "app.mlc"), "-o", str(prog)])
    bad = workspace / "bad.py"
    bad.write_text("x = 1\n")
    rc = atom_main([str(prog), str(bad), str(workspace / "anal.mlc"),
                    "-o", str(workspace / "o.atom")])
    captured = capsys.readouterr()
    assert rc == 1
    assert "Instrument" in captured.err


def test_mlc_emit_assembly(workspace, capsys):
    out = workspace / "app.s"
    rc = mlc_main([str(workspace / "app.mlc"), "-S", "-o", str(out)])
    assert rc == 0
    assert ".ent main" in out.read_text()


def test_mlc_compile_error_diagnostics(workspace, capsys):
    bad = workspace / "bad.mlc"
    bad.write_text("int main() { return nope; }\n")
    rc = mlc_main([str(bad), "-o", str(workspace / "x.wof")])
    captured = capsys.readouterr()
    assert rc == 1
    assert "nope" in captured.err


def test_assembler_and_linker_clis(workspace, capsys):
    src = workspace / "t.s"
    src.write_text("""
        .globl __start
        .ent __start
__start:
        li a0, 9
        li v0, 1
        sys
        .end __start
    """)
    obj = workspace / "t.wof"
    exe = workspace / "t.out"
    assert as_main([str(src), "-o", str(obj)]) == 0
    assert ld_main([str(obj), "-o", str(exe)]) == 0
    rc = run_main([str(exe), "--stats"])
    captured = capsys.readouterr()
    assert rc == 9
    assert "cycles=" in captured.err


def test_assembler_cli_reports_errors(workspace, capsys):
    src = workspace / "bad.s"
    src.write_text("bogus t0, t1\n")
    rc = as_main([str(src), "-o", str(workspace / "bad.wof")])
    captured = capsys.readouterr()
    assert rc == 1
    assert "bogus" in captured.err


def test_linker_cli_reports_undefined(workspace, capsys):
    src = workspace / "u.s"
    src.write_text(".globl __start\n__start: call nowhere\n")
    obj = workspace / "u.wof"
    as_main([str(src), "-o", str(obj)])
    rc = ld_main([str(obj), "-o", str(workspace / "u.out")])
    captured = capsys.readouterr()
    assert rc == 1
    assert "nowhere" in captured.err


def test_objdump_cli(workspace, capsys):
    from repro.objfile.objdump import main as objdump_main
    prog = workspace / "prog.wof"
    mlc_main([str(workspace / "app.mlc"), "-o", str(prog)])
    rc = objdump_main([str(prog), "--all"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "sections:" in captured.out
    assert "main" in captured.out
    assert "disassembly:" in captured.out
    assert "got16" in captured.out or "branch21" in captured.out


def test_linker_olink_flag(workspace, capsys):
    src = workspace / "o.s"
    src.write_text("""
        .globl __start
        .ent __start
__start:
        ldgp
        la   t0, cell
        ldq  a0, 0(t0)
        li   v0, 1
        sys
        .end __start
        .globl dead_proc
        .ent dead_proc
dead_proc:
        ret
        .end dead_proc
        .data
        .align 3
cell:   .quad 6
    """)
    obj = workspace / "o.wof"
    exe = workspace / "o.out"
    as_main([str(src), "-o", str(obj)])
    rc = ld_main([str(obj), "-o", str(exe), "-Olink"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "rewrote" in captured.err
    assert run_main([str(exe)]) == 6
    capsys.readouterr()
