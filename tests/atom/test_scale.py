"""Scale and language-independence tests.

The paper reports instrumenting real applications up to 96 MB and that
ATOM, operating on object modules, is independent of compiler and language
(Fortran, C++, two C compilers).  Our analogues: a generated program with
hundreds of procedures, and a program mixing separately compiled MLC units
with hand-written assembly.
"""

import pytest

from repro.atom import BlockBefore, ProcBefore, ProgramAfter, instrument_executable
from repro.isa.asm import assemble
from repro.machine import run_module
from repro.mlc import build_analysis_unit, build_executable, compile_source

NPROCS = 240


def big_source() -> str:
    parts = []
    for i in range(NPROCS):
        succ = f"f{i + 1}" if i + 1 < NPROCS else ""
        body = f"return x + {i % 7};" if not succ else \
            f"return f{i + 1}(x) + {i % 7};"
        if succ:
            parts.append(f"long f{i + 1}(long x);")
        parts.append(f"long f{i}(long x) {{ {body} }}")
    parts.append("""
    int main() {
        printf("%d\\n", f0(1));
        return 0;
    }
    """)
    return "\n".join(parts)


COUNT_ANALYSIS = r"""
long calls;
long blocks;
void P(void) { calls++; }
void B(void) { blocks++; }
void Report(void) {
    FILE *f = fopen("scale.out", "w");
    fprintf(f, "%d %d\n", calls, blocks);
    fclose(f);
}
"""


def Instrument(iargc, iargv, atom):
    atom.AddCallProto("P()")
    atom.AddCallProto("B()")
    atom.AddCallProto("Report()")
    for p in atom.procs():
        atom.AddCallProc(p, ProcBefore, "P")
        for b in atom.blocks(p):
            atom.AddCallBlock(b, BlockBefore, "B")
    atom.AddCallProgram(ProgramAfter, "Report")


def test_hundreds_of_procedures():
    app = build_executable([big_source()])
    base = run_module(app)
    analysis = build_analysis_unit([COUNT_ANALYSIS])
    res = instrument_executable(app, Instrument, analysis)
    result = run_module(res.module)
    assert result.stdout == base.stdout
    calls, blocks = map(int, result.files["scale.out"].split())
    assert calls > NPROCS            # every procedure entered at least once
    assert blocks >= calls


def test_mixed_language_program():
    """Separately compiled MLC units plus hand-written assembly, linked
    and instrumented together — ATOM never sees source code."""
    asm_unit = assemble("""
        # A procedure that deliberately ignores calling conventions
        # internally: computes 3*a0 + 1 using the assembler temp.
        .text
        .globl  triple_plus_one
        .ent    triple_plus_one
triple_plus_one:
        addq    a0, a0, at
        addq    at, a0, at
        addq    at, 1, v0
        ret     (ra)
        .end    triple_plus_one
    """, "hand.s")
    unit_a = compile_source(r"""
    extern long triple_plus_one(long x);
    long collatz_step(long n) {
        if (n & 1) return triple_plus_one(n);
        return n / 2;
    }
    """, "a.mlc")
    unit_b = r"""
    extern long collatz_step(long n);
    int main() {
        long n = 27, steps = 0;
        while (n != 1) {
            n = collatz_step(n);
            steps++;
        }
        printf("steps=%d\n", steps);
        return 0;
    }
    """
    app = build_executable([unit_b], extra_modules=[unit_a, asm_unit])
    base = run_module(app)
    assert base.stdout == b"steps=111\n"

    analysis = build_analysis_unit([COUNT_ANALYSIS])
    res = instrument_executable(app, Instrument, analysis)
    result = run_module(res.module)
    assert result.stdout == base.stdout
    calls, _blocks = map(int, result.files["scale.out"].split())
    assert calls > 111               # collatz_step entered per iteration
