"""End-to-end instrumentation tests: every placement, every argument kind,
all optimization levels, pristine behavior."""

import pytest

from repro.atom import (AtomError, BlockAfter, BlockBefore, BrCondValue,
                        EffAddrValue, InstAfter, InstBefore, InstTypeCall,
                        InstTypeCondBr, InstTypeLoad, InstTypeMemRef,
                        InstTypeStore, OptLevel, ProcAfter, ProcBefore,
                        ProgramAfter, ProgramBefore,
                        instrument_executable)
from repro.isa import registers as R

from .conftest import parse_counts


def instr(app, fn, anal, **kw):
    return instrument_executable(app, fn, anal, **kw)


class TestPlacements:
    def test_program_before_after(self, app, counter_analysis, run):
        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Count(int)")
            atom.AddCallProto("Report()")
            atom.AddCallProgram(ProgramBefore, "Count", 0)
            atom.AddCallProgram(ProgramBefore, "Count", 0)
            atom.AddCallProgram(ProgramAfter, "Count", 1)
            atom.AddCallProgram(ProgramAfter, "Report")
        res = instr(app, Instrument, counter_analysis)
        result = run(res.module)
        counts = parse_counts(result)
        assert counts[0] == 2 and counts[1] == 1

    def test_proc_before_counts_calls(self, app, counter_analysis, run):
        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Count(int)")
            atom.AddCallProto("Report()")
            mix = atom.GetNamedProc("mix")
            atom.AddCallProc(mix, ProcBefore, "Count", 7)
            atom.AddCallProgram(ProgramAfter, "Report")
        result = run(instr(app, Instrument, counter_analysis).module)
        # mix called for i % 3 == 0 within 0..15: 6 times.
        assert parse_counts(result)[7] == 6

    def test_proc_after_matches_before(self, app, counter_analysis, run):
        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Count(int)")
            atom.AddCallProto("Report()")
            mix = atom.GetNamedProc("mix")
            atom.AddCallProc(mix, ProcBefore, "Count", 1)
            atom.AddCallProc(mix, ProcAfter, "Count", 2)
            atom.AddCallProgram(ProgramAfter, "Report")
        counts = parse_counts(run(
            instr(app, Instrument, counter_analysis).module))
        assert counts[1] == counts[2] == 6

    def test_block_counting(self, app, counter_analysis, run):
        """The Pixie-style basic block counter: dynamic instruction count
        equals the uninstrumented run's instruction count."""
        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("CountBy(int, long)")
            atom.AddCallProto("Report()")
            for p in atom.procs():
                for b in atom.blocks(p):
                    atom.AddCallBlock(b, BlockBefore, "CountBy", 1,
                                      atom.GetBlockInstCount(b))
            atom.AddCallProgram(ProgramAfter, "Report")
        base = run(app)
        result = run(instr(app, Instrument, counter_analysis).module)
        assert parse_counts(result)[1] == base.inst_count

    def test_block_after_runs_when_block_completes(self, app,
                                                   counter_analysis, run):
        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Count(int)")
            atom.AddCallProto("Report()")
            mix = atom.GetNamedProc("mix")
            for b in atom.blocks(mix):
                atom.AddCallBlock(b, BlockBefore, "Count", 3)
                atom.AddCallBlock(b, BlockAfter, "Count", 4)
            atom.AddCallProgram(ProgramAfter, "Report")
        counts = parse_counts(run(
            instr(app, Instrument, counter_analysis).module))
        assert counts[3] == counts[4] > 0

    def test_inst_before_after(self, app, counter_analysis, run):
        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Count(int)")
            atom.AddCallProto("Report()")
            mix = atom.GetNamedProc("mix")
            first = atom.GetFirstInst(atom.GetFirstBlock(mix))
            atom.AddCallInst(first, InstBefore, "Count", 5)
            if not first.inst.is_control_transfer():
                atom.AddCallInst(first, InstAfter, "Count", 6)
            atom.AddCallProgram(ProgramAfter, "Report")
        counts = parse_counts(run(
            instr(app, Instrument, counter_analysis).module))
        assert counts[5] == counts[6] == 6

    def test_calls_made_in_order_added(self, build_app, build_analysis,
                                       run):
        app = build_app("int main() { return 0; }")
        anal = build_analysis(r"""
        FILE *f;
        void Open(void) { f = fopen("order.out", "w"); }
        void Emit(long c) { fputc(c, f); }
        void Close(void) { fclose(f); }
        """)

        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Open()")
            atom.AddCallProto("Emit(int)")
            atom.AddCallProto("Close()")
            atom.AddCallProgram(ProgramBefore, "Open")
            main = atom.GetNamedProc("main")
            for ch in "atom!":
                atom.AddCallProc(main, ProcBefore, "Emit", ord(ch))
            atom.AddCallProgram(ProgramAfter, "Close")
        result = run(instr(app, Instrument, anal).module)
        assert result.files["order.out"] == b"atom!"

    def test_edge_instrumentation_not_implemented(self, app,
                                                  counter_analysis):
        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Count(int)")
            atom.AddCallEdge()
        with pytest.raises(NotImplementedError):
            instr(app, Instrument, counter_analysis)


class TestArguments:
    def test_brcond_value(self, build_app, build_analysis, run):
        app = build_app(r"""
        int main() {
            long i, odd = 0;
            for (i = 0; i < 10; i++) if (i & 1) odd++;
            printf("%d\n", odd);
            return 0;
        }
        """)
        anal = build_analysis(r"""
        long taken, nottaken;
        void Br(long t) { if (t) taken++; else nottaken++; }
        void Dump(void) {
            FILE *f = fopen("br.out", "w");
            fprintf(f, "%d %d\n", taken, nottaken);
            fclose(f);
        }
        """)

        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Br(VALUE)")
            atom.AddCallProto("Dump()")
            main = atom.GetNamedProc("main")
            for b in atom.blocks(main):
                last = atom.GetLastInst(b)
                if atom.IsInstType(last, InstTypeCondBr):
                    atom.AddCallInst(last, InstBefore, "Br", BrCondValue)
            atom.AddCallProgram(ProgramAfter, "Dump")
        result = run(instr(app, Instrument, anal).module)
        taken, nottaken = map(int, result.files["br.out"].split())
        # Sanity: both outcomes occur, and totals match loop structure.
        assert taken > 0 and nottaken > 0

    def test_effaddr_value(self, build_app, build_analysis, run):
        app = build_app(r"""
        long cells[8];
        int main() {
            long i;
            for (i = 0; i < 8; i++) cells[i] = i;
            return (int)cells[3];
        }
        """)
        anal = build_analysis(r"""
        long lo = -1;
        long hi = 0;
        long n;
        void Store(long addr) {
            if (lo == -1 || addr < lo) lo = addr;
            if (addr > hi) hi = addr;
            n++;
        }
        void Dump(void) {
            FILE *f = fopen("addr.out", "w");
            fprintf(f, "%d %d %d\n", lo, hi, n);
            fclose(f);
        }
        """)

        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Store(VALUE)")
            atom.AddCallProto("Dump()")
            main = atom.GetNamedProc("main")
            for ir in atom.insts(main):
                if atom.IsInstType(ir, InstTypeStore):
                    atom.AddCallInst(ir, InstBefore, "Store", EffAddrValue)
            atom.AddCallProgram(ProgramAfter, "Dump")
        res = instr(app, Instrument, anal)
        result = run(res.module)
        lo, hi, n = map(int, result.files["addr.out"].split())
        cells = res.module.addr_of("cells")
        assert lo <= cells and hi >= cells + 56
        assert n >= 8

    def test_regv_passes_register_contents(self, build_app,
                                           build_analysis, run):
        app = build_app(r"""
        long probe(long x) { return x + 1; }
        int main() { return (int)probe(41); }
        """)
        anal = build_analysis(r"""
        long seen;
        void Grab(long v) { seen = v; }
        void Dump(void) {
            FILE *f = fopen("regv.out", "w");
            fprintf(f, "%d\n", seen);
            fclose(f);
        }
        """)

        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Grab(REGV)")
            atom.AddCallProto("Dump()")
            probe = atom.GetNamedProc("probe")
            # At probe entry, a0 holds the first argument: 41.
            atom.AddCallProc(probe, ProcBefore, "Grab", R.A0)
            atom.AddCallProgram(ProgramAfter, "Dump")
        result = run(instr(app, Instrument, anal).module)
        assert result.files["regv.out"].strip() == b"41"
        assert result.status == 42

    def test_string_argument(self, build_app, build_analysis, run):
        app = build_app("int main() { return 0; }")
        anal = build_analysis(r"""
        FILE *f;
        void Open(void) { f = fopen("s.out", "w"); }
        void Say(char *s, long n) { fprintf(f, "%s=%d;", s, n); }
        void Close(void) { fclose(f); }
        """)

        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Open()")
            atom.AddCallProto("Say(char *, long)")
            atom.AddCallProto("Close()")
            atom.AddCallProgram(ProgramBefore, "Open")
            for p in atom.procs():
                if p.name in ("main", "_exit"):
                    atom.AddCallProc(p, ProcBefore, "Say", p.name,
                                     atom.GetProcInstCount(p))
            atom.AddCallProgram(ProgramAfter, "Close")
        result = run(instr(app, Instrument, anal).module)
        text = result.files["s.out"].decode()
        assert "main=" in text and "_exit=" in text

    def test_array_argument(self, build_app, build_analysis, run):
        """Footnote 4: passing arrays (here, a table built at
        instrumentation time)."""
        app = build_app("int main() { return 0; }")
        anal = build_analysis(r"""
        void DumpTable(long *tbl, long n) {
            FILE *f = fopen("tbl.out", "w");
            long i;
            for (i = 0; i < n; i++) fprintf(f, "%d ", tbl[i]);
            fclose(f);
        }
        """)

        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("DumpTable(long[], long)")
            atom.AddCallProgram(ProgramAfter, "DumpTable",
                                [10, 20, 30, 40], 4)
        result = run(instr(app, Instrument, anal).module)
        assert result.files["tbl.out"].decode().split() == \
            ["10", "20", "30", "40"]

    def test_pc_constants_are_original(self, app, counter_analysis,
                                       build_analysis, run):
        """InstPC materializes original addresses (pristine text view)."""
        anal = build_analysis(r"""
        long pcs[4];
        long n;
        void Pc(long pc) { if (n < 4) pcs[n++] = pc; }
        void Dump(void) {
            FILE *f = fopen("pc.out", "w");
            long i;
            for (i = 0; i < n; i++) fprintf(f, "%x\n", pcs[i]);
            fclose(f);
        }
        """)
        seen = []

        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Pc(long)")
            atom.AddCallProto("Dump()")
            mix = atom.GetNamedProc("mix")
            first = atom.GetFirstInst(atom.GetFirstBlock(mix))
            seen.append(atom.InstPC(first))
            atom.AddCallProgram(ProgramBefore, "Pc", atom.InstPC(first))
            atom.AddCallProgram(ProgramAfter, "Dump")
            # Instrument the first procedure too, so code layout shifts
            # and mix genuinely moves.
            atom.AddCallProc(atom.GetFirstProc(), ProcBefore, "Pc", 0)
        res = instr(app, Instrument, anal)
        result = run(res.module)
        reported = int(result.files["pc.out"].split()[0], 16)
        assert reported == seen[0] == app.addr_of("mix")
        # The *new* address of mix differs (code moved).
        assert res.module.addr_of("mix") != app.addr_of("mix")

    def test_stack_args_beyond_six(self, build_app, build_analysis, run):
        app = build_app("int main() { return 0; }")
        anal = build_analysis(r"""
        void Eight(long a, long b, long c, long d,
                   long e, long f, long g, long h) {
            FILE *out = fopen("eight.out", "w");
            fprintf(out, "%d %d %d %d %d %d %d %d\n",
                    a, b, c, d, e, f, g, h);
            fclose(out);
        }
        """)

        def Instrument(iargc, iargv, atom):
            atom.AddCallProto(
                "Eight(long, long, long, long, long, long, long, long)")
            atom.AddCallProgram(ProgramBefore, "Eight",
                                1, 2, 3, 4, 5, 6, 7, 8)
        result = run(instr(app, Instrument, anal).module)
        assert result.files["eight.out"].decode().split() == \
            [str(i) for i in range(1, 9)]


class TestStats:
    def test_points_count_sites_calls_count_actions(self, build_app,
                                                    counter_analysis):
        """``points`` is distinct non-empty hook sites; ``calls_added`` is
        one per action.  Stacking actions on one site must not inflate
        ``points``."""
        app = build_app(r"""
        long one(long x) { return x + 1; }
        int main() { return (int)one(3); }
        """)

        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Count(int)")
            one = atom.GetNamedProc("one")
            # Three actions stacked on the same site: one point.
            atom.AddCallProc(one, ProcBefore, "Count", 1)
            atom.AddCallProc(one, ProcBefore, "Count", 2)
            atom.AddCallProc(one, ProcBefore, "Count", 3)

        res = instr(app, Instrument, counter_analysis)
        assert res.stats.points == 1
        assert res.stats.calls_added == 3

    def test_points_distinct_sites_counted_separately(self, build_app,
                                                      counter_analysis):
        app = build_app(r"""
        long one(long x) { return x + 1; }
        int main() { return (int)one(3); }
        """)

        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Count(int)")
            one = atom.GetNamedProc("one")
            atom.AddCallProc(one, ProcBefore, "Count", 1)
            atom.AddCallProc(one, ProcAfter, "Count", 2)
            atom.AddCallProgram(ProgramBefore, "Count", 3)

        res = instr(app, Instrument, counter_analysis)
        # Entry site, exit site (single return), and the program hook.
        assert res.stats.points == 3
        assert res.stats.calls_added == 3


class TestValidation:
    def test_missing_proto_rejected(self, app, counter_analysis):
        def Instrument(iargc, iargv, atom):
            atom.AddCallProgram(ProgramBefore, "Nope")
        with pytest.raises(AtomError, match="prototype"):
            instr(app, Instrument, counter_analysis)

    def test_wrong_arg_count_rejected(self, app, counter_analysis):
        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Count(int)")
            atom.AddCallProgram(ProgramBefore, "Count", 1, 2)
        with pytest.raises(AtomError, match="argument"):
            instr(app, Instrument, counter_analysis)

    def test_unknown_analysis_routine_rejected(self, app,
                                               counter_analysis):
        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Missing(int)")
            atom.AddCallProgram(ProgramBefore, "Missing", 1)
        with pytest.raises(KeyError, match="Missing"):
            instr(app, Instrument, counter_analysis)

    def test_brcond_only_on_cond_branches(self, app, counter_analysis):
        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Count(VALUE)")
            mix = atom.GetNamedProc("mix")
            first = atom.GetFirstInst(atom.GetFirstBlock(mix))
            atom.AddCallInst(first, InstBefore, "Count", BrCondValue)
        with pytest.raises(AtomError, match="BrCondValue"):
            instr(app, Instrument, counter_analysis)

    def test_effaddr_only_on_memory_refs(self, app, counter_analysis):
        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Count(VALUE)")
            for ir in atom.insts():
                if atom.IsInstType(ir, InstTypeCondBr):
                    atom.AddCallInst(ir, InstBefore, "Count", EffAddrValue)
                    return
        with pytest.raises(AtomError, match="EffAddrValue"):
            instr(app, Instrument, counter_analysis)

    def test_inst_after_on_branch_rejected(self, app, counter_analysis):
        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Count(int)")
            for ir in atom.insts():
                if atom.IsInstType(ir, InstTypeCondBr):
                    atom.AddCallInst(ir, InstAfter, "Count", 1)
                    return
        with pytest.raises(AtomError, match="InstAfter"):
            instr(app, Instrument, counter_analysis)

    def test_tool_args_passed(self, app, counter_analysis):
        got = []

        def Instrument(iargc, iargv, atom):
            got.append((iargc, iargv))
        instr(app, Instrument, counter_analysis,
              tool_args=("-n", "5"))
        assert got[0][0] == 3
        assert got[0][1][1:] == ("-n", "5")


class TestPristineBehavior:
    """Paper Section 4: the application must run as if uninstrumented."""

    def _heavy_instrument(self, atom):
        atom.AddCallProto("Count(int)")
        atom.AddCallProto("Report()")
        for p in atom.procs():
            for b in atom.blocks(p):
                atom.AddCallBlock(b, BlockBefore, "Count", 9)
        atom.AddCallProgram(ProgramAfter, "Report")

    def test_output_identical(self, app, counter_analysis, run):
        base = run(app)
        res = instr(app, self_fn(self._heavy_instrument),
                    counter_analysis)
        result = run(res.module)
        assert result.stdout == base.stdout
        assert result.status == base.status

    def test_data_addresses_unchanged(self, app, counter_analysis):
        res = instr(app, self_fn(self._heavy_instrument),
                    counter_analysis)
        for sym in app.symtab:
            if sym.section in (".data", ".bss", ".lita") and sym.defined:
                assert res.module.addr_of(sym.name) == sym.value, sym.name

    def test_heap_and_stack_unchanged(self, app, counter_analysis, run):
        base = run(app)
        res = instr(app, self_fn(self._heavy_instrument),
                    counter_analysis)
        result = run(res.module)
        assert result.heap_base == base.heap_base
        assert result.initial_sp == base.initial_sp

    def test_heap_pointer_values_identical(self, build_app,
                                           counter_analysis, run):
        """malloc in the instrumented run returns the same addresses
        (linked-sbrk mode, analysis allocates after the app)."""
        app = build_app(r"""
        int main() {
            printf("%p %p\n", malloc(64), malloc(128));
            return 0;
        }
        """)
        base = run(app)
        res = instr(app, self_fn(self._heavy_instrument),
                    counter_analysis)
        assert run(res.module).stdout == base.stdout

    def test_adversarial_register_usage(self, build_analysis, run):
        """A hand-written application that violates calling conventions:
        it fills every caller-saved register with a known value, is
        instrumented in the middle, then checks every register survived."""
        from repro.isa.asm import assemble
        from repro.objfile.linker import link

        regs = ["v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
                "t8", "t9", "t10", "t11", "a0", "a1", "a2", "a3", "a4",
                "a5", "at", "pv"]
        fill = "\n".join(f"        li {r}, {0x1000 + i}"
                         for i, r in enumerate(regs))
        check = "\n".join(
            f"        subq {r}, {0x1000 + i}, s2\n"
            f"        bne s2, bad" for i, r in enumerate(regs))
        src = f"""
        .text
        .globl __start
        .ent __start
__start:
        ldgp
{fill}
        .globl checkpoint
        .ent checkpoint
checkpoint:
{check}
        clr a0
        br done
bad:    li a0, 1
done:   li v0, 1
        sys
        .end checkpoint
        .end __start
"""
        # Note: nested .ent is not allowed; build as two procs instead.
        src = f"""
        .text
        .globl __start
        .ent __start
__start:
        ldgp
{fill}
        br checkpoint
        .end __start
        .globl checkpoint
        .ent checkpoint
checkpoint:
{check}
        clr a0
        br done
bad:    li a0, 1
done:   li v0, 1
        sys
        .end checkpoint
"""
        app = link([assemble(src, "adv.s")])
        anal = build_analysis(r"""
        long hits;
        void Clobber(long a, long b, long c) {
            // Touch lots of registers and call around.
            char buf[64];
            sprintf(buf, "%d %d %d %d", a, b, c, a * b + c);
            hits += strlen(buf);
        }
        """)

        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Clobber(long, long, long)")
            cp = atom.GetNamedProc("checkpoint")
            atom.AddCallProc(cp, ProcBefore, "Clobber", 11, 22, 33)
        for level in (OptLevel.O0, OptLevel.O1, OptLevel.O2):
            res = instr(app, Instrument, anal, opt=level)
            result = run(res.module)
            assert result.status == 0, f"registers clobbered at {level!r}"


def self_fn(bound):
    """Adapt a bound single-arg instrument helper to the 3-arg protocol."""
    def Instrument(iargc, iargv, atom):
        bound(atom)
    return Instrument


class TestOptLevels:
    @pytest.mark.parametrize("level", [OptLevel.O0, OptLevel.O1,
                                       OptLevel.O2, OptLevel.O3])
    def test_all_levels_correct(self, app, counter_analysis, run, level):
        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Count(int)")
            atom.AddCallProto("Report()")
            for p in atom.procs():
                for b in atom.blocks(p):
                    atom.AddCallBlock(b, BlockBefore, "Count", 2)
            atom.AddCallProgram(ProgramAfter, "Report")
        base = run(app)
        res = instr(app, Instrument, counter_analysis, opt=level)
        result = run(res.module)
        assert result.stdout == base.stdout
        assert parse_counts(result)[2] > 0

    def test_higher_levels_cheaper(self, app, counter_analysis, run):
        """O1's summary-based saves beat O0's save-everything."""
        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Count(int)")
            atom.AddCallProto("Report()")
            for p in atom.procs():
                for b in atom.blocks(p):
                    atom.AddCallBlock(b, BlockBefore, "Count", 2)
            atom.AddCallProgram(ProgramAfter, "Report")
        cycles = {}
        for level in (OptLevel.O0, OptLevel.O1, OptLevel.O2):
            res = instr(app, Instrument, counter_analysis, opt=level)
            cycles[level] = run(res.module).cycles
        assert cycles[OptLevel.O1] < cycles[OptLevel.O0]
        assert cycles[OptLevel.O2] < cycles[OptLevel.O0]

    def test_save_sets_smaller_at_o1(self, app, counter_analysis):
        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Count(int)")
            main = atom.GetNamedProc("main")
            atom.AddCallProc(main, ProcBefore, "Count", 0)
        r0 = instr(app, Instrument, counter_analysis, opt=OptLevel.O0)
        r1 = instr(app, Instrument, counter_analysis, opt=OptLevel.O1)
        assert r1.stats.save_set_sizes["Count"] < \
            r0.stats.save_set_sizes["Count"]


class TestFarCalls:
    """The bsr-vs-jsr decision of paper Section 4: when the analysis
    routines are beyond the signed 21-bit pc-relative reach, the
    procedure value is loaded into a register and jsr used."""

    def _tool(self):
        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Count(int)")
            atom.AddCallProto("Report()")
            for p in atom.procs():
                for b in atom.blocks(p):
                    atom.AddCallBlock(b, BlockBefore, "Count", 4)
            atom.AddCallProgram(ProgramAfter, "Report")
        return Instrument

    @pytest.mark.parametrize("level", [OptLevel.O1, OptLevel.O2,
                                       OptLevel.O3])
    def test_far_call_mode_correct(self, app, counter_analysis, run,
                                   level):
        base = run(app)
        res = instr(app, self._tool(), counter_analysis, opt=level,
                    force_far_calls=True)
        result = run(res.module)
        assert result.stdout == base.stdout
        assert parse_counts(result)[4] > 0

    def test_far_mode_emits_jsr(self, app, counter_analysis):
        from repro.isa import encoding, opcodes
        near = instr(app, self._tool(), counter_analysis)
        far = instr(app, self._tool(), counter_analysis,
                    force_far_calls=True)

        def count_jsr(module):
            return sum(1 for i in encoding.decode_stream(
                bytes(module.section(".text").data))
                if i.op is opcodes.JSR)
        assert count_jsr(far.module) > count_jsr(near.module)
