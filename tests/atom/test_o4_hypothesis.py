"""Property test: the O4 inlinability summary is *sound*.

Hypothesis generates small random analysis routines (straight-line
arithmetic over a counter array — the shape real counting tools take).
Whatever it generates, instrumenting the same application at O1 and at O4
must produce bit-identical analysis data and identical instrumentation
statistics: if the summary wrongly admits a routine, the divergence shows
up here as a differing counter dump; if it wrongly computes clobbers, the
application's own output diverges.

Some generated routines are inlinable and some are not (too long, or the
compiler spills to the stack) — soundness means the *behaviour* is
invariant either way, so both populations are useful examples.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.atom import (OptLevel, ProcBefore, ProgramAfter,
                        instrument_executable)
from repro.machine import run_module
from repro.mlc import build_analysis_unit, build_executable

APP = r"""
long mix(long a, long b) { return a * 7 + (b ^ 5); }
int main() {
    long i, acc = 0;
    for (i = 0; i < 64; i++) acc += mix(i, acc);
    printf("acc=%d\n", acc & 0xFFFFFF);
    return 0;
}
"""

_app = None


def the_app():
    global _app
    if _app is None:
        _app = build_executable([APP])
    return _app


#: Operators and right-hand sides for generated statements; all total
#: (no division) so every generated routine terminates and is defined.
_OPS = ("+=", "-=", "^=", "|=")
_exprs = st.sampled_from((
    "n", "n * 3", "n + 9", "n >> 2", "17", "cnt[{j}]", "n & 31",
))


@st.composite
def analysis_bodies(draw):
    lines = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        target = draw(st.integers(min_value=0, max_value=3))
        op = draw(st.sampled_from(_OPS))
        expr = draw(_exprs).format(j=draw(st.integers(0, 3)))
        lines.append(f"    cnt[{target}] {op} {expr};")
    return "\n".join(lines)


def analysis_source(body: str) -> str:
    return r"""
long cnt[4];
void Probe(long n) {
%s
}
void Dump(void) {
    FILE *f = fopen("sound.out", "w");
    long i;
    for (i = 0; i < 4; i++) fprintf(f, "%%d\n", cnt[i]);
    fclose(f);
}
""" % body


def tool(iargc, iargv, atom):
    atom.AddCallProto("Probe(int)")
    atom.AddCallProto("Dump()")
    for proc in atom.procs():
        atom.AddCallProc(proc, ProcBefore, "Probe", 3)
    atom.AddCallProgram(ProgramAfter, "Dump")


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(body=analysis_bodies())
def test_o4_behaviour_identical_to_o1_for_random_routines(body):
    app = the_app()
    anal = build_analysis_unit([analysis_source(body)])
    results = {}
    for level in (OptLevel.O1, OptLevel.O4):
        res = instrument_executable(app, tool, anal, opt=level)
        run = run_module(res.module)
        results[level] = (res.stats, run)
    s1, r1 = results[OptLevel.O1]
    s4, r4 = results[OptLevel.O4]
    assert r4.status == r1.status
    assert r4.stdout == r1.stdout
    assert r4.files["sound.out"] == r1.files["sound.out"]
    assert s4.points == s1.points
    assert s4.calls_added == s1.calls_added
