import pytest

from repro.machine import run_module
from repro.mlc import build_analysis_unit, build_executable


@pytest.fixture(scope="session")
def build_app():
    cache = {}

    def builder(source: str):
        if source not in cache:
            cache[source] = build_executable([source])
        return cache[source]
    return builder


@pytest.fixture(scope="session")
def build_analysis():
    cache = {}

    def builder(source: str):
        if source not in cache:
            cache[source] = build_analysis_unit([source])
        return cache[source]
    return builder


@pytest.fixture
def run():
    def runner(module, **kw):
        return run_module(module, **kw)
    return runner


#: A small application with loops, branches, calls, loads/stores and heap.
APP_SOURCE = r"""
long total;

long mix(long a, long b) {
    return a * 3 + b;
}

int main() {
    long i;
    long *buf = (long *)malloc(16 * sizeof(long));
    for (i = 0; i < 16; i++) {
        if (i % 3 == 0) buf[i] = mix(i, 1);
        else buf[i] = i;
    }
    for (i = 0; i < 16; i++) total += buf[i];
    printf("total=%d\n", total);
    return 0;
}
"""

#: Analysis routines covering counters and file output.
COUNTER_ANALYSIS = r"""
long counters[64];
FILE *out;

void Count(long n) {
    counters[n]++;
}

void CountBy(long n, long amount) {
    counters[n] += amount;
}

void Report(void) {
    long i;
    out = fopen("counts.out", "w");
    for (i = 0; i < 64; i++) {
        if (counters[i]) fprintf(out, "%d %d\n", i, counters[i]);
    }
    fclose(out);
}
"""


@pytest.fixture(scope="session")
def app(build_app):
    return build_app(APP_SOURCE)


@pytest.fixture(scope="session")
def counter_analysis(build_analysis):
    return build_analysis(COUNTER_ANALYSIS)


def parse_counts(result):
    out = {}
    for line in result.files["counts.out"].decode().splitlines():
        key, value = line.split()
        out[int(key)] = int(value)
    return out
