"""Figure 4 memory-layout invariants and the two-sbrk heap schemes."""

import pytest

from repro.atom import OptLevel, ProgramAfter, ProgramBefore, ProcBefore, instrument_executable
from repro.objfile.sections import BSS, DATA, LITA, TEXT

from .conftest import parse_counts

HEAP_APP = r"""
int main() {
    char *a = (char *)malloc(100);
    char *b = (char *)malloc(200);
    printf("%p %p\n", a, b);
    return 0;
}
"""

ALLOC_ANALYSIS = r"""
long counters[8];
char *mine;

void Count(long n) {
    counters[n]++;
    if (!mine) mine = (char *)malloc(4096);   // analysis-side allocation
    mine[counters[n] & 1023] = 1;
}

void Report(void) {
    FILE *f = fopen("counts.out", "w");
    long i;
    for (i = 0; i < 8; i++)
        if (counters[i]) fprintf(f, "%d %d\n", i, counters[i]);
    fprintf(f, "7 %d\n", (long)mine);
    fclose(f);
}
"""


def simple_tool(atom):
    atom.AddCallProto("Count(int)")
    atom.AddCallProto("Report()")
    main = atom.GetNamedProc("main")
    atom.AddCallProc(main, ProcBefore, "Count", 0)
    atom.AddCallProgram(ProgramAfter, "Report")


def Instrument(iargc, iargv, atom):
    simple_tool(atom)


class TestFigure4Layout:
    @pytest.fixture(scope="class")
    def result(self, build_app, build_analysis):
        app = build_app(HEAP_APP)
        anal = build_analysis(ALLOC_ANALYSIS)
        return app, instrument_executable(app, Instrument, anal)

    def test_program_data_not_moved(self, result):
        app, res = result
        for name in (LITA, DATA, BSS):
            assert res.module.section(name).vaddr == \
                app.section(name).vaddr
            if name != BSS:
                assert bytes(res.module.section(name).data) == \
                    bytes(app.section(name).data)

    def test_analysis_segments_in_gap(self, result):
        app, res = result
        text_end = res.module.section(TEXT).vaddr + \
            len(res.module.section(TEXT).data)
        gap_start = app.section(TEXT).vaddr
        gap_end = app.section(LITA).vaddr
        assert gap_start < text_end <= gap_end
        for name, vaddr, blob in res.module.extra_segments:
            assert gap_start < vaddr and vaddr + len(blob) <= gap_end, name

    def test_analysis_bss_zero_initialized(self, result):
        _, res = result
        bss_segs = [s for s in res.module.extra_segments
                    if s[0] == "anal.bss"]
        assert bss_segs, "analysis bss should be materialized"
        name, vaddr, blob = bss_segs[0]
        assert blob == b"\x00" * len(blob)

    def test_two_gp_values(self, result):
        app, res = result
        assert res.module.gp_value == app.gp_value       # program gp
        assert res.module.analysis_gp != 0
        assert res.module.analysis_gp != res.module.gp_value

    def test_entry_is_veneer_in_text(self, result):
        app, res = result
        assert res.module.entry != app.entry
        text = res.module.section(TEXT)
        assert text.vaddr <= res.module.entry < text.vaddr + text.size

    def test_instrumented_text_larger(self, result):
        app, res = result
        assert len(res.module.section(TEXT).data) > \
            len(app.section(TEXT).data)

    def test_pc_map_targets_original_text(self, result):
        app, res = result
        old_text = app.section(TEXT)
        for new, old in res.module.pc_map.items():
            assert old_text.vaddr <= old < old_text.vaddr + old_text.size


class TestHeapModes:
    def test_linked_sbrk_default(self, build_app, build_analysis, run):
        """Both sbrks share one break: app heap addresses unchanged when
        the analysis allocates after it, and 'each starts where the other
        left off' (no overlap)."""
        app = build_app(HEAP_APP)
        anal = build_analysis(ALLOC_ANALYSIS)
        base = run(app)
        res = instrument_executable(app, Instrument, anal,
                                    heap_mode="linked")
        result = run(res.module)
        # Analysis allocated (Count runs at main entry) before the app's
        # mallocs — so app heap addresses *shift* in linked mode...
        a_base, b_base = base.stdout.split()
        a_inst, b_inst = result.stdout.split()
        assert int(a_inst, 16) > int(a_base, 16)
        # ...but allocations never overlap: analysis block is disjoint.
        counts = parse_counts(result)
        mine = counts[7]
        assert mine != 0
        assert abs(mine - int(a_inst, 16)) >= 4096 or \
            mine + 4096 <= int(a_inst, 16)

    def test_partitioned_heap_preserves_app_addresses(self, build_app,
                                                      build_analysis,
                                                      run):
        """Partitioned mode: the application heap keeps its exact
        uninstrumented addresses even though the analysis allocates."""
        app = build_app(HEAP_APP)
        anal = build_analysis(ALLOC_ANALYSIS)
        base = run(app)
        res = instrument_executable(app, Instrument, anal,
                                    heap_mode="partitioned",
                                    heap_offset=0x20_0000)
        result = run(res.module)
        assert result.stdout == base.stdout     # identical heap pointers!
        counts = parse_counts(result)
        heap2 = res.module.meta["atom:heap2_base"]
        assert counts[7] >= heap2               # analysis heap far above

    def test_partitioned_offset_respected(self, build_app,
                                          build_analysis, run):
        app = build_app(HEAP_APP)
        anal = build_analysis(ALLOC_ANALYSIS)
        res = instrument_executable(app, Instrument, anal,
                                    heap_mode="partitioned",
                                    heap_offset=0x40_0000)
        end = app.symtab["__end"].value
        assert res.module.meta["atom:heap2_base"] >= end + 0x40_0000

    def test_bad_heap_mode_rejected(self, build_app, build_analysis):
        app = build_app(HEAP_APP)
        anal = build_analysis(ALLOC_ANALYSIS)
        from repro.atom import AtomError
        with pytest.raises(AtomError):
            instrument_executable(app, Instrument, anal,
                                  heap_mode="bogus")


class TestSymbolPartitioning:
    def test_analysis_symbols_prefixed(self, build_app, build_analysis):
        app = build_app(HEAP_APP)
        anal = build_analysis(ALLOC_ANALYSIS)
        res = instrument_executable(app, Instrument, anal)
        symtab = res.module.symtab
        # Two printfs: the application's and the analysis unit's.
        assert symtab.get("printf") is not None
        assert symtab.get("anal$printf") is not None
        assert symtab["printf"].value != symtab["anal$printf"].value

    def test_wrapper_symbols_present(self, build_app, build_analysis):
        app = build_app(HEAP_APP)
        anal = build_analysis(ALLOC_ANALYSIS)
        res = instrument_executable(app, Instrument, anal)
        assert res.module.symtab.get("__atomwrap$Count") is not None
        assert res.module.symtab.get("__atom_veneer") is not None
