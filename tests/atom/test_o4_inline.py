"""O4: analysis-routine inlining and cross-point save coalescing.

Covers the inlinability summary, the ``noinline`` prototype qualifier,
the point-specialization passes (constant folding, lda-base fusion,
register-mode brackets), the cross-point coalescer, and the end-to-end
contract: O4 is cheaper than O3 while the analysis output stays
bit-identical.
"""

import pytest

from repro.atom import (BlockBefore, OptLevel, ProcBefore, ProgramAfter,
                        instrument_executable)
from repro.atom.saves import compute_plans
from repro.isa import opcodes
from repro.isa import registers as R
from repro.isa.instruction import Instruction
from repro.machine import run_module
from repro.mlc import build_analysis_unit, build_executable
from repro.om import build_ir
from repro.om.ir import IRBlock, IRInst
from repro.om.dataflow import inline_summary
from repro.om.opt import (_coalesce_block, _shrink_bracket,
                          constfold_straightline, fuse_lda_bases)

from .conftest import COUNTER_ANALYSIS, parse_counts

#: A routine trivially inlinable (straight-line, call-free, frameless)
#: next to ones the summary must reject.
MIXED_ANALYSIS = r"""
long counters[8];
long scratch;

void Bump(long n) { counters[n & 7] += 1; }

void Looped(long n) {
    long i;
    for (i = 0; i < n; i++) scratch += i;     /* multi-block */
}

void Calls(long n) { Bump(n); Bump(n + 1); }  /* contains calls */

void Report(void) {
    long i;
    FILE *f = fopen("o4.out", "w");
    for (i = 0; i < 8; i++) fprintf(f, "%d %d\n", i, counters[i]);
    fclose(f);
}
"""


@pytest.fixture(scope="module")
def mixed_ir():
    return build_ir(build_analysis_unit([MIXED_ANALYSIS]))


def proc_named(ir, name):
    for proc in ir.procs:
        if proc.name == name:
            return proc
    raise AssertionError(name)


class TestInlineSummary:
    def test_straightline_leaf_is_inlinable(self, mixed_ir):
        clobbers = inline_summary(proc_named(mixed_ir, "Bump"))
        assert clobbers is not None
        assert clobbers and R.SP not in clobbers and R.RA not in clobbers

    def test_multi_block_routine_rejected(self, mixed_ir):
        assert inline_summary(proc_named(mixed_ir, "Looped")) is None

    def test_routine_with_calls_rejected(self, mixed_ir):
        assert inline_summary(proc_named(mixed_ir, "Calls")) is None

    def test_size_cap_respected(self, mixed_ir):
        assert inline_summary(proc_named(mixed_ir, "Bump"),
                              max_insts=2) is None


class TestPlans:
    def test_o4_upgrades_qualifying_routine_to_inlined(self, mixed_ir):
        plans = compute_plans(mixed_ir, {"Bump": 1}, OptLevel.O4)
        plan = plans.plan("Bump")
        assert plan.mode == "inlined"
        assert plan.body, "inlined plan must carry the body template"
        # The spliced body never calls, returns, or touches sp/ra.
        for ir_inst in plan.body:
            inst = ir_inst.inst
            assert not inst.is_call() and not inst.is_ret()
            assert R.SP not in inst.defs() | inst.uses()

    def test_noinline_qualifier_keeps_o3_treatment(self, mixed_ir):
        plans = compute_plans(mixed_ir, {"Bump": 1}, OptLevel.O4,
                              no_inline=frozenset({"Bump"}))
        assert plans.plan("Bump").mode == "inline"

    def test_o3_never_inlines(self, mixed_ir):
        plans = compute_plans(mixed_ir, {"Bump": 1}, OptLevel.O3)
        assert plans.plan("Bump").mode == "inline"
        assert not plans.plan("Bump").body


class TestPointSpecialization:
    def test_constfold_folds_known_operate_to_lda(self):
        insts = [
            IRInst(Instruction(opcodes.LDA, ra=R.T0, rb=R.ZERO, disp=6)),
            IRInst(Instruction(opcodes.LDA, ra=R.T1, rb=R.ZERO, disp=7)),
            IRInst(Instruction(opcodes.ADDQ, ra=R.T0, rb=R.T1, rc=R.T2)),
        ]
        assert constfold_straightline(insts) == 1
        folded = insts[2].inst
        assert folded.op is opcodes.LDA
        assert folded.rb == R.ZERO and folded.disp == 13

    def test_constfold_skips_reloc_carrying_insts(self):
        from repro.objfile.relocs import Relocation, RelocType
        from repro.objfile.sections import TEXT
        rel = Relocation(TEXT, 0, RelocType.LO16, "sym", 0)
        insts = [
            IRInst(Instruction(opcodes.LDA, ra=R.T0, rb=R.ZERO, disp=4),
                   relocs=[rel]),
            IRInst(Instruction(opcodes.ADDQ, ra=R.T0, rb=R.T0, rc=R.T1)),
        ]
        assert constfold_straightline(insts) == 0

    def test_fuse_lda_base_into_memory_disp(self):
        insts = [
            IRInst(Instruction(opcodes.LDA, ra=R.T0, rb=R.GP, disp=64)),
            IRInst(Instruction(opcodes.LDQ, ra=R.T1, rb=R.T0, disp=8)),
        ]
        assert fuse_lda_bases(insts) == 1
        assert len(insts) == 1
        mem = insts[0].inst
        assert mem.op is opcodes.LDQ and mem.rb == R.GP and mem.disp == 72

    def test_fuse_refuses_non_memory_use(self):
        insts = [
            IRInst(Instruction(opcodes.LDA, ra=R.T0, rb=R.GP, disp=64)),
            IRInst(Instruction(opcodes.ADDQ, ra=R.T0, rb=R.T1, rc=R.T2)),
        ]
        assert fuse_lda_bases(insts) == 0
        assert len(insts) == 2

    def test_fuse_refuses_reloc_carrying_target(self):
        """A LO16 relocation on the target's displacement would later be
        applied on top of the fused disp and corrupt it."""
        from repro.objfile.relocs import Relocation, RelocType
        from repro.objfile.sections import TEXT
        rel = Relocation(TEXT, 0, RelocType.LO16, "sym", 0)
        insts = [
            IRInst(Instruction(opcodes.LDA, ra=R.T0, rb=R.GP, disp=64)),
            IRInst(Instruction(opcodes.LDQ, ra=R.T1, rb=R.T0, disp=8),
                   relocs=[rel]),
        ]
        assert fuse_lda_bases(insts) == 0
        assert len(insts) == 2
        assert insts[1].inst.rb == R.T0 and insts[1].inst.disp == 8

    def test_fuse_refuses_bracket_tagged_target(self):
        insts = [
            IRInst(Instruction(opcodes.LDA, ra=R.T0, rb=R.GP, disp=64)),
            IRInst(Instruction(opcodes.STQ, ra=R.T1, rb=R.T0, disp=0)),
        ]
        insts[1].snip = (0, "pro", (16, 0, ((R.T1, 0),)))
        assert fuse_lda_bases(insts) == 0
        assert len(insts) == 2


def _tagged(site, role, key, insts):
    out = []
    for inst in insts:
        ir = IRInst(inst)
        ir.snip = (site, role, key)
        out.append(ir)
    return out


class TestBracketKeys:
    """Bracket keys encode the actual (register, slot) layout.

    A shrunk bracket keeps its surviving saves at their original slot
    displacements, so the register list alone does not identify a frame
    layout; merging on register names would pair a prologue storing at
    one displacement with an epilogue restoring from another.
    """

    def test_shrink_rekeys_with_surviving_slots(self):
        key = (16, 0, ((R.T0, 0), (R.T1, 8)))
        insts = (
            _tagged(0, "pro", key, [
                Instruction(opcodes.LDA, ra=R.SP, rb=R.SP, disp=-16),
                Instruction(opcodes.STQ, ra=R.T0, rb=R.SP, disp=0),
                Instruction(opcodes.STQ, ra=R.T1, rb=R.SP, disp=8),
            ])
            + [IRInst(Instruction(opcodes.ADDQ, ra=R.T1, rb=R.T1,
                                  rc=R.T1))]
            + _tagged(0, "epi", key, [
                Instruction(opcodes.LDQ, ra=R.T1, rb=R.SP, disp=8),
                Instruction(opcodes.LDQ, ra=R.T0, rb=R.SP, disp=0),
                Instruction(opcodes.LDA, ra=R.SP, rb=R.SP, disp=16),
            ]))
        assert _shrink_bracket(insts) == 1
        keys = {ir.snip[2] for ir in insts if ir.snip is not None}
        # t1 survives at its *original* slot 8, and the key says so.
        assert keys == {(16, 0, ((R.T1, 8),))}
        saves = [ir.inst for ir in insts
                 if ir.snip is not None and ir.inst.op is opcodes.STQ]
        assert [(s.ra, s.disp) for s in saves] == [(R.T1, 8)]

    def _adjacent_brackets(self, key_epi, key_pro):
        return IRBlock(index=0, insts=(
            _tagged(0, "epi", key_epi, [
                Instruction(opcodes.LDQ, ra=R.T1, rb=R.SP,
                            disp=key_epi[2][0][1]),
                Instruction(opcodes.LDA, ra=R.SP, rb=R.SP,
                            disp=key_epi[0]),
            ])
            + _tagged(1, "pro", key_pro, [
                Instruction(opcodes.LDA, ra=R.SP, rb=R.SP,
                            disp=-key_pro[0]),
                Instruction(opcodes.STQ, ra=R.T1, rb=R.SP,
                            disp=key_pro[2][0][1]),
            ])))

    def test_coalescer_refuses_same_regs_different_slots(self):
        """Shrunk bracket keeping t1 at slot 8 vs fresh bracket saving
        t1 at slot 0: same frame, same registers, different layout —
        merging would restore t1 from the wrong slot."""
        block = self._adjacent_brackets((16, 0, ((R.T1, 8),)),
                                        (16, 0, ((R.T1, 0),)))
        assert _coalesce_block(block, max_gap=2) == 0
        assert len(block.insts) == 4

    def test_coalescer_merges_identical_layouts(self):
        block = self._adjacent_brackets((16, 0, ((R.T1, 0),)),
                                        (16, 0, ((R.T1, 0),)))
        assert _coalesce_block(block, max_gap=2) == 1
        assert block.insts == []


APP = r"""
long work(long x) {
    long a = x * 5 + 1;
    if (a % 3 == 0) a -= 2;
    return a;
}
int main() {
    long i, acc = 0;
    for (i = 0; i < 300; i++) acc += work(i);
    printf("%d\n", acc & 0xFFFFFF);
    return 0;
}
"""


@pytest.fixture(scope="module")
def app():
    return build_executable([APP])


@pytest.fixture(scope="module")
def counters(build_analysis):
    return build_analysis(COUNTER_ANALYSIS)


def counting_tool(iargc, iargv, atom):
    atom.AddCallProto("Count(int)")
    atom.AddCallProto("CountBy(int, int)")
    atom.AddCallProto("Report()")
    for proc in atom.procs():
        atom.AddCallProc(proc, ProcBefore, "Count", 1)
        for block in atom.blocks(proc):
            atom.AddCallBlock(block, BlockBefore, "CountBy", 2,
                              len(block.insts))
    atom.AddCallProgram(ProgramAfter, "Report")


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def runs(self, app, counters):
        base = run_module(app)
        out = {"base": base}
        for level in (OptLevel.O1, OptLevel.O3, OptLevel.O4):
            res = instrument_executable(app, counting_tool, counters,
                                        opt=level)
            out[level] = (res, run_module(res.module))
        return out

    def test_output_bit_identical_across_levels(self, runs):
        o1 = runs[OptLevel.O1][1]
        for level in (OptLevel.O3, OptLevel.O4):
            result = runs[level][1]
            assert result.status == o1.status
            assert result.stdout == o1.stdout
            assert parse_counts(result) == parse_counts(o1)

    def test_points_invariant_across_levels(self, runs):
        stats = {lvl: runs[lvl][0].stats
                 for lvl in (OptLevel.O1, OptLevel.O3, OptLevel.O4)}
        assert len({s.points for s in stats.values()}) == 1
        assert len({s.calls_added for s in stats.values()}) == 1

    def test_o4_inlines_and_is_cheaper_than_o3(self, runs):
        res4, run4 = runs[OptLevel.O4]
        _res3, run3 = runs[OptLevel.O3]
        assert res4.stats.inlined_calls > 0
        assert run4.cycles < run3.cycles

    def test_inline_splices_are_labelled(self, runs):
        res4, _ = runs[OptLevel.O4]
        markers = [s.name for s in res4.module.symtab
                   if s.name.startswith("__atominl$")]
        assert markers
        assert any(".Count" in name or name.startswith("__atominl$Count")
                   for name in markers)

    def test_coalescer_merged_adjacent_brackets(self, app, counters):
        """ProcBefore + BlockBefore at a procedure entry lower to
        consecutive snippets; O4's coalescer must merge at least one
        adjacent bracket pair (or specialize them away entirely)."""
        res = instrument_executable(app, counting_tool, counters,
                                    opt=OptLevel.O4)
        stats = res.stats
        assert stats.coalesced_brackets > 0 or stats.inlined_calls > 0

    def test_uninstrumented_behaviour_unperturbed(self, runs, app):
        res4, run4 = runs[OptLevel.O4]
        base = runs["base"]
        assert run4.stdout == base.stdout
        assert run4.status == base.status
        assert run4.cycles > base.cycles     # instrumentation is not free
