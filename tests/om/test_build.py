"""IR construction tests: procedures, blocks, edges, targets."""

import pytest

from repro.isa.asm import assemble
from repro.mlc import build_executable
from repro.objfile.linker import link
from repro.om import build_ir
from repro.om.build import BuildError


def asm_exe(body: str):
    return link([assemble(body, "t.s")])


BRANCHY = """
        .text
        .globl __start
        .ent __start
__start:
        clr t0
loop:   addq t0, 1, t0
        subq t0, 10, t1
        bne t1, loop
        beq t0, skip
        bsr ra, helper
skip:
        li v0, 1
        clr a0
        sys
        .end __start
        .globl helper
        .ent helper
helper: ret
        .end helper
"""


def test_procedures_recovered():
    prog = build_ir(asm_exe(BRANCHY))
    names = [p.name for p in prog.procs]
    assert names == ["__start", "helper"]
    assert prog.proc("helper").inst_count() == 1


def test_block_boundaries():
    prog = build_ir(asm_exe(BRANCHY))
    start = prog.proc("__start")
    # Blocks: [clr], [addq,subq,bne], [beq], [bsr], [li,clr,sys]
    sizes = [len(b.insts) for b in start.blocks]
    assert sizes == [1, 3, 1, 1, 3]


def test_edges():
    prog = build_ir(asm_exe(BRANCHY))
    b = prog.proc("__start").blocks
    # entry falls into loop block
    assert b[1] in b[0].succs
    # loop block: taken -> itself, fallthrough -> beq block
    assert b[1] in b[1].succs and b[2] in b[1].succs
    assert b[0] in b[1].preds
    # beq: taken -> skip block (b[4]), fallthrough -> bsr block
    assert b[4] in b[2].succs and b[3] in b[2].succs
    # call block falls through
    assert b[4] in b[3].succs
    # final block ends in sys (block-ending, no successor in-proc)
    assert b[4].last.inst.is_syscall()


def test_call_target_symbolic():
    prog = build_ir(asm_exe(BRANCHY))
    bsr_block = prog.proc("__start").blocks[3]
    assert bsr_block.last.target == ("symbol", "helper")


def test_branch_target_is_block():
    prog = build_ir(asm_exe(BRANCHY))
    loop_block = prog.proc("__start").blocks[1]
    kind, payload = loop_block.last.target
    assert kind == "block" and payload is loop_block


def test_orig_pcs_recorded():
    exe = asm_exe(BRANCHY)
    prog = build_ir(exe)
    base = exe.section(".text").vaddr
    pcs = [i.orig_pc for i in prog.instructions()]
    assert pcs == [base + 4 * k for k in range(len(pcs))]


def test_relocs_attached():
    exe = asm_exe("""
        .globl __start
        .ent __start
__start:
        ldgp
        la a0, msg
        li v0, 1
        sys
        .end __start
        .data
msg:    .asciiz "x"
    """)
    prog = build_ir(exe)
    ir = list(prog.instructions())
    # ldgp: two relocs; la: one GOT16
    assert len(ir[0].relocs) == 1 and len(ir[1].relocs) == 1
    assert len(ir[2].relocs) == 1


def test_requires_linked_module():
    with pytest.raises(BuildError):
        build_ir(assemble("f: ret", "t.s"))


def test_full_program_coverage():
    """Every text instruction of a real program lands in exactly one proc."""
    exe = build_executable(["int main() { return 0; }"])
    prog = build_ir(exe)
    total = sum(p.inst_count() for p in prog.procs)
    assert total * 4 == len(exe.section(".text").data)
    seen = set()
    for proc in prog.procs:
        for ir in proc.instructions():
            assert ir.orig_pc not in seen
            seen.add(ir.orig_pc)


def test_program_hierarchy_traversal():
    """The paper's GetFirstProc/GetNextProc walk maps to procs order."""
    exe = build_executable(["""
    long a() { return 1; }
    long b() { return 2; }
    int main() { return a() + b(); }
    """])
    prog = build_ir(exe)
    names = [p.name for p in prog.procs]
    assert names.index("a") < names.index("b")   # layout order
    assert "main" in names and "__start" in names
