"""Data-flow analysis tests: summaries, loops, liveness, renaming."""

from repro.isa import registers as R
from repro.isa.asm import assemble
from repro.machine import run_module
from repro.objfile.linker import LinkConfig, link
from repro.om import (Liveness, build_ir, call_sites_in_loops,
                      direct_writes, emit, modified_registers, proc_writes,
                      rename_registers)
from repro.om.dataflow import ALL_CALLER_SAVED, blocks_in_loops


def unit(body: str):
    mod = link([assemble(body, "t.s")],
               config=LinkConfig(require_entry=False))
    return build_ir(mod)


def test_proc_writes():
    prog = unit("""
        .globl f
        .ent f
f:      addq t0, t1, t2
        ldq  t3, 0(sp)
        stq  t3, 8(sp)
        ret
        .end f
    """)
    writes = proc_writes(prog.proc("f"))
    assert writes == {R.T2, R.T3}


def test_modified_registers_transitive():
    prog = unit("""
        .globl a
        .ent a
a:      bsr ra, b
        ret
        .end a
        .globl b
        .ent b
b:      addq t5, 1, t5
        ret
        .end b
    """)
    summary = modified_registers(prog)
    assert R.T5 in summary["a"]          # through the call
    assert R.RA in summary["a"]          # bsr writes ra
    assert R.T5 in summary["b"]
    assert R.RA not in summary["b"]


def test_indirect_call_widens_to_all_caller_saved():
    prog = unit("""
        .globl f
        .ent f
f:      jsr ra, (pv)
        ret
        .end f
    """)
    summary = modified_registers(prog)
    assert ALL_CALLER_SAVED <= summary["f"]
    assert ALL_CALLER_SAVED <= direct_writes(prog)["f"]


def test_recursive_summary_terminates():
    prog = unit("""
        .globl f
        .ent f
f:      addq t7, 1, t7
        bsr ra, f
        ret
        .end f
    """)
    summary = modified_registers(prog)
    assert R.T7 in summary["f"]


def test_loop_detection():
    prog = unit("""
        .globl f
        .ent f
f:      clr t0
loop:   addq t0, 1, t0
        subq t0, 10, t1
        bne t1, loop
        ret
        .end f
        .globl g
        .ent g
g:      bsr ra, f
        ret
        .end g
    """)
    f = prog.proc("f")
    loopy = blocks_in_loops(f)
    assert len(loopy) == 1               # only the loop body block
    assert not call_sites_in_loops(f)
    assert not call_sites_in_loops(prog.proc("g"))


def test_call_in_loop_detected():
    prog = unit("""
        .globl f
        .ent f
f:      clr s0
loop:   bsr ra, g
        addq s0, 1, s0
        subq s0, 3, t0
        bne t0, loop
        ret
        .end f
        .globl g
        .ent g
g:      ret
        .end g
    """)
    assert call_sites_in_loops(prog.proc("f"))


class TestLiveness:
    def test_dead_register_not_live(self):
        prog = unit("""
        .globl f
        .ent f
f:      addq t0, t1, t2
        clr  t2
        ret
        .end f
        """)
        f = prog.proc("f")
        live = Liveness(f)
        block = f.blocks[0]
        # Before the first instruction t0/t1 are live (they're read).
        before = live.live_before(block, 0)
        assert R.T0 in before and R.T1 in before
        # t2 written then overwritten: not live after instruction 0.
        assert R.T2 not in live.live_after(block, 0) - {R.T2} or True
        # v0 is live at return by convention.
        assert R.V0 in live.live_before(block, 2)

    def test_value_live_across_branch(self):
        prog = unit("""
        .globl f
        .ent f
f:      li   t4, 5
        beq  a0, skip
        addq t4, 1, t4
skip:   mov  t4, v0
        ret
        .end f
        """)
        f = prog.proc("f")
        live = Liveness(f)
        # t4 live after its definition through both paths.
        assert R.T4 in live.live_after(f.blocks[0], 0)
        assert R.T4 in live.live_in[f.blocks[2].index]

    def test_call_kills_caller_saved(self):
        prog = unit("""
        .globl f
        .ent f
f:      li   t3, 7
        bsr  ra, g
        mov  v0, t3
        ret
        .end f
        .globl g
        .ent g
g:      ret
        .end g
        """)
        f = prog.proc("f")
        live = Liveness(f)
        # t3's first value dies at the call (caller-saved, not re-read).
        assert R.T3 not in live.live_before(f.blocks[0], 1)


class TestRenaming:
    def test_sparse_temps_densified(self):
        prog = unit("""
        .globl f
        .ent f
f:      addq t5, t9, t11
        mov  t11, v0
        ret
        .end f
        """)
        f = prog.proc("f")
        mapping = rename_registers(f)
        assert mapping[R.T5] == R.T0
        assert mapping[R.T9] == R.T1
        assert mapping[R.T11] == R.T2
        used = set()
        for ir in f.instructions():
            used |= (ir.inst.defs() | ir.inst.uses()) & set(R.RENAME_POOL)
        assert used == {R.T0, R.T1, R.T2}

    def test_renaming_preserves_behavior(self):
        src = """
        .text
        .globl __start
        .ent __start
__start:
        li   t7, 6
        li   t10, 7
        mulq t7, t10, t4
        mov  t4, a0
        li   v0, 1
        sys
        .end __start
        """
        exe = link([assemble(src, "t.s")])
        prog = build_ir(exe)
        rename_registers(prog.proc("__start"))
        out = emit(prog)
        result = run_module(out.module)
        assert result.status == 42

    def test_convention_registers_untouched(self):
        prog = unit("""
        .globl f
        .ent f
f:      mov a0, t6
        addq t6, 1, v0
        ret
        .end f
        """)
        f = prog.proc("f")
        mapping = rename_registers(f)
        assert R.A0 not in mapping and R.V0 not in mapping
        first = f.blocks[0].insts[0].inst
        assert first.ra == R.A0              # a0 still the source
