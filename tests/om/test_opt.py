"""Link-time optimization tests: address calculation (ref [12]) and its
interaction with ATOM."""

import pytest

from repro.atom import BlockBefore, ProgramAfter, instrument_executable
from repro.machine import run_module
from repro.mlc import build_analysis_unit, build_executable
from repro.om import build_ir, emit
from repro.om.opt import optimize_address_calculation, optimize_got_loads
from repro.workloads import build_workload

GLOBALS_HEAVY = r"""
long a;
long b;
long total;

int main() {
    long i;
    for (i = 0; i < 50; i++) {
        a = a + i;
        b = b + a;
        total = total + a + b;
    }
    printf("%d %d %d\n", a, b, total);
    return 0;
}
"""


class TestAddressCalculation:
    def test_rewrites_and_preserves(self):
        app = build_executable([GLOBALS_HEAVY])
        base = run_module(app)
        prog = build_ir(app)
        n = optimize_address_calculation(prog)
        assert n > 10              # every global access had a GOT load
        out = emit(prog)
        result = run_module(out.module)
        assert result.stdout == base.stdout
        assert result.cycles < base.cycles
        assert result.inst_count == base.inst_count   # lda replaces ldq

    def test_text_symbols_not_rewritten(self):
        """Function-pointer GOT loads must keep their relocations (ATOM
        moves text)."""
        app = build_executable([r"""
        long f(long x) { return x + 1; }
        long (*fp)(long) = f;
        int main() {
            long (*g)(long) = f;     // GOT load of a *text* symbol
            return (int)g(41);
        }
        """])
        prog = build_ir(app)
        optimize_address_calculation(prog)
        # The load of f's address must still carry its GOT16 reloc.
        from repro.objfile.relocs import RelocType
        got_text = [
            r for ir in prog.instructions() for r in ir.relocs
            if r.type is RelocType.GOT16 and r.symbol.startswith("f")]
        assert got_text, "text-symbol GOT load should survive"
        out = emit(prog)
        assert run_module(out.module).status == 42

    @pytest.mark.parametrize("name", ("quick", "hashtab", "compress"))
    def test_workloads_preserved_and_faster(self, name):
        app = build_workload(name)
        base = run_module(app)
        prog = build_ir(app)
        assert optimize_address_calculation(prog) > 0
        result = run_module(emit(prog).module)
        assert result.stdout == base.stdout
        assert result.cycles < base.cycles

    def test_optimized_program_still_instrumentable(self):
        """The pipeline composes: optimize at link time, then ATOM."""
        app = build_executable([GLOBALS_HEAVY])
        base = run_module(app)
        prog = build_ir(app)
        optimize_address_calculation(prog)
        optimized = emit(prog).module

        anal = build_analysis_unit([r"""
        long n;
        void Tick(void) { n++; }
        void Dump(void) {
            FILE *f = fopen("n.out", "w");
            fprintf(f, "%d\n", n);
            fclose(f);
        }
        """])

        def Instrument(iargc, iargv, atom):
            atom.AddCallProto("Tick()")
            atom.AddCallProto("Dump()")
            for p in atom.procs():
                for blk in atom.blocks(p):
                    atom.AddCallBlock(blk, BlockBefore, "Tick")
            atom.AddCallProgram(ProgramAfter, "Dump")

        res = instrument_executable(optimized, Instrument, anal)
        result = run_module(res.module)
        assert result.stdout == base.stdout
        assert int(result.files["n.out"]) > 100


class TestGotLoadCse:
    def test_same_block_duplicate_collapsed(self):
        from repro.isa.asm import assemble
        from repro.objfile.linker import link
        exe = link([assemble("""
        .globl __start
        .ent __start
__start:
        ldgp
        la   t0, cell
        ldq  t1, 0(t0)
        la   t2, cell          # duplicate GOT load, t0 still live
        addq t1, 1, t1
        stq  t1, 0(t2)
        la   a0, cell
        ldq  a0, 0(a0)
        li   v0, 1
        sys
        .end __start
        .data
        .align 3
cell:   .quad 41
        """, "t.s")])
        base = run_module(exe)
        prog = build_ir(exe)
        n = optimize_got_loads(prog)
        assert n >= 1
        result = run_module(emit(prog).module)
        assert result.status == base.status == 42

    def test_clobbered_register_kills_fact(self):
        from repro.isa.asm import assemble
        from repro.objfile.linker import link
        exe = link([assemble("""
        .globl __start
        .ent __start
__start:
        ldgp
        la   t0, cell
        ldq  t0, 0(t0)         # t0 overwritten: fact must die
        la   t1, cell
        ldq  t1, 0(t1)
        addq t0, t1, a0
        li   v0, 1
        sys
        .end __start
        .data
        .align 3
cell:   .quad 21
        """, "t.s")])
        prog = build_ir(exe)
        assert optimize_got_loads(prog) == 0
        assert run_module(emit(prog).module).status == 42
