"""OM identity round-trips over real workload binaries.

Rebuilding a workload's IR and re-emitting it unchanged must produce a
byte-identical text segment and cycle-identical execution — the bedrock
guarantee everything ATOM does sits on.
"""

import pytest

from repro.machine import run_module
from repro.om import build_ir, emit
from repro.workloads import build_workload

SAMPLE = ("li", "nqueens", "fileio", "hashtab", "crc")


@pytest.mark.parametrize("name", SAMPLE)
def test_identity_roundtrip(name):
    app = build_workload(name)
    base = run_module(app)
    out = emit(build_ir(app))
    assert bytes(out.module.section(".text").data) == \
        bytes(app.section(".text").data)
    result = run_module(out.module)
    assert result.stdout == base.stdout
    assert result.cycles == base.cycles


@pytest.mark.parametrize("name", SAMPLE[:2])
def test_shifted_roundtrip(name):
    app = build_workload(name)
    base = run_module(app)
    out = emit(build_ir(app),
               text_base=app.section(".text").vaddr + 0x1000)
    result = run_module(out.module)
    assert result.stdout == base.stdout


def test_pc_map_is_total_and_monotonic():
    app = build_workload("li")
    out = emit(build_ir(app))
    pairs = sorted(out.pc_map.items())
    # Identity emission: every instruction maps to itself.
    assert all(new == old for new, old in pairs)
    assert len(pairs) * 4 == len(app.section(".text").data)
