"""OM code generation: identity round-trips, insertion, relocation, opt."""

import pytest

from repro.isa import opcodes, registers as R
from repro.isa.instruction import Instruction
from repro.machine import run_module
from repro.mlc import build_executable
from repro.om import build_ir, eliminate_unreachable, emit
from repro.om.codegen import CodegenError
from repro.om.ir import IRInst

PROGRAM = r"""
long square(long x) { return x * x; }
long (*indirect)(long) = square;
long table[3] = { 5, 6, 7 };

int main() {
    long i, total = 0;
    for (i = 0; i < 3; i++) total += square(table[i]);
    printf("total=%d indirect=%d\n", total, indirect(9));
    return 0;
}
"""


@pytest.fixture(scope="module")
def exe():
    return build_executable([PROGRAM])


@pytest.fixture(scope="module")
def baseline(exe):
    return run_module(exe)


def test_identity_roundtrip(exe, baseline):
    out = emit(build_ir(exe))
    result = run_module(out.module)
    assert result.stdout == baseline.stdout
    assert result.status == baseline.status
    assert result.inst_count == baseline.inst_count
    assert result.cycles == baseline.cycles


def test_identity_preserves_bytes(exe):
    out = emit(build_ir(exe))
    assert bytes(out.module.section(".text").data) == \
        bytes(exe.section(".text").data)
    assert bytes(out.module.section(".data").data) == \
        bytes(exe.section(".data").data)


def test_shifted_text_base(exe, baseline):
    out = emit(build_ir(exe), text_base=exe.section(".text").vaddr + 0x4000)
    result = run_module(out.module)
    assert result.stdout == baseline.stdout
    # Data did not move.
    assert out.module.section(".data").vaddr == exe.section(".data").vaddr


def test_insertion_shifts_code_but_not_data(exe, baseline):
    prog = build_ir(exe)
    main = prog.proc("main")
    # Insert two counting no-ops at procedure entry.
    pad = [IRInst(Instruction(opcodes.BIS, ra=R.ZERO, rb=R.ZERO,
                              rc=R.ZERO)) for _ in range(2)]
    main.blocks[0].insts[:0] = pad
    out = emit(prog)
    result = run_module(out.module)
    assert result.stdout == baseline.stdout
    assert result.inst_count > baseline.inst_count
    assert len(out.module.section(".text").data) == \
        len(exe.section(".text").data) + 8


def test_pc_map(exe):
    prog = build_ir(exe)
    main = prog.proc("main")
    main.blocks[0].insts[:0] = [
        IRInst(Instruction(opcodes.BIS, ra=R.ZERO, rb=R.ZERO, rc=R.ZERO))]
    out = emit(prog)
    # Every original instruction has a pc_map entry; inserted one doesn't.
    orig_count = sum(1 for i in build_ir(exe).instructions())
    assert len(out.pc_map) == orig_count
    # Instructions after the insertion point map back 4 bytes.
    main_new = out.module.addr_of("main")
    main_old = exe.addr_of("main")
    assert out.pc_map[main_new + 4] == main_old


def test_function_pointer_reresolved_after_insertion(exe, baseline):
    """The GOT slot and data-word holding square's address must track it."""
    prog = build_ir(exe)
    # Insert padding into a procedure *before* square in layout order.
    first = prog.procs[0]
    first.blocks[0].insts[:0] = [
        IRInst(Instruction(opcodes.BIS, ra=R.ZERO, rb=R.ZERO, rc=R.ZERO))
        for _ in range(4)]
    out = emit(prog)
    result = run_module(out.module)
    assert result.stdout == baseline.stdout      # indirect(9) still works


def test_entry_tracks_start(exe):
    prog = build_ir(exe)
    start = prog.proc("__start")
    start.blocks[0].insts[:0] = [
        IRInst(Instruction(opcodes.BIS, ra=R.ZERO, rb=R.ZERO, rc=R.ZERO))]
    # __start is the first proc, so its address is unchanged, but inserting
    # into a proc before it would move it; either way entry == __start.
    out = emit(prog)
    assert out.module.entry == out.module.addr_of("__start")


def test_extra_symbols_resolution(exe):
    from repro.om.ir import IRBlock, IRProc
    prog = build_ir(exe)
    # A new proc that calls an external symbol supplied via extra_symbols.
    blk = IRBlock(index=10_000)
    blk.insts.append(IRInst(Instruction(opcodes.BSR, ra=R.RA),
                            target=("symbol", "__analysis_entry")))
    blk.insts.append(IRInst(Instruction(opcodes.RET, ra=R.ZERO, rb=R.RA)))
    proc = IRProc(name="__wrapper", blocks=[blk])
    prog.procs.append(proc)
    target = exe.section(".text").vaddr + 0x100  # arbitrary, reachable
    out = emit(prog, extra_symbols={"__analysis_entry": target})
    assert out.module.addr_of("__wrapper") > 0
    with pytest.raises(CodegenError, match="unresolved"):
        emit(prog)  # without extra_symbols the target cannot resolve


def test_unreachable_procedure_elimination():
    exe2 = build_executable([r"""
    long used() { return 1; }
    long dead_helper() { return 2; }
    long dead() { return dead_helper(); }
    int main() { return used(); }
    """])
    baseline = run_module(exe2)
    prog = build_ir(exe2)
    removed = eliminate_unreachable(prog)
    assert "dead" in removed and "dead_helper" in removed
    assert "used" not in removed and "main" not in removed
    out = emit(prog)
    assert len(out.module.section(".text").data) < \
        len(exe2.section(".text").data)
    result = run_module(out.module)
    assert result.status == baseline.status


def test_address_taken_procs_survive_elimination():
    exe2 = build_executable([r"""
    long maybe() { return 3; }
    long (*hook)(void) = maybe;      // address escapes into data
    int main() { return hook(); }
    """])
    prog = build_ir(exe2)
    removed = eliminate_unreachable(prog)
    assert "maybe" not in removed
    out = emit(prog)
    assert run_module(out.module).status == 3
