"""Sequence-aware cost model (same-cache-line save/restore discount).

The bench harness measures exactly the cycles ATOM's brackets add, so the
model must (a) discount statically-adjacent memory traffic the way real
hardware would, and (b) charge identical totals whether the interpreter
runs fused superblocks or per-instruction closures — the "model" and the
"interpreter" are the same table applied two ways, and these tests pin
that agreement.
"""

import pytest

from repro.isa import opcodes
from repro.isa import registers as R
from repro.isa.instruction import Instruction
from repro.machine import run_module
from repro.machine.costmodel import CACHE_LINE, DEFAULT
from repro.mlc import build_executable


def ldq(disp, rb=R.SP, ra=R.T0):
    return Instruction(opcodes.LDQ, ra=ra, rb=rb, disp=disp)


def addq():
    return Instruction(opcodes.ADDQ, ra=R.T0, rb=R.T1, rc=R.T2)


class TestSequenceCosts:
    def test_same_line_run_discounts_to_one_cycle(self):
        insts = [ldq(0), ldq(8), ldq(16)]
        full = DEFAULT.cost(insts[0].op)
        assert full > 1
        assert DEFAULT.sequence_costs(insts) == [full, 1, 1]

    def test_crossing_the_line_pays_full_cost_again(self):
        insts = [ldq(0), ldq(CACHE_LINE - 8), ldq(CACHE_LINE)]
        full = DEFAULT.cost(insts[0].op)
        # 0 and CACHE_LINE-8 share line 0; CACHE_LINE starts line 1.
        assert DEFAULT.sequence_costs(insts) == [full, 1, full]

    def test_different_base_registers_never_share_a_line(self):
        insts = [ldq(0, rb=R.SP), ldq(0, rb=R.GP)]
        full = DEFAULT.cost(insts[0].op)
        assert DEFAULT.sequence_costs(insts) == [full, full]

    def test_non_memory_instruction_resets_the_run(self):
        insts = [ldq(0), addq(), ldq(8)]
        full = DEFAULT.cost(ldq(0).op)
        costs = DEFAULT.sequence_costs(insts)
        assert costs[0] == full and costs[2] == full

    def test_discount_never_applies_to_single_cycle_ops(self):
        stq = Instruction(opcodes.STQ, ra=R.T0, rb=R.SP, disp=0)
        assert DEFAULT.cost(stq.op) == 1
        insts = [stq, stq.copy(disp=8)]
        assert DEFAULT.sequence_costs(insts) == [1, 1]

    def test_totals_match_position_by_position_accounting(self):
        """The discount is positional (textual predecessor), not
        trace-based, so the total is a pure function of the static
        sequence — recomputing it must be idempotent."""
        insts = [ldq(0), ldq(8), addq(), ldq(16), ldq(CACHE_LINE + 8)]
        once = DEFAULT.sequence_costs(insts)
        again = DEFAULT.sequence_costs(insts)
        assert once == again


# An app whose hot loop mixes save-bracket-like adjacent stack traffic
# with scattered global accesses, so both the discounted and the full-cost
# paths execute many times.
APP = r"""
long acc[8];
long touch(long i) {
    long a = acc[i % 8];
    long b = acc[(i + 3) % 8];
    acc[i % 8] = a + b + i;
    return a ^ b;
}
int main() {
    long i, total = 0;
    for (i = 0; i < 500; i++) total += touch(i);
    printf("%d\n", total & 0xFFFF);
    return 0;
}
"""


def test_interpreter_and_model_agree_across_dispatch_modes():
    """Fused-superblock and per-instruction execution must charge the
    same cycles: both sides read :meth:`CostModel.sequence_costs`, and
    the fused path must not lose the same-line discount at superblock
    boundaries (the regression this test pins)."""
    app = build_executable([APP])
    fused = run_module(app, fuse=True)
    simple = run_module(app, fuse=False)
    assert fused.status == simple.status == 0
    assert fused.stdout == simple.stdout
    assert fused.inst_count == simple.inst_count
    assert fused.cycles == simple.cycles
