"""Superblock fusion must be architecturally invisible.

Every test here runs the same program under the fused dispatch and the
plain per-instruction loop and insists on identical machine state —
registers, stats, memory, faults, and fault pcs.  Loops run enough
iterations that the lazy compiler actually installs the generated
superblock executors, so the compiled templates (not just the cold
trampoline path) are what gets compared.
"""

import pytest

from repro.isa.asm import assemble
from repro.machine import MachineError
from repro.machine.loader import Machine
from repro.workloads import build_workload


def build(body: str):
    src = f"""
        .text
        .globl __start
__start:
        ldgp
{body}
        mov  t9, a0
        li   v0, 1
        sys
"""
    from repro.objfile.linker import link
    return link([assemble(src, "t.s")])


def machine_state(machine: Machine):
    """Everything architecturally observable after a run."""
    pages = {no: bytes(page)
             for no, page in machine.memory._pages.items() if any(page)}
    return (list(machine.cpu.regs), list(machine.cpu.stats), pages)


def run_both(body: str, max_insts: int = 2_000_000_000):
    """(fused, unfused) pairs of (RunResult, state)."""
    out = []
    for fuse in (True, False):
        machine = Machine(build(body), fuse=fuse)
        result = machine.run(max_insts=max_insts)
        out.append((result, machine_state(machine)))
    return out


#: Loop bodies exercising every compiled template family, hot enough
#: (16 iterations) that superblocks get compiled and re-entered.
DIFFERENTIAL_PROGRAMS = {
    "memory-loop": """
        lda  sp, -128(sp)
        li   t0, 16
        clr  t9
loop:   stq  t0, 0(sp)
        ldq  t1, 0(sp)
        stl  t0, 8(sp)
        ldl  t2, 8(sp)
        stw  t0, 16(sp)
        ldwu t3, 16(sp)
        stb  t0, 24(sp)
        ldbu t4, 24(sp)
        addq t9, t1, t9
        addq t9, t4, t9
        subq t0, 1, t0
        bne  t0, loop
        and  t9, 0xff, t9
""",
    "alu-loop": """
        li   t0, 16
        clr  t9
loop:   sll  t0, 5, t1
        srl  t1, 2, t1
        li   t5, -8
        sra  t5, 1, t2
        sextb t1, t3
        sextw t1, t4
        sextl t2, t5
        umulh t0, t5, t6
        cmplt t0, t1, t7
        cmpule t0, t1, t8
        xor  t1, t2, a3
        bic  a3, t3, a3
        ornot a3, t4, a4
        cmoveq t7, a4, t9
        cmovne t7, t1, t9
        subq t0, 1, t0
        bgt  t0, loop
        and  t9, 0xff, t9
""",
    "call-loop": """
        li   s0, 12
        clr  t9
loop:   mov  s0, a0
        bsr  ra, double
        addq t9, v0, t9
        subq s0, 1, s0
        bne  s0, loop
        and  t9, 0xff, t9
        br   done
double: addq a0, a0, v0
        ret  (ra)
done:
""",
    "self-loop-superblock": """
        li   t0, 40
        li   t9, 2
loop:   addq t9, 1, t9
        subq t9, 1, t9
        subq t0, 1, t0
        bne  t0, loop
        addq t9, 40, t9
""",
}


@pytest.mark.parametrize("name", sorted(DIFFERENTIAL_PROGRAMS))
def test_fused_state_bit_identical(name):
    body = DIFFERENTIAL_PROGRAMS[name]
    (fused_result, fused_state), (simple_result, simple_state) = \
        run_both(body)
    assert fused_result.status == simple_result.status
    assert fused_result.stdout == simple_result.stdout
    assert fused_result.cycles == simple_result.cycles
    assert fused_result.inst_count == simple_result.inst_count
    assert fused_state == simple_state


def test_workload_state_bit_identical():
    module = build_workload("sieve")
    states = []
    for fuse in (True, False):
        machine = Machine(module, fuse=fuse)
        result = machine.run()
        states.append((result.status, result.stdout, result.cycles,
                       result.inst_count, machine_state(machine)))
    assert states[0] == states[1]


def test_computed_jump_into_run_interior():
    """A jsr can land mid-run (no static leader there): the per-inst
    closures must still be reachable at every index."""
    body = """
        li   t9, 90
        laa  pv, mid
        jsr  ra, (pv)
        br   done
entry:  li   t9, 1
mid:    subq t9, 48, t9
        ret  (ra)
done:
"""
    (fused_result, _), (simple_result, _) = run_both(body)
    assert fused_result.status == simple_result.status == 42


def test_branch_targets_split_runs():
    module = build(DIFFERENTIAL_PROGRAMS["memory-loop"])
    machine = Machine(module)
    runs = machine.cpu.superblock_runs()
    # The loop head is a branch target: it must start a superblock (or
    # stay unfused), never sit strictly inside one.
    insts = machine.cpu._insts
    from repro.isa.opcodes import Format
    targets = set()
    for i, inst in enumerate(insts):
        if inst.op.format is Format.BRANCH:
            targets.add(i + 1 + inst.disp)
    assert targets, "test program must contain branches"
    for start, end, term in runs:
        for target in targets:
            assert not (start < target < end), \
                f"branch target {target} inside fused run [{start},{end})"
        assert (end - start) + (term is not None) >= 2


def test_instruction_budget_exact_in_all_modes():
    # A long straight-line loop body: a naive fused charge would blow
    # straight past the budget mid-superblock, and the historical
    # per-instruction tail retired one instruction *past* the budget
    # before raising.  Exactly N instructions must retire — no more —
    # on all three dispatch paths, with identical machine state.
    body = "loop: " + "\n      ".join(["addq t0, 1, t0"] * 30) + \
           "\n      br loop"
    # 100 exhausts before the JIT threshold; 2000 exhausts well after
    # the hot loop has been promoted into a compiled region.
    for budget in (100, 2000):
        states = {}
        for fuse, jit in ((False, False), (True, False), (True, True)):
            machine = Machine(build(body), fuse=fuse, jit=jit)
            with pytest.raises(MachineError, match="budget"):
                machine.run(max_insts=budget)
            assert machine.cpu.inst_count == budget, \
                f"budget overshot with fuse={fuse} jit={jit}"
            states[(fuse, jit)] = machine_state(machine)
        assert states[(False, False)] == states[(True, False)] \
            == states[(True, True)]


def test_memory_fault_pc_identical_in_fused_block():
    # poke runs twice on a valid address (compiling its superblock),
    # then faults inside the *compiled* executor on the third call.
    body = """
        lda  sp, -16(sp)
        mov  sp, a0
        bsr  ra, poke
        bsr  ra, poke
        li   a0, 0x90000000
        bsr  ra, poke
        clr  t9
        br   done
poke:   stq  zero, 0(a0)
        addq a0, 0, a0
        ret  (ra)
done:
"""
    messages = []
    for fuse in (True, False):
        machine = Machine(build(body), fuse=fuse)
        with pytest.raises(MachineError) as excinfo:
            machine.run()
        assert excinfo.value.pc is not None
        messages.append(str(excinfo.value))
    assert messages[0] == messages[1]
    assert "pc=" in messages[0]


def test_divide_by_zero_pc_identical_in_fused_block():
    body = """
        li   a0, 4
        bsr  ra, dodiv
        bsr  ra, dodiv
        clr  a0
        bsr  ra, dodiv
        clr  t9
        br   done
dodiv:  li   t0, 100
        divq t0, a0, t1
        ret  (ra)
done:
"""
    messages = []
    for fuse in (True, False):
        machine = Machine(build(body), fuse=fuse)
        with pytest.raises(MachineError, match="division by zero") as ei:
            machine.run()
        assert ei.value.pc is not None, \
            f"divide fault lost its pc with fuse={fuse}"
        messages.append(str(ei.value))
    assert messages[0] == messages[1]
