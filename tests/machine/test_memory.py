"""Sparse memory: mapping, typed access, faults, strings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.memory import Memory, MemoryFault, PAGE_SIZE


def mapped():
    mem = Memory()
    mem.map_region(0x1000, 0x10000, "r")
    return mem


def test_unmapped_access_faults():
    mem = Memory()
    with pytest.raises(MemoryFault):
        mem.read_u8(0x1000)
    with pytest.raises(MemoryFault):
        mem.write_u8(0x1000, 1)


def test_access_past_region_end_faults():
    mem = mapped()
    mem.read_uint(0x1000 + 0x10000 - 8, 8)
    with pytest.raises(MemoryFault):
        mem.read_uint(0x1000 + 0x10000 - 4, 8)


def test_byte_roundtrip():
    mem = mapped()
    mem.write_u8(0x1234, 0xAB)
    assert mem.read_u8(0x1234) == 0xAB


@given(addr=st.integers(min_value=0x1000, max_value=0x10F00),
       value=st.integers(min_value=0, max_value=(1 << 64) - 1),
       size=st.sampled_from([1, 2, 4, 8]))
def test_uint_roundtrip(addr, value, size):
    mem = mapped()
    mem.write_uint(addr, value, size)
    assert mem.read_uint(addr, size) == value & ((1 << (8 * size)) - 1)


def test_cross_page_access():
    mem = Memory()
    mem.map_region(0, 4 * PAGE_SIZE, "r")
    addr = PAGE_SIZE - 3
    mem.write_uint(addr, 0x1122334455667788, 8)
    assert mem.read_uint(addr, 8) == 0x1122334455667788
    blob = bytes(range(100)) * 100
    mem.write(PAGE_SIZE - 50, blob)
    assert mem.read(PAGE_SIZE - 50, len(blob)) == blob


def test_extend_region():
    mem = Memory()
    mem.map_region(0x1000, 0, "heap")
    with pytest.raises(MemoryFault):
        mem.read_u8(0x1000)
    mem.extend_region("heap", 0x2000)
    mem.write_u8(0x1800, 7)
    assert mem.read_u8(0x1800) == 7
    with pytest.raises(KeyError):
        mem.extend_region("nothere", 0x3000)


def test_region_lookup():
    mem = mapped()
    region = mem.region_at(0x1000)
    assert region is not None and region.label == "r"
    assert mem.region_at(0x999) is None


def test_cstring():
    mem = mapped()
    mem.write(0x2000, b"hello\x00world")
    assert mem.read_cstring(0x2000) == b"hello"
    mem.write(0x3000, b"\x00")
    assert mem.read_cstring(0x3000) == b""


def test_unterminated_cstring_faults():
    mem = Memory()
    mem.map_region(0, PAGE_SIZE, "r")
    mem.write(0, b"\x01" * PAGE_SIZE)
    with pytest.raises(MemoryFault):
        mem.read_cstring(0, limit=PAGE_SIZE // 2)


def test_unaligned_access_allowed():
    """Unaligned accesses work (the unalign tool detects them, the
    hardware model does not forbid them)."""
    mem = mapped()
    mem.write_uint(0x1001, 0xDEADBEEF, 4)
    assert mem.read_uint(0x1001, 4) == 0xDEADBEEF
