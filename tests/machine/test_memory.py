"""Sparse memory: mapping, typed access, faults, strings — and the
typed-view fast paths the region JIT compiles against.

The fast-path tests treat ``read()``/``write()`` (byte-slice based,
view-free) as the reference implementation and insist the ``_fast*``
typed views and the ``read_uint``/``write_uint`` fast branches agree
with it bit-for-bit, especially at page boundaries and on unaligned
addresses where the two implementations genuinely differ in mechanism.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.memory import Memory, MemoryFault, PAGE_SIZE


def mapped():
    mem = Memory()
    mem.map_region(0x1000, 0x10000, "r")
    return mem


def test_unmapped_access_faults():
    mem = Memory()
    with pytest.raises(MemoryFault):
        mem.read_u8(0x1000)
    with pytest.raises(MemoryFault):
        mem.write_u8(0x1000, 1)


def test_access_past_region_end_faults():
    mem = mapped()
    mem.read_uint(0x1000 + 0x10000 - 8, 8)
    with pytest.raises(MemoryFault):
        mem.read_uint(0x1000 + 0x10000 - 4, 8)


def test_byte_roundtrip():
    mem = mapped()
    mem.write_u8(0x1234, 0xAB)
    assert mem.read_u8(0x1234) == 0xAB


@given(addr=st.integers(min_value=0x1000, max_value=0x10F00),
       value=st.integers(min_value=0, max_value=(1 << 64) - 1),
       size=st.sampled_from([1, 2, 4, 8]))
def test_uint_roundtrip(addr, value, size):
    mem = mapped()
    mem.write_uint(addr, value, size)
    assert mem.read_uint(addr, size) == value & ((1 << (8 * size)) - 1)


def test_cross_page_access():
    mem = Memory()
    mem.map_region(0, 4 * PAGE_SIZE, "r")
    addr = PAGE_SIZE - 3
    mem.write_uint(addr, 0x1122334455667788, 8)
    assert mem.read_uint(addr, 8) == 0x1122334455667788
    blob = bytes(range(100)) * 100
    mem.write(PAGE_SIZE - 50, blob)
    assert mem.read(PAGE_SIZE - 50, len(blob)) == blob


def test_extend_region():
    mem = Memory()
    mem.map_region(0x1000, 0, "heap")
    with pytest.raises(MemoryFault):
        mem.read_u8(0x1000)
    mem.extend_region("heap", 0x2000)
    mem.write_u8(0x1800, 7)
    assert mem.read_u8(0x1800) == 7
    with pytest.raises(KeyError):
        mem.extend_region("nothere", 0x3000)


def test_region_lookup():
    mem = mapped()
    region = mem.region_at(0x1000)
    assert region is not None and region.label == "r"
    assert mem.region_at(0x999) is None


def test_cstring():
    mem = mapped()
    mem.write(0x2000, b"hello\x00world")
    assert mem.read_cstring(0x2000) == b"hello"
    mem.write(0x3000, b"\x00")
    assert mem.read_cstring(0x3000) == b""


def test_unterminated_cstring_faults():
    mem = Memory()
    mem.map_region(0, PAGE_SIZE, "r")
    mem.write(0, b"\x01" * PAGE_SIZE)
    with pytest.raises(MemoryFault):
        mem.read_cstring(0, limit=PAGE_SIZE // 2)


def test_unaligned_access_allowed():
    """Unaligned accesses work (the unalign tool detects them, the
    hardware model does not forbid them)."""
    mem = mapped()
    mem.write_uint(0x1001, 0xDEADBEEF, 4)
    assert mem.read_uint(0x1001, 4) == 0xDEADBEEF


# ---- typed-view fast paths (what the region JIT compiles against) ----

VIEW_FOR_SIZE = {8: "_fastq", 4: "_fastl", 2: "_fastw"}
SIZES = (1, 2, 4, 8)


def touched(n_pages: int = 4) -> Memory:
    """A memory whose first ``n_pages`` are fully mapped, allocated and
    fast-path installed — the steady state JIT regions run in."""
    mem = Memory()
    mem.map_region(0, n_pages * PAGE_SIZE, "r")
    for page in range(n_pages):
        mem.write_u8(page * PAGE_SIZE, 0)       # allocate + install
    return mem


def fill(mem: Memory, base: int, length: int) -> bytes:
    blob = bytes((37 * i + 11) & 0xFF for i in range(length))
    mem.write(base, blob)
    return blob


def test_fast_views_installed_and_aliased():
    mem = touched(2)
    for views in (mem._fastq, mem._fastl, mem._fastw):
        assert set(views) == {0, 1}
    # the views write through to the same bytes the slow path reads
    mem._fastq[0][3] = 0x1122334455667788
    assert mem.read(24, 8) == bytes.fromhex("8877665544332211")
    mem._fastw[1][1] = 0xBEEF
    assert mem.read_uint(PAGE_SIZE + 2, 2) == 0xBEEF


def test_fast_views_track_pages_allocated_later():
    """A page validated by check() before its first write must gain its
    views at allocation time, not serve stale/no views."""
    mem = Memory()
    mem.map_region(0, 2 * PAGE_SIZE, "r")
    mem.check(PAGE_SIZE + 8, 8)                 # validated, still BSS
    assert 1 in mem._full and 1 not in mem._fast
    mem.write_u8(PAGE_SIZE + 8, 0x5A)           # first allocation
    assert 1 in mem._fast
    assert mem._fastq[1][1] == 0x5A


def test_read_uint_fast_equals_slow_everywhere():
    """Every alignment x size near a page boundary: the fast branch
    (typed slice of a ``_fast`` page) must equal the reference byte
    path bit-for-bit."""
    mem = touched(3)
    blob = fill(mem, 0, 3 * PAGE_SIZE)
    for size in SIZES:
        for addr in list(range(0, 32)) + \
                list(range(PAGE_SIZE - 16, PAGE_SIZE + 16)):
            expect = int.from_bytes(blob[addr:addr + size], "little")
            assert mem.read_uint(addr, size) == expect, (addr, size)
            assert int.from_bytes(mem.read(addr, size), "little") == expect


def test_jit_view_indexing_equals_read():
    """The exact access shape `_gen_mem` compiles: aligned addresses go
    ``view[(a & 4095) >> shift]``, everything else falls back to
    ``read``.  Both must see the same bits at every offset straddling a
    page boundary."""
    mem = touched(3)
    fill(mem, 0, 3 * PAGE_SIZE)
    for size, view_name in VIEW_FOR_SIZE.items():
        views = getattr(mem, view_name)
        shift = size.bit_length() - 1
        for a in range(PAGE_SIZE - 2 * size, PAGE_SIZE + 2 * size):
            reference = int.from_bytes(mem.read(a, size), "little")
            if a & (size - 1):                  # JIT takes the read path
                assert mem.read_uint(a, size) == reference
            else:
                assert views[a >> 12][(a & 4095) >> shift] == reference


def test_write_uint_straddle_matches_byte_writes():
    """Writes that straddle the page boundary take the slow branch; the
    landed bytes must be exactly what byte-wise writes produce."""
    for size in (2, 4, 8):
        for start in range(PAGE_SIZE - size + 1, PAGE_SIZE):
            value = (0x0102030405060708 * 3) & ((1 << (8 * size)) - 1)
            via_uint = touched(2)
            via_uint.write_uint(start, value, size)
            via_bytes = touched(2)
            via_bytes.write(start, value.to_bytes(size, "little"))
            assert via_uint.read(0, 2 * PAGE_SIZE) == \
                via_bytes.read(0, 2 * PAGE_SIZE), (start, size)


def test_view_write_then_straddle_read_coherent():
    """Interleaving view writes (JIT stores) with straddling reads
    (slow path) must stay coherent — both sides address one bytearray."""
    mem = touched(2)
    mem._fastq[0][(PAGE_SIZE - 8) >> 3] = 0xA1B2C3D4E5F60718
    mem._fastq[1][0] = 0x1828384858687888
    got = mem.read_uint(PAGE_SIZE - 4, 8)       # 4 bytes from each page
    assert got == int.from_bytes(
        (0xA1B2C3D4E5F60718).to_bytes(8, "little")[4:] +
        (0x1828384858687888).to_bytes(8, "little")[:4], "little")


@given(ops=st.lists(
    st.tuples(st.integers(min_value=0, max_value=2 * PAGE_SIZE + 24),
              st.integers(min_value=0, max_value=(1 << 64) - 1),
              st.sampled_from(SIZES)),
    min_size=1, max_size=24))
def test_mixed_width_traffic_fast_equals_slow(ops):
    """The same mixed-width write stream applied through the typed fast
    paths and through the reference byte path yields identical memory
    images and identical read-backs at every width."""
    fast, slow = touched(3), touched(3)
    for addr, value, size in ops:
        fast.write_uint(addr, value, size)
        slow.write(addr, (value & ((1 << (8 * size)) - 1))
                   .to_bytes(size, "little"))
    assert fast.read(0, 3 * PAGE_SIZE) == slow.read(0, 3 * PAGE_SIZE)
    for addr, _, size in ops:
        assert fast.read_uint(addr, size) == \
            int.from_bytes(slow.read(addr, size), "little")
