"""Kernel model tests: descriptors, dual break pointers, error codes."""

import pytest

from repro.machine.memory import Memory
from repro.machine.syscalls import (O_APPEND, O_RDONLY, O_WRONLY,
                                    SYS_CLOSE, SYS_CYCLES, SYS_EXIT,
                                    SYS_OPEN, SYS_READ, SYS_SBRK,
                                    SYS_SBRK2, SYS_WRITE, ExitProgram,
                                    Kernel, SyscallError)


@pytest.fixture
def kernel():
    mem = Memory()
    mem.map_region(0x1000, 0x10000, "data")
    mem.map_region(0x100000, 0, "heap")
    k = Kernel(mem)
    k.brk = 0x100000
    return k


def call(kernel, num, *args):
    padded = tuple(args) + (0,) * (6 - len(args))
    return kernel.syscall(num, padded, cycles=123)


def put_string(kernel, addr, text):
    kernel.memory.write(addr, text.encode() + b"\x00")


class TestFiles:
    def test_write_read_roundtrip(self, kernel):
        put_string(kernel, 0x1000, "f.dat")
        fd = call(kernel, SYS_OPEN, 0x1000, O_WRONLY)
        assert fd >= 3
        kernel.memory.write(0x2000, b"hello")
        assert call(kernel, SYS_WRITE, fd, 0x2000, 5) == 5
        assert call(kernel, SYS_CLOSE, fd) == 0
        fd = call(kernel, SYS_OPEN, 0x1000, O_RDONLY)
        n = call(kernel, SYS_READ, fd, 0x3000, 16)
        assert n == 5
        assert kernel.memory.read(0x3000, 5) == b"hello"

    def test_read_from_missing_file(self, kernel):
        put_string(kernel, 0x1000, "ghost")
        fd = call(kernel, SYS_OPEN, 0x1000, O_RDONLY)
        assert fd > (1 << 63)         # negative errno as u64

    def test_append_mode(self, kernel):
        put_string(kernel, 0x1000, "log")
        kernel.memory.write(0x2000, b"abdef")
        fd = call(kernel, SYS_OPEN, 0x1000, O_WRONLY)
        call(kernel, SYS_WRITE, fd, 0x2000, 2)
        call(kernel, SYS_CLOSE, fd)
        fd = call(kernel, SYS_OPEN, 0x1000, O_APPEND)
        call(kernel, SYS_WRITE, fd, 0x2002, 3)
        call(kernel, SYS_CLOSE, fd)
        assert bytes(kernel.files["log"]) == b"abdef"

    def test_write_to_read_only_fd_fails(self, kernel):
        put_string(kernel, 0x1000, "r.dat")
        kernel.files["r.dat"] = bytearray(b"x")
        fd = call(kernel, SYS_OPEN, 0x1000, O_RDONLY)
        result = call(kernel, SYS_WRITE, fd, 0x2000, 1)
        assert result > (1 << 63)

    def test_bad_fd(self, kernel):
        assert call(kernel, SYS_WRITE, 42, 0x2000, 1) > (1 << 63)
        assert call(kernel, SYS_READ, 42, 0x2000, 1) > (1 << 63)

    def test_stdout_stderr_capture(self, kernel):
        kernel.memory.write(0x2000, b"out")
        call(kernel, SYS_WRITE, 1, 0x2000, 3)
        call(kernel, SYS_WRITE, 2, 0x2000, 3)
        assert bytes(kernel.stdout) == b"out"
        assert bytes(kernel.stderr) == b"out"

    def test_stdin(self, kernel):
        kernel.stdin = b"input!"
        n = call(kernel, SYS_READ, 0, 0x2000, 4)
        assert n == 4
        assert kernel.memory.read(0x2000, 4) == b"inpu"
        n = call(kernel, SYS_READ, 0, 0x2000, 100)
        assert n == 2


class TestHeap:
    def test_sbrk_returns_old_break(self, kernel):
        old = call(kernel, SYS_SBRK, 64)
        assert old == 0x100000
        assert call(kernel, SYS_SBRK, 0) == 0x100040
        kernel.memory.write_u8(0x100000, 7)   # newly mapped

    def test_sbrk2_partitioned(self, kernel):
        base = 0x200000
        old = call(kernel, SYS_SBRK2, 128, base)
        assert old == base
        assert call(kernel, SYS_SBRK2, 0, 0) == base + 128
        kernel.memory.write_u8(base, 1)
        # The two breaks are independent.
        assert call(kernel, SYS_SBRK, 0) == 0x100000

    def test_negative_sbrk(self, kernel):
        call(kernel, SYS_SBRK, 4096)
        old = call(kernel, SYS_SBRK, -4096 & ((1 << 64) - 1))
        assert old == 0x101000
        assert call(kernel, SYS_SBRK, 0) == 0x100000


class TestMisc:
    def test_exit_raises(self, kernel):
        with pytest.raises(ExitProgram) as info:
            call(kernel, SYS_EXIT, 3)
        assert info.value.status == 3
        assert kernel.exit_status == 3

    def test_cycles_reports_counter(self, kernel):
        assert call(kernel, SYS_CYCLES) == 123

    def test_unknown_syscall(self, kernel):
        with pytest.raises(SyscallError):
            call(kernel, 999)
