"""The region JIT must be architecturally invisible.

Every test runs the same program with jit on and off (and usually the
plain per-instruction loop too) and insists on identical observable
state — registers, stats, memory, exit status, faults and fault pcs —
with the loops hot enough that regions actually get promoted past
:data:`repro.machine.jit.JIT_THRESHOLD` and the compiled code, not the
counter warm path, is what gets compared.  The dispatch-loop error
paths fixed alongside the JIT (budget off-by-one, IndexError masking)
are pinned here as well.
"""

import pytest

from repro.isa.asm import assemble
from repro.machine import MachineError
from repro.machine.jit import JIT_THRESHOLD
from repro.machine.loader import Machine

pytestmark = pytest.mark.jit

HOT = 8 * JIT_THRESHOLD


def build(body: str):
    src = f"""
        .text
        .globl __start
__start:
        ldgp
{body}
        mov  t9, a0
        li   v0, 1
        sys
"""
    from repro.objfile.linker import link
    return link([assemble(src, "t.s")])


def machine_state(machine: Machine):
    pages = {no: bytes(page)
             for no, page in machine.memory._pages.items() if any(page)}
    return (list(machine.cpu.regs), list(machine.cpu.stats), pages)


#: Hot loop bodies: memory traffic through stack slots (slot hoisting
#: and store-to-load forwarding), sub-word accesses, calls and returns
#: (dynamic re-entry through the label map), and a multi-block loop.
JIT_PROGRAMS = {
    "stack-slots": f"""
        lda  sp, -64(sp)
        li   t0, {HOT}
        clr  t9
loop:   stq  t0, 0(sp)
        ldq  t1, 0(sp)
        stl  t0, 8(sp)
        ldl  t2, 8(sp)
        stw  t0, 16(sp)
        ldwu t3, 16(sp)
        stb  t0, 24(sp)
        ldbu t4, 24(sp)
        addq t9, t1, t9
        addq t9, t4, t9
        subq t0, 1, t0
        bne  t0, loop
        and  t9, 0xff, t9
""",
    "call-return": f"""
        li   s0, {HOT}
        clr  t9
loop:   mov  s0, a0
        bsr  ra, double
        addq t9, v0, t9
        subq s0, 1, s0
        bne  s0, loop
        and  t9, 0xff, t9
        br   done
double: addq a0, a0, v0
        ret  (ra)
done:
""",
    "nested-loops": f"""
        li   s0, {JIT_THRESHOLD * 3}
        clr  t9
outer:  li   t0, 10
inner:  addq t9, t0, t9
        subq t0, 1, t0
        bgt  t0, inner
        subq s0, 1, s0
        bgt  s0, outer
        and  t9, 0xff, t9
""",
    "frame-adjust": f"""
        li   s0, {HOT}
        clr  t9
loop:   lda  sp, -32(sp)
        stq  s0, 0(sp)
        ldq  t1, 0(sp)
        addq t9, t1, t9
        lda  sp, 32(sp)
        subq s0, 1, s0
        bne  s0, loop
        and  t9, 0xff, t9
""",
}


def run_three(body: str, max_insts: int = 2_000_000_000):
    """{(fuse, jit): (RunResult, state)} over all three dispatch paths."""
    out = {}
    for fuse, jit in ((True, True), (True, False), (False, False)):
        machine = Machine(build(body), fuse=fuse, jit=jit)
        result = machine.run(max_insts=max_insts)
        out[(fuse, jit)] = (result, machine_state(machine))
    return out


@pytest.mark.parametrize("name", sorted(JIT_PROGRAMS))
def test_jit_state_bit_identical(name):
    results = run_three(JIT_PROGRAMS[name])
    jit_result, jit_state = results[(True, True)]
    for other in ((True, False), (False, False)):
        result, state = results[other]
        assert jit_result.status == result.status
        assert jit_result.cycles == result.cycles
        assert jit_result.inst_count == result.inst_count
        assert jit_state == state


def test_hot_loops_actually_promote():
    machine = Machine(build(JIT_PROGRAMS["stack-slots"]), jit=True)
    machine.run()
    stats = machine.cpu.jit_stats()
    assert stats["jit_regions"] >= 1
    assert stats["jit_resident"] >= 1


def test_jit_stats_none_when_disabled():
    machine = Machine(build(JIT_PROGRAMS["stack-slots"]), jit=False)
    machine.run()
    assert machine.cpu.jit_stats() is None


def test_memory_fault_pc_identical_in_jit_region():
    # poke stays hot on a valid address long enough to be promoted,
    # then faults inside the *compiled region* on the last call.
    body = f"""
        lda  sp, -16(sp)
        li   s0, {HOT}
        clr  t9
loop:   mov  sp, a0
        bsr  ra, poke
        subq s0, 1, s0
        bne  s0, loop
        li   a0, 0x90000000
        bsr  ra, poke
        br   done
poke:   stq  zero, 0(a0)
        ret  (ra)
done:
"""
    outcomes = []
    for jit in (True, False):
        machine = Machine(build(body), jit=jit)
        with pytest.raises(MachineError) as excinfo:
            machine.run()
        assert excinfo.value.pc is not None
        outcomes.append((str(excinfo.value), machine_state(machine)))
    assert outcomes[0] == outcomes[1]


def test_divide_fault_identical_in_jit_region():
    body = f"""
        li   s0, {HOT}
        li   a0, 4
        clr  t9
loop:   bsr  ra, dodiv
        subq s0, 1, s0
        bne  s0, loop
        clr  a0
        bsr  ra, dodiv
        br   done
dodiv:  li   t0, 100
        divq t0, a0, t1
        ret  (ra)
done:
"""
    outcomes = []
    for jit in (True, False):
        machine = Machine(build(body), jit=jit)
        with pytest.raises(MachineError, match="division by zero") as ei:
            machine.run()
        assert ei.value.pc is not None
        outcomes.append((str(ei.value), machine_state(machine)))
    assert outcomes[0] == outcomes[1]


def test_cache_eviction_stress():
    # Many distinct hot loops with a cache that holds only two regions:
    # every promotion past the cap evicts the oldest, the evicted head
    # re-promotes when it gets hot again, and none of it may change
    # architectural state.  The loops are separated by branch chains
    # longer than one region's block budget so each loop promotes as
    # its own region rather than all landing in the first one.
    from repro.machine.jit import MAX_BLOCKS
    pieces = []
    for k in range(6):
        pieces.append(f"""        li   t0, {HOT}
l{k}:     addq t9, {k + 1}, t9
        subq t0, 1, t0
        bne  t0, l{k}""")
        pieces.extend(f"s{k}_{j}: br s{k}_{j + 1}"
                      for j in range(MAX_BLOCKS + 2))
        pieces.append(f"s{k}_{MAX_BLOCKS + 2}:")
    body = "\n".join(pieces) + "\n        and  t9, 0xff, t9\n"
    baseline = Machine(build(body), jit=False)
    base_result = baseline.run()

    machine = Machine(build(body), jit=True)
    machine.cpu.jit.cache_cap = 2
    result = machine.run()
    stats = machine.cpu.jit_stats()
    assert stats["jit_evictions"] > 0
    assert stats["jit_resident"] <= 2
    assert (result.status, result.cycles, result.inst_count) == \
        (base_result.status, base_result.cycles, base_result.inst_count)
    assert machine_state(machine) == machine_state(baseline)


def test_invalidation_hooks():
    machine = Machine(build(JIT_PROGRAMS["stack-slots"]), jit=True)
    machine.run()
    jm = machine.cpu.jit
    before = jm.stats()["jit_resident"]
    assert before >= 1
    jm.invalidate_all()
    after = jm.stats()
    assert after["jit_resident"] == 0
    assert after["jit_invalidations"] >= before


def test_invalidate_range_is_selective():
    machine = Machine(build(JIT_PROGRAMS["stack-slots"]), jit=True)
    machine.run()
    jm = machine.cpu.jit
    regions = list(jm._installed.values())
    assert regions
    # A range that overlaps no region must invalidate nothing.
    past_end = max(r.hi for r in regions) + 100
    jm.invalidate(past_end, past_end + 10)
    assert jm.stats()["jit_resident"] == len(regions)
    # A range covering the first region's head must drop (at least) it.
    victim = regions[0]
    jm.invalidate(victim.head, victim.head + 1)
    assert jm.stats()["jit_resident"] < len(regions)


def chain(tag: str, blocks: int) -> str:
    """A branch chain longer than one region's block budget, so the
    loops on either side can never land in the same region."""
    lines = [f"{tag}_{j}: br {tag}_{j + 1}" for j in range(blocks)]
    return "\n".join(lines + [f"{tag}_{blocks}:"])


def test_cache_cap_one_eviction_churn():
    # Two hot loops alternating inside an outer loop with a one-slot
    # cache: every outer iteration promotes each loop anew, evicting
    # the other — maximal churn, every promotion a re-promotion of a
    # previously evicted head.  State must stay bit-identical.
    from repro.machine.jit import MAX_BLOCKS
    outer = 6
    body = f"""
        li   s5, {outer}
        clr  t9
outer:  li   t0, {HOT}
lA:     addq t9, 1, t9
        subq t0, 1, t0
        bne  t0, lA
{chain('sa', MAX_BLOCKS + 2)}
        li   t1, {HOT}
lB:     addq t9, 2, t9
        subq t1, 1, t1
        bne  t1, lB
{chain('sb', MAX_BLOCKS + 2)}
        subq s5, 1, s5
        bgt  s5, outer
        and  t9, 0xff, t9
"""
    baseline = Machine(build(body), jit=False)
    base_result = baseline.run()

    machine = Machine(build(body), jit=True)
    machine.cpu.jit.cache_cap = 1
    result = machine.run()
    stats = machine.cpu.jit_stats()
    assert stats["jit_resident"] <= 1
    # churn, not steady state: far more promotions than the cache holds,
    # which can only happen if evicted heads re-promote identically
    assert stats["jit_regions"] > 4
    assert stats["jit_evictions"] >= stats["jit_regions"] - 1
    assert (result.status, result.cycles, result.inst_count) == \
        (base_result.status, base_result.cycles, base_result.inst_count)
    assert machine_state(machine) == machine_state(baseline)


class InvalidateMidRun:
    """Sampler that fires ``invalidate(lo, hi)`` over the first
    installed region at the Nth sample boundary — while control is
    still executing inside the hot loop that region covers."""

    track_calls = False

    def __init__(self, interval: int, at_sample: int):
        self.interval = interval
        self.at_sample = at_sample
        self.counts: dict[int, int] = {}
        self.cpu = None
        self.invalidated_spans: list[tuple[int, int]] = []

    def bind(self, cpu):
        self.cpu = cpu
        return self

    def sample(self, index: int) -> None:
        self.counts[index] = self.counts.get(index, 0) + 1
        n = sum(self.counts.values())
        jm = self.cpu.jit
        if jm is not None and n == self.at_sample and jm._installed:
            region = next(iter(jm._installed.values()))
            jm.invalidate(region.lo, region.hi)
            self.invalidated_spans.append((region.lo, region.hi))


@pytest.mark.parametrize("name", ["stack-slots", "nested-loops"])
def test_invalidate_mid_region_then_repromote(name):
    # Invalidate the promoted region's whole [lo, hi) span at an exact
    # instruction boundary mid-loop: execution falls back to the warm
    # tiers, the loop re-heats and re-promotes, and the final state and
    # sample stream are bit-identical to a JIT-less run.
    from repro.obs.runtime import PcSampler
    interval = 97
    baseline = Machine(build(JIT_PROGRAMS[name]), jit=False)
    base_sampler = PcSampler(interval=interval)
    base_result = baseline.run(sampler=base_sampler)

    machine = Machine(build(JIT_PROGRAMS[name]), jit=True)
    sampler = InvalidateMidRun(interval=interval, at_sample=4)
    result = machine.run(sampler=sampler)

    assert sampler.invalidated_spans, "nothing was promoted before the " \
        "invalidation point; make the loop hotter or sample later"
    stats = machine.cpu.jit_stats()
    assert stats["jit_invalidations"] >= 1
    # the loop got hot again after the drop and promoted a second time
    assert stats["jit_regions"] >= 2
    assert stats["jit_resident"] >= 1
    assert (result.status, result.cycles, result.inst_count) == \
        (base_result.status, base_result.cycles, base_result.inst_count)
    assert machine_state(machine) == machine_state(baseline)
    assert sampler.counts == base_sampler.counts


def test_invalidate_mid_region_state_matches_uninvalidated_jit():
    # Same program, same JIT, with and without a mid-run invalidation:
    # re-promotion must regenerate code that leaves identical state.
    results = {}
    for invalidate in (False, True):
        machine = Machine(build(JIT_PROGRAMS["stack-slots"]), jit=True)
        if invalidate:
            sampler = InvalidateMidRun(interval=97, at_sample=4)
        else:
            from repro.obs.runtime import PcSampler
            sampler = PcSampler(interval=97)
        result = machine.run(sampler=sampler)
        results[invalidate] = (result.status, result.cycles,
                               result.inst_count, machine_state(machine))
    assert results[True] == results[False]


def test_handler_internal_indexerror_propagates():
    # An IndexError raised *inside* a handler body is a simulator bug
    # and must surface with its real traceback, not be masked as
    # "control left the text segment" by the dispatch loop's guard.
    for fuse in (True, False):
        machine = Machine(build("        addq t9, 1, t9"), fuse=fuse)
        cpu = machine.cpu
        index = cpu._index_of(machine.module.entry)

        def buggy():
            raise IndexError("handler bug, not a control-flow exit")

        cpu._code[index] = buggy
        cpu._dispatch[index] = buggy
        with pytest.raises(IndexError, match="handler bug"):
            machine.run()


def test_control_past_text_end_still_reported():
    # The guard the IndexError catch exists for: control falling past
    # the end of text (a module with no exit syscall) must still
    # surface as the control-left-text fault, not a raw IndexError.
    src = """
        .text
        .globl __start
__start:
        addq t9, 1, t9
        addq t9, 1, t9
"""
    from repro.objfile.linker import link
    module = link([assemble(src, "t.s")])
    for fuse in (True, False):
        machine = Machine(module, fuse=fuse)
        with pytest.raises(MachineError,
                           match="control left the text segment"):
            machine.run()


def test_sampled_profile_identical_with_jit():
    # The deterministic PC sampler must land on exact instruction
    # boundaries with the JIT engaged: the sampled stream is a pure
    # function of (text, entry, interval).
    from repro.obs.runtime import PcSampler
    samples = {}
    for jit in (True, False):
        machine = Machine(build(JIT_PROGRAMS["nested-loops"]), jit=jit)
        sampler = PcSampler(interval=7)
        machine.run(sampler=sampler)
        samples[jit] = (dict(sampler.counts),
                        dict(sampler.cycle_counts))
    assert samples[True] == samples[False]
    assert samples[True][0], "sampler collected nothing"
