"""CPU semantics tests: each instruction family via small programs."""

import pytest

from repro.isa.asm import assemble
from repro.machine import MachineError, run_module
from repro.objfile.linker import link


def run_asm(body: str, **kw):
    """Assemble a test kernel that runs ``body`` and exits with t9 & 0xff."""
    lines = body.splitlines()
    cut = len(lines)
    for i, line in enumerate(lines):
        if line.strip().startswith((".data", ".bss")):
            cut = i
            break
    code = "\n".join(lines[:cut])
    rest = "\n".join(lines[cut:])
    src = f"""
        .text
        .globl __start
__start:
        ldgp
{code}
        mov  t9, a0
        li   v0, 1
        sys
{rest}
"""
    return run_module(link([assemble(src, "t.s")]), **kw)


def expect(body: str, status: int, **kw):
    result = run_asm(body, **kw)
    assert result.status == status, \
        f"expected exit {status}, got {result.status}"
    return result


class TestAlu:
    def test_add_sub(self):
        expect("li t0, 40\n addq t0, 2, t9", 42)
        expect("li t0, 50\n subq t0, 8, t9", 42)

    def test_mul_div_rem(self):
        expect("li t0, 6\n li t1, 7\n mulq t0, t1, t9", 42)
        expect("li t0, 85\n li t1, 2\n divq t0, t1, t9", 42)
        expect("li t0, 85\n li t1, 43\n remq t0, t1, t9", 42)

    def test_signed_division_truncates_toward_zero(self):
        expect("li t0, -7\n li t1, 2\n divq t0, t1, t9\n negq t9, t9", 3)
        expect("li t0, -7\n li t1, 2\n remq t0, t1, t9\n negq t9, t9", 1)

    def test_divide_by_zero_traps(self):
        with pytest.raises(MachineError, match="division by zero"):
            run_asm("li t0, 1\n clr t1\n divq t0, t1, t9")

    def test_logic(self):
        expect("li t0, 0xF0\n li t1, 0x3C\n and t0, t1, t9", 0x30)
        expect("li t0, 0xF0\n li t1, 0x0F\n bis t0, t1, t9", 0xFF)
        expect("li t0, 0xFF\n li t1, 0x0F\n xor t0, t1, t9", 0xF0)
        expect("li t0, 0xFF\n li t1, 0x0F\n bic t0, t1, t9", 0xF0)

    def test_shifts(self):
        expect("li t0, 1\n sll t0, 5, t9", 32)
        expect("li t0, 128\n srl t0, 2, t9", 32)
        expect("li t0, -128\n sra t0, 2, t9\n negq t9, t9", 32)

    def test_sra_vs_srl_on_negative(self):
        # srl of -1 keeps high zeros coming in; low byte stays 0xff.
        expect("li t0, -1\n srl t0, 8, t9\n and t9, 0xff, t9", 0xFF)
        expect("li t0, -256\n sra t0, 8, t9\n addq t9, 1, t9", 0)

    def test_compares(self):
        expect("li t0, 3\n li t1, 5\n cmplt t0, t1, t9", 1)
        expect("li t0, 5\n li t1, 5\n cmplt t0, t1, t9", 0)
        expect("li t0, 5\n li t1, 5\n cmple t0, t1, t9", 1)
        expect("li t0, 5\n li t1, 5\n cmpeq t0, t1, t9", 1)
        # Unsigned: -1 is huge.
        expect("li t0, -1\n li t1, 5\n cmpult t0, t1, t9", 0)
        expect("li t0, -1\n li t1, 5\n cmplt t0, t1, t9", 1)
        expect("li t0, -1\n li t1, -1\n cmpule t0, t1, t9", 1)

    def test_cmov(self):
        expect("li t0, 0\n li t1, 42\n li t9, 7\n cmoveq t0, t1, t9", 42)
        expect("li t0, 1\n li t1, 42\n li t9, 7\n cmoveq t0, t1, t9", 7)
        expect("li t0, 1\n li t1, 42\n li t9, 7\n cmovne t0, t1, t9", 42)

    def test_sign_extensions(self):
        expect("li t0, 0x1FF\n sextb t0, t9\n addq t9, 2, t9", 1)
        expect("li t0, 0x1FFFF\n sextw t0, t9\n addq t9, 2, t9", 1)
        expect("li t0, 0x80\n sextb t0, t9\n addq t9, 0x81, t9", 1)

    def test_umulh(self):
        expect("li t0, -1\n li t1, 16\n umulh t0, t1, t9", 15)

    def test_wraparound(self):
        expect("li t0, -1\n addq t0, 1, t9", 0)

    def test_writes_to_zero_discarded(self):
        expect("li t9, 7\n addq t9, 35, zero\n addq t9, 35, t9", 42)
        expect("lda zero, 99(zero)\n clr t9", 0)


class TestAluEdgeCases:
    def test_sextb_sign_boundaries(self):
        expect("li t0, 0x7F\n sextb t0, t9", 0x7F)          # max positive
        expect("li t0, 0x80\n sextb t0, t9\n addq t9, 0x81, t9", 1)
        expect("li t0, 0xFF\n sextb t0, t9\n addq t9, 1, t9", 0)
        # High bits beyond the byte are ignored.
        expect("li t0, 0x1234FF7F\n sextb t0, t9", 0x7F)

    def test_sextw_sign_boundaries(self):
        expect("li t0, 0x7FFF\n sextw t0, t9\n srl t9, 8, t9", 0x7F)
        expect("li t0, 0x8000\n sextw t0, t9\n addq t9, 0x8001, t9", 1)
        expect("li t0, 0xFFFF\n sextw t0, t9\n addq t9, 1, t9", 0)

    def test_sextl_sign_boundaries(self):
        # 0x7FFFFFFF stays positive: bit 31 propagates nothing.
        expect("li t0, 1\n sll t0, 31, t0\n subq t0, 1, t0\n"
               " sextl t0, t9\n srl t9, 31, t9", 0)
        # 0x80000000 becomes negative: the top 33 bits all set.
        expect("li t0, 1\n sll t0, 31, t0\n sextl t0, t9\n"
               " srl t9, 31, t9\n and t9, 0xff, t9", 0xFF)

    def test_shifts_by_63(self):
        expect("li t0, 1\n sll t0, 63, t9\n srl t9, 56, t9", 0x80)
        expect("li t0, -1\n srl t0, 63, t9", 1)
        expect("li t0, -2\n sra t0, 63, t9\n addq t9, 2, t9", 1)
        # Register-count forms take the same path.
        expect("li t0, 1\n li t1, 63\n sll t0, t1, t9\n srl t9, 56, t9",
               0x80)
        expect("li t0, -2\n li t1, 63\n sra t0, t1, t9\n addq t9, 2, t9",
               1)

    def test_umulh_high_bit_products(self):
        # (2^64-1)^2 >> 64 == 2^64-2: +2 wraps to 0.
        expect("li t0, -1\n li t1, -1\n umulh t0, t1, t9\n"
               " addq t9, 2, t9", 0)
        # 2^63 * 2 >> 64 == 1.
        expect("li t0, 1\n sll t0, 63, t0\n li t1, 2\n umulh t0, t1, t9",
               1)
        # Products below 2^64 have zero high half.
        expect("li t0, -1\n li t1, 1\n umulh t0, t1, t9", 0)

    def test_cmov_into_zero_register_discarded(self):
        expect("li t0, 0\n li t1, 42\n cmoveq t0, t1, zero\n li t9, 7", 7)
        expect("li t0, 1\n li t1, 42\n cmovne t0, t1, zero\n li t9, 7", 7)

    def test_divq_into_zero_register_never_traps(self):
        # The ALU function is not evaluated when rc is the zero register,
        # so a divide by zero whose result is discarded cannot trap.
        expect("li t0, 1\n clr t1\n divq t0, t1, zero\n li t9, 5", 5)
        expect("li t0, 1\n clr t1\n remq t0, t1, zero\n li t9, 5", 5)

    def test_divide_by_zero_reports_pc(self):
        with pytest.raises(MachineError, match="pc=0x") as excinfo:
            run_asm("li t0, 1\n clr t1\n divq t0, t1, t9")
        assert excinfo.value.pc is not None


class TestControlFlow:
    def test_branches(self):
        expect("""
        li  t0, 3
        clr t9
loop:   addq t9, 14, t9
        subq t0, 1, t0
        bne t0, loop
        """, 42)

    def test_taken_and_fallthrough(self):
        expect("""
        clr t9
        clr t0
        beq t0, yes
        li  t9, 1
        br  out
yes:    li  t9, 2
out:
        """, 2)

    def test_blt_bge(self):
        expect("li t0, -5\n li t9, 1\n blt t0, ok\n li t9, 0\nok:", 1)
        expect("li t0, 5\n li t9, 1\n bge t0, ok\n li t9, 0\nok:", 1)
        expect("clr t0\n li t9, 1\n bge t0, ok\n li t9, 0\nok:", 1)

    def test_blbs_blbc(self):
        expect("li t0, 3\n li t9, 1\n blbs t0, ok\n li t9, 0\nok:", 1)
        expect("li t0, 2\n li t9, 1\n blbc t0, ok\n li t9, 0\nok:", 1)

    def test_bsr_ret(self):
        expect("""
        bsr  ra, sub
        br   out
sub:    li   t9, 42
        ret  (ra)
out:
        """, 42)

    def test_jsr_indirect(self):
        expect("""
        laa  pv, sub
        jsr  ra, (pv)
        br   out
sub:    li   t9, 42
        ret  (ra)
out:
        """, 42)

    def test_jump_outside_text_traps(self):
        with pytest.raises(MachineError, match="outside text"):
            run_asm("clr t0\n jmp (t0)")

    def test_halt_traps(self):
        with pytest.raises(MachineError, match="halt"):
            run_asm("halt")

    def test_instruction_budget(self):
        with pytest.raises(MachineError, match="budget"):
            run_asm("loop: br loop", max_insts=10_000)


class TestMemoryOps:
    def test_stack_store_load(self):
        expect("""
        lda  sp, -16(sp)
        li   t0, 42
        stq  t0, 8(sp)
        clr  t0
        ldq  t9, 8(sp)
        lda  sp, 16(sp)
        """, 42)

    def test_widths_and_extension(self):
        expect("""
        lda  sp, -16(sp)
        li   t0, -1
        stl  t0, 0(sp)
        ldl  t9, 0(sp)       # sign-extends
        addq t9, 43, t9
        """, 42)
        expect("""
        lda  sp, -16(sp)
        li   t0, 0x1FF
        stb  t0, 0(sp)
        li   t1, 0
        stb  t1, 1(sp)
        ldbu t9, 0(sp)       # zero-extends: 0xFF
        subq t9, 0xBD, t9
        """, 0x42)
        expect("""
        lda  sp, -16(sp)
        li   t0, 0x1234
        stw  t0, 0(sp)
        ldwu t9, 0(sp)
        subq t9, 0x11F2, t9
        """, 0x42)

    def test_data_segment_access(self):
        result = run_asm("""
        la   t0, cell
        ldq  t9, 0(t0)
        """ + "\n        .data\n        .align 3\ncell: .quad 42")
        assert result.status == 42

    def test_bss_zero_initialized(self):
        expect("""
        la   t0, buf
        ldq  t9, 0(t0)
        addq t9, 42, t9
        .bss
        .align 3
buf:    .space 64
        """, 42)

    def test_wild_pointer_faults(self):
        with pytest.raises(MachineError):
            run_asm("li t0, 0x90000000\n ldq t9, 0(t0)")


class TestSyscalls:
    def test_write_stdout_stderr(self):
        result = run_asm("""
        la   a1, msg
        li   a2, 3
        li   a0, 1
        li   v0, 2
        sys
        li   a0, 2
        li   v0, 2
        la   a1, msg
        li   a2, 3
        sys
        clr  t9
        .data
msg:    .ascii "abc"
        """)
        assert result.stdout == b"abc" and result.stderr == b"abc"

    def test_file_write_and_read_back(self):
        result = run_asm("""
        la   a0, name
        li   a1, 1          # O_WRONLY (create)
        li   v0, 4          # open
        sys
        mov  v0, s0
        mov  s0, a0
        la   a1, msg
        li   a2, 5
        li   v0, 2          # write
        sys
        mov  s0, a0
        li   v0, 5          # close
        sys
        clr  t9
        .data
name:   .asciiz "out.txt"
msg:    .ascii "hello"
        """)
        assert result.files["out.txt"] == b"hello"

    def test_read_stdin(self):
        result = run_asm("""
        lda  sp, -16(sp)
        clr  a0             # fd 0
        mov  sp, a1
        li   a2, 4
        li   v0, 3          # read
        sys
        ldbu t9, 0(sp)
        """, stdin=b"Q")
        assert result.status == ord("Q")

    def test_sbrk(self):
        result = run_asm("""
        li   a0, 4096
        li   v0, 6          # sbrk
        sys
        mov  v0, s0         # old break
        li   t0, 7
        stq  t0, 0(s0)      # newly mapped page is writable
        ldq  t9, 0(s0)
        addq t9, 35, t9
        """)
        assert result.status == 42

    def test_open_missing_file_fails(self):
        result = run_asm("""
        la   a0, name
        clr  a1             # O_RDONLY
        li   v0, 4
        sys
        blt  v0, failed
        li   t9, 0
        br   out
failed: li   t9, 1
out:
        .data
name:   .asciiz "no-such-file"
        """)
        assert result.status == 1

    def test_preloaded_file_readable(self):
        result = run_asm("""
        lda  sp, -16(sp)
        la   a0, name
        clr  a1
        li   v0, 4
        sys
        mov  v0, a0
        mov  sp, a1
        li   a2, 1
        li   v0, 3
        sys
        ldbu t9, 0(sp)
        .data
name:   .asciiz "in.dat"
        """, preload_files={"in.dat": b"Z"})
        assert result.status == ord("Z")


class TestProcessModel:
    def test_argv_on_stack(self):
        result = run_asm("""
        # a0=argc a1=argv were set by the loader; crt-less test reads them.
        mov  a0, t9
        """, args=("x", "y"))
        assert result.status == 3

    def test_stack_below_text(self):
        mod = link([assemble(".globl __start\n__start: mov sp, a0\n"
                             "li v0, 1\n sys", "t.s")])
        result = run_module(mod)
        assert result.status == result.initial_sp & 0xFF
        assert result.initial_sp % 16 == 0
        assert result.initial_sp < 0x0010_0000   # stack below text base

    def test_cycles_accumulate(self):
        r1 = expect("clr t9", 0)
        r2 = expect("clr t9\n nop\n nop", 0)
        assert r2.cycles > r1.cycles
        assert r2.inst_count == r1.inst_count + 2
