"""Property tests: the CPU against an independent reference model.

Hypothesis generates random straight-line operate/memory instruction
sequences; a tiny Python interpreter predicts the machine state, and the
real machine must agree on every register.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import encoding, opcodes, registers as R
from repro.isa.instruction import Instruction
from repro.machine.costmodel import DEFAULT
from repro.machine.cpu import Cpu
from repro.machine.memory import Memory
from repro.machine.syscalls import Kernel

MASK = (1 << 64) - 1

# Registers random programs may touch (no sp/gp/ra plumbing needed).
REGS = [R.T0, R.T1, R.T2, R.T3, R.V0, R.A0, R.A1, R.S0]

OPERATE_OPS = [opcodes.ADDQ, opcodes.SUBQ, opcodes.MULQ, opcodes.AND,
               opcodes.BIS, opcodes.XOR, opcodes.BIC, opcodes.ORNOT,
               opcodes.SLL, opcodes.SRL, opcodes.SRA, opcodes.CMPEQ,
               opcodes.CMPLT, opcodes.CMPLE, opcodes.CMPULT,
               opcodes.CMPULE, opcodes.SEXTB, opcodes.SEXTW,
               opcodes.SEXTL, opcodes.UMULH]

reg = st.sampled_from(REGS)

operate = st.builds(
    lambda op, ra, rb, rc, lit, is_lit: Instruction(
        op, ra=ra, rb=rb, rc=rc, lit=lit, is_lit=is_lit),
    op=st.sampled_from(OPERATE_OPS), ra=reg, rb=reg, rc=reg,
    lit=st.integers(min_value=0, max_value=255), is_lit=st.booleans())

lda = st.builds(
    lambda ra, disp: Instruction(opcodes.LDA, ra=ra, rb=R.ZERO, disp=disp),
    ra=reg, disp=st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1))

program = st.lists(st.one_of(operate, lda), min_size=1, max_size=40)


def _signed(v):
    return v - (1 << 64) if v & (1 << 63) else v


def reference(insts, init):
    regs = dict(init)

    def get(n):
        return 0 if n == R.ZERO else regs.get(n, 0)

    for inst in insts:
        op = inst.op
        if op is opcodes.LDA:
            value = inst.disp & MASK
        else:
            a = get(inst.ra)
            b = inst.lit if inst.is_lit else get(inst.rb)
            name = op.mnemonic
            if name == "addq":
                value = (a + b) & MASK
            elif name == "subq":
                value = (a - b) & MASK
            elif name == "mulq":
                value = (a * b) & MASK
            elif name == "and":
                value = a & b
            elif name == "bis":
                value = a | b
            elif name == "xor":
                value = a ^ b
            elif name == "bic":
                value = a & ~b & MASK
            elif name == "ornot":
                value = (a | ~b) & MASK
            elif name == "sll":
                value = (a << (b & 63)) & MASK
            elif name == "srl":
                value = a >> (b & 63)
            elif name == "sra":
                value = (_signed(a) >> (b & 63)) & MASK
            elif name == "cmpeq":
                value = int(a == b)
            elif name == "cmplt":
                value = int(_signed(a) < _signed(b))
            elif name == "cmple":
                value = int(_signed(a) <= _signed(b))
            elif name == "cmpult":
                value = int(a < b)
            elif name == "cmpule":
                value = int(a <= b)
            elif name == "sextb":
                value = (b & 0xFF) | (MASK ^ 0xFF) if b & 0x80 else b & 0xFF
            elif name == "sextw":
                value = (b & 0xFFFF) | (MASK ^ 0xFFFF) if b & 0x8000 \
                    else b & 0xFFFF
            elif name == "sextl":
                value = (b & 0xFFFFFFFF) | (MASK ^ 0xFFFFFFFF) \
                    if b & 0x80000000 else b & 0xFFFFFFFF
            elif name == "umulh":
                value = (a * b) >> 64
            else:  # pragma: no cover
                raise AssertionError(name)
        if inst.ra != R.ZERO or op is not opcodes.LDA:
            target = inst.ra if op is opcodes.LDA else inst.rc
            if target != R.ZERO:
                regs[target] = value & MASK
    return regs


def run_machine(insts, init):
    text_base = 0x1000
    body = list(insts)
    # Exit: status irrelevant; halt guards the end.
    body.append(Instruction(opcodes.LDA, ra=R.V0, rb=R.ZERO, disp=1))
    body.append(Instruction(opcodes.SYS))
    memory = Memory()
    blob = encoding.encode_stream(body)
    memory.map_region(text_base, len(blob), "text")
    memory.write(text_base, blob)
    kernel = Kernel(memory)
    cpu = Cpu(memory, kernel, text_base, blob, DEFAULT)
    for n, v in init.items():
        cpu.regs[n] = v
    try:
        cpu.run(text_base)
    except Exception:
        pass
    return cpu


@settings(max_examples=120, deadline=None)
@given(insts=program,
       seed=st.lists(st.integers(min_value=0, max_value=MASK),
                     min_size=len(REGS), max_size=len(REGS)))
def test_machine_matches_reference(insts, seed):
    init = dict(zip(REGS, seed))
    expected = reference(insts, init)
    cpu = run_machine(insts, init)
    for n in REGS:
        if n == R.V0:
            continue            # clobbered by the exit sequence
        want = expected.get(n, init.get(n, 0))
        assert cpu.regs[n] == want, \
            f"reg {R.reg_name(n)}: machine {cpu.regs[n]:#x} != " \
            f"model {want:#x}"


@settings(max_examples=60, deadline=None)
@given(insts=program,
       seed=st.lists(st.integers(min_value=0, max_value=MASK),
                     min_size=len(REGS), max_size=len(REGS)))
def test_encode_decode_preserves_semantics(insts, seed):
    """Round-tripping a program through binary changes nothing."""
    init = dict(zip(REGS, seed))
    decoded = encoding.decode_stream(encoding.encode_stream(insts))
    a = run_machine(insts, init)
    b = run_machine(decoded, init)
    assert a.regs == b.regs
    assert a.cycles == b.cycles