"""The jit on/off differential lane over real compiled programs.

The region JIT promises to be architecturally invisible end to end:
whatever the mlc compiler emits, whatever a tool splices in at any opt
level, and whatever the deterministic profiler observes, a run with the
JIT engaged must be byte-identical to the same run without it — exit
status, stdout, output files, ``InstrumentStats``, simulated cycles and
``wrl-profile/v1`` artifacts alike.  Hypothesis widens the analysis-
routine population beyond the hand-written tools.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings

from repro.atom import (OptLevel, ProcBefore, ProgramAfter,
                        instrument_executable)
from repro.machine import run_module
from repro.mlc import build_analysis_unit, build_executable
from repro.obs.runtime import PcSampler, profile_doc

from ..atom.test_o4_hypothesis import analysis_bodies, analysis_source

pytestmark = pytest.mark.jit

#: mlc-compiled example programs: loops hot enough to promote regions,
#: function calls (dynamic re-entry), arrays, strings and file output.
EXAMPLE_PROGRAMS = {
    "checksum": r"""
int step(int acc, int v) { return (acc * 33 + v) & 0xFFFFFF; }
int main() {
    int i, acc = 7;
    char buf[64];
    for (i = 0; i < 64; i++) buf[i] = (i * 11) & 0x7F;
    for (i = 0; i < 400; i++) acc = step(acc, buf[i & 63]);
    printf("acc=%d\n", acc);
    return acc & 7;
}
""",
    "matmul": r"""
long a[8][8], b[8][8], c[8][8];
int main() {
    long i, j, k, t = 0;
    for (i = 0; i < 8; i++)
        for (j = 0; j < 8; j++) { a[i][j] = i + j; b[i][j] = i - j; }
    for (i = 0; i < 8; i++)
        for (j = 0; j < 8; j++) {
            long s = 0;
            for (k = 0; k < 8; k++) s += a[i][k] * b[k][j];
            c[i][j] = s;
        }
    for (i = 0; i < 8; i++) t += c[i][i];
    printf("trace=%d\n", t);
    return 0;
}
""",
    "fileout": r"""
int main() {
    FILE *f = fopen("out.txt", "w");
    int i, acc = 0;
    for (i = 0; i < 300; i++) {
        acc += i * i;
        if (i % 50 == 0) fprintf(f, "i=%d acc=%d\n", i, acc);
    }
    fclose(f);
    printf("done %d\n", acc & 0xFFFF);
    return 0;
}
""",
}

_exe_cache: dict[str, object] = {}


def example(name: str):
    if name not in _exe_cache:
        _exe_cache[name] = build_executable([EXAMPLE_PROGRAMS[name]])
    return _exe_cache[name]


def observable(result) -> tuple:
    return (result.status, result.stdout, result.stderr,
            dict(result.files), result.cycles, result.inst_count)


@pytest.mark.parametrize("name", sorted(EXAMPLE_PROGRAMS))
def test_mlc_programs_bit_identical(name):
    exe = example(name)
    on = run_module(exe, jit=True)
    off = run_module(exe, jit=False)
    assert observable(on) == observable(off)


COUNTER_TOOL_ANALYSIS = r"""
long calls;
void Count(void) { calls += 1; }
void Report(void) {
    FILE *f = fopen("calls.out", "w");
    fprintf(f, "calls=%d\n", calls);
    fclose(f);
}
"""


def counter_tool(iargc, iargv, atom):
    atom.AddCallProto("Count()")
    atom.AddCallProto("Report()")
    for proc in atom.procs():
        atom.AddCallProc(proc, ProcBefore, "Count")
    atom.AddCallProgram(ProgramAfter, "Report")


@pytest.mark.parametrize("opt", list(OptLevel))
def test_instrumented_runs_bit_identical(opt):
    exe = example("checksum")
    res = instrument_executable(exe, counter_tool,
                                COUNTER_TOOL_ANALYSIS, opt=opt)
    on = run_module(res.module, jit=True)
    off = run_module(res.module, jit=False)
    assert observable(on) == observable(off)
    assert on.files["calls.out"] == off.files["calls.out"]
    # The instrumenter never sees the JIT, but pin its stats so any
    # future coupling of splicing to the execution tier shows up here.
    res2 = instrument_executable(exe, counter_tool,
                                 COUNTER_TOOL_ANALYSIS, opt=opt)
    assert res.stats == res2.stats


@pytest.mark.parametrize("name", ["checksum", "matmul"])
def test_profile_artifacts_byte_identical(name):
    exe = example(name)
    docs = {}
    for jit in (True, False):
        sampler = PcSampler(interval=97)
        run_module(exe, jit=jit, sampler=sampler)
        docs[jit] = json.dumps(profile_doc(sampler, exe), sort_keys=True)
    assert docs[True] == docs[False]
    assert '"wrl-profile/v1"' in docs[True]


def test_instrumented_profile_identical_across_jit():
    exe = example("checksum")
    res = instrument_executable(exe, counter_tool,
                                COUNTER_TOOL_ANALYSIS, opt=OptLevel.O4)
    docs = {}
    for jit in (True, False):
        sampler = PcSampler(interval=131)
        run_module(res.module, jit=jit, sampler=sampler)
        docs[jit] = json.dumps(profile_doc(sampler, res.module),
                               sort_keys=True)
    assert docs[True] == docs[False]


def hypo_tool(iargc, iargv, atom):
    atom.AddCallProto("Probe(int)")
    atom.AddCallProto("Dump()")
    for proc in atom.procs():
        atom.AddCallProc(proc, ProcBefore, "Probe", 3)
    atom.AddCallProgram(ProgramAfter, "Dump")


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(body=analysis_bodies())
def test_random_analysis_routines_identical_across_jit(body):
    exe = example("checksum")
    anal = build_analysis_unit([analysis_source(body)])
    res = instrument_executable(exe, hypo_tool, anal, opt=OptLevel.O4)
    on = run_module(res.module, jit=True)
    off = run_module(res.module, jit=False)
    assert observable(on) == observable(off)
    assert on.files["sound.out"] == off.files["sound.out"]
