"""Property and failure-injection tests for the artifact cache.

The store's contract: identical inputs hit, any perturbation of any key
ingredient misses, and a corrupted on-disk blob is detected, discarded,
and transparently recompiled — never crashes, never serves bad bytes.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import cache as cache_mod
from repro.eval import runner
from repro.eval.cache import (ArtifactCache, CacheFormatError,
                              analysis_key, cache_enabled, content_key,
                              default_cache_dir, executable_key,
                              get_default_cache, instrument_key,
                              pack_instrument, unpack_instrument)
from repro.tools import get_tool
from repro.workloads import build_workload


# ---- key properties -------------------------------------------------------

@given(st.text(max_size=200), st.text(max_size=200))
@settings(max_examples=50, deadline=None)
def test_distinct_sources_get_distinct_keys(a, b):
    if a == b:
        assert analysis_key(a) == analysis_key(b)
    else:
        assert analysis_key(a) != analysis_key(b)


@given(st.lists(st.text(min_size=1, max_size=20), min_size=2, max_size=5))
@settings(max_examples=50, deadline=None)
def test_length_framing_prevents_concatenation_collisions(parts):
    joined = content_key("k", "".join(parts))
    split = content_key("k", *parts)
    if len(parts) > 1:
        assert joined != split
    assert content_key("k", *parts) == content_key("k", *parts)


def test_kind_is_part_of_the_key():
    assert analysis_key("src") != executable_key(("src",), "src")
    assert content_key("a", "x") != content_key("b", "x")


@given(st.sampled_from(["app", "analysis", "fingerprint", "opt",
                        "heap", "args"]))
@settings(max_examples=24, deadline=None)
def test_any_instrument_ingredient_perturbs_the_key(field):
    base = dict(app_bytes=b"APP", analysis_source="ANAL",
                instrument_fingerprint="FP", opt="O1",
                heap_mode="linked", tool_args=("x",))
    tweaked = dict(base)
    tweak = {"app": ("app_bytes", b"APP2"),
             "analysis": ("analysis_source", "ANAL2"),
             "fingerprint": ("instrument_fingerprint", "FP2"),
             "opt": ("opt", "O3"),
             "heap": ("heap_mode", "partitioned"),
             "args": ("tool_args", ("x", "y"))}
    key, value = tweak[field]
    tweaked[key] = value
    assert instrument_key(**base) == instrument_key(**base)
    assert instrument_key(**base) != instrument_key(**tweaked)


# ---- store behaviour ------------------------------------------------------

@given(st.binary(max_size=4096))
@settings(max_examples=25, deadline=None)
def test_roundtrip_any_payload(tmp_path_factory, payload):
    cache = ArtifactCache(tmp_path_factory.mktemp("c"))
    key = content_key("blob", payload)
    assert cache.get(key) is None
    cache.put(key, payload)
    assert cache.get(key) == payload
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_corrupted_blob_is_detected_and_dropped(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = analysis_key("some source")
    cache.put(key, b"payload bytes")
    path = cache._path(key)
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF                      # flip one payload byte
    path.write_bytes(bytes(blob))
    assert cache.get(key) is None
    assert cache.stats.corrupt == 1
    assert not path.exists()              # bad blob evicted on sight


def test_truncated_blob_is_a_miss(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = analysis_key("short")
    cache.put(key, b"x" * 100)
    path = cache._path(key)
    path.write_bytes(path.read_bytes()[:10])
    assert cache.get(key) is None
    assert cache.stats.corrupt == 1


def test_eviction_keeps_newest_within_cap(tmp_path):
    cache = ArtifactCache(tmp_path, cap=3)
    keys = [content_key("blob", str(i)) for i in range(6)]
    for i, key in enumerate(keys):
        cache.put(key, bytes([i]))
        os.utime(cache._path(key), (i, i))     # force distinct mtimes
    assert len(cache) <= 3
    assert cache.get(keys[-1]) == bytes([5])   # newest survives
    assert cache.get(keys[0]) is None          # oldest evicted
    assert cache.stats.evicted >= 3


def test_lru_stamps_are_strictly_increasing(tmp_path):
    """Regression: recency used plain filesystem mtimes, whose
    granularity can be as coarse as one second — blobs stored or hit in
    the same tick tied, and eviction picked among hot blobs arbitrarily.
    Every touch must now issue a strictly greater ns stamp."""
    cache = ArtifactCache(tmp_path, cap=100)
    keys = [content_key("blob", str(i)) for i in range(8)]
    for i, key in enumerate(keys):
        cache.put(key, bytes([i]))
    stamps = [cache._path(k).stat().st_mtime_ns for k in keys]
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == len(stamps)     # no ties, ever
    # Hits re-stamp too, strictly above everything issued before.
    cache.get(keys[0])
    assert cache._path(keys[0]).stat().st_mtime_ns > max(stamps)


def test_eviction_tie_break_keeps_the_refreshed_blob(tmp_path):
    """Regression: with identical on-disk mtimes a get()-refreshed blob
    could be evicted while never-touched blobs survived.  The hit's
    fresh stamp must order it newest regardless of prior ties."""
    cache = ArtifactCache(tmp_path, cap=4)
    keys = [content_key("blob", str(i)) for i in range(4)]
    for i, key in enumerate(keys):
        cache.put(key, bytes([i]))
        os.utime(cache._path(key), ns=(1_000, 1_000))  # force a 4-way tie
    assert cache.get(keys[0]) == bytes([0])    # the hot blob
    cache.put(content_key("blob", "new"), b"n")
    cache.put(content_key("blob", "new2"), b"n2")
    assert len(cache) <= 4
    assert cache.get(keys[0]) == bytes([0])    # survived both evictions
    assert cache.stats.evicted == 2


def test_clear_on_never_populated_root(tmp_path, monkeypatch):
    """Regression: ``clear()`` before any ``put`` used to raise
    FileNotFoundError iterating the absent ``objects/`` directory."""
    cache = ArtifactCache(tmp_path / "fresh")
    cache.clear()                              # must not raise
    assert len(cache) == 0
    assert cache.get(analysis_key("anything")) is None
    # The default store hits the same path when WRL_CACHE_DIR points at
    # a directory nothing has written to yet.
    monkeypatch.setenv("WRL_CACHE_DIR", str(tmp_path / "untouched"))
    get_default_cache().clear()                # must not raise either


def test_warm_put_does_not_relist_objects(tmp_path, monkeypatch):
    """Regression: every ``put`` used to walk the entire ``objects/``
    tree to count blobs for eviction — O(n) per store on a warm cache.
    With the cached count, only the first put after construction (or
    after an invalidation) may list the tree."""
    cache = ArtifactCache(tmp_path, cap=100)
    listings = []
    real_iterdir = type(cache.objects_dir).iterdir

    def counting_iterdir(self):
        if self == cache.objects_dir:
            listings.append(1)
        return real_iterdir(self)

    monkeypatch.setattr(type(cache.objects_dir), "iterdir",
                        counting_iterdir)
    for i in range(20):
        cache.put(content_key("blob", str(i)), bytes([i]))
    assert sum(listings) <= 1
    # The count stayed exact: eviction still sees 20 blobs.
    assert cache._nblobs == 20 == len(cache)


def test_cached_count_still_enforces_cap(tmp_path):
    """The O(1) fast path must not let the store grow past its cap."""
    cache = ArtifactCache(tmp_path, cap=4)
    keys = [content_key("blob", str(i)) for i in range(10)]
    for i, key in enumerate(keys):
        cache.put(key, bytes([i]))
        os.utime(cache._path(key), (i, i))
    assert len(cache) <= 4
    # Overwriting an existing key must not inflate the count.
    survivors = [k for k in keys if cache._path(k).exists()]
    before = cache._nblobs
    cache.put(survivors[0], b"replacement")
    assert cache._nblobs == len(cache)
    assert cache._nblobs <= before + 1


def test_corruption_invalidates_cached_count(tmp_path):
    """Detecting a corrupt blob deletes it behind the counter's back, so
    the cached count must be dropped and re-derived."""
    cache = ArtifactCache(tmp_path, cap=100)
    key = analysis_key("source")
    cache.put(key, b"payload")
    assert cache._nblobs == 1
    path = cache._path(key)
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))
    assert cache.get(key) is None              # corrupt: unlinked
    assert cache._nblobs is None               # count invalidated
    cache.put(key, b"payload")                 # recount on next evict
    assert cache._nblobs == 1 == len(cache)


# ---- corrupted blobs are recompiled end to end ----------------------------

def test_corrupt_analysis_blob_recompiles(tmp_path):
    cache = ArtifactCache(tmp_path)
    tool = get_tool("malloc")
    runner._analysis_cache.clear()
    pristine = runner.analysis_unit_for(tool, cache=cache).to_bytes()
    key = analysis_key(tool.analysis_source)
    path = cache._path(key)
    blob = bytearray(path.read_bytes())
    blob[40] ^= 0xA5
    path.write_bytes(bytes(blob))

    runner._analysis_cache.clear()
    before = runner.COMPILE_COUNTS["analysis"]
    rebuilt = runner.analysis_unit_for(tool, cache=cache)
    assert runner.COMPILE_COUNTS["analysis"] == before + 1
    assert rebuilt.to_bytes() == pristine


def test_garbage_instrument_payload_recompiles(tmp_path):
    """A blob that passes the integrity hash but does not unpack as an
    instrumented executable is treated as a miss, not a crash."""
    cache = ArtifactCache(tmp_path)
    app = build_workload("fib")
    tool = get_tool("prof")
    fingerprint = runner._instrument_fingerprint(tool)
    key = instrument_key(app.to_bytes(), tool.analysis_source,
                         fingerprint, "O1", "linked", ())
    cache.put(key, b"this is not an instrumented executable")
    before = runner.COMPILE_COUNTS["instrument"]
    result = runner.apply_tool(app, tool, cache=cache)
    assert runner.COMPILE_COUNTS["instrument"] == before + 1
    assert not result.cached
    # The bad blob was replaced; the next call hits.
    warm = runner.apply_tool(app, tool, cache=cache)
    assert warm.cached
    assert warm.module.to_bytes() == result.module.to_bytes()


def test_undecodable_payload_is_a_counted_corruption(tmp_path):
    """A digest-valid blob whose contents do not unpack is a *counted*
    miss: the store's corrupt counter must move so the failure shows up
    in trace summaries instead of being silently recompiled around."""
    cache = ArtifactCache(tmp_path)
    app = build_workload("fib")
    tool = get_tool("prof")
    fingerprint = runner._instrument_fingerprint(tool)
    key = instrument_key(app.to_bytes(), tool.analysis_source,
                         fingerprint, "O1", "linked", ())
    cache.put(key, b"digest-valid but not an instrument payload")
    before = cache.stats.corrupt
    runner.apply_tool(app, tool, cache=cache)
    assert cache.stats.corrupt == before + 1


def test_decoder_bug_propagates_not_swallowed(tmp_path):
    """Regression: the cache-decode path caught blanket ``Exception``,
    so a programming error in the decoder (here: a stats dict whose keys
    no longer match InstrumentStats) was laundered into a permanent
    cache miss.  Such errors must raise."""
    cache = ArtifactCache(tmp_path)
    app = build_workload("fib")
    tool = get_tool("prof")
    pristine = runner.apply_tool(app, tool, cache=cache)
    fingerprint = runner._instrument_fingerprint(tool)
    key = instrument_key(app.to_bytes(), tool.analysis_source,
                         fingerprint, "O1", "linked", ())
    bad = pack_instrument(pristine.module.to_bytes(),
                          {"not_a_stats_field": 1})
    cache.put(key, bad)
    with pytest.raises(TypeError):
        runner.apply_tool(app, tool, cache=cache)


def test_taint_env_perturbs_the_instrument_fingerprint(monkeypatch):
    """The taint tool reads ``WRL_TAINT_SOURCES`` when no tool args are
    given; a cached instrumented executable keyed without it would be
    served under the wrong sources."""
    tool = get_tool("taint")
    monkeypatch.setenv("WRL_TAINT_SOURCES", "argv")
    fp_argv = runner._instrument_fingerprint(tool)
    monkeypatch.setenv("WRL_TAINT_SOURCES", "stdin")
    fp_stdin = runner._instrument_fingerprint(tool)
    assert fp_argv != fp_stdin
    monkeypatch.setenv("WRL_TAINT_SOURCES", "argv")
    assert runner._instrument_fingerprint(tool) == fp_argv
    # Tools without the hook are unaffected.
    assert runner._instrument_fingerprint(get_tool("prof"))


def test_pack_unpack_roundtrip_and_format_errors():
    payload = pack_instrument(b"MODULE", {"points": 3})
    module_bytes, stats = unpack_instrument(payload)
    assert module_bytes == b"MODULE" and stats == {"points": 3}
    with pytest.raises(CacheFormatError):
        unpack_instrument(b"\x00")
    with pytest.raises(CacheFormatError):
        unpack_instrument(b"\x00\x00\x00\x02{}garbage-header")


# ---- environment knobs ----------------------------------------------------

def test_wrl_cache_dir_overrides_location(tmp_path, monkeypatch):
    monkeypatch.setenv("WRL_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert default_cache_dir() == tmp_path / "elsewhere"
    assert get_default_cache().root == tmp_path / "elsewhere"


def test_wrl_cache_0_disables_the_store(monkeypatch):
    monkeypatch.setenv("WRL_CACHE", "0")
    assert not cache_enabled()
    assert get_default_cache() is None
    # The runner still works — it just compiles.
    tool = get_tool("io")
    runner._analysis_cache.clear()
    before = runner.COMPILE_COUNTS["analysis"]
    unit = runner.analysis_unit_for(tool)
    assert unit.to_bytes()
    assert runner.COMPILE_COUNTS["analysis"] == before + 1
    runner._analysis_cache.clear()


def test_default_cache_memoized_per_root(tmp_path, monkeypatch):
    monkeypatch.setenv("WRL_CACHE_DIR", str(tmp_path))
    first = get_default_cache()
    second = get_default_cache()
    assert first is second
    monkeypatch.setenv("WRL_CACHE_DIR", str(tmp_path / "other"))
    assert get_default_cache() is not first
