"""Evaluation-harness plumbing tests."""

import dataclasses

from repro.eval import analysis_unit_for, apply_tool, run_instrumented, run_uninstrumented
from repro.eval import runner
from repro.tools import get_tool
from repro.workloads import build_workload


def test_analysis_unit_cached_but_fresh():
    tool = get_tool("malloc")
    a = analysis_unit_for(tool)
    b = analysis_unit_for(tool)
    assert a is not b                 # fresh objects
    assert a.to_bytes() == b.to_bytes()
    assert a.symtab.get("MallocCall") is not None


def test_analysis_cache_keyed_by_content_not_name():
    """Two tools sharing a name but differing in analysis source must not
    share a compiled unit (regression: the cache was keyed on name)."""
    malloc = get_tool("malloc")
    imposter = dataclasses.replace(
        malloc, analysis_source=get_tool("io").analysis_source)
    first = analysis_unit_for(malloc)
    second = analysis_unit_for(imposter)
    assert first.symtab.get("MallocCall") is not None
    assert second.symtab.get("MallocCall") is None     # io's unit, not a
    assert first.to_bytes() != second.to_bytes()       # stale cached copy


def test_analysis_cache_sees_source_changes():
    """The same tool object with edited source gets a fresh unit."""
    tool = get_tool("malloc")
    baseline = analysis_unit_for(tool)
    edited = dataclasses.replace(
        tool, analysis_source=tool.analysis_source + "\nlong __extra;\n")
    fresh = analysis_unit_for(edited)
    assert fresh.symtab.get("__extra") is not None
    assert baseline.symtab.get("__extra") is None


def test_analysis_cache_size_capped(monkeypatch):
    monkeypatch.setattr(runner, "_ANALYSIS_CACHE_CAP", 2)
    monkeypatch.setattr(runner, "_analysis_cache", {})
    tool = get_tool("malloc")
    for i in range(3):
        variant = dataclasses.replace(
            tool, analysis_source=tool.analysis_source + "\n" * (i + 1))
        analysis_unit_for(variant)
    assert len(runner._analysis_cache) <= 2


def test_apply_and_run():
    app = build_workload("fileio")
    tool = get_tool("io")
    base = run_uninstrumented(app)
    res = apply_tool(app, tool)
    out = run_instrumented(res)
    assert out.stdout == base.stdout
    assert tool.output_file in out.files


def test_apply_tool_opt_levels():
    from repro.atom import OptLevel
    app = build_workload("fileio")
    tool = get_tool("malloc")
    for level in (OptLevel.O0, OptLevel.O2):
        res = apply_tool(app, tool, opt=level)
        out = run_instrumented(res)
        assert out.status == 0
