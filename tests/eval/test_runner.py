"""Evaluation-harness plumbing tests."""

from repro.eval import analysis_unit_for, apply_tool, run_instrumented, run_uninstrumented
from repro.tools import get_tool
from repro.workloads import build_workload


def test_analysis_unit_cached_but_fresh():
    tool = get_tool("malloc")
    a = analysis_unit_for(tool)
    b = analysis_unit_for(tool)
    assert a is not b                 # fresh objects
    assert a.to_bytes() == b.to_bytes()
    assert a.symtab.get("MallocCall") is not None


def test_apply_and_run():
    app = build_workload("fileio")
    tool = get_tool("io")
    base = run_uninstrumented(app)
    res = apply_tool(app, tool)
    out = run_instrumented(res)
    assert out.stdout == base.stdout
    assert tool.output_file in out.files


def test_apply_tool_opt_levels():
    from repro.atom import OptLevel
    app = build_workload("fileio")
    tool = get_tool("malloc")
    for level in (OptLevel.O0, OptLevel.O2):
        res = apply_tool(app, tool, opt=level)
        out = run_instrumented(res)
        assert out.status == 0
