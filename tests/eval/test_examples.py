"""The shipped examples must keep running (deliverable b)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def load(name: str):
    spec = importlib.util.spec_from_file_location(name,
                                                  EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "cache_simulation.py",
            "malloc_histogram.py", "tool_gallery.py",
            "profiling_walkthrough.py"} <= names


def test_quickstart_runs(capsys):
    load("quickstart").main()
    out = capsys.readouterr().out
    assert "btaken.out" in out
    assert "plain=53 fizz=27 buzz=14 fizzbuzz=6" in out
    assert "Taken" in out


def test_malloc_histogram_runs(capsys):
    load("malloc_histogram").main()
    out = capsys.readouterr().out
    assert "partitioned" in out
    assert "app heap addresses identical to uninstrumented run: True" \
        in out


def test_cache_simulation_importable():
    # Running the full sweep is a multi-minute job; the sweep itself is
    # exercised by examples/cache_simulation.py and the fig6 benchmarks.
    module = load("cache_simulation")
    assert callable(module.main)
    assert "CacheInit" in module.CACHE_ANALYSIS


def test_profiling_walkthrough_runs(capsys):
    load("profiling_walkthrough").main()
    out = capsys.readouterr().out
    assert "pristine" in out
    assert "splice" in out
    assert "re-profiled O4 run identical: True" in out


def test_tool_gallery_rejects_unknown(capsys):
    module = load("tool_gallery")
    argv = sys.argv
    sys.argv = ["tool_gallery.py", "not-a-workload"]
    try:
        with pytest.raises(SystemExit):
            module.main()
    finally:
        sys.argv = argv
