"""Documentation deliverables stay present and complete."""

from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]


def test_readme():
    text = (ROOT / "README.md").read_text()
    for required in ("Install", "Quickstart", "AddCallProto",
                     "pytest benchmarks/", "O1", "partitioned"):
        assert required in text, required


def test_design_inventory():
    text = (ROOT / "DESIGN.md").read_text()
    # Every subsystem in the module map.
    for module in ("isa/", "objfile/", "machine/", "mlc/", "om/",
                   "atom/", "tools/", "baselines/", "workloads/"):
        assert module in text, module
    # Every evaluation artifact indexed.
    for exp in ("Fig. 1", "Fig. 2", "Fig. 4", "Fig. 5", "Fig. 6",
                "ablation: saves", "ablation: pixie"):
        assert exp in text, exp
    # Substitutions documented.
    assert "WRL-64" in text and "MLC" in text


def test_experiments_records_paper_vs_measured():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for figure in ("Figure 4", "Figure 5", "Figure 6"):
        assert figure in text, figure
    # Paper numbers present for comparison.
    for paper_number in ("11.84", "2.91", "257.5"):
        assert paper_number in text, paper_number
    # Our measured shape claims.
    assert "pipe" in text and "malloc" in text


def test_every_public_module_has_a_docstring():
    import ast
    missing = []
    for path in (ROOT / "src").rglob("*.py"):
        tree = ast.parse(path.read_text())
        if not ast.get_docstring(tree):
            missing.append(str(path))
    assert not missing, missing


def test_tools_documented_in_registry():
    from repro.tools import all_tools
    for tool in all_tools():
        assert tool.description
        assert tool.analysis_source.lstrip().startswith("//"), \
            f"{tool.name}: analysis routines should open with a comment"
