"""Regression tests for retry bookkeeping in ``run_matrix``.

The bug: one crashing worker breaks the whole ``ProcessPoolExecutor``,
so *every* sibling future raises ``BrokenProcessPool`` — and the old
loop charged each of them a retry attempt, so innocent tasks could be
quarantined as ``worker process died`` just for sharing a pool with a
crasher.  Now a batch break charges nobody; the implicated tasks are
probed one at a time, and only a task that breaks the pool while alone
in flight consumes an attempt.

The injected faults are module-level functions (picklable by reference)
that replace ``parallel.execute_task`` via monkeypatch; worker
processes see the patch because the pool forks them from the patched
parent.
"""

import os
import time

import pytest

from repro.eval import parallel
from repro.eval.parallel import TaskSpec, run_matrix

#: Task ids the injected fault functions key on (module globals reach
#: the workers through fork).
_CRASH_ID = "crash:fib:O1:linked"
_WEDGE_ID = "wedge:fib:O1:linked"


def _fake_result(spec: TaskSpec) -> parallel.TaskResult:
    return parallel.TaskResult(
        tool=spec.tool, workload=spec.workload, opt=spec.opt,
        heap_mode=spec.heap_mode, base_status=0, base_cycles=100,
        base_insts=10, instr_status=0, instr_cycles=200, instr_insts=20,
        points=1, calls_added=1, pristine=True,
        stdout_sha="s", files_sha="f")


def _crash_or_run(spec, cache_spec=None, fuse=True, trace=False,
                  trace_id=None):
    if spec.task_id == _CRASH_ID:
        time.sleep(0.15)                # let innocent siblings start
        os._exit(1)                     # hard crash: breaks the pool
    time.sleep(0.4)                     # stay in flight across the break
    return _fake_result(spec)


def _wedge_or_run(spec, cache_spec=None, fuse=True, trace=False,
                  trace_id=None):
    if spec.task_id == _WEDGE_ID:
        time.sleep(600)                 # wedged past any wall timeout
    time.sleep(0.4)                     # keep innocents in flight
    return _fake_result(spec)


def _flaky_once(spec, cache_spec=None, fuse=True, trace=False,
                trace_id=None):
    rec = _fake_result(spec)
    if spec.tool == "flaky" and not os.path.exists(_flaky_marker):
        with open(_flaky_marker, "w") as fh:
            fh.write("tripped")
        rec.status = "error"
        rec.error = "transient"
    return rec


_flaky_marker = ""


@pytest.fixture
def specs_with_crasher():
    return [TaskSpec(tool="prof", workload="fib"),
            TaskSpec(tool="crash", workload="fib"),
            TaskSpec(tool="dyninst", workload="fib"),
            TaskSpec(tool="gprof", workload="fib")]


def test_innocent_siblings_do_not_burn_attempts(monkeypatch,
                                                specs_with_crasher):
    """THE regression: with retries=1, the innocents that shared a pool
    with the crasher must come back ok at attempts=1 — before the fix
    they were charged an attempt per pool break."""
    monkeypatch.setattr(parallel, "execute_task", _crash_or_run)
    records = run_matrix(specs_with_crasher, jobs=2, retries=1)
    by_tool = {rec.tool: rec for rec in records}
    guilty = by_tool["crash"]
    assert guilty.status == "error" and guilty.quarantined
    assert guilty.error == "worker process died"
    assert guilty.attempts == 2          # 1 try + 1 retry, both its own
    for tool in ("prof", "dyninst", "gprof"):
        rec = by_tool[tool]
        assert rec.status == "ok" and not rec.quarantined, rec.error
        assert rec.attempts == 1, \
            f"{tool} was charged for the crasher's pool break"


def test_crasher_quarantined_without_retries(monkeypatch,
                                             specs_with_crasher):
    """retries=0: the solo probe's break is definitive on the first
    attempt; innocents still complete."""
    monkeypatch.setattr(parallel, "execute_task", _crash_or_run)
    records = run_matrix(specs_with_crasher, jobs=2, retries=0)
    by_tool = {rec.tool: rec for rec in records}
    assert by_tool["crash"].status == "error"
    assert by_tool["crash"].error == "worker process died"
    assert by_tool["crash"].attempts == 1
    for tool in ("prof", "dyninst", "gprof"):
        assert by_tool[tool].status == "ok"
        assert by_tool[tool].attempts == 1


def test_results_return_in_spec_order_after_pool_breaks(
        monkeypatch, specs_with_crasher):
    monkeypatch.setattr(parallel, "execute_task", _crash_or_run)
    records = run_matrix(specs_with_crasher, jobs=2, retries=0)
    assert [rec.tool for rec in records] == \
        [spec.tool for spec in specs_with_crasher]


def test_error_retry_still_consumes_attempts(monkeypatch, tmp_path):
    """An in-worker *error* (no crash) is the task's own fault and keeps
    consuming attempts, in parallel mode too."""
    global _flaky_marker
    _flaky_marker = str(tmp_path / "tripped")
    monkeypatch.setattr(parallel, "execute_task", _flaky_once)
    specs = [TaskSpec(tool="flaky", workload="fib"),
             TaskSpec(tool="prof", workload="fib")]
    records = run_matrix(specs, jobs=2, retries=2)
    flaky, steady = records
    assert flaky.status == "ok" and flaky.attempts == 2
    assert steady.status == "ok" and steady.attempts == 1


def test_wall_timeout_charges_only_the_overdue_task(monkeypatch):
    """Wall-timeout coverage: the wedged task is quarantined exactly
    once; in-flight innocents are requeued without losing an attempt
    and their records match a serial run bit for bit."""
    monkeypatch.setattr(parallel, "execute_task", _wedge_or_run)
    specs = [TaskSpec(tool="wedge", workload="fib"),
             TaskSpec(tool="prof", workload="fib"),
             TaskSpec(tool="dyninst", workload="fib"),
             TaskSpec(tool="gprof", workload="fib")]
    records = run_matrix(specs, jobs=2, retries=1, wall_timeout=1.0)
    wedged, *rest = records
    assert wedged.status == "timeout" and wedged.quarantined
    assert "wall timeout" in wedged.error
    assert wedged.attempts == 1          # quarantined exactly once
    for rec in rest:
        assert rec.status == "ok" and not rec.quarantined
        assert rec.attempts == 1

    serial = run_matrix(specs[1:], jobs=0)
    for s_rec, p_rec in zip(serial, rest):
        assert s_rec.identity() == p_rec.identity()
