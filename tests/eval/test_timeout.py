"""Typed timeout surfacing and budget validation in the eval runner."""

import pytest

from repro.eval import EvalTimeout, apply_tool, run_instrumented, \
    run_uninstrumented
from repro.machine import BudgetExhausted, MachineError
from repro.machine import cli as machine_cli
from repro.tools import get_tool
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def app():
    return build_workload("fib")


@pytest.mark.parametrize("bad", [0, -1, -500, 2.5, "100"])
def test_max_insts_must_be_a_positive_integer(app, bad):
    with pytest.raises(ValueError, match="max_insts"):
        run_uninstrumented(app, max_insts=bad)
    instrumented = apply_tool(app, get_tool("prof"))
    with pytest.raises(ValueError, match="max_insts"):
        run_instrumented(instrumented, max_insts=bad)


def test_budget_overrun_surfaces_as_eval_timeout(app):
    with pytest.raises(EvalTimeout) as excinfo:
        run_uninstrumented(app, max_insts=100)
    exc = excinfo.value
    assert exc.stage == "base"
    assert exc.max_insts == 100
    # Typed, but still a machine-level budget error for old handlers.
    assert isinstance(exc, BudgetExhausted)
    assert isinstance(exc, MachineError)


def test_instrumented_budget_overrun_names_its_stage(app):
    instrumented = apply_tool(app, get_tool("prof"))
    with pytest.raises(EvalTimeout) as excinfo:
        run_instrumented(instrumented, max_insts=1_000)
    assert excinfo.value.stage == "instrumented"
    assert "1,000-instruction budget" in str(excinfo.value)


def test_completed_runs_are_untouched(app):
    base = run_uninstrumented(app)
    assert base.status == 0 and base.inst_count > 0
    again = run_uninstrumented(app, max_insts=base.inst_count)
    assert again.inst_count == base.inst_count  # exact budget suffices


# ---- wrl-run: timeout exits 124, machine faults still exit 125 ------------

def test_wrl_run_exits_124_on_timeout(app, tmp_path, capsys):
    exe = tmp_path / "fib.wof"
    app.save(exe)
    status = machine_cli.main(["--max-insts", "50", str(exe)])
    assert status == 124
    assert "budget" in capsys.readouterr().err


def test_wrl_run_ok_within_budget(app, tmp_path, capsys):
    exe = tmp_path / "fib.wof"
    app.save(exe)
    status = machine_cli.main([str(exe), "--stats"])
    assert status == 0
    assert "insts=" in capsys.readouterr().err


def test_wrl_run_rejects_nonpositive_budget(app, tmp_path):
    exe = tmp_path / "fib.wof"
    app.save(exe)
    with pytest.raises(SystemExit):
        machine_cli.main(["--max-insts", "0", str(exe)])
