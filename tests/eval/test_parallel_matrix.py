"""Conformance/differential suite for the parallel eval pipeline.

The contract under test: fanning the (tool x workload x opt) matrix out
across worker processes changes *nothing* observable — every
deterministic field of every :class:`TaskResult` is bit-identical to
the serial in-process run, rerunning the matrix reproduces the same
records with deterministic cache hits, and a warm artifact cache makes
a repeat run perform zero compiles.

The fast unmarked tests cover every stock tool over one workload; the
``matrix``-marked test (the ``make check-matrix`` lane, deterministic
shards via ``WRL_EVAL_SHARD``/``WRL_EVAL_SHARDS``) widens the workload
set — all 20 with ``WRL_MATRIX_FULL=1``.
"""

import os

import pytest

from repro.atom import OptLevel
from repro.eval import (TaskSpec, apply_tool, plan_matrix, run_matrix,
                        select_shard, shard_of)
from repro.eval import parallel, runner
from repro.tools import TOOL_NAMES, get_tool
from repro.workloads import WORKLOAD_NAMES, build_workload
from repro import workloads

#: Workload for the fast all-tools conformance pass: the smallest one.
FAST_WORKLOAD = "fileio"

QUICK_WORKLOADS = ("fileio", "espresso", "li", "fib", "quick", "crc")


def _clear_in_memory_caches():
    """Force the next run to go through the on-disk store."""
    runner._analysis_cache.clear()
    workloads._exe_cache.clear()
    parallel._base_memo.clear()


@pytest.fixture(scope="module")
def matrix_runs(tmp_path_factory):
    """Serial, parallel, and warm-rerun records over one shared cache.

    The in-memory layers are cleared before the parallel and rerun
    passes, so both demonstrably rehydrate from the on-disk store
    rather than inherited process state.
    """
    mp = pytest.MonkeyPatch()
    cache_dir = str(tmp_path_factory.mktemp("artifact-cache"))
    mp.setenv("WRL_CACHE_DIR", cache_dir)
    mp.delenv("WRL_CACHE", raising=False)
    _clear_in_memory_caches()
    specs = plan_matrix(tools=TOOL_NAMES, workloads=(FAST_WORKLOAD,),
                        opts=("O1",))
    serial = run_matrix(specs, jobs=0)
    _clear_in_memory_caches()
    parallel_recs = run_matrix(specs, jobs=2)
    _clear_in_memory_caches()
    rerun = run_matrix(specs, jobs=0)
    yield {"specs": specs, "serial": serial, "parallel": parallel_recs,
           "rerun": rerun, "cache_dir": cache_dir}
    mp.undo()


def test_all_cells_ok_and_pristine(matrix_runs):
    for rec in matrix_runs["serial"]:
        assert rec.status == "ok", (rec.tool, rec.error)
        assert not rec.quarantined
        assert rec.pristine, f"{rec.tool} perturbed {rec.workload}"
        assert rec.base_cycles > 0 and rec.instr_cycles > rec.base_cycles
        assert rec.points > 0 and rec.calls_added >= rec.points


def test_parallel_bit_identical_to_serial(matrix_runs):
    serial, par = matrix_runs["serial"], matrix_runs["parallel"]
    assert len(serial) == len(par) == len(TOOL_NAMES)
    for s_rec, p_rec in zip(serial, par):
        assert s_rec.identity() == p_rec.identity()


def test_rerun_identical_with_deterministic_cache_hits(matrix_runs):
    serial, rerun = matrix_runs["serial"], matrix_runs["rerun"]
    for s_rec, r_rec in zip(serial, rerun):
        assert s_rec.identity() == r_rec.identity()
    # First pass compiled each tool's artifacts; the rerun hit disk for
    # every one of them — deterministically, not probabilistically.
    assert all(rec.instr_compiled for rec in serial)
    assert not any(rec.instr_compiled for rec in rerun)
    assert not any(rec.analysis_compiled for rec in rerun)


def test_parallel_workers_hit_disk_cache(matrix_runs):
    """Workers were forked after the in-memory layers were cleared, so
    their zero-compile records prove the on-disk path cross-process."""
    assert not any(rec.instr_compiled for rec in matrix_runs["parallel"])
    assert not any(rec.analysis_compiled
                   for rec in matrix_runs["parallel"])


def test_warm_cache_run_performs_zero_compiles(matrix_runs, monkeypatch):
    """The acceptance check: with a warm cache, a full matrix pass calls
    neither ``build_analysis_unit`` nor ``instrument_executable`` — and
    stores nothing, so the store's blob count stays cached and ``put``'s
    O(len(objects/)) re-listing never runs."""
    from repro.eval.cache import get_default_cache

    def forbidden(*args, **kw):
        raise AssertionError("compile invoked despite a warm cache")

    _clear_in_memory_caches()
    monkeypatch.setattr(runner, "build_analysis_unit", forbidden)
    monkeypatch.setattr(runner, "instrument_executable", forbidden)
    monkeypatch.setattr(workloads, "build_executable", forbidden)
    stores_before = get_default_cache().stats.stores
    records = run_matrix(matrix_runs["specs"], jobs=0)
    assert get_default_cache().stats.stores == stores_before
    assert all(rec.status == "ok" for rec in records)
    for s_rec, w_rec in zip(matrix_runs["serial"], records):
        assert s_rec.identity() == w_rec.identity()


# ---- PR 1 regressions must reproduce identically in workers ---------------

def test_instrument_stats_survive_the_artifact_cache(tmp_path):
    """``InstrumentStats`` (including the deduplicated ``points`` count)
    must round-trip bit-identically through the on-disk store."""
    from repro.eval.cache import ArtifactCache
    cache = ArtifactCache(tmp_path / "cache")
    app = build_workload(FAST_WORKLOAD)
    tool = get_tool("gprof")
    cold = apply_tool(app, tool, cache=cache)
    warm = apply_tool(app, tool, cache=cache)
    assert not cold.cached and warm.cached
    assert warm.stats == cold.stats
    assert warm.stats.points == cold.stats.points
    assert warm.module.to_bytes() == cold.module.to_bytes()
    assert warm.plans is None            # not persisted, by design


def test_gprof_o3_proc_after_identical_in_workers(tmp_path):
    """gprof attaches ProcAfter snippets; at O3 their save plans depend
    on the exit-liveness fix from PR 1.  A worker process must produce
    the same instrumented behaviour and stats as the calling process."""
    spec = TaskSpec(tool="gprof", workload=FAST_WORKLOAD, opt="O3")
    cache_dir = str(tmp_path / "cache")
    inline = run_matrix([spec], jobs=0, cache_spec=cache_dir)[0]
    worker = run_matrix([spec], jobs=1, cache_spec=False)[0]
    assert inline.status == worker.status == "ok"
    assert inline.identity() == worker.identity()
    # And both agree with a direct instrumentation in this process.
    direct = apply_tool(build_workload(FAST_WORKLOAD), get_tool("gprof"),
                        opt=OptLevel.O3, cache=None)
    assert direct.stats.points == inline.points
    assert direct.stats.calls_added == inline.calls_added


# ---- sharding -------------------------------------------------------------

def test_shards_partition_the_matrix():
    specs = plan_matrix(tools=TOOL_NAMES, workloads=QUICK_WORKLOADS,
                        opts=("O0", "O1"))
    for num_shards in (1, 2, 3, 7):
        shards = [select_shard(specs, i, num_shards)
                  for i in range(num_shards)]
        assert sum(len(s) for s in shards) == len(specs)
        seen = {spec.task_id for shard in shards for spec in shard}
        assert len(seen) == len(specs)


def test_shard_assignment_is_deterministic_and_positional_free():
    specs = plan_matrix(tools=TOOL_NAMES, workloads=QUICK_WORKLOADS)
    assignment = {s.task_id: shard_of(s, 4) for s in specs}
    reordered = list(reversed(specs))
    for spec in reordered:
        assert shard_of(spec, 4) == assignment[spec.task_id]
    with pytest.raises(ValueError):
        select_shard(specs, 4, 4)


# ---- failure handling -----------------------------------------------------

def test_bad_tool_is_quarantined_not_fatal(tmp_path):
    specs = [TaskSpec(tool="no-such-tool", workload="fib"),
             TaskSpec(tool="prof", workload="fib")]
    records = run_matrix(specs, jobs=0, retries=2,
                         cache_spec=str(tmp_path / "cache"))
    bad, good = records
    assert bad.status == "error" and bad.quarantined
    assert "no-such-tool" in bad.error
    assert bad.attempts == 3             # 1 try + 2 retries
    assert good.status == "ok" and not good.quarantined


def test_budget_timeout_is_recorded_not_retried(tmp_path):
    spec = TaskSpec(tool="prof", workload="fib", max_insts=1_000)
    rec = run_matrix([spec], jobs=0, retries=3,
                     cache_spec=str(tmp_path / "cache"))[0]
    assert rec.status == "timeout" and rec.quarantined
    assert rec.attempts == 1             # deterministic: retry is futile
    assert "budget" in rec.error


def test_wall_timeout_quarantines_wedged_worker(tmp_path):
    """A worker that overruns the wall-clock backstop is killed and its
    task quarantined; the run still returns a record for it."""
    spec = TaskSpec(tool="cache", workload="merge")
    rec = run_matrix([spec], jobs=1, wall_timeout=0.2,
                     cache_spec=str(tmp_path / "cache"))[0]
    assert rec.status == "timeout" and rec.quarantined
    assert "wall timeout" in rec.error


# ---- report schema --------------------------------------------------------

def test_matrix_report_roundtrip(tmp_path):
    import json
    from repro.eval.parallel import (build_report, load_matrix_report,
                                     validate_matrix_report)
    specs = plan_matrix(tools=("prof",), workloads=("fib",))
    records = run_matrix(specs, jobs=0, cache_spec=str(tmp_path / "c"))
    report = build_report(records, config={"tools": ["prof"]})
    validate_matrix_report(report)
    path = tmp_path / "EVAL_matrix.json"
    path.write_text(json.dumps(report))
    loaded = load_matrix_report(path)
    assert loaded["summary"]["ok"] == 1
    with pytest.raises(ValueError):
        validate_matrix_report({"schema": "nope"})
    assert load_matrix_report(tmp_path / "absent.json") is None


# ---- the full sharded lane (`make check-matrix`) --------------------------

# ---- cross-opt differential: O0..O4 are observationally equal -------------

def test_analysis_output_bit_identical_across_opt_levels(tmp_path):
    """Every stock tool on the fast workload must emit byte-identical
    analysis data (stdout + exit status + output files) at every opt
    level — O4's inlining/specialization may only change *cycles*, never
    observable behaviour."""
    from repro.eval import run_instrumented
    from repro.eval.cache import ArtifactCache
    cache = ArtifactCache(tmp_path / "cache")
    app = build_workload(FAST_WORKLOAD)
    for tool_name in TOOL_NAMES:
        tool = get_tool(tool_name)
        reference = None
        cycles = {}
        for opt in ("O0", "O1", "O2", "O3", "O4"):
            res = apply_tool(app, tool, opt=OptLevel[opt], cache=cache)
            run = run_instrumented(res)
            observed = (run.status, run.stdout,
                        tuple(sorted(run.files.items())))
            if reference is None:
                reference = observed
            else:
                assert observed == reference, (tool_name, opt)
            cycles[opt] = run.cycles
        # And the optimizer pays for itself end-to-end on this workload.
        assert cycles["O4"] <= cycles["O1"], tool_name


@pytest.mark.matrix
def test_full_matrix_conformance(tmp_path):
    if os.environ.get("WRL_MATRIX_FULL"):
        wl_set = WORKLOAD_NAMES
    else:
        wl_set = QUICK_WORKLOADS
    shard = int(os.environ.get("WRL_EVAL_SHARD", "0"))
    num_shards = int(os.environ.get("WRL_EVAL_SHARDS", "1"))
    specs = select_shard(
        plan_matrix(tools=TOOL_NAMES, workloads=wl_set,
                    opts=("O1", "O4")),
        shard, num_shards)
    assert specs, "shard selected no cells"
    cache_dir = str(tmp_path / "cache")
    serial = run_matrix(specs, jobs=0, cache_spec=cache_dir)
    _clear_in_memory_caches()
    par = run_matrix(specs, jobs=2, cache_spec=cache_dir)
    for s_rec, p_rec in zip(serial, par):
        assert s_rec.status == "ok", (s_rec.tool, s_rec.workload,
                                      s_rec.error)
        assert s_rec.pristine
        assert s_rec.identity() == p_rec.identity()
    # Warm pass: zero compiles across the whole shard.
    assert not any(rec.instr_compiled for rec in par)
    assert not any(rec.analysis_compiled for rec in par)
