"""The overhead benchmark's report shape and guard rails.

The actual <2% budget assertion is the ``make check-obs`` lane
(``python -m repro.obs.overhead``); here we keep the harness itself
honest on a tiny workload without asserting wall-clock numbers, which
do not belong in a unit test.
"""

import pytest

from repro.obs import TRACE
from repro.obs.overhead import (OVERHEAD_SCHEMA, main, measure_workload,
                                run_overhead)


def test_measure_workload_row_shape():
    row = measure_workload("fib", reps=1)
    assert row["workload"] == "fib"
    assert row["insts"] > 0
    assert row["hooked_ips"] > 0 and row["detached_ips"] > 0
    assert isinstance(row["overhead"], float)


def test_hooked_and_detached_execute_identically():
    """The detached replica must be the same computation — identical
    retired-instruction count — or the A/B is meaningless."""
    from repro.machine import run_module
    from repro.obs.overhead import _run_detached
    from repro.workloads import build_workload
    module = build_workload("fib")
    assert _run_detached(module) == run_module(module).inst_count


def test_run_overhead_report(tmp_path):
    report = run_overhead(workloads=("fib",), reps=1, budget=0.99)
    assert report["schema"] == OVERHEAD_SCHEMA
    assert report["ok"] is True          # nothing is 99% slower
    (row,) = report["rows"]
    assert row["workload"] == "fib"


def test_run_overhead_refuses_enabled_tracer():
    TRACE.enable()
    try:
        with pytest.raises(RuntimeError):
            run_overhead(workloads=("fib",), reps=1)
    finally:
        TRACE.disable()
        TRACE.reset()


def test_main_quick_writes_report(tmp_path, capsys):
    out = tmp_path / "overhead.json"
    # A wide budget: this asserts plumbing, not machine speed.
    code = main(["--quick", "--workloads", "fib", "--budget", "0.99",
                 "--out", str(out)])
    assert code == 0
    assert out.exists()
    assert "budget" in capsys.readouterr().out


def test_main_rejects_bad_flags():
    with pytest.raises(SystemExit):
        main(["--workloads", "no-such-workload"])
    with pytest.raises(SystemExit):
        main(["--budget", "2.0"])
    with pytest.raises(SystemExit):
        main(["--reps", "0"])
