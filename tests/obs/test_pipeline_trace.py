"""Tracing threaded through the real pipeline, serial and parallel.

The acceptance scenario: a traced matrix run yields one ``task`` span
per cell with the nested instrument/interpret phase spans — including
spans recorded inside forked worker processes and merged back through
``TaskResult.trace`` — and the result exports as valid Chrome trace
JSON.
"""

import json
import os

import pytest

from repro.eval import parallel
from repro.eval.parallel import TaskSpec, execute_task, run_matrix
from repro.obs import TRACE, to_chrome


@pytest.fixture
def traced(tmp_path, monkeypatch):
    """An enabled global tracer over a private artifact cache."""
    monkeypatch.setenv("WRL_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("WRL_CACHE", raising=False)
    parallel._base_memo.clear()          # force fresh base runs
    TRACE.reset()
    TRACE.enable()
    yield TRACE
    TRACE.disable()
    TRACE.reset()


def _span_names(tracer):
    return [e["name"] for e in tracer.events]


def test_serial_matrix_records_task_and_phase_spans(traced, tmp_path):
    specs = [TaskSpec(tool="prof", workload="fib"),
             TaskSpec(tool="dyninst", workload="fib")]
    records = run_matrix(specs, jobs=0,
                         cache_spec=str(tmp_path / "cache"))
    assert all(rec.status == "ok" for rec in records)
    names = _span_names(traced)
    assert names.count("task") == len(specs)
    # The instrument and interpret phases nest under the tasks.
    assert "apply_tool" in names
    assert "interpret.base" in names
    assert "interpret.instrumented" in names
    assert "instrument.lowering" in names
    # Serial records never ship a snapshot: events went straight into
    # the ambient tracer.
    assert all(rec.trace is None for rec in records)
    assert traced.counters.get("machine.runs", 0) >= 2


def test_parallel_matrix_merges_worker_spans(traced, tmp_path):
    specs = [TaskSpec(tool="prof", workload="fib"),
             TaskSpec(tool="dyninst", workload="fib")]
    records = run_matrix(specs, jobs=2,
                         cache_spec=str(tmp_path / "cache"))
    assert all(rec.status == "ok" for rec in records)
    names = _span_names(traced)
    assert names.count("task") == len(specs)
    assert "interpret.instrumented" in names
    # Worker pids appear in the merged events alongside the parent's.
    task_pids = {e["pid"] for e in traced.events if e["name"] == "task"}
    assert os.getpid() not in task_pids
    # Snapshots were merged then stripped from the records.
    assert all(rec.trace is None for rec in records)

    doc = to_chrome(traced.snapshot())
    json.dumps(doc)                      # serializes cleanly
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert {e["name"] for e in spans} >= {"task", "apply_tool",
                                          "interpret.instrumented"}


def test_worker_capture_ships_snapshot_when_not_owned(tmp_path):
    """``execute_task(trace=True)`` in a process that does not own the
    ambient tracer (a pool worker after fork) starts a private capture
    and returns it in ``TaskResult.trace``."""
    assert not TRACE.enabled
    parallel._base_memo.clear()          # force a fresh base run
    spec = TaskSpec(tool="prof", workload="fib")
    rec = execute_task(spec, str(tmp_path / "cache"), True, True)
    assert rec.status == "ok"
    assert rec.trace is not None
    names = [e["name"] for e in rec.trace["events"]]
    assert "task" in names and "interpret.base" in names
    # The capture was torn down again: the ambient tracer stays off.
    assert not TRACE.enabled and TRACE.events == []


def test_untraced_run_leaves_no_events(tmp_path):
    assert not TRACE.enabled
    rec = execute_task(TaskSpec(tool="prof", workload="fib"),
                       str(tmp_path / "cache"), True, False)
    assert rec.status == "ok"
    assert rec.trace is None
    assert TRACE.events == []
