"""Unit tests for the metrics registry: instruments, label children,
rolling windows under a fake clock, golden Prometheus exposition, the
text parser, and the zero-cost disabled path."""

import math

import pytest

from repro.obs.metrics import (DEFAULT_BUCKETS, METRICS_SCHEMA,
                               MetricsError, MetricsRegistry, parse_text)


def make_registry(start: float = 1000.0):
    """Registry on a fake, manually advanced clock."""
    t = [start]
    reg = MetricsRegistry(clock=lambda: t[0])
    return reg, t


# ---- instruments -----------------------------------------------------------


def test_counter_totals_and_label_children():
    reg, _ = make_registry()
    c = reg.counter("wrl_reqs_total", "requests", ("op",))
    c.labels("eval").inc()
    c.labels("eval").inc(2)
    c.labels("run").inc()
    assert c.total() == 4
    # Children are cached per label tuple: hot paths bind once.
    assert c.labels("eval") is c.labels("eval")
    # Label values are str-coerced (tenant ints, bools, whatever).
    assert c.labels(42) is c.labels("42")


def test_label_arity_is_checked():
    reg, _ = make_registry()
    c = reg.counter("c_total", "c", ("a", "b"))
    with pytest.raises(MetricsError):
        c.labels("only-one")


def test_gauge_set_inc_dec():
    reg, _ = make_registry()
    g = reg.gauge("depth", "queue depth")
    g.set(5)
    g.inc()
    g.dec(3)
    assert g._solo()._value == 3


def test_histogram_buckets_sum_count():
    reg, _ = make_registry()
    h = reg.histogram("lat_ms", "latency", buckets=(1.0, 10.0))
    for v in (0.5, 5.0, 100.0):
        h.observe(v)
    child = h._solo()
    assert child._count == 3
    assert child._sum == 105.5
    # Per-bucket (non-cumulative internally): <=1, <=10, +Inf.
    assert child._buckets == [1, 1, 1]


def test_histogram_rejects_empty_buckets():
    reg, _ = make_registry()
    with pytest.raises(MetricsError):
        reg.histogram("h", "h", buckets=())


# ---- rolling windows -------------------------------------------------------


def test_counter_rates_over_fake_clock_windows():
    reg, t = make_registry(1000.0)
    c = reg.counter("c_total", "c")
    c.inc()
    c.inc()                                  # two events in sec 1000
    t[0] = 1001.0
    c.inc()                                  # one event in sec 1001
    assert c.rate(1) == 1.0                  # current second only
    assert c.rate(10) == pytest.approx(0.3)  # 3 events / 10s
    assert c.total() == 3                    # lifetime total unaffected


def test_ring_slots_expire_after_wraparound():
    reg, t = make_registry(1000.0)
    c = reg.counter("c_total", "c")
    c.inc(10)
    t[0] = 1070.0              # > 64 ring slots later: stale slots must
    assert c.rate(60) == 0.0   # never leak into fresh windows
    assert c.total() == 10


def test_counter_rate_aggregates_label_children():
    reg, _ = make_registry()
    c = reg.counter("c_total", "c", ("op",))
    c.labels("eval").inc(3)
    c.labels("run").inc(1)
    assert c.rate(1) == 4.0


def test_histogram_window_values_filter_by_age():
    reg, t = make_registry(2000.0)
    h = reg.histogram("h_ms", "h", buckets=(1.0,))
    h.observe(5.0)
    t[0] = 2030.0
    h.observe(7.0)
    t[0] = 2059.0
    assert sorted(h.window_values(60)) == [5.0, 7.0]
    assert h.window_values(10) == []         # both older than 10s now


# ---- registry semantics ----------------------------------------------------


def test_registration_is_idempotent_but_kind_mismatch_raises():
    reg, _ = make_registry()
    a = reg.counter("x_total", "x")
    assert reg.counter("x_total", "x") is a
    with pytest.raises(MetricsError):
        reg.gauge("x_total", "now a gauge")
    with pytest.raises(MetricsError):
        reg.counter("x_total", "x", ("op",))   # labelnames changed


def test_bad_names_rejected():
    reg, _ = make_registry()
    with pytest.raises(MetricsError):
        reg.counter("0starts_with_digit", "bad")
    with pytest.raises(MetricsError):
        reg.counter("has-dash", "bad")
    with pytest.raises(MetricsError):
        reg.counter("ok_total", "bad label", ("le-gal",))


def test_disabled_registry_is_null_and_renders_stub():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("c_total", "c", ("op",))
    # Every hook site works; nothing is recorded anywhere.
    c.inc()
    c.labels("eval").inc(5)
    reg.gauge("g", "g").set(9)
    reg.histogram("h", "h").observe(1.0)
    assert c.rate(60) == 0.0
    assert reg.histogram("h", "h").window_values(60) == []
    assert reg.render_text() == "# wrl metrics disabled\n"
    doc = reg.render_doc()
    assert doc["enabled"] is False and doc["metrics"] == {}


# ---- exposition ------------------------------------------------------------


GOLDEN = """\
# HELP wrl_lat_ms latency (ms)
# TYPE wrl_lat_ms histogram
wrl_lat_ms_bucket{le="1"} 1
wrl_lat_ms_bucket{le="10"} 2
wrl_lat_ms_bucket{le="+Inf"} 3
wrl_lat_ms_sum 105.5
wrl_lat_ms_count 3
# HELP wrl_queue_depth queued now
# TYPE wrl_queue_depth gauge
wrl_queue_depth 3
# HELP wrl_reqs_total requests, by op
# TYPE wrl_reqs_total counter
wrl_reqs_total{op="eval"} 1
wrl_reqs_total{op="run"} 2
"""


def golden_registry():
    reg, _ = make_registry()
    c = reg.counter("wrl_reqs_total", "requests, by op", ("op",))
    c.labels("eval").inc()
    c.labels("run").inc(2)
    reg.gauge("wrl_queue_depth", "queued now").set(3)
    h = reg.histogram("wrl_lat_ms", "latency (ms)", buckets=(1.0, 10.0))
    for v in (0.5, 5.0, 100.0):
        h.observe(v)
    return reg


def test_golden_text_exposition():
    assert golden_registry().render_text() == GOLDEN


def test_parse_text_roundtrips_the_golden_exposition():
    families = parse_text(GOLDEN)
    assert set(families) == {"wrl_lat_ms", "wrl_queue_depth",
                             "wrl_reqs_total"}
    reqs = families["wrl_reqs_total"]
    assert reqs["type"] == "counter"
    assert (("wrl_reqs_total", {"op": "eval"}, 1.0)
            in reqs["samples"])
    hist = families["wrl_lat_ms"]
    assert hist["type"] == "histogram"
    # _bucket/_sum/_count fold into the histogram family.
    names = {s[0] for s in hist["samples"]}
    assert names == {"wrl_lat_ms_bucket", "wrl_lat_ms_sum",
                     "wrl_lat_ms_count"}
    inf_bucket = [s for s in hist["samples"]
                  if s[1].get("le") == "+Inf"]
    assert inf_bucket and inf_bucket[0][2] == 3.0


def test_label_escaping_roundtrips():
    reg, _ = make_registry()
    c = reg.counter("c_total", "c", ("path",))
    nasty = 'a"b\\c\nd'
    c.labels(nasty).inc()
    text = reg.render_text()
    families = parse_text(text)
    (_, labels, value), = families["c_total"]["samples"]
    assert labels == {"path": nasty}
    assert value == 1.0


def test_parse_text_rejects_malformed_samples():
    with pytest.raises(ValueError):
        parse_text("this is { not a sample\n")


def test_render_doc_shape_and_rates():
    reg, t = make_registry(500.0)
    c = reg.counter("c_total", "c", ("op",))
    c.labels("eval").inc(10)
    h = reg.histogram("h_ms", "h")
    h.observe(2.0)
    doc = reg.render_doc()
    assert doc["schema"] == METRICS_SCHEMA and doc["enabled"] is True
    assert doc["windows_s"] == [1, 10, 60]
    entry = doc["metrics"]["c_total"]
    assert entry["kind"] == "counter"
    assert entry["rates"]["1s"] == 10.0
    assert entry["samples"] == [{"labels": {"op": "eval"},
                                 "value": 10.0}]
    hist = doc["metrics"]["h_ms"]
    sample = hist["samples"][0]
    assert sample["count"] == 1 and sample["sum"] == 2.0
    assert sample["summary"]["p50"] == 2.0
    assert "rates" in hist


def test_default_buckets_are_sorted_and_latency_shaped():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert DEFAULT_BUCKETS[0] <= 1.0 and DEFAULT_BUCKETS[-1] >= 10000.0
    assert math.inf not in DEFAULT_BUCKETS   # +Inf is implicit
