"""Tests for the wrl-top dashboard: sparkline math, pure-frame
rendering over synthetic stats/metrics documents, the client-side rate
tracker, and a live ``--once`` frame against an in-process daemon."""

from repro.obs.top import RateTracker, render, sparkline


# ---- sparkline -------------------------------------------------------------


def test_sparkline_scales_to_own_max():
    s = sparkline([0, 5, 10], width=3)
    assert len(s) == 3
    assert s[0] == "▁" and s[-1] == "█"


def test_sparkline_pads_and_truncates_to_width():
    assert sparkline([], width=4) == "    "
    assert len(sparkline([1.0], width=8)) == 8
    # Only the newest `width` samples render; the right edge is "now".
    s = sparkline([100, 0, 0], width=2)
    assert "█" not in s


def test_sparkline_flat_zero_series_is_all_low():
    assert sparkline([0, 0, 0], width=3) == "▁▁▁"


# ---- pure-frame rendering --------------------------------------------------


def synthetic_stats(**overrides):
    stats = {
        "uptime_s": 12.5, "jobs": 2, "queue_depth": 1, "max_queue": 64,
        "batch_window_s": 0.02,
        "requests": {"eval": 4, "run": 6, "ping": 2},
        "dedup_hits": 3, "dedup_rate": 0.3, "overloaded": 1,
        "cancelled": 0, "errors": 2, "pool_rebuilds": 0,
        "executed": 8, "batches": 5,
        "latency_ms": {"count": 8, "p50": 10.0, "p90": 20.0,
                       "p99": 30.0, "mean": 12.0, "max": 31.0},
        "latency_ms_by_op": {
            "eval": {"count": 4, "p50": 15.0, "p90": 25.0, "p99": 30.0,
                     "mean": 16.0, "max": 31.0},
            "run": {"count": 4, "p50": 5.0, "p90": 9.0, "p99": 10.0,
                    "mean": 6.0, "max": 10.0},
        },
        "batch_size": {"count": 5, "p50": 2, "p90": 3, "max": 4},
        "tenants": {"default": {"blobs": 7, "bytes": 2048, "cap": 64}},
        "slo": {"configured": False},
    }
    stats.update(overrides)
    return stats


def test_render_is_pure_and_covers_core_lines():
    stats = synthetic_stats()
    frame = render(stats, None, history=[1.0, 2.0])
    assert frame == render(stats, None, history=[1.0, 2.0])
    assert "uptime" in frame and "queue 1/64" in frame
    assert "eval=4" in frame and "run=6" in frame
    assert "p99=30.0" in frame and "mean=12.0" in frame
    assert "dedup 3" in frame and "shed 1" in frame
    assert "default" in frame and "2.0KiB" in frame
    # Without a metrics doc, rates degrade to the client-side history.
    assert "(metrics off)" in frame


def test_render_prefers_daemon_rolling_rates():
    metrics_doc = {"metrics": {"wrl_requests_total": {
        "rates": {"1s": 5.0, "10s": 4.0, "60s": 3.0}}}}
    frame = render(synthetic_stats(), metrics_doc)
    assert "10s      4.0" in frame
    assert "(metrics off)" not in frame


def test_render_shows_slo_breaches():
    stats = synthetic_stats(slo={
        "configured": True, "p99_ms": 25.0, "error_rate": 0.01,
        "window_s": 60,
        "breaches": {"p99_ms": 2},
        "current": {"p99_ms": 30.0, "error_rate": 0.0, "samples": 8},
    })
    frame = render(stats, None)
    assert "BREACH" in frame and "x2" in frame
    assert "err 0.000/0.010 [ok]" in frame


def test_render_handles_empty_stats():
    # An idle daemon's all-zero stats must render without crashing.
    frame = render({}, None)
    assert "wrl-top" in frame


# ---- rate tracker ----------------------------------------------------------


def test_rate_tracker_computes_deltas():
    tracker = RateTracker()
    tracker.update({"requests": {"run": 10}}, now=100.0)
    tracker.update({"requests": {"run": 30}}, now=102.0)
    assert tracker.history == [10.0]
    tracker.update({"requests": {"run": 30}}, now=103.0)
    assert tracker.history == [10.0, 0.0]


def test_rate_tracker_never_goes_negative():
    tracker = RateTracker()
    tracker.update({"requests": {"run": 50}}, now=1.0)
    tracker.update({"requests": {"run": 10}}, now=2.0)   # daemon restart
    assert tracker.history == [0.0]


# ---- live --once frame -----------------------------------------------------


def test_once_renders_a_live_frame(tmp_path, capsys):
    from repro.obs.top import main
    from repro.serve import DaemonThread, ServeClient
    with DaemonThread(socket_path=tmp_path / "serve.sock", jobs=1,
                      cache_root=tmp_path / "cache") as dt:
        client = ServeClient(dt.socket_path, timeout=60.0)
        client.ping()
        rc = main(["--server", str(dt.socket_path), "--once"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "wrl-top" in out and "ping=" in out
    assert "latency ms" in out


def test_once_against_no_daemon_fails_cleanly(tmp_path, capsys):
    from repro.obs.top import main
    rc = main(["--server", str(tmp_path / "nope.sock"), "--once"])
    assert rc == 1
    assert "wrl-top:" in capsys.readouterr().err
