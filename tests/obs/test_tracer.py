"""Unit tests for the ``repro.obs`` tracer and its export formats."""

import json

import pytest

from repro import obs
from repro.obs import (TRACE_SCHEMA, Tracer, chrome_events, hist_summary,
                       load_trace, to_chrome, write_chrome, write_jsonl)


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable()
    return t


# ---- disabled path --------------------------------------------------------

def test_disabled_tracer_records_nothing():
    t = Tracer()
    with t.span("phase", "cat", detail=1) as sp:
        sp.add(more=2)
    t.count("c")
    t.observe("h", 1.0)
    assert t.events == [] and t.counters == {} and t.hists == {}


def test_disabled_span_is_the_shared_null_singleton():
    t = Tracer()
    assert t.span("a") is t.span("b") is obs._NULL_SPAN


def test_module_level_helpers_follow_the_global_tracer():
    assert not obs.enabled()
    with obs.span("noop"):
        pass
    obs.count("noop")
    obs.observe("noop", 1.0)
    assert obs.TRACE.events == []


# ---- recording ------------------------------------------------------------

def test_nested_spans_record_with_args(tracer):
    with tracer.span("outer", "eval", task="t1") as outer:
        with tracer.span("inner", "om") as inner:
            inner.add(procs=3)
        outer.add(status="ok")
    assert [e["name"] for e in tracer.events] == ["inner", "outer"]
    inner_ev, outer_ev = tracer.events
    assert inner_ev["args"] == {"procs": 3}
    assert outer_ev["args"] == {"task": "t1", "status": "ok"}
    assert outer_ev["dur_ns"] >= inner_ev["dur_ns"] >= 0
    # The inner span nests inside the outer one on the timeline.
    assert outer_ev["ts_ns"] <= inner_ev["ts_ns"]
    assert (inner_ev["ts_ns"] + inner_ev["dur_ns"]
            <= outer_ev["ts_ns"] + outer_ev["dur_ns"])


def test_span_records_exception_type(tracer):
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("nope")
    assert tracer.events[0]["args"]["error"] == "ValueError"


def test_counters_accumulate_and_histograms_collect(tracer):
    tracer.count("hits")
    tracer.count("hits", 4)
    tracer.observe("latency", 10.0)
    tracer.observe("latency", 30.0)
    assert tracer.counters == {"hits": 5}
    assert tracer.hists == {"latency": [10.0, 30.0]}


def test_hist_summary_percentiles():
    s = hist_summary(range(1, 11))
    assert s["count"] == 10 and s["min"] == 1 and s["max"] == 10
    # Nearest-rank p90 of ten values is the 9th, not the max (the old
    # index was biased one rank high and pinned p90 to max for n <= 10).
    # p50 is nearest-rank too — the 5th value, not the interpolated
    # median — so it agrees with percentile(vs, 0.50) everywhere it is
    # reported (stats op, wrl-trace, metrics exposition).
    assert s["mean"] == 5.5 and s["p50"] == 5 and s["p90"] == 9


def test_hist_summary_empty_and_singleton_have_every_key():
    keys = {"count", "min", "max", "mean", "p50", "p90"}
    empty = hist_summary([])
    assert set(empty) == keys
    assert empty == {"count": 0, "min": 0, "max": 0, "mean": 0,
                     "p50": 0, "p90": 0}
    lone = hist_summary([42.0])
    assert set(lone) == keys
    assert lone == {"count": 1, "min": 42.0, "max": 42.0, "mean": 42.0,
                    "p50": 42.0, "p90": 42.0}


def test_percentile_nearest_rank():
    from repro.obs import percentile
    vs = list(range(1, 101))
    assert percentile(vs, 0.50) == 50
    assert percentile(vs, 0.90) == 90
    assert percentile(vs, 0.999) == 100
    assert percentile([7], 0.90) == 7
    assert percentile([], 0.90) == 0
    # q=0 clamps to the first rank rather than indexing off the front.
    assert percentile(vs, 0.0) == 1


# ---- snapshot / merge (the cross-process contract) ------------------------

def test_snapshot_merge_combines_worker_traces(tracer):
    worker = Tracer()
    worker.enable()
    with worker.span("task", "eval"):
        pass
    worker.count("cache.hits", 2)
    worker.observe("ips", 100.0)
    snap = worker.snapshot()
    assert json.loads(json.dumps(snap)) == snap      # plain JSON

    with tracer.span("wrl-eval", "eval"):
        pass
    tracer.count("cache.hits", 1)
    tracer.merge(snap)
    assert {e["name"] for e in tracer.events} == {"task", "wrl-eval"}
    assert tracer.counters["cache.hits"] == 3
    assert tracer.hists["ips"] == [100.0]
    tracer.merge({})                                 # tolerated


def test_merge_overlapping_counter_and_hist_keys(tracer):
    tracer.count("cache.hits", 10)
    tracer.observe("ips", 100.0)
    tracer.observe("latency", 5.0)
    worker = Tracer()
    worker.enable()
    worker.count("cache.hits", 7)
    worker.count("cache.misses", 2)
    worker.observe("ips", 200.0)
    worker.observe("ips", 300.0)
    tracer.merge(worker.snapshot())
    # Overlapping counters sum; overlapping hists concatenate in order;
    # disjoint keys from either side survive untouched.
    assert tracer.counters == {"cache.hits": 17, "cache.misses": 2}
    assert tracer.hists["ips"] == [100.0, 200.0, 300.0]
    assert tracer.hists["latency"] == [5.0]


def test_instant_records_zero_duration_marker(tracer):
    tracer.instant("heartbeat", "eval", task="t1", insts=500)
    (ev,) = tracer.events
    assert ev["name"] == "heartbeat" and ev["cat"] == "eval"
    assert ev["dur_ns"] == 0
    assert ev["args"] == {"task": "t1", "insts": 500}
    off = Tracer()
    off.instant("ignored")
    assert off.events == []


def test_reset_clears_and_owned_tracks_pid(tracer):
    with tracer.span("x"):
        pass
    tracer.count("c")
    tracer.reset()
    assert tracer.events == [] and tracer.counters == {}
    assert tracer.owned()
    tracer._pid = tracer._pid + 1                    # simulate a fork
    assert tracer.enabled and not tracer.owned()


# ---- export formats -------------------------------------------------------

def _sample_snapshot():
    t = Tracer()
    t.enable()
    with t.span("outer", "eval", task="t"):
        with t.span("inner", "om"):
            pass
    t.count("hits", 3)
    t.observe("ips", 50.0)
    return t.snapshot()


def test_chrome_export_is_valid_trace_event_json(tmp_path):
    snap = _sample_snapshot()
    doc = to_chrome(snap)
    assert doc["otherData"]["schema"] == TRACE_SCHEMA
    events = doc["traceEvents"]
    phases = {e["ph"] for e in events}
    assert phases == {"M", "X", "C", "i"}
    for ev in events:
        assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
        if ev["ph"] == "X":
            assert ev["dur"] > 0 and ev["ts"] >= 0
    path = tmp_path / "trace.json"
    write_chrome(snap, path)
    assert json.loads(path.read_text())["traceEvents"]


def test_chrome_counter_samples_carry_final_values():
    snap = _sample_snapshot()
    counters = [e for e in chrome_events(snap) if e["ph"] == "C"]
    assert counters[0]["name"] == "hits"
    assert counters[0]["args"] == {"value": 3}


def test_jsonl_roundtrip(tmp_path):
    snap = _sample_snapshot()
    path = tmp_path / "trace.jsonl"
    write_jsonl(snap, path)
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0]["type"] == "meta"
    assert {row["type"] for row in lines} == {"meta", "span", "counter",
                                              "hist"}
    back = load_trace(path)
    assert back["events"] == snap["events"]
    assert back["counters"] == snap["counters"]
    assert back["hists"] == snap["hists"]


def test_load_trace_reads_chrome_format_back(tmp_path):
    snap = _sample_snapshot()
    path = tmp_path / "trace.json"
    write_chrome(snap, path)
    back = load_trace(path)
    assert {e["name"] for e in back["events"]} == {"inner", "outer"}
    assert back["counters"] == {"hits": 3}
    # Microsecond storage: timestamps round-trip to ~1us.
    for orig, rt in zip(snap["events"], back["events"]):
        assert abs(orig["ts_ns"] - rt["ts_ns"]) <= 1000


def test_load_trace_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(ValueError):
        load_trace(path)


def test_tracer_write_dispatches_on_suffix(tmp_path, tracer):
    with tracer.span("x"):
        pass
    chrome = tracer.write(tmp_path / "t.json")
    jsonl = tracer.write(tmp_path / "t.jsonl")
    assert "traceEvents" in json.loads(chrome.read_text())
    assert json.loads(jsonl.read_text().splitlines()[0])["type"] == "meta"


def test_trace_path_from_env(monkeypatch):
    monkeypatch.delenv("WRL_TRACE", raising=False)
    assert obs.trace_path_from_env() is None
    monkeypatch.setenv("WRL_TRACE", "/tmp/t.json")
    assert obs.trace_path_from_env() == "/tmp/t.json"


# ---- the wrl-trace CLI ----------------------------------------------------

def test_cli_summary_and_convert(tmp_path, capsys):
    from repro.obs.cli import main
    src = tmp_path / "trace.json"
    write_chrome(_sample_snapshot(), src)
    assert main(["summary", str(src)]) == 0
    out = capsys.readouterr().out
    assert "outer" in out and "hits" in out
    dst = tmp_path / "trace.jsonl"
    assert main(["convert", str(src), str(dst)]) == 0
    assert load_trace(dst)["counters"] == {"hits": 3}
    assert main(["summary", str(tmp_path / "missing.json")]) == 1


def _top_snapshot():
    """Spans with known totals, including an exact tie, plus ranked
    counters/hists."""
    return {
        "events": [
            {"name": "big", "cat": "a", "ts_ns": 0, "dur_ns": 300,
             "pid": 1, "tid": 1, "args": {}},
            {"name": "tie2", "cat": "a", "ts_ns": 0, "dur_ns": 100,
             "pid": 1, "tid": 1, "args": {}},
            {"name": "tie1", "cat": "a", "ts_ns": 0, "dur_ns": 100,
             "pid": 1, "tid": 1, "args": {}},
            {"name": "small", "cat": "a", "ts_ns": 0, "dur_ns": 10,
             "pid": 1, "tid": 1, "args": {}},
        ],
        "counters": {"zeta": 5, "alpha": 5, "huge": 100},
        "hists": {"busy": [1.0, 2.0, 3.0], "quiet": [9.0]},
    }


def test_span_rows_rank_by_total_with_label_tiebreak():
    from repro.obs.cli import span_rows
    labels = [label for label, _ in span_rows(_top_snapshot())]
    # Equal totals (tie1/tie2) order by label, independent of event
    # arrival order: tie2 arrived first but tie1 sorts first.
    assert labels == ["a/big", "a/tie1", "a/tie2", "a/small"]


def test_cli_summary_top_limits_and_is_deterministic(capsys):
    from repro.obs.cli import summarize
    summarize(_top_snapshot(), top=2)
    out = capsys.readouterr().out
    assert "a/big" in out and "a/tie1" in out
    assert "a/tie2" not in out and "a/small" not in out
    assert "... 2 more span group(s)" in out
    # Counters rank by (-value, name): huge first, then the alpha/zeta
    # tie alphabetically — alpha shown at top=2, zeta cut.
    assert out.index("huge") < out.index("alpha")
    assert "zeta" not in out
    # Histograms rank by observation count.
    assert "busy" in out and "quiet" in out


def test_cli_summary_top_flag(tmp_path, capsys):
    from repro.obs.cli import main
    src = tmp_path / "trace.json"
    write_chrome(_sample_snapshot(), src)
    assert main(["summary", str(src), "--top", "1"]) == 0
    out = capsys.readouterr().out
    assert "... 1 more span group(s)" in out
    with pytest.raises(SystemExit):
        main(["summary", str(src), "--top", "0"])
