"""Guest-runtime profiler tests (``repro.obs.runtime``).

The profiler's contract has three legs, each tested here:

* **determinism** — the sample stream is a pure function of
  (text, entry, interval): repeat runs and fuse-on/off runs produce
  byte-identical artifacts;
* **non-perturbation** — sampling never changes what the guest
  computes: status, cycles, instruction counts, stdout, and files are
  bit-identical with sampling on or off;
* **pristine attribution** — at interval=1 every retired instruction is
  sampled and charged, so the ``orig`` bucket must equal the
  uninstrumented run's cycles *exactly*, and the overhead buckets
  (bracket/splice/analysis) must equal the instrumentation excess
  exactly, with nothing unattributed.
"""

import json

import pytest

from repro.atom import OptLevel
from repro.eval.errors import EvalTimeout
from repro.eval.runner import (apply_tool, run_instrumented,
                               run_uninstrumented)
from repro.obs import Tracer, read_jsonl, runtime
from repro.objfile.module import (PC_ATTR_GLUE, PC_ATTR_SAVE,
                                  PC_ATTR_SPLICE, Module)
from repro.objfile.sections import TEXT
from repro.tools import get_tool
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def fib():
    return build_workload("fib")


@pytest.fixture(scope="module")
def prof_o4(fib):
    return apply_tool(fib, get_tool("prof"), opt=OptLevel.O4, cache=None)


# ---- sampler basics --------------------------------------------------------

def test_sampler_rejects_bad_interval():
    with pytest.raises(ValueError):
        runtime.PcSampler(0)
    with pytest.raises(ValueError):
        runtime.StackSampler(-5)


def test_interval_one_samples_every_instruction(fib):
    """At interval=1 the profile is exact: one sample per retired
    instruction and every cycle charged to some pc."""
    s = runtime.PcSampler(1)
    result = run_uninstrumented(fib, sampler=s)
    assert s.total_samples == result.inst_count
    assert sum(s.cycle_counts.values()) == result.cycles


# ---- determinism -----------------------------------------------------------

def test_profile_byte_identical_across_runs(fib, tmp_path):
    paths = []
    for i in range(2):
        s = runtime.PcSampler(997)
        run_uninstrumented(fib, sampler=s)
        p = tmp_path / f"run{i}.json"
        runtime.write_profile(runtime.profile_doc(s, fib), p)
        paths.append(p)
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_profile_identical_with_fusion_on_and_off(fib):
    """Superblock fusion is an interpreter detail; the sample stream
    must not see it."""
    docs = []
    for fuse in (True, False):
        s = runtime.PcSampler(997)
        run_uninstrumented(fib, sampler=s, fuse=fuse)
        docs.append(runtime.profile_doc(s, fib))
    assert docs[0] == docs[1]


def test_stack_profile_deterministic(prof_o4):
    docs = []
    for _ in range(2):
        s = runtime.StackSampler(997)
        run_instrumented(prof_o4, sampler=s)
        docs.append(runtime.profile_doc(s, prof_o4.module))
    assert docs[0] == docs[1]


# ---- non-perturbation ------------------------------------------------------

def test_sampling_does_not_perturb_the_guest(prof_o4):
    plain = run_instrumented(prof_o4)
    sampled = run_instrumented(prof_o4,
                               sampler=runtime.PcSampler(1009))
    stacked = run_instrumented(prof_o4,
                               sampler=runtime.StackSampler(1009))
    for got in (sampled, stacked):
        assert got.status == plain.status
        assert got.cycles == plain.cycles
        assert got.inst_count == plain.inst_count
        assert got.stdout == plain.stdout
        assert got.files == plain.files


# ---- pristine attribution (the paper's headline property) ------------------

@pytest.mark.parametrize("tool_name,opt", [
    ("prof", OptLevel.O0),
    ("prof", OptLevel.O4),
    ("dyninst", OptLevel.O0),
    ("dyninst", OptLevel.O4),
    # taint is the densest instrumentation regime (inst-level snippets
    # between same-cache-line memory pairs): exactness here depends on
    # the cost model's provenance streams.
    ("taint", OptLevel.O0),
    ("taint", OptLevel.O4),
])
def test_attribution_accounts_for_every_cycle(fib, tool_name, opt):
    """Cross-check against the cost model: at interval=1 the orig
    bucket equals the uninstrumented run's cycles EXACTLY, and the
    overhead buckets sum to the instrumentation excess EXACTLY."""
    base = run_uninstrumented(fib)
    res = apply_tool(fib, get_tool(tool_name), opt=opt, cache=None)
    s = runtime.PcSampler(1)
    instr = run_instrumented(res, sampler=s)
    doc = runtime.profile_doc(s, res.module)

    assert doc["samples"] == instr.inst_count
    buckets = doc["buckets"]
    assert buckets.get("unknown", {}).get("samples", 0) == 0
    assert buckets["orig"]["cycles"] == base.cycles
    overhead = sum(buckets.get(b, {}).get("cycles", 0)
                   for b in ("bracket", "splice", "analysis"))
    assert overhead == instr.cycles - base.cycles
    split = runtime.pristine_split(doc)
    assert split["pristine"] + split["overhead"] == instr.cycles
    assert split["unknown"] == 0


def test_o4_profile_has_splice_and_o0_does_not(fib):
    for opt, expect_splice in ((OptLevel.O0, False), (OptLevel.O4, True)):
        res = apply_tool(fib, get_tool("prof"), opt=opt, cache=None)
        s = runtime.PcSampler(101)
        run_instrumented(res, sampler=s)
        doc = runtime.profile_doc(s, res.module)
        has_splice = doc["buckets"].get("splice", {}).get("samples", 0) > 0
        assert has_splice == expect_splice


# ---- shadow call stacks / flamegraphs --------------------------------------

def test_collapsed_stacks_are_well_formed(prof_o4, tmp_path):
    s = runtime.StackSampler(499)
    run_instrumented(prof_o4, sampler=s)
    doc = runtime.profile_doc(s, prof_o4.module)
    collapsed = doc["collapsed"]
    assert collapsed
    # Every line is rooted at the entry symbol and counts sum to the
    # total sample count (collapsed-stack invariant flamegraph.pl
    # relies on).
    attr = runtime.Attributor(prof_o4.module)
    root = attr.frame_name(prof_o4.module.entry)
    assert all(stack.split(";")[0] == root for stack in collapsed)
    assert all(all(frame for frame in stack.split(";"))
               for stack in collapsed)
    assert sum(collapsed.values()) == doc["samples"]

    out = tmp_path / "prof.collapsed"
    runtime.write_collapsed(doc, out)
    lines = out.read_text().splitlines()
    assert len(lines) == len(collapsed)
    for line in lines:
        stack, _, count = line.rpartition(" ")
        assert stack in collapsed and int(count) == collapsed[stack]


def test_stack_tables_inclusive_exclusive(prof_o4):
    s = runtime.StackSampler(499)
    run_instrumented(prof_o4, sampler=s)
    doc = runtime.profile_doc(s, prof_o4.module)
    rows = runtime.stack_tables(doc)
    by_name = {r["name"]: r for r in rows}
    root = runtime.Attributor(prof_o4.module).frame_name(
        prof_o4.module.entry)
    # The root frame is on every stack: inclusive == all samples.
    assert by_name[root]["inclusive"] == doc["samples"]
    for r in rows:
        assert 0 <= r["exclusive"] <= r["inclusive"] <= doc["samples"]


# ---- timeouts --------------------------------------------------------------

def test_budget_exhaustion_still_yields_partial_profile(fib):
    s = runtime.PcSampler(100)
    with pytest.raises(EvalTimeout):
        run_uninstrumented(fib, sampler=s, max_insts=5000)
    # ~5000/100 boundary crossings observed before the budget tripped.
    assert 45 <= s.total_samples <= 51
    doc = runtime.profile_doc(s, fib)
    assert doc["samples"] == s.total_samples


# ---- artifact round-trip ---------------------------------------------------

def test_profile_artifact_roundtrip(fib, tmp_path):
    s = runtime.PcSampler(997)
    run_uninstrumented(fib, sampler=s)
    doc = runtime.profile_doc(s, fib)
    path = tmp_path / "p.json"
    runtime.write_profile(doc, path)
    assert runtime.load_profile(path) == doc

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "nope"}))
    with pytest.raises(ValueError):
        runtime.load_profile(bad)


# ---- pc_attr serialization -------------------------------------------------

def test_pc_attr_survives_module_roundtrip(prof_o4):
    mod = prof_o4.module
    assert mod.pc_attr                      # O4 inserts plenty
    codes = set(mod.pc_attr.values())
    assert PC_ATTR_SAVE in codes and PC_ATTR_GLUE in codes \
        and PC_ATTR_SPLICE in codes
    back = Module.from_bytes(mod.to_bytes())
    assert back.pc_attr == mod.pc_attr
    assert back.pc_map == mod.pc_map


def test_old_format_blob_without_pc_attr_still_loads(prof_o4):
    """Pre-profiler WOF blobs end after the extra segments; the pc_attr
    table is optional trailing data (cache compatibility)."""
    mod = prof_o4.module
    blob = mod.to_bytes()
    trailer = 4 + 12 * len(mod.pc_attr)     # count u32 + (u64 pc, u32 code)
    old = Module.from_bytes(blob[:-trailer])
    assert old.pc_attr == {}
    assert old.pc_map == mod.pc_map
    assert old.section(TEXT).data == mod.section(TEXT).data


# ---- heartbeats ------------------------------------------------------------

def test_heartbeat_records_parse_and_merge(fib, tmp_path, monkeypatch):
    hb_path = tmp_path / "hb.jsonl"
    monkeypatch.setenv(runtime.ENV_HEARTBEAT, str(hb_path))
    monkeypatch.setenv(runtime.ENV_HEARTBEAT_INSTS, "20000")
    assert runtime.heartbeat_path() == str(hb_path)
    assert runtime.heartbeat_interval() == 20000

    writer = runtime.HeartbeatWriter(str(hb_path), "prof:fib:O1:linked")
    writer.emit("start")
    result = run_uninstrumented(fib, sampler=writer.sampler("base"))
    writer.emit("done", status="ok", insts=result.inst_count)

    rows = [json.loads(line) for line in hb_path.read_text().splitlines()]
    assert [r["args"]["phase"] for r in rows] == \
        ["start"] + ["base"] * (len(rows) - 2) + ["done"]
    assert all(r["type"] == "span" and r["name"] == "heartbeat"
               for r in rows)
    # In-flight progress is monotone at the configured cadence; the
    # final explicit record carries the full count.
    insts = [r["args"]["insts"] for r in rows if r["args"]["phase"] == "base"]
    assert insts == sorted(insts)
    assert insts == [20000 * (i + 1) for i in range(len(insts))]
    assert insts[-1] <= result.inst_count
    assert rows[-1]["args"]["insts"] == result.inst_count

    # Heartbeat files are trace files: read_jsonl + Tracer.merge works.
    snap = read_jsonl(hb_path)
    t = Tracer()
    t.enable()
    t.merge(snap)
    assert len(t.events) == len(rows)
    assert all(ev["dur_ns"] == 0 for ev in t.events)


def test_heartbeats_leave_task_identity_bit_identical(tmp_path,
                                                      monkeypatch):
    from repro.eval import parallel
    spec = parallel.TaskSpec(tool="prof", workload="fib", opt="O1")

    cache = str(tmp_path / "cache")
    monkeypatch.setenv(runtime.ENV_HEARTBEAT, str(tmp_path / "hb.jsonl"))
    monkeypatch.setattr(parallel, "_base_memo", {})
    with_hb = parallel._execute_task(spec, cache, True)

    monkeypatch.delenv(runtime.ENV_HEARTBEAT)
    monkeypatch.setattr(parallel, "_base_memo", {})
    without_hb = parallel._execute_task(spec, cache, True)

    assert with_hb.status == "ok"
    assert with_hb.identity() == without_hb.identity()
    assert (tmp_path / "hb.jsonl").exists()


def test_heartbeat_writer_swallows_io_errors(tmp_path):
    writer = runtime.HeartbeatWriter(str(tmp_path / "no" / "dir" / "x"),
                                     "t")
    writer.emit("start")                     # must not raise


# ---- the wrl-run / wrl-trace / smoke CLIs ----------------------------------

def test_wrl_run_profile_flag(fib, tmp_path, capsys):
    from repro.machine.cli import main
    exe = tmp_path / "fib.wof"
    fib.save(exe)
    profile = tmp_path / "profile.json"
    collapsed = tmp_path / "profile.collapsed"
    assert main([str(exe), "--profile", str(profile),
                 "--collapsed", str(collapsed),
                 "--sample-interval", "997"]) == 0
    doc = runtime.load_profile(profile)
    assert doc["schema"] == runtime.PROFILE_SCHEMA
    assert doc["interval"] == 997 and doc["samples"] > 0
    assert doc["collapsed"]
    assert collapsed.read_text().splitlines()

    from repro.obs.cli import main as trace_main
    extracted = tmp_path / "extracted.collapsed"
    assert trace_main(["profile", str(profile),
                       "--collapsed", str(extracted)]) == 0
    out = capsys.readouterr().out
    assert "pristine" in out
    assert extracted.read_text() == collapsed.read_text()


def test_annotated_disassembly(prof_o4, tmp_path):
    from repro.obs.annotate import main, render_annotated
    s = runtime.PcSampler(499)
    run_instrumented(prof_o4, sampler=s)
    doc = runtime.profile_doc(s, prof_o4.module)
    text = render_annotated(prof_o4.module, doc, top=3)
    # Sample counts from the profile land in the margin, and ATOM's
    # inserted code is marked by kind.
    assert "samples" in text
    hot = runtime.top_procs(doc, 1)[0]["name"]
    assert hot in text
    marked = {line[17] for line in text.splitlines()
              if len(line) > 18 and line[:8].strip().isdigit()}
    assert marked & {"b", "i", "a", "g"}      # overhead marks present

    exe = tmp_path / "m.wof"
    prof_o4.module.save(exe)
    profile = tmp_path / "p.json"
    runtime.write_profile(doc, profile)
    out = tmp_path / "ann.txt"
    assert main([str(exe), str(profile), "-o", str(out), "--top", "3"]) == 0
    assert out.read_text()
    assert main([str(exe), str(tmp_path / "missing.json")]) == 1


def test_runtime_smoke_cli(tmp_path, capsys):
    assert runtime.main(["--workload", "fib", "--tool", "prof",
                         "--opt", "4", "--interval", "997",
                         "--out-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert (tmp_path / "profile.json").exists()
    assert (tmp_path / "profile.collapsed").exists()
    assert (tmp_path / "annotated.txt").exists()
    assert "unattributed" not in out.lower() or "0.0%" in out
