"""MLC: the mini-C compiler targeting WRL-64."""

from .driver import (MlcError, build_analysis_unit, build_executable,
                     compile_source, compile_to_asm)
from .runtime import PRELUDE, runtime_archive

__all__ = [
    "MlcError", "build_analysis_unit", "build_executable",
    "compile_source", "compile_to_asm", "PRELUDE", "runtime_archive",
]
