"""AST node definitions for MLC.

Expression nodes carry a ``type`` attribute filled in by the checker;
identifier nodes additionally get a ``symbol`` binding.  Nodes are plain
mutable dataclasses — the tree is built once, annotated once, and walked
once by the code generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .types import Type

# ---------------------------------------------------------------- expressions


@dataclass
class Expr:
    line: int = 0
    type: Optional[Type] = None


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class StrLit(Expr):
    data: bytes = b""
    #: label assigned by codegen when the literal is materialized
    label: Optional[str] = None


@dataclass
class Ident(Expr):
    name: str = ""
    symbol: object = None     # bound by the checker


@dataclass
class Unary(Expr):
    op: str = ""               # - ! ~ * & ++ --
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""               # + - * / % << >> < <= > >= == != & | ^ && ||
    left: Expr = None
    right: Expr = None


@dataclass
class Assign(Expr):
    op: str = "="              # = += -= *= /= %= &= |= ^= <<= >>=
    target: Expr = None
    value: Expr = None


@dataclass
class Cond(Expr):
    cond: Expr = None
    then: Expr = None
    els: Expr = None


@dataclass
class Call(Expr):
    func: Expr = None
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class Member(Expr):
    base: Expr = None
    name: str = ""
    arrow: bool = False
    member: object = None      # StructMember, bound by the checker


@dataclass
class Cast(Expr):
    to: Type = None
    expr: Expr = None


@dataclass
class SizeofType(Expr):
    of: Type = None


@dataclass
class PostIncDec(Expr):
    op: str = "++"
    target: Expr = None


# ---------------------------------------------------------------- statements


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class LocalDecl(Stmt):
    name: str = ""
    var_type: Type = None
    init: Optional[Expr] = None
    symbol: object = None      # bound by the checker


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Stmt = None
    els: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class DoWhile(Stmt):
    body: Stmt = None
    cond: Expr = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None      # LocalDecl or ExprStmt
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class SwitchCase:
    value: Optional[int]             # None for default
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    expr: Expr = None
    cases: list[SwitchCase] = field(default_factory=list)


@dataclass
class Return(Stmt):
    expr: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ------------------------------------------------------------- top level


@dataclass
class Param:
    name: str
    type: Type


@dataclass
class FuncDef:
    name: str
    ret: Type
    params: list[Param]
    variadic: bool
    body: Block
    line: int = 0


@dataclass
class GlobalVar:
    name: str
    var_type: Type
    init: object = None        # int | bytes | list | Expr | None
    extern: bool = False
    line: int = 0


@dataclass
class FuncDecl:
    """A prototype without a body (including extern)."""

    name: str
    ret: Type
    params: list[Param]
    variadic: bool
    line: int = 0


@dataclass
class Program:
    decls: list[object] = field(default_factory=list)
