"""Seeded generator of random-but-valid mini-C programs.

The fuzzed-program generator the ROADMAP calls for: given a seed it
emits one deterministic MLC translation unit, weighted toward the
constructs that stress the instrumentation optimizer and the region JIT
— nested loops with back-edges, call graphs with (mutual) recursion,
pointer aliasing through locals/globals/arrays, mixed-width
byte/word/long/quad memory traffic through a multi-page buffer (so
accesses straddle page boundaries), and longjmp-style early exits.

Every generated program is safe by construction:

* **termination** — every loop is counted with a bounded trip count,
  and every call (including self- and mutual recursion) passes ``d - 1``
  for a depth parameter its callee checks first thing, so call chains
  strictly shrink;
* **memory** — array indexes and buffer offsets are masked to their
  bounds before use, so no access can fault;
* **arithmetic** — divisors are ``(e & 15) + 1`` (never zero) and shift
  counts are masked to 0..63;
* **non-local exits** — ``longjmp`` only ever fires under the live
  ``setjmp`` main establishes around each phase call.

The program folds everything it computes into one checksum printed at
exit, so any miscomputation anywhere changes the observable output.
Two calls with the same seed and weights produce byte-identical source
(``random.Random`` is stable across platforms and Python versions).

``python -m repro.mlc.fuzz --seed N`` prints one program;
``--count K --out-dir DIR`` emits a corpus (see tests/fuzz/corpus/).
"""

from __future__ import annotations

import argparse
import random
import sys
from dataclasses import dataclass, field, replace

#: Sizes shared with the harness.  BUF spans three 4 KiB pages no matter
#: where the linker places it, so masked offsets in 0..8191 reach at
#: least one page boundary with every access width.
ARRAY_LEN = 64
BUF_LEN = 12288
BUF_MASK = 8191

#: (cast, mask) per access width for BUF traffic; the mask keeps the
#: access inside BUF for the largest width while still crossing pages.
WIDTHS = (("long", "quad"), ("int", "long"), ("short", "word"),
          ("char", "byte"))


@dataclass(frozen=True)
class GrammarWeights:
    """Relative weights for each construct plus structural knobs.

    The defaults lean toward loops, calls and memory traffic — the
    shapes that exercise superblock fusion, region promotion and the
    O1–O4 save/inline machinery hardest.
    """

    # statement kinds
    assign: float = 4.0
    array_update: float = 3.0       # G[e & 63] op= e  (aliasing via index)
    mem_update: float = 3.0         # *(T *)(BUF + (e & mask)) = e
    ptr_update: float = 2.0         # retarget / write through pointer local
    loop_for: float = 3.0
    loop_while: float = 1.2
    loop_dowhile: float = 0.8
    branch_if: float = 2.5
    branch_switch: float = 0.9
    call_stmt: float = 2.2
    break_stmt: float = 0.5
    continue_stmt: float = 0.5
    longjmp_stmt: float = 0.4
    return_stmt: float = 0.5

    # expression kinds
    leaf_const: float = 2.0
    leaf_var: float = 3.5
    leaf_array: float = 1.8
    leaf_mem: float = 1.3           # typed BUF read
    leaf_ptr: float = 1.0           # *p
    binop: float = 4.0
    divmod: float = 0.7
    shift: float = 1.4
    compare: float = 1.2
    logic: float = 0.8
    ternary: float = 0.7
    unary: float = 1.0
    cast: float = 1.0
    call_expr: float = 1.0

    # structure
    n_funcs: tuple[int, int] = (3, 5)
    n_phases: tuple[int, int] = (2, 3)
    body_stmts: tuple[int, int] = (3, 6)
    block_stmts: tuple[int, int] = (1, 3)
    max_stmt_depth: int = 3
    max_expr_depth: int = 3
    loop_trip: tuple[int, int] = (2, 6)
    hot_trip: tuple[int, int] = (64, 72)
    call_depth: tuple[int, int] = (3, 5)
    n_scalars: int = 5              # long g0..g{n-1}
    n_locals: tuple[int, int] = (2, 4)
    #: cap on one function's total loop-iteration weight (the sum over
    #: its loops of the product of enclosing trip counts) — the governor
    #: that keeps the p95 program from blowing the harness's run budget
    fn_iter_budget: int = 40


#: Named weight profiles, rotated across seeds by the harness for
#: diversity without any extra configuration surface.
PROFILES: dict[str, GrammarWeights] = {
    "default": GrammarWeights(),
    "loops": GrammarWeights(loop_for=6.0, loop_while=3.0, loop_dowhile=2.0,
                            branch_if=1.5, call_stmt=1.0, call_expr=0.4,
                            max_stmt_depth=4),
    "calls": GrammarWeights(call_stmt=5.0, call_expr=2.5, return_stmt=1.2,
                            longjmp_stmt=0.8, n_funcs=(4, 6),
                            call_depth=(4, 6)),
    "memory": GrammarWeights(mem_update=6.0, array_update=5.0,
                             ptr_update=4.0, leaf_mem=3.0, leaf_array=3.0,
                             leaf_ptr=2.5, assign=2.0),
}


def profile_for(seed: int, name: str | None = None) -> GrammarWeights:
    """The weight profile a seed uses: explicit name, or seed rotation."""
    if name is not None:
        return PROFILES[name]
    return PROFILES[sorted(PROFILES)[seed % len(PROFILES)]]


# --------------------------------------------------------------------------


class _Scope:
    """What the statement/expression generators may reference here.

    ``readable`` and ``writable`` are separate pools: loop counters and
    the recursion-depth parameter ``d`` may be *read* anywhere, but are
    never assignment targets — a generated write to either could undo
    the termination argument (reset a counter, regrow the depth).
    """

    def __init__(self, *, writable, readonly, pointers, in_func,
                 can_longjmp):
        self.writable = list(writable)    # assignable long lvalues
        self.readonly = list(readonly)    # counters, depth param
        self.pointers = list(pointers)    # long * locals
        self.in_func = in_func            # return/longjmp legal, has a,b,d
        self.can_longjmp = can_longjmp
        self.loop_depth = 0
        self.switch_depth = 0
        self.iter_mult = 1        # product of enclosing loop trip counts

    @property
    def readable(self) -> list[str]:
        return self.writable + self.readonly


class ProgramGen:
    """One seeded program; :meth:`source` renders the text."""

    def __init__(self, seed: int, weights: GrammarWeights | None = None):
        self.seed = seed
        self.w = weights or profile_for(seed)
        self.rng = random.Random((0xA70A << 20) ^ seed)
        self.n_funcs = self.rng.randint(*self.w.n_funcs)
        self._counter = 0
        self._fn_iters = 0

    # ---- helpers ---------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _pick(self, table: list[tuple[str, float]]) -> str:
        total = sum(weight for _, weight in table)
        x = self.rng.uniform(0, total)
        for name, weight in table:
            x -= weight
            if x <= 0:
                return name
        return table[-1][0]

    def _const(self) -> str:
        r = self.rng
        kind = r.randrange(6)
        if kind == 0:
            return str(r.randint(0, 9))
        if kind == 1:
            return str(r.randint(-128, 255))
        if kind == 2:
            return hex(r.getrandbits(16))
        if kind == 3:
            # page-boundary-adjacent offsets: the interesting addresses
            return str(r.choice([4095, 4096, 4097, 8190, 8191, 4093]))
        if kind == 4:
            return hex(r.getrandbits(32))
        return str(r.choice([1, 2, 3, 7, 15, 31, 63, 255]))

    # ---- expressions -----------------------------------------------------

    def expr(self, sc: _Scope, depth: int = 0) -> str:
        w = self.w
        r = self.rng
        table = [("const", w.leaf_const), ("var", w.leaf_var),
                 ("array", w.leaf_array), ("mem", w.leaf_mem)]
        if sc.pointers:
            table.append(("ptr", w.leaf_ptr))
        if depth < w.max_expr_depth:
            table += [("binop", w.binop), ("divmod", w.divmod),
                      ("shift", w.shift), ("compare", w.compare),
                      ("logic", w.logic), ("ternary", w.ternary),
                      ("unary", w.unary), ("cast", w.cast)]
            if sc.in_func:
                table.append(("call", w.call_expr))
        kind = self._pick(table)
        e = lambda: self.expr(sc, depth + 1)  # noqa: E731
        if kind == "const":
            return self._const()
        if kind == "var":
            return r.choice(sc.readable)
        if kind == "array":
            return f"G[({e()}) & {ARRAY_LEN - 1}]"
        if kind == "mem":
            ctype, _ = r.choice(WIDTHS)
            if ctype == "char":
                return f"(long)BUF[({e()}) & {BUF_MASK}]"
            return f"(long)*({ctype} *)(BUF + (({e()}) & {BUF_MASK}))"
        if kind == "ptr":
            return f"*{r.choice(sc.pointers)}"
        if kind == "binop":
            op = r.choice(["+", "-", "*", "&", "|", "^"])
            return f"({e()} {op} {e()})"
        if kind == "divmod":
            op = r.choice(["/", "%"])
            return f"({e()} {op} ((({e()}) & 15) + 1))"
        if kind == "shift":
            op = r.choice(["<<", ">>"])
            return f"({e()} {op} (({e()}) & 63))"
        if kind == "compare":
            op = r.choice(["<", "<=", ">", ">=", "==", "!="])
            return f"({e()} {op} {e()})"
        if kind == "logic":
            op = r.choice(["&&", "||"])
            return f"({e()} {op} {e()})"
        if kind == "ternary":
            return f"({e()} ? {e()} : {e()})"
        if kind == "unary":
            # the space matters: "-" followed by a negative literal
            # would otherwise lex as the "--" operator
            op = r.choice(["-", "~", "!"])
            return f"({op} {e()})"
        if kind == "cast":
            ctype = r.choice(["char", "short", "int", "unsigned long"])
            return f"(long)({ctype})({e()})"
        if kind == "call":
            return self._call(sc)
        raise AssertionError(kind)

    def _call(self, sc: _Scope) -> str:
        callee = self.rng.randrange(self.n_funcs)
        a = self.expr(sc, self.w.max_expr_depth - 1)
        b = self.expr(sc, self.w.max_expr_depth - 1)
        return f"f{callee}({a}, {b}, d - 1)"

    # ---- statements ------------------------------------------------------

    def _lvalue(self, sc: _Scope) -> str:
        r = self.rng
        kind = r.randrange(4)
        if kind == 0 or not sc.pointers:
            return r.choice(sc.writable)
        if kind == 1:
            return f"G[({self.expr(sc, 2)}) & {ARRAY_LEN - 1}]"
        if kind == 2:
            return f"*{r.choice(sc.pointers)}"
        return r.choice(sc.writable)

    def _trip(self, sc: _Scope, depth: int) -> int:
        """One loop's trip count: shrinks with nesting depth, and is
        clamped so the function's total iteration weight (trip products
        summed over loops) stays within ``fn_iter_budget``."""
        lo, hi = self.w.loop_trip
        hi = max(lo, hi >> depth)
        room = (self.w.fn_iter_budget - self._fn_iters) \
            // max(1, sc.iter_mult)
        trip = self.rng.randint(lo, max(lo, min(hi, room)))
        self._fn_iters += sc.iter_mult * trip
        return trip

    def stmt(self, sc: _Scope, out: list[str], indent: str,
             depth: int) -> None:
        w = self.w
        r = self.rng
        table = [("assign", w.assign), ("array", w.array_update),
                 ("mem", w.mem_update)]
        if sc.pointers:
            table.append(("ptr", w.ptr_update))
        if sc.in_func:
            table.append(("callst", w.call_stmt))
            table.append(("return", w.return_stmt))
            if sc.can_longjmp:
                table.append(("longjmp", w.longjmp_stmt))
        if depth < w.max_stmt_depth:
            table += [("if", w.branch_if), ("switch", w.branch_switch)]
            # the iteration governor: stop minting loops once this
            # function's worst-case trip product reaches its budget
            if sc.iter_mult * self.w.loop_trip[0] + self._fn_iters \
                    <= w.fn_iter_budget:
                table += [("for", w.loop_for), ("while", w.loop_while),
                          ("dowhile", w.loop_dowhile)]
        if sc.loop_depth > 0 and sc.switch_depth == 0:
            table += [("break", w.break_stmt),
                      ("continue", w.continue_stmt)]
        kind = self._pick(table)
        emit = lambda line: out.append(indent + line)  # noqa: E731

        if kind == "assign":
            op = r.choice(["=", "+=", "-=", "*=", "^=", "|=", "&="])
            emit(f"{self._lvalue(sc)} {op} {self.expr(sc)};")
        elif kind == "callst":
            acc = sc.writable[0]
            op = r.choice(["+=", "^="])
            emit(f"{acc} {op} {self._call(sc)};")
        elif kind == "return":
            emit(f"return {sc.writable[0]} ^ ({self.expr(sc, 2)});")
        elif kind == "array":
            op = r.choice(["=", "+=", "^="])
            emit(f"G[({self.expr(sc, 2)}) & {ARRAY_LEN - 1}] "
                 f"{op} {self.expr(sc)};")
        elif kind == "mem":
            ctype, _ = r.choice(WIDTHS)
            off = f"({self.expr(sc, 2)}) & {BUF_MASK}"
            if ctype == "char":
                emit(f"BUF[{off}] = (char)({self.expr(sc)});")
            else:
                emit(f"*({ctype} *)(BUF + ({off})) = {self.expr(sc)};")
        elif kind == "ptr":
            p = r.choice(sc.pointers)
            if r.random() < 0.5:
                emit(f"{p} = &G[({self.expr(sc, 2)}) & {ARRAY_LEN - 1}];")
            else:
                op = r.choice(["=", "+=", "^="])
                emit(f"*{p} {op} {self.expr(sc)};")
        elif kind == "longjmp":
            emit(f"if ((({self.expr(sc, 2)}) & 31) == 0) longjmp(JB, 1);")
        elif kind == "for":
            i = self._fresh("i")
            sc.readonly.append(i)
            trip = self._trip(sc, depth)
            emit(f"for ({i} = 0; {i} < {trip}; {i}++) {{")
            self._loop_body(sc, out, indent, depth, trip)
            emit("}")
        elif kind == "while":
            i = self._fresh("wc")
            sc.readonly.append(i)
            trip = self._trip(sc, depth)
            emit(f"{i} = 0;")
            emit(f"while ({i} < {trip}) {{")
            # counted first so a generated `continue` cannot skip it
            emit(f"    {i} += 1;")
            self._loop_body(sc, out, indent, depth, trip)
            emit("}")
        elif kind == "dowhile":
            i = self._fresh("dc")
            sc.readonly.append(i)
            trip = self._trip(sc, depth)
            emit(f"{i} = 0;")
            emit("do {")
            emit(f"    {i} += 1;")
            self._loop_body(sc, out, indent, depth, trip)
            emit(f"}} while ({i} < {trip});")
        elif kind == "if":
            emit(f"if ({self.expr(sc)}) {{")
            self.block(sc, out, indent + "    ", depth + 1)
            if r.random() < 0.4:
                emit("} else {")
                self.block(sc, out, indent + "    ", depth + 1)
            emit("}")
        elif kind == "switch":
            n = r.randint(2, 4)
            emit(f"switch (({self.expr(sc, 2)}) & {n - 1}) {{")
            sc.switch_depth += 1
            for case in range(n):
                emit(f"case {case}:")
                self.block(sc, out, indent + "    ", depth + 1)
                if r.random() < 0.75 or case == n - 1:
                    emit("    break;")
            if r.random() < 0.5:
                emit("default:")
                self.block(sc, out, indent + "    ", depth + 1)
            sc.switch_depth -= 1
            emit("}")
        elif kind == "break":
            emit("break;")
        elif kind == "continue":
            emit("continue;")
        else:
            raise AssertionError(kind)

    def _loop_body(self, sc: _Scope, out: list[str], indent: str,
                   depth: int, trip: int) -> None:
        sc.iter_mult *= trip
        self.block(sc, out, indent + "    ", depth + 1, loop=True)
        sc.iter_mult //= trip

    def block(self, sc: _Scope, out: list[str], indent: str, depth: int,
              loop: bool = False) -> None:
        if loop:
            sc.loop_depth += 1
        lo, hi = (self.w.block_stmts if depth else self.w.body_stmts)
        for _ in range(self.rng.randint(lo, hi)):
            self.stmt(sc, out, indent, depth)
        if loop:
            sc.loop_depth -= 1

    # ---- top level -------------------------------------------------------

    def _function(self, index: int) -> str:
        r = self.rng
        self._fn_iters = 0
        n_ptr = r.randint(0, 2)
        pointers = [self._fresh("p") for _ in range(n_ptr)]
        locals_ = [self._fresh("l")
                   for _ in range(r.randint(*self.w.n_locals))]
        globals_ = [f"g{k}" for k in range(self.w.n_scalars)]
        sc = _Scope(writable=["acc", "a", "b"] + locals_ + globals_,
                    readonly=["d"], pointers=pointers, in_func=True,
                    can_longjmp=True)
        body: list[str] = []
        self.block(sc, body, "    ", 0)
        # declarations for every loop counter the body minted
        decls = [f"    long acc = a ^ {self._const()};"]
        decls += [f"    long {name} = {self._const()};" for name in locals_]
        decls += [f"    long {name} = 0;" for name in sc.readonly[1:]]
        decls += [f"    long *{p} = &G[{r.randrange(ARRAY_LEN)}];"
                  for p in pointers]
        # the termination guard: the depth chain shrinks every call, and
        # FUEL caps total invocations whatever the call graph's shape
        guard = ("    FUEL -= 1;\n"
                 f"    if (d <= 0 || FUEL <= 0) "
                 f"return (a ^ {self._const()}) + b;")
        return "\n".join(
            [f"long f{index}(long a, long b, long d) {{"]
            + decls + [guard] + body
            + ["    return acc + b;", "}"])

    def _main(self) -> str:
        r = self.rng
        w = self.w
        n_phases = r.randint(*w.n_phases)
        depth = r.randint(*w.call_depth)
        sc = _Scope(writable=["fold"], readonly=[], pointers=[],
                    in_func=False, can_longjmp=False)
        # BSS is zero-initialized, so G/BUF start deterministic without
        # full init sweeps; sparse seeding keeps the skeleton cheap.
        lines = ["int main() {",
                 "    long i, k, ph, fold = 0;",
                 f"    FUEL = {r.randint(10, 16)};",
                 f"    for (i = 0; i < {BUF_LEN}; i += 257)",
                 "        BUF[i] = (char)(i * 131 + 7);",
                 "    for (i = 0; i < 16; i++)",
                 f"        G[(i * 5) & {ARRAY_LEN - 1}] = "
                 f"i * {r.randint(3, 97)} + {self._const()};"]
        lines.append(f"    for (ph = 0; ph < {n_phases}; ph++) {{")
        lines.append("        if (setjmp(JB) == 0) {")
        lines.append("            switch (ph) {")
        for ph in range(n_phases):
            a = self.expr(sc, 2)
            b = self.expr(sc, 2)
            callee = r.randrange(self.n_funcs)
            lines.append(f"            case {ph}: CHK = CHK * 31 + "
                         f"f{callee}({a}, {b}, {depth}); break;")
        lines.append("            }")
        lines.append("        } else {")
        lines.append("            CHK = (CHK << 1) ^ 0x5EED;")
        lines.append("        }")
        lines.append("    }")
        # the guaranteed-hot fold loop: trips well past the promotion
        # threshold, reading every G slot and strided mixed-width BUF
        hot = max(r.randint(*w.hot_trip), ARRAY_LEN)
        lines += [
            f"    for (i = 0; i < {hot}; i++) {{",
            f"        k = (long)*(int *)(BUF + ((i * 509) & "
            f"{BUF_MASK}));",
            f"        fold = (fold * 31 + G[i & {ARRAY_LEN - 1}]) ^ "
            "(k + ((long)BUF[(i * 127) & "
            f"{BUF_MASK}] << (i & 15)));",
            "    }",
            '    printf("chk=%x fold=%x\\n", '
            "(CHK ^ (unsigned long)fold) & 0xFFFFFFFF, "
            "fold & 0xFFFF);",
            "    return (int)(CHK & 63);",
            "}"]
        return "\n".join(lines)

    def source(self) -> str:
        header = [f"// wrl-fuzz seed={self.seed} "
                  f"profile={_profile_name(self.w)}",
                  f"long G[{ARRAY_LEN}];",
                  f"char BUF[{BUF_LEN}];",
                  "long JB[11];",
                  "long FUEL;",
                  "unsigned long CHK;"]
        header += [f"long g{k};" for k in range(self.w.n_scalars)]
        protos = [f"long f{k}(long a, long b, long d);"
                  for k in range(self.n_funcs)]
        # globals g* join every function scope through the scalar pool
        funcs = []
        for k in range(self.n_funcs):
            text = self._function(k)
            funcs.append(text)
        return "\n".join(header + protos + funcs + [self._main()]) + "\n"


def _profile_name(weights: GrammarWeights) -> str:
    for name, profile in PROFILES.items():
        if profile == weights:
            return name
    return "custom"


def generate_program(seed: int,
                     weights: GrammarWeights | None = None) -> str:
    """One deterministic program for ``seed`` (see module docstring)."""
    gen = ProgramGen(seed, weights)
    # widen the scalar pool with the global g* so functions alias them
    return gen.source()


def corpus_sources(count: int, seed0: int = 0,
                   profile: str | None = None) -> list[tuple[int, str]]:
    """``count`` programs starting at ``seed0``, profile-rotated."""
    return [(seed, generate_program(seed, profile_for(seed, profile)))
            for seed in range(seed0, seed0 + count)]


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.mlc.fuzz",
        description="emit deterministic fuzzed MLC programs")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--count", type=int, default=1)
    ap.add_argument("--profile", choices=sorted(PROFILES), default=None,
                    help="weight profile (default: rotate by seed)")
    ap.add_argument("--out-dir", default=None,
                    help="write seed_<n>.mlc files here instead of stdout")
    args = ap.parse_args(argv)
    programs = corpus_sources(args.count, args.seed, args.profile)
    if args.out_dir is None:
        for _, text in programs:
            sys.stdout.write(text)
        return 0
    from pathlib import Path
    out = Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    for seed, text in programs:
        (out / f"seed_{seed:04d}.mlc").write_text(text)
    print(f"wrote {len(programs)} programs to {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
