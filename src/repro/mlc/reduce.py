"""Structural test-case reduction for MLC sources.

Given a program and a predicate ("does this source still show the
failure?"), :func:`reduce_source` shrinks the program while keeping the
predicate true.  It never needs to understand MLC semantics: every
candidate edit is validated by re-running the predicate, which is
expected to treat non-compiling sources as "not failing" (see
:func:`checked_predicate`), so an edit that breaks a later use of a
deleted declaration is simply rejected.

The candidate edits, tried largest-first and re-derived after every
accepted edit:

* delete a whole top-level declaration or function definition;
* delete one statement (brace-aware: ``if``/``else`` chains, loop
  bodies, ``do … while (…);`` tails are treated as one span);
* unwrap a compound statement — replace ``if (…) { body }`` /
  ``for (…) { body }`` / ``while (…) { body }`` with just ``body``;
* finally, delete single lines and collapse blank lines as polish.

This is deliberately text-based rather than AST-based so it can shrink
*any* reproduction — including hand-written programs and sources a
miscompiling toolchain rejects from round-tripping through the parser.
"""

from __future__ import annotations

from typing import Callable

Predicate = Callable[[str], bool]

_STRUCT_KEYWORDS = ("if", "for", "while", "do", "switch")


def _mask_literals(source: str) -> str:
    """Same-length copy with string/char contents and comments blanked,
    so brace/paren/semicolon scanning cannot be fooled by literals."""
    out = list(source)
    i, n = 0, len(source)
    while i < n:
        c = source[i]
        if c == "/" and i + 1 < n and source[i + 1] == "/":
            j = i
            while j < n and source[j] != "\n":
                out[j] = " "
                j += 1
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if source[j] == "\\":
                    out[j] = "x"
                    if j + 1 < n:
                        out[j + 1] = "x"
                    j += 2
                    continue
                if source[j] == quote:
                    break
                out[j] = "x" if source[j] != "\n" else "\n"
                j += 1
            i = j + 1
        else:
            i += 1
    return "".join(out)


def _skip_ws(text: str, i: int) -> int:
    while i < len(text) and text[i].isspace():
        i += 1
    return i


def _match(text: str, i: int, open_ch: str, close_ch: str) -> int:
    """Index just past the group closing the ``open_ch`` at ``i``."""
    assert text[i] == open_ch
    depth = 0
    for j in range(i, len(text)):
        if text[j] == open_ch:
            depth += 1
        elif text[j] == close_ch:
            depth -= 1
            if depth == 0:
                return j + 1
    return len(text)


def _word_at(text: str, i: int) -> str:
    j = i
    while j < len(text) and (text[j].isalnum() or text[j] == "_"):
        j += 1
    return text[i:j]


def _stmt_end(masked: str, i: int) -> int:
    """End (exclusive) of the statement starting at ``i``.

    Handles ``if``/``else`` chains, loops with brace or single-statement
    bodies, ``do … while (…);``, ``switch``, plain ``…;`` statements and
    bare ``{…}`` blocks.
    """
    n = len(masked)
    i = _skip_ws(masked, i)
    if i >= n:
        return n
    if masked[i] == "{":
        return _match(masked, i, "{", "}")
    word = _word_at(masked, i)
    if word in ("case", "default"):
        # labels are glued to their statement list by the span scanner;
        # treat just the label as the span
        j = masked.find(":", i)
        return (j + 1) if j != -1 else n
    if word == "do":
        j = _stmt_end(masked, _skip_ws(masked, i + 2))
        j = _skip_ws(masked, j)
        if masked[j:j + 5] == "while":
            j = _match(masked, masked.index("(", j), "(", ")")
            j = _skip_ws(masked, j)
            if j < n and masked[j] == ";":
                j += 1
        return j
    if word in ("if", "for", "while", "switch"):
        j = masked.index("(", i)
        j = _match(masked, j, "(", ")")
        j = _stmt_end(masked, j)
        k = _skip_ws(masked, j)
        if word == "if" and masked[k:k + 4] == "else" and \
                not (masked[k + 4:k + 5].isalnum() or
                     masked[k + 4:k + 5] == "_"):
            return _stmt_end(masked, k + 4)
        return j
    # plain statement / declaration: to the ; at paren/brace depth 0
    paren = brace = 0
    for j in range(i, n):
        c = masked[j]
        if c == "(":
            paren += 1
        elif c == ")":
            paren -= 1
        elif c == "{":
            brace += 1
        elif c == "}":
            if brace == 0:
                return j          # ran off the enclosing block
            brace -= 1
        elif c == ";" and paren == 0 and brace == 0:
            return j + 1
    return n


def _spans(source: str) -> list[tuple[int, int, str]]:
    """All candidate edits as ``(start, end, replacement)`` triples."""
    masked = _mask_literals(source)
    n = len(masked)
    edits: list[tuple[int, int, str]] = []

    def statements(lo: int, hi: int) -> None:
        i = _skip_ws(masked, lo)
        while i < hi:
            end = min(_stmt_end(masked, i), hi)
            if end <= i:
                break
            text = masked[i:end]
            word = _word_at(masked, i)
            if word not in ("case", "default"):
                edits.append((i, end, ""))                    # delete
            brace = text.find("{")
            if brace != -1 and word in _STRUCT_KEYWORDS:
                inner_end = _match(masked, i + brace, "{", "}")
                edits.append((i, end,
                              source[i + brace + 1:inner_end - 1]))  # unwrap
            if brace != -1:
                statements(i + brace + 1,
                           _match(masked, i + brace, "{", "}") - 1)
            i = _skip_ws(masked, end)

    # top level: declarations and function definitions
    i = _skip_ws(masked, 0)
    while i < n:
        semi = masked.find(";", i)
        brace = masked.find("{", i)
        if semi == -1 and brace == -1:
            break
        if brace != -1 and (semi == -1 or brace < semi):
            end = _match(masked, brace, "{", "}")
            edits.append((i, end, ""))
            statements(brace + 1, end - 1)
        else:
            end = semi + 1
            edits.append((i, end, ""))
        i = _skip_ws(masked, end)
    return edits


def _tidy(source: str) -> str:
    lines = [ln.rstrip() for ln in source.splitlines() if ln.strip()]
    return "\n".join(lines) + "\n"


def checked_predicate(compile_fn: Callable[[str], object],
                      failing: Predicate) -> Predicate:
    """Wrap ``failing`` so sources that no longer compile are rejected
    (the reducer's contract).  ``compile_fn`` must raise on error."""
    def predicate(source: str) -> bool:
        try:
            compile_fn(source)
        except Exception:
            return False
        return failing(source)
    return predicate


def reduce_source(source: str, still_failing: Predicate, *,
                  max_rounds: int = 40,
                  progress: Callable[[str], None] | None = None) -> str:
    """Shrink ``source`` while ``still_failing`` stays true.

    ``still_failing`` must already include validity checking (use
    :func:`checked_predicate`); it is assumed true for ``source``
    itself.  Results are cached by text, so re-deriving candidate spans
    after each accepted edit never re-runs the predicate on a text it
    has already judged.
    """
    cache: dict[str, bool] = {source: True}

    def check(text: str) -> bool:
        if text not in cache:
            cache[text] = still_failing(text)
        return cache[text]

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    current = source
    for round_no in range(max_rounds):
        changed = False
        # largest-first structural edits, rescanned after every success
        while True:
            candidates = sorted(_spans(current),
                                key=lambda e: e[1] - e[0] - len(e[2]),
                                reverse=True)
            for start, end, repl in candidates:
                trial = current[:start] + repl + current[end:]
                if trial != current and check(trial):
                    current = trial
                    changed = True
                    note(f"round {round_no}: "
                         f"{len(current.splitlines())} lines")
                    break
            else:
                break
        # line-deletion polish
        lines = current.splitlines(keepends=True)
        k = 0
        while k < len(lines):
            trial = "".join(lines[:k] + lines[k + 1:])
            if lines[k].strip() and check(trial):
                lines.pop(k)
                current = trial
                changed = True
            else:
                k += 1
        if not changed:
            break
    tidied = _tidy(current)
    if tidied != current and check(tidied):
        current = tidied
    return current
