# Raw syscall shims.
#
# MLC code calls __syscall1/2/3 with the syscall number as the first
# argument; the shim shuffles it into v0 and the remaining arguments down,
# issues the trap, and returns the kernel's v0.
#
# _exit is its own procedure (rather than an inline trap in exit) so ATOM
# can locate the program's single termination point.

        .text
        .globl  __syscall1
        .ent    __syscall1
__syscall1:
        mov     a0, v0
        mov     a1, a0
        sys
        ret     (ra)
        .end    __syscall1

        .globl  __syscall2
        .ent    __syscall2
__syscall2:
        mov     a0, v0
        mov     a1, a0
        mov     a2, a1
        sys
        ret     (ra)
        .end    __syscall2

        .globl  __syscall3
        .ent    __syscall3
__syscall3:
        mov     a0, v0
        mov     a1, a0
        mov     a2, a1
        mov     a3, a2
        sys
        ret     (ra)
        .end    __syscall3

        .globl  _exit
        .ent    _exit
_exit:
        li      v0, 1           # SYS_EXIT
        sys
        halt                    # unreachable
        .end    _exit

# setjmp/longjmp: save/restore the callee-saved state.
#
# The paper (Section 4) stresses that because ATOM steals no registers
# and preserves the stack layout, "mechanisms such as signals, setjmp and
# vfork work correctly without needing any special attention".
#
# jmp_buf layout (11 quads): s0-s5, fp, sp, ra, gp, sentinel.

        .globl  setjmp
        .ent    setjmp
setjmp:
        stq     s0, 0(a0)
        stq     s1, 8(a0)
        stq     s2, 16(a0)
        stq     s3, 24(a0)
        stq     s4, 32(a0)
        stq     s5, 40(a0)
        stq     fp, 48(a0)
        stq     sp, 56(a0)
        stq     ra, 64(a0)
        stq     gp, 72(a0)
        li      t0, 0x51AB
        stq     t0, 80(a0)
        clr     v0
        ret     (ra)
        .end    setjmp

        .globl  longjmp
        .ent    longjmp
longjmp:
        ldq     t0, 80(a0)
        li      t1, 0x51AB
        subq    t0, t1, t0
        bne     t0, longjmp_bad
        ldq     s0, 0(a0)
        ldq     s1, 8(a0)
        ldq     s2, 16(a0)
        ldq     s3, 24(a0)
        ldq     s4, 32(a0)
        ldq     s5, 40(a0)
        ldq     fp, 48(a0)
        ldq     sp, 56(a0)
        ldq     ra, 64(a0)
        ldq     gp, 72(a0)
        mov     a1, v0
        bne     v0, longjmp_go
        li      v0, 1
longjmp_go:
        ret     (ra)
longjmp_bad:
        li      a0, 125         # corrupt jmp_buf: abort the process
        li      v0, 1
        sys
        .end    longjmp
