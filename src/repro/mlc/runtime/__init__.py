"""The MLC runtime: crt0, syscall shims, and the libc subset.

:func:`runtime_archive` assembles/compiles the runtime sources into an
archive the linker pulls from on demand.  Both the application link and the
analysis link use it, giving each side its own private copies of every
library routine — the paper's "two printfs" property.
"""

from __future__ import annotations

import importlib.resources as resources

from ...isa.asm import assemble
from ...objfile.archive import Archive
from ...objfile.module import Module

_cache: dict[str, object] = {}

#: Declarations every MLC translation unit may assume (the stand-in for
#: system headers, since MLC has no preprocessor).
PRELUDE = """
struct __FILE { long fd; };
typedef struct __FILE FILE;

extern void exit(long status);
extern long write(long fd, char *buf, long count);
extern long read(long fd, char *buf, long count);
extern long open(char *path, long flags);
extern long close(long fd);
extern void *sbrk(long incr);
extern void *malloc(long n);
extern void free(void *p);
extern void *calloc(long nmemb, long size);
extern void *realloc(void *p, long n);
extern long strlen(char *s);
extern long strcmp(char *a, char *b);
extern long strncmp(char *a, char *b, long n);
extern char *strcpy(char *dst, char *src);
extern char *strcat(char *dst, char *src);
extern char *strchr(char *s, long c);
extern void *memset(void *dst, long c, long n);
extern void *memcpy(void *dst, void *src, long n);
extern long memcmp(void *a, void *b, long n);
extern long isdigit(long c);
extern long isalpha(long c);
extern long isspace(long c);
extern long atol(char *s);
extern long atoi(char *s);
extern long labs(long v);
extern void srand(long seed);
extern long rand(void);
extern FILE *fopen(char *path, char *mode);
extern long fclose(FILE *f);
extern long fputc(long c, FILE *f);
extern long fputs(char *s, FILE *f);
extern long puts(char *s);
extern long putchar(long c);
extern long fgetc(FILE *f);
extern long getchar(void);
extern long fread(void *buf, long size, long nmemb, FILE *f);
extern long fwrite(void *buf, long size, long nmemb, FILE *f);
extern long printf(char *fmt, ...);
extern long fprintf(FILE *f, char *fmt, ...);
extern long sprintf(char *out, char *fmt, ...);
extern long setjmp(long *buf);
extern void longjmp(long *buf, long value);
extern FILE *stdin_file;
extern FILE *stdout_file;
extern FILE *stderr_file;
"""

PRELUDE_LINES = PRELUDE.count("\n")


def _read(name: str) -> str:
    return resources.files(__package__).joinpath(name).read_text()


def runtime_archive() -> Archive:
    """Assemble + compile the runtime into an archive (cached)."""
    cached = _cache.get("archive")
    if cached is not None:
        return cached
    from ..driver import compile_source
    members: list[Module] = [
        assemble(_read("sys.s"), "sys.s"),
        compile_source(_read("libc.mlc"), "libc.mlc", use_prelude=False),
    ]
    archive = Archive(members, name="libc.a")
    _cache["archive"] = archive
    return archive


def crt0_module() -> Module:
    """Assemble crt0 (cached as bytes; returned as a fresh module)."""
    blob = _cache.get("crt0")
    if blob is None:
        blob = assemble(_read("crt0.s"), "crt0.s").to_bytes()
        _cache["crt0"] = blob
    return Module.from_bytes(blob)
