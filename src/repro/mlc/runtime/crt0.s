# crt0: process entry point.
#
# The loader places argc in a0 and argv in a1 (OSF/1 style) and jumps to
# __start.  All program termination funnels through exit() -> _exit(), the
# single point ATOM hooks to run ProgramAfter analysis calls.

        .text
        .globl  __start
        .ent    __start
__start:
        ldgp
        mov     a0, s0          # argc
        mov     a1, s1          # argv
        bsr     ra, __libc_init
        mov     s0, a0
        mov     s1, a1
        bsr     ra, main
        mov     v0, a0
        bsr     ra, exit
        # exit never returns; trap hard if it somehow does.
        halt
        .end    __start
