"""MLC's type system: C scalar types, pointers, arrays, structs, functions.

Sizes match the paper's Alpha/OSF C: char 1, short 2, int 4, long 8,
pointers 8.  Arithmetic is performed in 64-bit registers; narrower types
are extended at loads and truncated at stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class TypeError_(Exception):
    """MLC semantic type error (named to avoid shadowing the builtin)."""


class Type:
    """Base class; concrete kinds below."""

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_arith(self) -> bool:
        return self.is_integer()

    def is_scalar(self) -> bool:
        return self.is_integer() or self.is_pointer()

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def align(self) -> int:
        return self.size


@dataclass(frozen=True)
class VoidType(Type):
    @property
    def size(self) -> int:
        raise TypeError_("void has no size")

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    name: str          # "char" | "short" | "int" | "long"
    width: int         # bytes
    signed: bool = True

    @property
    def size(self) -> int:
        return self.width

    def __str__(self) -> str:
        return self.name if self.signed else f"unsigned {self.name}"


@dataclass(frozen=True)
class PointerType(Type):
    target: Type

    @property
    def size(self) -> int:
        return 8

    def __str__(self) -> str:
        return f"{self.target}*"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    length: int | None     # None: incomplete (extern or parameter decay)

    @property
    def size(self) -> int:
        if self.length is None:
            raise TypeError_("incomplete array has no size")
        return self.element.size * self.length

    @property
    def align(self) -> int:
        return self.element.align

    def __str__(self) -> str:
        n = "" if self.length is None else str(self.length)
        return f"{self.element}[{n}]"


@dataclass
class StructMember:
    name: str
    type: Type
    offset: int = 0


@dataclass(eq=False)
class StructType(Type):
    tag: str
    members: list[StructMember] = field(default_factory=list)
    complete: bool = False
    _size: int = 0
    _align: int = 1

    def layout(self) -> None:
        """Assign member offsets with natural alignment."""
        offset = 0
        align = 1
        for member in self.members:
            ma = member.type.align
            offset = (offset + ma - 1) & ~(ma - 1)
            member.offset = offset
            offset += member.type.size
            align = max(align, ma)
        self._size = (offset + align - 1) & ~(align - 1) if offset else 0
        self._align = align
        self.complete = True

    def member(self, name: str) -> StructMember:
        for m in self.members:
            if m.name == name:
                return m
        raise TypeError_(f"struct {self.tag} has no member {name!r}")

    @property
    def size(self) -> int:
        if not self.complete:
            raise TypeError_(f"struct {self.tag} is incomplete")
        return self._size

    @property
    def align(self) -> int:
        return self._align

    def __str__(self) -> str:
        return f"struct {self.tag}"


@dataclass(frozen=True)
class FuncType(Type):
    ret: Type
    params: tuple[Type, ...]
    variadic: bool = False

    @property
    def size(self) -> int:
        raise TypeError_("function type has no size")

    def __str__(self) -> str:
        ps = ", ".join(str(p) for p in self.params)
        if self.variadic:
            ps += ", ..." if ps else "..."
        return f"{self.ret}({ps})"


VOID = VoidType()
CHAR = IntType("char", 1, True)
UCHAR = IntType("char", 1, False)
SHORT = IntType("short", 2, True)
USHORT = IntType("short", 2, False)
INT = IntType("int", 4, True)
UINT = IntType("int", 4, False)
LONG = IntType("long", 8, True)
ULONG = IntType("long", 8, False)

CHAR_PTR = PointerType(CHAR)
VOID_PTR = PointerType(VOID)


def decay(t: Type) -> Type:
    """Array-to-pointer decay in expression contexts."""
    if isinstance(t, ArrayType):
        return PointerType(t.element)
    return t


def usual_arith(a: Type, b: Type) -> IntType:
    """Usual arithmetic conversions, collapsed to our 64-bit world:
    the result is long, unsigned if either operand is unsigned long."""
    if not (a.is_integer() and b.is_integer()):
        raise TypeError_(f"arithmetic on non-integers: {a}, {b}")
    unsigned = (isinstance(a, IntType) and not a.signed and a.width == 8) or \
               (isinstance(b, IntType) and not b.signed and b.width == 8)
    return ULONG if unsigned else LONG


def compatible_assign(dst: Type, src: Type) -> bool:
    """Loose C-ish assignment compatibility."""
    dst, src = decay(dst), decay(src)
    if dst.is_integer() and src.is_integer():
        return True
    if dst.is_pointer() and src.is_pointer():
        dt = dst.target
        st = src.target
        return (isinstance(dt, VoidType) or isinstance(st, VoidType)
                or dt == st or str(dt) == str(st))
    if dst.is_pointer() and src.is_integer():
        return True   # C allows it with a warning; MLC allows silently
    if dst.is_integer() and src.is_pointer():
        return True
    return False
