"""Semantic analysis for MLC: name binding and type annotation.

Walks the parsed tree, binds identifiers to :class:`Symbol` objects, and
fills every expression's ``type``.  The rules are deliberately loose C:
integers convert freely, pointers and integers interconvert by cast or
assignment, arrays decay, and functions decay to pointers outside calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import astnodes as A
from . import types as T


class CheckError(Exception):
    def __init__(self, message: str, line: int = 0):
        self.line = line
        super().__init__(f"line {line}: {message}" if line else message)


@dataclass
class Symbol:
    name: str
    type: T.Type
    storage: str               # "global" | "func" | "local" | "param"
    defined: bool = False
    extern: bool = False
    init: object = None
    #: frame offset for locals/params, assigned by codegen
    frame_offset: int | None = None
    variadic: bool = False
    param_count: int = 0


@dataclass
class CheckedFunction:
    node: A.FuncDef
    symbol: Symbol
    locals: list[Symbol] = field(default_factory=list)
    params: list[Symbol] = field(default_factory=list)
    uses_va_start: bool = False


@dataclass
class CheckedProgram:
    functions: list[CheckedFunction] = field(default_factory=list)
    globals: list[Symbol] = field(default_factory=list)
    symbols: dict[str, Symbol] = field(default_factory=dict)


def check(program: A.Program) -> CheckedProgram:
    return _Checker().run(program)


class _Checker:
    def __init__(self) -> None:
        self.out = CheckedProgram()
        self.scopes: list[dict[str, Symbol]] = []
        self.current: CheckedFunction | None = None
        self.loop_depth = 0

    # ---- symbol management --------------------------------------------------

    def global_sym(self, name: str) -> Symbol | None:
        return self.out.symbols.get(name)

    def lookup(self, name: str, line: int) -> Symbol:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        sym = self.global_sym(name)
        if sym is None:
            raise CheckError(f"undeclared identifier {name!r}", line)
        return sym

    def declare_local(self, name: str, type_: T.Type, line: int,
                      storage: str = "local") -> Symbol:
        scope = self.scopes[-1]
        if name in scope:
            raise CheckError(f"redeclaration of {name!r}", line)
        if isinstance(type_, T.StructType) and not type_.complete:
            raise CheckError(f"variable of incomplete {type_}", line)
        sym = Symbol(name, type_, storage, defined=True)
        scope[name] = sym
        if self.current is not None:
            if storage == "param":
                self.current.params.append(sym)
            else:
                self.current.locals.append(sym)
        return sym

    # ---- top level --------------------------------------------------------------

    def run(self, program: A.Program) -> CheckedProgram:
        # First pass: register every global name so forward calls work.
        for decl in program.decls:
            if isinstance(decl, A.FuncDef):
                self._register_func(decl.name,
                                    T.FuncType(decl.ret,
                                               tuple(p.type
                                                     for p in decl.params),
                                               decl.variadic),
                                    defined=True, line=decl.line)
            elif isinstance(decl, A.FuncDecl):
                self._register_func(decl.name,
                                    T.FuncType(decl.ret,
                                               tuple(p.type
                                                     for p in decl.params),
                                               decl.variadic),
                                    defined=False, line=decl.line)
            elif isinstance(decl, A.GlobalVar):
                self._register_global(decl)
        # Second pass: check function bodies.
        for decl in program.decls:
            if isinstance(decl, A.FuncDef):
                self._check_function(decl)
        return self.out

    def _register_func(self, name: str, ftype: T.FuncType, defined: bool,
                       line: int) -> None:
        sym = self.global_sym(name)
        if sym is None:
            sym = Symbol(name, ftype, "func", defined=defined,
                         variadic=ftype.variadic,
                         param_count=len(ftype.params))
            self.out.symbols[name] = sym
            return
        if sym.storage != "func":
            raise CheckError(f"{name!r} redeclared as a function", line)
        if sym.defined and defined:
            raise CheckError(f"function {name!r} redefined", line)
        sym.defined = sym.defined or defined
        sym.type = ftype
        sym.variadic = ftype.variadic
        sym.param_count = len(ftype.params)

    def _register_global(self, decl: A.GlobalVar) -> None:
        sym = self.global_sym(decl.name)
        if isinstance(decl.var_type, T.StructType) \
                and not decl.var_type.complete and not decl.extern:
            raise CheckError(f"global of incomplete {decl.var_type}",
                             decl.line)
        if sym is None:
            sym = Symbol(decl.name, decl.var_type, "global",
                         defined=not decl.extern, extern=decl.extern,
                         init=decl.init)
            self.out.symbols[decl.name] = sym
            self.out.globals.append(sym)
            return
        if sym.storage != "global":
            raise CheckError(f"{decl.name!r} redeclared as a variable",
                             decl.line)
        if sym.defined and not decl.extern:
            raise CheckError(f"global {decl.name!r} redefined", decl.line)
        if not decl.extern:
            sym.defined = True
            sym.extern = False
            sym.init = decl.init
            sym.type = decl.var_type

    # ---- functions -------------------------------------------------------------

    def _check_function(self, node: A.FuncDef) -> None:
        sym = self.out.symbols[node.name]
        self.current = CheckedFunction(node, sym)
        self.scopes = [{}]
        for param in node.params:
            if not param.name:
                raise CheckError("unnamed parameter in definition",
                                 node.line)
            self.declare_local(param.name, T.decay(param.type), node.line,
                               storage="param")
        self._stmt(node.body)
        self.out.functions.append(self.current)
        self.current = None
        self.scopes = []

    # ---- statements ---------------------------------------------------------------

    def _stmt(self, stmt: A.Stmt) -> None:
        method = getattr(self, f"_s_{type(stmt).__name__}")
        method(stmt)

    def _s_Block(self, node: A.Block) -> None:
        self.scopes.append({})
        for s in node.stmts:
            self._stmt(s)
        self.scopes.pop()

    def _s_LocalDecl(self, node: A.LocalDecl) -> None:
        node.symbol = self.declare_local(node.name, node.var_type, node.line)
        if node.init is not None:
            if not T.decay(node.var_type).is_scalar() or \
                    isinstance(node.var_type, T.ArrayType):
                raise CheckError("only scalar locals may have initializers",
                                 node.line)
            itype = self._expr(node.init)
            if not T.compatible_assign(node.var_type, itype):
                raise CheckError(
                    f"cannot initialize {node.var_type} from {itype}",
                    node.line)

    def _s_ExprStmt(self, node: A.ExprStmt) -> None:
        self._expr(node.expr)

    def _s_If(self, node: A.If) -> None:
        self._scalar(node.cond)
        self._stmt(node.then)
        if node.els is not None:
            self._stmt(node.els)

    def _s_While(self, node: A.While) -> None:
        self._scalar(node.cond)
        self.loop_depth += 1
        self._stmt(node.body)
        self.loop_depth -= 1

    def _s_DoWhile(self, node: A.DoWhile) -> None:
        self.loop_depth += 1
        self._stmt(node.body)
        self.loop_depth -= 1
        self._scalar(node.cond)

    def _s_For(self, node: A.For) -> None:
        self.scopes.append({})
        if node.init is not None:
            if isinstance(node.init, A.Block):
                # for (long i = ...; ...) — declarations scope to the loop.
                for s in node.init.stmts:
                    self._stmt(s)
            else:
                self._stmt(node.init)
        if node.cond is not None:
            self._scalar(node.cond)
        if node.step is not None:
            self._expr(node.step)
        self.loop_depth += 1
        self._stmt(node.body)
        self.loop_depth -= 1
        self.scopes.pop()

    def _s_Switch(self, node: A.Switch) -> None:
        t = self._expr(node.expr)
        if not t.is_integer():
            raise CheckError("switch expression must be integer", node.line)
        seen: set[int | None] = set()
        self.loop_depth += 1    # break works inside switch
        for case in node.cases:
            if case.value in seen:
                raise CheckError("duplicate case label", node.line)
            seen.add(case.value)
            for s in case.stmts:
                self._stmt(s)
        self.loop_depth -= 1

    def _s_Return(self, node: A.Return) -> None:
        ret = self.current.node.ret
        if node.expr is None:
            if not ret.is_void():
                raise CheckError("return without a value", node.line)
            return
        t = self._expr(node.expr)
        if ret.is_void():
            raise CheckError("return with a value in void function",
                             node.line)
        if not T.compatible_assign(ret, t):
            raise CheckError(f"cannot return {t} as {ret}", node.line)

    def _s_Break(self, node: A.Break) -> None:
        if self.loop_depth == 0:
            raise CheckError("break outside loop or switch", node.line)

    def _s_Continue(self, node: A.Continue) -> None:
        if self.loop_depth == 0:
            raise CheckError("continue outside loop", node.line)

    # ---- expressions ------------------------------------------------------------------

    def _scalar(self, expr: A.Expr) -> None:
        t = self._expr(expr)
        if not T.decay(t).is_scalar():
            raise CheckError(f"scalar required, got {t}", expr.line)

    def _expr(self, expr: A.Expr) -> T.Type:
        method = getattr(self, f"_e_{type(expr).__name__}")
        t = method(expr)
        expr.type = t
        return t

    def _e_IntLit(self, node: A.IntLit) -> T.Type:
        return T.LONG

    def _e_StrLit(self, node: A.StrLit) -> T.Type:
        return T.CHAR_PTR

    def _e_Ident(self, node: A.Ident) -> T.Type:
        if node.name == "__va_start":
            raise CheckError("__va_start must be called", node.line)
        sym = self.lookup(node.name, node.line)
        node.symbol = sym
        if sym.storage == "func":
            return T.PointerType(sym.type)   # decay; Call special-cases
        return sym.type

    def _e_Unary(self, node: A.Unary) -> T.Type:
        if node.op == "sizeof":
            t = self._expr(node.operand)
            node.size_value = t.size
            return T.LONG
        if node.op == "&":
            t = self._expr(node.operand)
            if isinstance(node.operand, A.Ident) \
                    and node.operand.symbol.storage == "func":
                return t    # already a function pointer
            self._require_lvalue(node.operand)
            return T.PointerType(t)
        t = T.decay(self._expr(node.operand))
        if node.op == "*":
            if not t.is_pointer():
                raise CheckError(f"cannot dereference {t}", node.line)
            target = t.target
            if target.is_void():
                raise CheckError("cannot dereference void*", node.line)
            return target
        if node.op == "!":
            if not t.is_scalar():
                raise CheckError(f"! on {t}", node.line)
            return T.LONG
        if node.op in ("-", "~"):
            if not t.is_integer():
                raise CheckError(f"{node.op} on {t}", node.line)
            return T.usual_arith(t, t)
        if node.op in ("++", "--"):
            self._require_lvalue(node.operand)
            if not t.is_scalar():
                raise CheckError(f"{node.op} on {t}", node.line)
            return t
        raise AssertionError(node.op)

    def _e_PostIncDec(self, node: A.PostIncDec) -> T.Type:
        t = T.decay(self._expr(node.target))
        self._require_lvalue(node.target)
        if not t.is_scalar():
            raise CheckError(f"{node.op} on {t}", node.line)
        return t

    def _e_Binary(self, node: A.Binary) -> T.Type:
        if node.op == ",":
            self._expr(node.left)
            return T.decay(self._expr(node.right))
        lt = T.decay(self._expr(node.left))
        rt = T.decay(self._expr(node.right))
        op = node.op
        if op in ("&&", "||"):
            if not (lt.is_scalar() and rt.is_scalar()):
                raise CheckError(f"{op} needs scalars", node.line)
            return T.LONG
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if lt.is_pointer() or rt.is_pointer():
                return T.LONG
            T.usual_arith(lt, rt)
            return T.LONG
        if op == "+":
            if lt.is_pointer() and rt.is_integer():
                return lt
            if lt.is_integer() and rt.is_pointer():
                return rt
            return T.usual_arith(lt, rt)
        if op == "-":
            if lt.is_pointer() and rt.is_integer():
                return lt
            if lt.is_pointer() and rt.is_pointer():
                return T.LONG
            return T.usual_arith(lt, rt)
        if op in ("*", "/", "%", "<<", ">>", "&", "|", "^"):
            return T.usual_arith(lt, rt)
        raise AssertionError(op)

    def _e_Assign(self, node: A.Assign) -> T.Type:
        tt = self._expr(node.target)
        self._require_lvalue(node.target)
        vt = self._expr(node.value)
        if node.op == "=":
            if not T.compatible_assign(tt, vt):
                raise CheckError(f"cannot assign {vt} to {tt}", node.line)
        else:
            base_op = node.op[:-1]
            lt = T.decay(tt)
            rt = T.decay(vt)
            if base_op in ("+", "-") and lt.is_pointer():
                if not rt.is_integer():
                    raise CheckError(f"{node.op} pointer with {rt}",
                                     node.line)
            else:
                T.usual_arith(lt, rt)
        return T.decay(tt)

    def _e_Cond(self, node: A.Cond) -> T.Type:
        self._scalar(node.cond)
        tt = T.decay(self._expr(node.then))
        et = T.decay(self._expr(node.els))
        if tt.is_pointer():
            return tt
        if et.is_pointer():
            return et
        return T.usual_arith(tt, et)

    def _e_Call(self, node: A.Call) -> T.Type:
        # The builtin __va_start().
        if isinstance(node.func, A.Ident) and node.func.name == "__va_start":
            if self.current is None or not self.current.node.variadic:
                raise CheckError("__va_start outside variadic function",
                                 node.line)
            if node.args:
                raise CheckError("__va_start takes no arguments", node.line)
            self.current.uses_va_start = True
            node.func.type = T.VOID_PTR
            return T.PointerType(T.LONG)
        ftype = self._callee_type(node)
        if not ftype.variadic and len(node.args) != len(ftype.params):
            raise CheckError(
                f"call with {len(node.args)} args, expected "
                f"{len(ftype.params)}", node.line)
        if ftype.variadic and len(node.args) < len(ftype.params):
            raise CheckError("too few arguments for variadic call",
                             node.line)
        for i, arg in enumerate(node.args):
            at = self._expr(arg)
            if i < len(ftype.params) and \
                    not T.compatible_assign(ftype.params[i], at):
                raise CheckError(
                    f"argument {i + 1}: cannot pass {at} as "
                    f"{ftype.params[i]}", node.line)
        return ftype.ret

    def _callee_type(self, node: A.Call) -> T.FuncType:
        func = node.func
        # Direct call of a named function.
        if isinstance(func, A.Ident):
            sym = self.lookup(func.name, func.line)
            func.symbol = sym
            if sym.storage == "func":
                func.type = T.PointerType(sym.type)
                return sym.type
            t = T.decay(sym.type)
            func.type = t
            if t.is_pointer() and isinstance(t.target, T.FuncType):
                return t.target
            raise CheckError(f"{func.name!r} is not callable", node.line)
        t = T.decay(self._expr(func))
        if isinstance(t, T.FuncType):
            return t
        if t.is_pointer() and isinstance(t.target, T.FuncType):
            return t.target
        raise CheckError(f"expression of type {t} is not callable",
                         node.line)

    def _e_Index(self, node: A.Index) -> T.Type:
        bt = T.decay(self._expr(node.base))
        it = T.decay(self._expr(node.index))
        if not bt.is_pointer():
            raise CheckError(f"cannot index {bt}", node.line)
        if not it.is_integer():
            raise CheckError(f"array index of type {it}", node.line)
        return bt.target

    def _e_Member(self, node: A.Member) -> T.Type:
        bt = self._expr(node.base)
        if node.arrow:
            bt = T.decay(bt)
            if not bt.is_pointer():
                raise CheckError(f"-> on {bt}", node.line)
            bt = bt.target
        if not isinstance(bt, T.StructType):
            raise CheckError(f"member access on {bt}", node.line)
        member = bt.member(node.name)
        node.member = member
        return member.type

    def _e_Cast(self, node: A.Cast) -> T.Type:
        self._expr(node.expr)
        return node.to

    def _e_SizeofType(self, node: A.SizeofType) -> T.Type:
        return T.LONG

    # ---- lvalues ------------------------------------------------------------

    def _require_lvalue(self, expr: A.Expr) -> None:
        if isinstance(expr, A.Ident):
            if expr.symbol is not None and expr.symbol.storage == "func":
                raise CheckError("function is not an lvalue", expr.line)
            return
        if isinstance(expr, (A.Index, A.Member)):
            return
        if isinstance(expr, A.Unary) and expr.op == "*":
            return
        raise CheckError("lvalue required", expr.line)
