"""Lexer for MLC, the mini-C language of this reproduction.

MLC is the stand-in for the C the paper's users write analysis routines in
(and that the SPEC92 workloads were compiled from).  The token set is a
plain C subset: keywords, identifiers, integer/character/string literals,
and the usual operator zoo.
"""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = frozenset({
    "break", "case", "char", "continue", "default", "do", "else", "extern",
    "for", "if", "int", "long", "return", "short", "sizeof", "struct",
    "switch", "typedef", "unsigned", "void", "while",
})

# Multi-character operators, longest first so maximal munch works.
OPERATORS = (
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--", "->",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
)


class LexError(Exception):
    def __init__(self, message: str, line: int):
        self.line = line
        super().__init__(f"line {line}: {message}")


@dataclass(frozen=True)
class Token:
    kind: str        # "kw" | "id" | "int" | "str" | "op" | "eof"
    text: str
    value: int | bytes | None = None
    line: int = 0

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line={self.line})"


_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
            "a": 7, "b": 8, "f": 12, "v": 11}


def tokenize(source: str) -> list[Token]:
    """Turn MLC source text into a token list ending with an eof token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "kw" if word in KEYWORDS else "id"
            tokens.append(Token(kind, word, line=line))
            i = j
            continue
        if ch.isdigit():
            i = _lex_number(source, i, line, tokens)
            continue
        if ch == "'":
            i = _lex_char(source, i, line, tokens)
            continue
        if ch == '"':
            i = _lex_string(source, i, line, tokens)
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line=line))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", line=line))
    return tokens


def _lex_number(source: str, i: int, line: int, tokens: list[Token]) -> int:
    n = len(source)
    j = i
    if source.startswith(("0x", "0X"), i):
        j = i + 2
        while j < n and source[j] in "0123456789abcdefABCDEF":
            j += 1
        value = int(source[i:j], 16)
    else:
        while j < n and source[j].isdigit():
            j += 1
        text = source[i:j]
        value = int(text, 8) if text.startswith("0") and len(text) > 1 \
            else int(text)
    # Optional integer suffixes are accepted and ignored (L, U, UL...).
    while j < n and source[j] in "uUlL":
        j += 1
    tokens.append(Token("int", source[i:j], value=value, line=line))
    return j


def _lex_char(source: str, i: int, line: int, tokens: list[Token]) -> int:
    j = i + 1
    n = len(source)
    if j >= n:
        raise LexError("unterminated character literal", line)
    if source[j] == "\\":
        if j + 1 >= n:
            raise LexError("unterminated character literal", line)
        esc = source[j + 1]
        if esc == "x":
            k = j + 2
            while k < n and source[k] in "0123456789abcdefABCDEF":
                k += 1
            value = int(source[j + 2:k], 16)
            j = k
        elif esc in _ESCAPES:
            value = _ESCAPES[esc]
            j += 2
        else:
            raise LexError(f"bad escape \\{esc}", line)
    else:
        value = ord(source[j])
        j += 1
    if j >= n or source[j] != "'":
        raise LexError("unterminated character literal", line)
    tokens.append(Token("int", source[i:j + 1], value=value, line=line))
    return j + 1


def _lex_string(source: str, i: int, line: int, tokens: list[Token]) -> int:
    j = i + 1
    n = len(source)
    out = bytearray()
    while j < n and source[j] != '"':
        ch = source[j]
        if ch == "\n":
            raise LexError("newline in string literal", line)
        if ch == "\\":
            if j + 1 >= n:
                break
            esc = source[j + 1]
            if esc == "x":
                k = j + 2
                while k < n and source[k] in "0123456789abcdefABCDEF" \
                        and k < j + 4:
                    k += 1
                out.append(int(source[j + 2:k], 16))
                j = k
                continue
            if esc not in _ESCAPES:
                raise LexError(f"bad escape \\{esc}", line)
            out.append(_ESCAPES[esc])
            j += 2
            continue
        out.append(ord(ch))
        j += 1
    if j >= n:
        raise LexError("unterminated string literal", line)
    tokens.append(Token("str", source[i:j + 1], value=bytes(out), line=line))
    return j + 1
