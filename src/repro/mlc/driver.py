"""MLC compilation driver: source -> module -> linked executable or unit.

The high-level entry points used throughout the reproduction:

* :func:`compile_source` — one translation unit to a relocatable module;
* :func:`build_executable` — compile + link with crt0 and libc into a
  runnable program (what the paper's users do with ``cc``);
* :func:`build_analysis_unit` — compile + link analysis routines with
  their own private libc copy but *no* crt0 (the unit is entered only via
  procedure calls inserted by ATOM).
"""

from __future__ import annotations

import argparse
import sys

from ..isa.asm import assemble
from ..objfile.linker import LinkConfig, link
from ..objfile.module import Module
from .check import CheckError, check
from .codegen import generate
from .lexer import LexError
from .parser import ParseError, parse
from .runtime import PRELUDE, PRELUDE_LINES, crt0_module, runtime_archive


class MlcError(Exception):
    """Wrapper carrying the source name for any front-end failure."""

    def __init__(self, name: str, cause: Exception):
        self.cause = cause
        super().__init__(f"{name}: {cause}")


def compile_to_asm(source: str, name: str = "<mlc>",
                   use_prelude: bool = True) -> str:
    """Compile MLC source to WRL-64 assembly text."""
    if use_prelude:
        source = PRELUDE + source
    try:
        prog = check(parse(source, name))
        return generate(prog, name)
    except (LexError, ParseError, CheckError) as exc:
        line = getattr(exc, "line", 0)
        if use_prelude and line:
            # Report line numbers in the *user's* source, not the
            # prelude-prefixed text the front end saw.
            message = str(exc)
            prefix = f"line {line}: "
            if message.startswith(prefix):
                message = message[len(prefix):]
            adjusted = type(exc)(message, line - PRELUDE_LINES)
            raise MlcError(name, adjusted) from exc
        raise MlcError(name, exc) from exc


def compile_source(source: str, name: str = "<mlc>",
                   use_prelude: bool = True) -> Module:
    """Compile MLC source to a relocatable WOF module."""
    return assemble(compile_to_asm(source, name, use_prelude), name)


def build_executable(sources: list, name: str = "a.out",
                     config: LinkConfig | None = None,
                     extra_modules: list[Module] | None = None) -> Module:
    """Compile sources (str MLC text or ready Modules) and link a program."""
    modules = [crt0_module()]
    for i, src in enumerate(sources):
        if isinstance(src, Module):
            modules.append(src)
        else:
            modules.append(compile_source(src, f"unit{i}.mlc"))
    modules.extend(extra_modules or [])
    cfg = config or LinkConfig(name=name)
    cfg.name = name
    return link(modules, [runtime_archive()], cfg)


def build_analysis_unit(sources: list, name: str = "analysis",
                        text_base: int = 0x0040_0000,
                        data_base: int = 0x0080_0000) -> Module:
    """Compile + link analysis routines into an entry-less linked unit.

    The bases are placeholders; ATOM relocates the unit into the gap
    between the application's text and data segments (paper Figure 4).
    """
    modules = []
    for i, src in enumerate(sources):
        if isinstance(src, Module):
            modules.append(src)
        else:
            modules.append(compile_source(src, f"anal{i}.mlc"))
    cfg = LinkConfig(text_base=text_base, data_base=data_base,
                     require_entry=False, name=name)
    return link(modules, [runtime_archive()], cfg)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="mlc", description="MLC compiler")
    ap.add_argument("sources", nargs="+", help="MLC source files")
    ap.add_argument("-o", "--output", required=True)
    ap.add_argument("-S", action="store_true", dest="asm_only",
                    help="emit assembly instead of an executable")
    ap.add_argument("-c", action="store_true", dest="compile_only",
                    help="emit a relocatable module (single source only)")
    args = ap.parse_args(argv)
    texts = []
    for path in args.sources:
        with open(path) as f:
            texts.append(f.read())
    try:
        if args.asm_only:
            out = "".join(compile_to_asm(t, p)
                          for t, p in zip(texts, args.sources))
            with open(args.output, "w") as f:
                f.write(out)
            return 0
        if args.compile_only:
            if len(texts) != 1:
                print("mlc: -c takes a single source", file=sys.stderr)
                return 2
            compile_source(texts[0], args.sources[0]).save(args.output)
            return 0
        build_executable(texts, name=args.output).save(args.output)
        return 0
    except MlcError as exc:
        print(f"mlc: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
