"""Recursive-descent parser for MLC.

Produces the :mod:`repro.mlc.astnodes` tree.  Full C declarator syntax for
the supported subset (pointers, arrays, function pointers), C expression
precedence, and constant folding for array sizes and case labels.
"""

from __future__ import annotations

from . import astnodes as A
from . import types as T
from .lexer import Token, tokenize


class ParseError(Exception):
    def __init__(self, message: str, line: int):
        self.line = line
        super().__init__(f"line {line}: {message}")


_TYPE_KEYWORDS = frozenset({"void", "char", "short", "int", "long",
                            "unsigned", "struct"})

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
                         "^=", "<<=", ">>="})


def parse(source: str, name: str = "<mlc>") -> A.Program:
    return _Parser(tokenize(source), name).program()


class _Declarator:
    """Result of parsing a declarator: a name plus a type transformer."""

    def __init__(self, name: str, wrap):
        self.name = name
        self.wrap = wrap       # Callable[[Type], Type]


class _Parser:
    def __init__(self, tokens: list[Token], name: str):
        self.tokens = tokens
        self.pos = 0
        self.name = name
        self.typedefs: dict[str, T.Type] = {}
        self.structs: dict[str, T.StructType] = {}

    # ---- token plumbing ---------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.peek()
        self.pos += 1
        return tok

    def at(self, kind: str, text: str | None = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            got = self.peek()
            want = text or kind
            raise ParseError(f"expected {want!r}, got {got.text!r}",
                             got.line)
        return tok

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.peek().line)

    # ---- program ------------------------------------------------------------

    def program(self) -> A.Program:
        prog = A.Program()
        while not self.at("eof"):
            decl = self.top_decl()
            if decl is not None:
                if isinstance(decl, list):
                    prog.decls.extend(decl)
                else:
                    prog.decls.append(decl)
        return prog

    def top_decl(self):
        line = self.peek().line
        if self.accept("kw", "typedef"):
            base = self.base_type()
            decl = self.declarator()
            self.expect("op", ";")
            self.typedefs[decl.name] = decl.wrap(base)
            return None
        extern = bool(self.accept("kw", "extern"))
        base = self.base_type()
        # Bare "struct X {...};"
        if self.accept("op", ";"):
            return None
        decls: list[object] = []
        while True:
            decl = self.declarator()
            full = decl.wrap(base)
            if isinstance(full, T.FuncType):
                if self.at("op", "{"):
                    if extern:
                        raise self.error("extern function with a body")
                    body = self.block()
                    params = getattr(decl, "param_names", None) or []
                    return A.FuncDef(decl.name, full.ret, params,
                                     full.variadic, body, line)
                decls.append(A.FuncDecl(
                    decl.name, full.ret,
                    getattr(decl, "param_names", None) or [],
                    full.variadic, line))
            else:
                init = None
                if self.accept("op", "="):
                    init = self.initializer()
                decls.append(A.GlobalVar(decl.name, full, init,
                                         extern=extern, line=line))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        return decls

    def initializer(self):
        if self.accept("op", "{"):
            items = []
            while not self.at("op", "}"):
                items.append(self.initializer())
                if not self.accept("op", ","):
                    break
            self.expect("op", "}")
            return items
        return self.assignment()

    # ---- types & declarators --------------------------------------------------

    def starts_type(self, tok: Token | None = None) -> bool:
        tok = tok or self.peek()
        if tok.kind == "kw" and tok.text in _TYPE_KEYWORDS:
            return True
        return tok.kind == "id" and tok.text in self.typedefs

    def base_type(self) -> T.Type:
        tok = self.peek()
        if tok.kind == "id" and tok.text in self.typedefs:
            self.next()
            return self.typedefs[tok.text]
        if tok.kind != "kw":
            raise self.error(f"type expected, got {tok.text!r}")
        if tok.text == "struct":
            return self.struct_type()
        unsigned = False
        if self.accept("kw", "unsigned"):
            unsigned = True
        names: list[str] = []
        while self.peek().kind == "kw" and self.peek().text in (
                "void", "char", "short", "int", "long"):
            names.append(self.next().text)
        if not names:
            if unsigned:
                return T.UINT
            raise self.error(f"type expected, got {self.peek().text!r}")
        key = " ".join(names)
        table = {
            "void": T.VOID,
            "char": T.UCHAR if unsigned else T.CHAR,
            "short": T.USHORT if unsigned else T.SHORT,
            "short int": T.USHORT if unsigned else T.SHORT,
            "int": T.UINT if unsigned else T.INT,
            "long": T.ULONG if unsigned else T.LONG,
            "long int": T.ULONG if unsigned else T.LONG,
            "long long": T.ULONG if unsigned else T.LONG,
        }
        if key not in table:
            raise self.error(f"unsupported type {key!r}")
        return table[key]

    def struct_type(self) -> T.StructType:
        self.expect("kw", "struct")
        tag = self.expect("id").text
        st = self.structs.get(tag)
        if st is None:
            st = T.StructType(tag)
            self.structs[tag] = st
        if self.accept("op", "{"):
            if st.complete:
                raise self.error(f"struct {tag} redefined")
            while not self.at("op", "}"):
                base = self.base_type()
                while True:
                    decl = self.declarator()
                    st.members.append(
                        T.StructMember(decl.name, decl.wrap(base)))
                    if not self.accept("op", ","):
                        break
                self.expect("op", ";")
            self.expect("op", "}")
            st.layout()
        return st

    def declarator(self) -> _Declarator:
        """Parse a C declarator; returns name + a type-wrapping function."""
        if self.accept("op", "*"):
            inner = self.declarator()
            prev = inner.wrap
            inner.wrap = lambda t: prev(T.PointerType(t))
            return inner
        return self.direct_declarator()

    def direct_declarator(self) -> _Declarator:
        if self.accept("op", "("):
            inner = self.declarator()
            self.expect("op", ")")
        else:
            name = self.expect("id").text
            inner = _Declarator(name, lambda t: t)
        # Suffixes bind tighter than the pointer prefix, applied inside-out.
        suffixes = []
        while True:
            if self.accept("op", "["):
                length = None
                if not self.at("op", "]"):
                    length = self.const_expr()
                self.expect("op", "]")
                suffixes.append(("array", length))
            elif self.accept("op", "("):
                params, variadic, names = self.param_list()
                suffixes.append(("func", (params, variadic)))
                inner.param_names = names
            else:
                break
        if suffixes:
            prev = inner.wrap

            def wrap(t: T.Type, suffixes=tuple(suffixes), prev=prev):
                for kind, payload in reversed(suffixes):
                    if kind == "array":
                        t = T.ArrayType(t, payload)
                    else:
                        params, variadic = payload
                        t = T.FuncType(t, tuple(params), variadic)
                return prev(t)
            inner.wrap = wrap
        return inner

    def param_list(self):
        params: list[T.Type] = []
        names: list[A.Param] = []
        variadic = False
        if self.accept("op", ")"):
            return params, variadic, names
        if self.at("kw", "void") and self.peek(1).text == ")":
            self.next()
            self.expect("op", ")")
            return params, variadic, names
        while True:
            if self.accept("op", "..."):
                variadic = True
                break
            base = self.base_type()
            if self.at("op", ",") or self.at("op", ")"):
                # Unnamed parameter (prototype).
                ptype = T.decay(base)
                params.append(ptype)
                names.append(A.Param("", ptype))
            else:
                decl = self.declarator()
                ptype = T.decay(decl.wrap(base))
                params.append(ptype)
                names.append(A.Param(decl.name, ptype))
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        return params, variadic, names

    def type_name(self) -> T.Type:
        """Parse a type-name (for casts and sizeof): base + abstract decl."""
        base = self.base_type()
        while self.accept("op", "*"):
            base = T.PointerType(base)
        # Abstract array suffix, e.g. (long[4]) — rare; support anyway.
        while self.accept("op", "["):
            length = None
            if not self.at("op", "]"):
                length = self.const_expr()
            self.expect("op", "]")
            base = T.ArrayType(base, length)
        return base

    # ---- statements ---------------------------------------------------------

    def block(self) -> A.Block:
        line = self.expect("op", "{").line
        stmts: list[A.Stmt] = []
        while not self.at("op", "}"):
            stmts.extend(self.statement())
        self.expect("op", "}")
        return A.Block(line=line, stmts=stmts)

    def statement(self) -> list[A.Stmt]:
        tok = self.peek()
        line = tok.line
        if self.starts_type():
            return self.local_decl()
        if tok.kind == "op" and tok.text == "{":
            return [self.block()]
        if tok.kind == "op" and tok.text == ";":
            self.next()
            return []
        if tok.kind == "kw":
            handler = getattr(self, f"_stmt_{tok.text}", None)
            if handler is not None:
                return [handler()]
        expr = self.expression()
        self.expect("op", ";")
        return [A.ExprStmt(line=line, expr=expr)]

    def local_decl(self) -> list[A.Stmt]:
        line = self.peek().line
        base = self.base_type()
        out: list[A.Stmt] = []
        while True:
            decl = self.declarator()
            full = decl.wrap(base)
            init = None
            if self.accept("op", "="):
                init = self.assignment()
            out.append(A.LocalDecl(line=line, name=decl.name,
                                   var_type=full, init=init))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        return out

    def _stmt_if(self) -> A.Stmt:
        line = self.expect("kw", "if").line
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        then = A.Block(stmts=self.statement())
        els = None
        if self.accept("kw", "else"):
            els = A.Block(stmts=self.statement())
        return A.If(line=line, cond=cond, then=then, els=els)

    def _stmt_while(self) -> A.Stmt:
        line = self.expect("kw", "while").line
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        body = A.Block(stmts=self.statement())
        return A.While(line=line, cond=cond, body=body)

    def _stmt_do(self) -> A.Stmt:
        line = self.expect("kw", "do").line
        body = A.Block(stmts=self.statement())
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return A.DoWhile(line=line, body=body, cond=cond)

    def _stmt_for(self) -> A.Stmt:
        line = self.expect("kw", "for").line
        self.expect("op", "(")
        init = None
        if not self.at("op", ";"):
            if self.starts_type():
                decls = self.local_decl()   # consumes ';'
                init = A.Block(stmts=decls)
            else:
                init = A.ExprStmt(expr=self.expression())
                self.expect("op", ";")
        else:
            self.next()
        cond = None
        if not self.at("op", ";"):
            cond = self.expression()
        self.expect("op", ";")
        step = None
        if not self.at("op", ")"):
            step = self.expression()
        self.expect("op", ")")
        body = A.Block(stmts=self.statement())
        return A.For(line=line, init=init, cond=cond, step=step, body=body)

    def _stmt_switch(self) -> A.Stmt:
        line = self.expect("kw", "switch").line
        self.expect("op", "(")
        expr = self.expression()
        self.expect("op", ")")
        self.expect("op", "{")
        cases: list[A.SwitchCase] = []
        current: A.SwitchCase | None = None
        while not self.at("op", "}"):
            if self.accept("kw", "case"):
                value = self.const_expr()
                self.expect("op", ":")
                current = A.SwitchCase(value)
                cases.append(current)
            elif self.accept("kw", "default"):
                self.expect("op", ":")
                current = A.SwitchCase(None)
                cases.append(current)
            else:
                if current is None:
                    raise self.error("statement before first case label")
                current.stmts.extend(self.statement())
        self.expect("op", "}")
        return A.Switch(line=line, expr=expr, cases=cases)

    def _stmt_return(self) -> A.Stmt:
        line = self.expect("kw", "return").line
        expr = None
        if not self.at("op", ";"):
            expr = self.expression()
        self.expect("op", ";")
        return A.Return(line=line, expr=expr)

    def _stmt_break(self) -> A.Stmt:
        line = self.expect("kw", "break").line
        self.expect("op", ";")
        return A.Break(line=line)

    def _stmt_continue(self) -> A.Stmt:
        line = self.expect("kw", "continue").line
        self.expect("op", ";")
        return A.Continue(line=line)

    # ---- expressions -----------------------------------------------------------

    def expression(self) -> A.Expr:
        expr = self.assignment()
        while self.accept("op", ","):
            right = self.assignment()
            expr = A.Binary(line=right.line, op=",", left=expr, right=right)
        return expr

    def assignment(self) -> A.Expr:
        left = self.conditional()
        tok = self.peek()
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            self.next()
            value = self.assignment()
            return A.Assign(line=tok.line, op=tok.text, target=left,
                            value=value)
        return left

    def conditional(self) -> A.Expr:
        cond = self.binary(0)
        if self.accept("op", "?"):
            then = self.expression()
            self.expect("op", ":")
            els = self.conditional()
            return A.Cond(line=cond.line, cond=cond, then=then, els=els)
        return cond

    _LEVELS = [
        ("||",), ("&&",), ("|",), ("^",), ("&",),
        ("==", "!="), ("<", "<=", ">", ">="),
        ("<<", ">>"), ("+", "-"), ("*", "/", "%"),
    ]

    def binary(self, level: int) -> A.Expr:
        if level >= len(self._LEVELS):
            return self.unary()
        ops = self._LEVELS[level]
        left = self.binary(level + 1)
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.text in ops:
                self.next()
                right = self.binary(level + 1)
                left = A.Binary(line=tok.line, op=tok.text, left=left,
                                right=right)
            else:
                return left

    def unary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "!", "~", "*", "&"):
            self.next()
            operand = self.unary()
            return A.Unary(line=tok.line, op=tok.text, operand=operand)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.next()
            operand = self.unary()
            return A.Unary(line=tok.line, op=tok.text, operand=operand)
        if tok.kind == "kw" and tok.text == "sizeof":
            self.next()
            if self.at("op", "(") and self.starts_type(self.peek(1)):
                self.expect("op", "(")
                of = self.type_name()
                self.expect("op", ")")
                return A.SizeofType(line=tok.line, of=of)
            operand = self.unary()
            return A.Unary(line=tok.line, op="sizeof", operand=operand)
        if tok.kind == "op" and tok.text == "(" \
                and self.starts_type(self.peek(1)):
            self.next()
            to = self.type_name()
            self.expect("op", ")")
            expr = self.unary()
            return A.Cast(line=tok.line, to=to, expr=expr)
        return self.postfix()

    def postfix(self) -> A.Expr:
        expr = self.primary()
        while True:
            tok = self.peek()
            if self.accept("op", "("):
                args = []
                if not self.at("op", ")"):
                    while True:
                        args.append(self.assignment())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                expr = A.Call(line=tok.line, func=expr, args=args)
            elif self.accept("op", "["):
                index = self.expression()
                self.expect("op", "]")
                expr = A.Index(line=tok.line, base=expr, index=index)
            elif self.accept("op", "."):
                name = self.expect("id").text
                expr = A.Member(line=tok.line, base=expr, name=name,
                                arrow=False)
            elif self.accept("op", "->"):
                name = self.expect("id").text
                expr = A.Member(line=tok.line, base=expr, name=name,
                                arrow=True)
            elif tok.kind == "op" and tok.text in ("++", "--"):
                self.next()
                expr = A.PostIncDec(line=tok.line, op=tok.text, target=expr)
            else:
                return expr

    def primary(self) -> A.Expr:
        tok = self.next()
        if tok.kind == "int":
            return A.IntLit(line=tok.line, value=tok.value)
        if tok.kind == "str":
            data = tok.value
            # Adjacent string literals concatenate.
            while self.at("str"):
                data += self.next().value
            return A.StrLit(line=tok.line, data=data)
        if tok.kind == "id":
            return A.Ident(line=tok.line, name=tok.text)
        if tok.kind == "op" and tok.text == "(":
            expr = self.expression()
            self.expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line)

    # ---- constant expressions ----------------------------------------------------

    def const_expr(self) -> int:
        expr = self.conditional()
        return const_eval(expr)


def const_eval(expr: A.Expr) -> int:
    """Fold a constant expression (array sizes, case labels, global init)."""
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.SizeofType):
        return expr.of.size
    if isinstance(expr, A.Unary):
        v = const_eval(expr.operand)
        if expr.op == "-":
            return -v
        if expr.op == "~":
            return ~v
        if expr.op == "!":
            return int(not v)
        if expr.op == "sizeof":
            raise ParseError("sizeof expr is not a parse-time constant",
                             expr.line)
    if isinstance(expr, A.Binary):
        lhs = const_eval(expr.left)
        rhs = const_eval(expr.right)
        ops = {
            "+": lambda a, b: a + b, "-": lambda a, b: a - b,
            "*": lambda a, b: a * b, "/": lambda a, b: a // b,
            "%": lambda a, b: a % b, "<<": lambda a, b: a << b,
            ">>": lambda a, b: a >> b, "&": lambda a, b: a & b,
            "|": lambda a, b: a | b, "^": lambda a, b: a ^ b,
            "==": lambda a, b: int(a == b), "!=": lambda a, b: int(a != b),
            "<": lambda a, b: int(a < b), "<=": lambda a, b: int(a <= b),
            ">": lambda a, b: int(a > b), ">=": lambda a, b: int(a >= b),
            "&&": lambda a, b: int(bool(a) and bool(b)),
            "||": lambda a, b: int(bool(a) or bool(b)),
        }
        if expr.op in ops:
            return ops[expr.op](lhs, rhs)
    if isinstance(expr, A.Cond):
        return const_eval(expr.then) if const_eval(expr.cond) \
            else const_eval(expr.els)
    if isinstance(expr, A.Cast):
        return const_eval(expr.expr)
    raise ParseError("constant expression expected", expr.line)
