"""Code generation: checked MLC -> WRL-64 assembly text.

A straightforward one-pass tree-walker in the style of early-90s compilers:

* every local and parameter lives in a stack-frame slot;
* expressions evaluate on a *temporary register stack* drawn from the
  caller-saved pool t0..t11, spilling to dedicated frame slots past depth
  12 and around calls;
* all arithmetic happens in 64-bit registers; narrower values are extended
  at loads/casts and truncated at stores;
* every function begins with ``ldgp`` so the global pointer is always the
  containing link unit's — exactly the invariant ATOM's wrappers rely on
  when they switch between the application's gp and the analysis gp.

Frames (sp-relative, no frame pointer), low to high:

    [outgoing stack args][16 temp-spill slots][locals][saved ra][va area]

The ``.frame size, outgoing`` directive emitted per function records the
layout facts ATOM's in-frame save optimization needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import astnodes as A
from . import types as T
from .check import CheckedFunction, CheckedProgram, CheckError, Symbol

# Temp pool: t0..t7 then t8..t11 (register numbers).
TEMP_POOL = (1, 2, 3, 4, 5, 6, 7, 8, 22, 23, 24, 25)
MAX_TEMPS = 28            # pool + 16 memory-only levels
SPILL_SLOTS = 16
ARG_REGS = ("a0", "a1", "a2", "a3", "a4", "a5")


class CodegenError(CheckError):
    pass


_REG_NAMES = {
    0: "v0", 1: "t0", 2: "t1", 3: "t2", 4: "t3", 5: "t4", 6: "t5",
    7: "t6", 8: "t7", 22: "t8", 23: "t9", 24: "t10", 25: "t11",
}


def sym_name(name: str) -> str:
    """Assembly-level spelling of an MLC symbol.

    Names that collide with register spellings (fp, v0, r16, ...) get a
    ``$`` suffix so the assembler cannot mistake them for registers.  The
    mangling is deterministic, so separately compiled units agree.
    """
    from ..isa.registers import REG_NUMBERS
    return f"{name}$" if name.lower() in REG_NUMBERS else name


def generate(prog: CheckedProgram, module_name: str = "mlc") -> str:
    return _Codegen(prog, module_name).run()


@dataclass
class _FnFlags:
    """Per-function facts driving the leaf optimizations."""

    leaf: bool = True
    needs_gp: bool = False
    #: id(param Symbol) -> its home argument-register name
    reg_params: dict = field(default_factory=dict)


def _analyze_function(fn: CheckedFunction) -> _FnFlags:
    flags = _FnFlags()
    unsafe: set[int] = set()     # params that must live in memory

    def note_target(expr) -> None:
        if isinstance(expr, A.Ident) and expr.symbol is not None:
            unsafe.add(id(expr.symbol))

    def walk(obj) -> None:
        if isinstance(obj, A.Call):
            func = obj.func
            direct = isinstance(func, A.Ident) and (
                func.name == "__va_start"
                or getattr(func.symbol, "storage", "") == "func")
            if isinstance(func, A.Ident) and func.name == "__va_start":
                pass                      # builtin, not a real call
            else:
                flags.leaf = False
            if not direct:
                walk(func)
            for arg in obj.args:
                walk(arg)
            return
        if isinstance(obj, A.StrLit):
            flags.needs_gp = True
        elif isinstance(obj, A.Ident):
            storage = getattr(obj.symbol, "storage", "")
            if storage in ("global", "func"):
                flags.needs_gp = True
        elif isinstance(obj, A.Unary) and obj.op in ("&", "++", "--"):
            note_target(obj.operand)
        elif isinstance(obj, (A.Assign, A.PostIncDec)):
            note_target(obj.target)
        if isinstance(obj, (A.Expr, A.Stmt, A.SwitchCase)):
            for value in vars(obj).values():
                walk(value)
        elif isinstance(obj, list):
            for item in obj:
                walk(item)

    walk(fn.node.body)
    if flags.leaf and not fn.node.variadic:
        for i, param in enumerate(fn.params):
            if i < 6 and id(param) not in unsafe:
                flags.reg_params[id(param)] = ARG_REGS[i]
    return flags


@dataclass
class _Frame:
    size: int = 0
    out_bytes: int = 0          # outgoing stack-arg area
    spill_base: int = 0         # temp spill slots
    ra_offset: int = 0
    va_offset: int = 0          # register-save area for varargs
    slots: dict[int, int] = field(default_factory=dict)   # id(Symbol) -> off


class _Codegen:
    def __init__(self, prog: CheckedProgram, module_name: str):
        self.prog = prog
        self.module_name = module_name
        self.text: list[str] = []
        self.data: list[str] = []
        self.string_data: list[str] = []
        self.bss: list[str] = []
        self.strings: dict[bytes, str] = {}
        self.label_no = 0
        self.fn: CheckedFunction | None = None
        self.frame: _Frame | None = None
        self.flags: _FnFlags | None = None
        self.frame_touched = False
        self.depth = 0
        self.break_labels: list[str] = []
        self.continue_labels: list[str] = []
        self.ret_label = ""

    # ---- emission helpers ----------------------------------------------------

    def emit(self, line: str) -> None:
        self.text.append(f"\t{line}")

    def emit_label(self, label: str) -> None:
        self.text.append(f"{label}:")

    def new_label(self, stem: str = "L") -> str:
        self.label_no += 1
        return f"${stem}{self.label_no}"

    def string_label(self, data: bytes) -> str:
        label = self.strings.get(data)
        if label is None:
            label = self.new_label("str")
            self.strings[data] = label
            escaped = "".join(
                chr(b) if 32 <= b < 127 and chr(b) not in "\\\"" else
                f"\\x{b:02x}" for b in data)
            # Buffered separately so a label request issued while another
            # data object is mid-emission cannot interleave with it.
            self.string_data.append(f"{label}:\t.asciiz \"{escaped}\"")
        return label

    # ---- temp register stack ----------------------------------------------------

    def _slot(self, level: int) -> int:
        self.frame_touched = True
        return self.frame.spill_base + 8 * min(level, SPILL_SLOTS - 1)

    def push(self) -> str:
        """Allocate a new temp level; returns the register to compute into.

        Levels past the pool return 'at'; the caller must finish with
        :meth:`store_pushed`.
        """
        level = self.depth
        if level >= MAX_TEMPS:
            raise CodegenError("expression too complex (temp overflow)")
        self.depth += 1
        if level < len(TEMP_POOL):
            return _REG_NAMES[TEMP_POOL[level]]
        return "at"

    def store_pushed(self, reg: str) -> None:
        """Finish a push: memory-backed levels get written to their slot."""
        level = self.depth - 1
        if level >= len(TEMP_POOL):
            self.emit(f"stq {reg}, {self._slot(level)}(sp)")

    def top_reg(self, scratch: str = "at") -> str:
        level = self.depth - 1
        if level < len(TEMP_POOL):
            return _REG_NAMES[TEMP_POOL[level]]
        self.emit(f"ldq {scratch}, {self._slot(level)}(sp)")
        return scratch

    def reg_at(self, level: int, scratch: str) -> str:
        if level < len(TEMP_POOL):
            return _REG_NAMES[TEMP_POOL[level]]
        self.emit(f"ldq {scratch}, {self._slot(level)}(sp)")
        return scratch

    def pop(self) -> None:
        self.depth -= 1

    def result_reg(self, level: int) -> str:
        """Register to write a binary-op result destined for ``level``."""
        if level < len(TEMP_POOL):
            return _REG_NAMES[TEMP_POOL[level]]
        return "at"

    def finish_result(self, level: int, reg: str) -> None:
        if level >= len(TEMP_POOL):
            self.emit(f"stq {reg}, {self._slot(level)}(sp)")

    def save_live_temps(self) -> None:
        """Spill every register-resident temp level (around calls)."""
        for level in range(min(self.depth, len(TEMP_POOL))):
            reg = _REG_NAMES[TEMP_POOL[level]]
            self.emit(f"stq {reg}, {self._slot(level)}(sp)")

    def restore_live_temps(self) -> None:
        for level in range(min(self.depth, len(TEMP_POOL))):
            reg = _REG_NAMES[TEMP_POOL[level]]
            self.emit(f"ldq {reg}, {self._slot(level)}(sp)")

    # ---- driver ------------------------------------------------------------------

    def run(self) -> str:
        for sym in self.prog.globals:
            self._emit_global(sym)
        for fn in self.prog.functions:
            self._emit_function(fn)
        out = ["\t.text"]
        out.extend(self.text)
        if self.data or self.string_data:
            out.append("\t.data")
            out.extend(self.data)
            out.extend(self.string_data)
        if self.bss:
            out.append("\t.bss")
            out.extend(self.bss)
        return "\n".join(out) + "\n"

    # ---- globals -------------------------------------------------------------------

    def _emit_global(self, sym: Symbol) -> None:
        if not sym.defined:
            return   # extern: resolved at link time
        t = sym.type
        if sym.init is None:
            self.bss.append(f"\t.align {_log2(max(t.align, 8))}")
            self.bss.append(f"\t.globl {sym_name(sym.name)}")
            self.bss.append(f"{sym_name(sym.name)}:\t.space {max(t.size, 1)}")
            return
        self.data.append(f"\t.align {_log2(max(t.align, 8))}")
        self.data.append(f"\t.globl {sym_name(sym.name)}")
        self.data.append(f"{sym_name(sym.name)}:")
        self._emit_init(t, sym.init)

    def _emit_init(self, t: T.Type, init) -> None:
        if isinstance(t, T.ArrayType):
            items = init if isinstance(init, list) else [init]
            if isinstance(init, A.StrLit):
                # char buf[...] = "...": bytes plus padding.
                data = init.data + b"\x00"
                if t.length is not None and len(data) < t.size:
                    data += b"\x00" * (t.size - len(data))
                escaped = "".join(
                    chr(b) if 32 <= b < 127 and chr(b) not in "\\\"" else
                    f"\\x{b:02x}" for b in data)
                self.data.append(f"\t.ascii \"{escaped}\"")
                return
            for item in items:
                self._emit_init(t.element, item)
            if t.length is not None and len(items) < t.length:
                pad = (t.length - len(items)) * t.element.size
                self.data.append(f"\t.space {pad}")
            return
        value = self._init_scalar(init)
        directive = {1: ".byte", 2: ".word", 4: ".long", 8: ".quad"}[t.size]
        self.data.append(f"\t{directive} {value}")

    def _init_scalar(self, init) -> str:
        from .parser import const_eval
        if isinstance(init, A.StrLit):
            return self.string_label(init.data)
        if isinstance(init, A.Ident):
            return sym_name(init.name)          # address of a function or global
        if isinstance(init, A.Unary) and init.op == "&" \
                and isinstance(init.operand, A.Ident):
            return sym_name(init.operand.name)
        try:
            return str(const_eval(init))
        except Exception:
            raise CodegenError("global initializer must be constant",
                               getattr(init, "line", 0)) from None

    # ---- functions --------------------------------------------------------------------

    def _emit_function(self, fn: CheckedFunction) -> None:
        self.fn = fn
        self.flags = _analyze_function(fn)
        self.frame = self._layout_frame(fn)
        self.frame_touched = False
        self.depth = 0
        self.ret_label = self.new_label(f"ret_{fn.node.name}_")
        f = self.frame
        flags = self.flags

        self.text.append(f"\t.globl {sym_name(fn.node.name)}")
        self.text.append(f"\t.ent {sym_name(fn.node.name)}")
        self.emit_label(sym_name(fn.node.name))

        # Prologue is finalized after the body: leaf functions skip the
        # ra save, gp-free functions skip ldgp, and a function that never
        # touched its frame drops the sp adjustment entirely.
        prologue_at = len(self.text)

        if fn.node.variadic:
            self.frame_touched = True
            for i, reg in enumerate(ARG_REGS):
                self.emit(f"stq {reg}, {f.va_offset + 8 * i}(sp)")
        for i, param in enumerate(fn.params):
            if id(param) in flags.reg_params:
                continue           # lives in its argument register
            off = self._param_slot(param)
            if i < 6:
                self._store_sized(ARG_REGS[i], "sp", off, param.type)
            else:
                self.emit(f"ldq at, {f.size + 8 * (i - 6)}(sp)")
                self._store_sized("at", "sp", off, param.type)

        self._stmt(fn.node.body)
        self.emit_label(self.ret_label)

        need_frame = self.frame_touched or not flags.leaf
        prologue = [f"\t.frame {f.size if need_frame else 0}, "
                    f"{f.out_bytes}"]
        if need_frame:
            prologue.append(f"\tlda sp, -{f.size}(sp)")
        if not flags.leaf:
            prologue.append(f"\tstq ra, {f.ra_offset}(sp)")
        if flags.needs_gp:
            prologue.append("\tldgp")
        self.text[prologue_at:prologue_at] = prologue

        if not flags.leaf:
            self.emit(f"ldq ra, {f.ra_offset}(sp)")
        if need_frame:
            self.emit(f"lda sp, {f.size}(sp)")
        self.emit("ret (ra)")
        self.text.append(f"\t.end {sym_name(fn.node.name)}")
        self.fn = None

    def _param_slot(self, sym: Symbol) -> int:
        self.frame_touched = True
        return self.frame.slots[id(sym)]

    def _layout_frame(self, fn: CheckedFunction) -> _Frame:
        frame = _Frame()
        max_stack_args = _max_stack_args(fn.node.body)
        frame.out_bytes = 8 * max_stack_args
        frame.spill_base = frame.out_bytes
        offset = frame.spill_base + 8 * SPILL_SLOTS
        for sym in fn.params + fn.locals:
            t = sym.type
            align = max(t.align, 8) if not t.is_scalar() else 8
            offset = (offset + align - 1) & ~(align - 1)
            frame.slots[id(sym)] = offset
            sym.frame_offset = offset
            offset += max(8, (t.size + 7) & ~7)
        frame.ra_offset = offset
        offset += 8
        if fn.node.variadic:
            offset = (offset + 15) & ~15
            frame.va_offset = offset
            offset += 48
            frame.size = offset       # va area must end exactly at entry sp
        else:
            frame.size = (offset + 15) & ~15
        if fn.node.variadic and frame.size % 16:
            # Keep 16-alignment by padding *below* the va area.
            extra = 16 - frame.size % 16
            frame.va_offset += extra
            frame.size += extra
        return frame

    # ---- statements -----------------------------------------------------------------------

    def _stmt(self, stmt: A.Stmt) -> None:
        getattr(self, f"_s_{type(stmt).__name__}")(stmt)

    def _s_Block(self, node: A.Block) -> None:
        for s in node.stmts:
            self._stmt(s)

    def _s_LocalDecl(self, node: A.LocalDecl) -> None:
        if node.init is None:
            return
        self._expr(node.init)
        reg = self.top_reg()
        self.frame_touched = True
        off = self.frame.slots[id(node.symbol)]
        self._store_sized(reg, "sp", off, node.symbol.type)
        self.pop()

    def _s_ExprStmt(self, node: A.ExprStmt) -> None:
        self._expr(node.expr)
        self.pop()

    def _s_If(self, node: A.If) -> None:
        else_label = self.new_label()
        end_label = self.new_label() if node.els else else_label
        self._branch_false(node.cond, else_label)
        self._stmt(node.then)
        if node.els is not None:
            self.emit(f"br {end_label}")
            self.emit_label(else_label)
            self._stmt(node.els)
        self.emit_label(end_label)

    def _s_While(self, node: A.While) -> None:
        top = self.new_label()
        end = self.new_label()
        self.emit_label(top)
        self._branch_false(node.cond, end)
        self.break_labels.append(end)
        self.continue_labels.append(top)
        self._stmt(node.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.emit(f"br {top}")
        self.emit_label(end)

    def _s_DoWhile(self, node: A.DoWhile) -> None:
        top = self.new_label()
        cond = self.new_label()
        end = self.new_label()
        self.emit_label(top)
        self.break_labels.append(end)
        self.continue_labels.append(cond)
        self._stmt(node.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.emit_label(cond)
        self._branch_true(node.cond, top)
        self.emit_label(end)

    def _s_For(self, node: A.For) -> None:
        if node.init is not None:
            self._stmt(node.init)
        top = self.new_label()
        step = self.new_label()
        end = self.new_label()
        self.emit_label(top)
        if node.cond is not None:
            self._branch_false(node.cond, end)
        self.break_labels.append(end)
        self.continue_labels.append(step)
        self._stmt(node.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.emit_label(step)
        if node.step is not None:
            self._expr(node.step)
            self.pop()
        self.emit(f"br {top}")
        self.emit_label(end)

    def _s_Switch(self, node: A.Switch) -> None:
        end = self.new_label()
        self._expr(node.expr)
        sel = self.top_reg()
        case_labels: list[tuple[A.SwitchCase, str]] = []
        default_label = end
        for case in node.cases:
            label = self.new_label("case")
            case_labels.append((case, label))
            if case.value is None:
                default_label = label
        for case, label in case_labels:
            if case.value is None:
                continue
            if 0 <= case.value <= 255:
                self.emit(f"cmpeq {sel}, {case.value}, pv")
            else:
                self.emit(f"li pv, {case.value}")
                self.emit(f"cmpeq {sel}, pv, pv")
            self.emit(f"bne pv, {label}")
        self.pop()
        self.emit(f"br {default_label}")
        self.break_labels.append(end)
        for case, label in case_labels:
            self.emit_label(label)
            for s in case.stmts:
                self._stmt(s)
        self.break_labels.pop()
        self.emit_label(end)

    def _s_Return(self, node: A.Return) -> None:
        if node.expr is not None:
            self._expr(node.expr)
            reg = self.top_reg()
            self.emit(f"mov {reg}, v0")
            self.pop()
        self.emit(f"br {self.ret_label}")

    def _s_Break(self, node: A.Break) -> None:
        self.emit(f"br {self.break_labels[-1]}")

    def _s_Continue(self, node: A.Continue) -> None:
        self.emit(f"br {self.continue_labels[-1]}")

    # ---- condition helpers ---------------------------------------------------------

    def _branch_false(self, cond: A.Expr, label: str) -> None:
        self._expr(cond)
        reg = self.top_reg()
        self.emit(f"beq {reg}, {label}")
        self.pop()

    def _branch_true(self, cond: A.Expr, label: str) -> None:
        self._expr(cond)
        reg = self.top_reg()
        self.emit(f"bne {reg}, {label}")
        self.pop()

    # ---- expressions ------------------------------------------------------------------

    def _expr(self, expr: A.Expr) -> None:
        """Evaluate; leaves the value as the new top of the temp stack."""
        getattr(self, f"_e_{type(expr).__name__}")(expr)

    def _e_IntLit(self, node: A.IntLit) -> None:
        reg = self.push()
        self.emit(f"li {reg}, {node.value}")
        self.store_pushed(reg)

    def _e_StrLit(self, node: A.StrLit) -> None:
        label = self.string_label(node.data)
        reg = self.push()
        self.emit(f"la {reg}, {label}")
        self.store_pushed(reg)

    def _e_Ident(self, node: A.Ident) -> None:
        sym = node.symbol
        if sym.storage == "func":
            reg = self.push()
            self.emit(f"la {reg}, {sym_name(sym.name)}")
            self.store_pushed(reg)
            return
        t = sym.type
        if isinstance(t, (T.ArrayType, T.StructType)):
            self._push_addr_of_sym(sym)
            return
        reg = self.push()
        if sym.storage == "param" and id(sym) in self.flags.reg_params:
            home = self.flags.reg_params[id(sym)]
            self.emit(f"mov {home}, {reg}")
        elif sym.storage in ("local", "param"):
            self.frame_touched = True
            self._load_sized(reg, "sp", self.frame.slots[id(sym)], t)
        else:
            self.emit(f"la {reg}, {sym_name(sym.name)}")
            self._load_sized(reg, reg, 0, t)
        self.store_pushed(reg)

    def _push_addr_of_sym(self, sym: Symbol) -> None:
        reg = self.push()
        if sym.storage in ("local", "param"):
            if id(sym) in self.flags.reg_params:
                raise CodegenError(
                    f"address taken of register parameter {sym.name!r}")
            self.frame_touched = True
            self.emit(f"lda {reg}, {self.frame.slots[id(sym)]}(sp)")
        else:
            self.emit(f"la {reg}, {sym_name(sym.name)}")
        self.store_pushed(reg)

    def _e_Unary(self, node: A.Unary) -> None:
        op = node.op
        if op == "sizeof":
            reg = self.push()
            self.emit(f"li {reg}, {node.operand.type.size}")
            self.store_pushed(reg)
            return
        if op == "&":
            if isinstance(node.operand, A.Ident) \
                    and node.operand.symbol.storage == "func":
                self._e_Ident(node.operand)
                return
            self._addr(node.operand)
            return
        if op == "*":
            self._expr(node.operand)
            self._load_through(node.type)
            return
        if op in ("++", "--"):
            self._incdec(node.operand, op, want_old=False)
            return
        self._expr(node.operand)
        level = self.depth - 1
        src = self.reg_at(level, "at")
        dst = self.result_reg(level)
        if op == "-":
            self.emit(f"negq {src}, {dst}")
        elif op == "~":
            self.emit(f"not {src}, {dst}")
        elif op == "!":
            self.emit(f"cmpeq {src}, 0, {dst}")
        else:  # pragma: no cover
            raise AssertionError(op)
        self.finish_result(level, dst)

    def _e_PostIncDec(self, node: A.PostIncDec) -> None:
        self._incdec(node.target, node.op, want_old=True)

    def _incdec(self, target: A.Expr, op: str, want_old: bool) -> None:
        t = T.decay(target.type)
        step = t.target.size if t.is_pointer() else 1
        self._addr(target)                     # [addr]
        addr_level = self.depth - 1
        addr = self.reg_at(addr_level, "pv")
        val = self.push()                      # [addr, val]
        self._load_sized(val, addr, 0, target.type)
        self.store_pushed(val)
        new = self.push()                      # [addr, val, new]
        val_r = self.reg_at(addr_level + 1, "at")
        mn = "addq" if op == "++" else "subq"
        if step <= 255:
            self.emit(f"{mn} {val_r}, {step}, {new}")
        else:
            self.emit(f"li {new}, {step}")
            self.emit(f"{mn} {val_r}, {new}, {new}")
        self.store_pushed(new)
        addr_r = self.reg_at(addr_level, "pv")
        new_r = self.reg_at(addr_level + 2, "at")
        self._store_sized(new_r, addr_r, 0, target.type)
        # Collapse [addr, old, new] to the single result.
        keep = addr_level + (1 if want_old else 2)
        keep_reg = self.reg_at(keep, "at")
        self.pop()
        self.pop()
        self.pop()
        dst = self.push()
        if dst != keep_reg:
            self.emit(f"mov {keep_reg}, {dst}")
        self.store_pushed(dst)

    def _e_Binary(self, node: A.Binary) -> None:
        op = node.op
        if op == ",":
            self._expr(node.left)
            self.pop()
            self._expr(node.right)
            return
        if op in ("&&", "||"):
            self._logical(node)
            return
        lt = T.decay(node.left.type)
        rt = T.decay(node.right.type)
        self._expr(node.left)
        if op in ("+", "-") and lt.is_pointer() and rt.is_integer():
            self._expr(node.right)
            self._scale_top(lt.target.size)
        elif op == "+" and lt.is_integer() and rt.is_pointer():
            self._expr(node.right)
            # value + pointer: scale the *left* operand.
            self._swap_top2()
            self._scale_top(rt.target.size)
        else:
            self._expr(node.right)
        level = self.depth - 2
        a = self.reg_at(level, "pv")
        b = self.reg_at(level + 1, "at")
        dst = self.result_reg(level)
        self._emit_binop(op, a, b, dst, lt, rt)
        self.pop()
        self.pop()
        self.push()
        self.finish_result(level, dst)
        if op == "-" and lt.is_pointer() and rt.is_pointer():
            size = lt.target.size
            if size > 1:
                self._divide_top_by_const(size)

    def _emit_binop(self, op: str, a: str, b: str, dst: str,
                    lt: T.Type, rt: T.Type) -> None:
        unsigned = _is_unsigned(lt) or _is_unsigned(rt) \
            or lt.is_pointer() or rt.is_pointer()
        table = {"+": "addq", "-": "subq", "*": "mulq", "&": "and",
                 "|": "bis", "^": "xor", "<<": "sll"}
        if op in table:
            self.emit(f"{table[op]} {a}, {b}, {dst}")
        elif op == "/":
            self.emit(f"divq {a}, {b}, {dst}")
        elif op == "%":
            self.emit(f"remq {a}, {b}, {dst}")
        elif op == ">>":
            mn = "srl" if _is_unsigned(lt) else "sra"
            self.emit(f"{mn} {a}, {b}, {dst}")
        elif op == "==":
            self.emit(f"cmpeq {a}, {b}, {dst}")
        elif op == "!=":
            self.emit(f"cmpeq {a}, {b}, {dst}")
            self.emit(f"xor {dst}, 1, {dst}")
        elif op == "<":
            self.emit(f"{'cmpult' if unsigned else 'cmplt'} {a}, {b}, {dst}")
        elif op == "<=":
            self.emit(f"{'cmpule' if unsigned else 'cmple'} {a}, {b}, {dst}")
        elif op == ">":
            self.emit(f"{'cmpult' if unsigned else 'cmplt'} {b}, {a}, {dst}")
        elif op == ">=":
            self.emit(f"{'cmpule' if unsigned else 'cmple'} {b}, {a}, {dst}")
        else:  # pragma: no cover
            raise AssertionError(op)

    def _scale_top(self, size: int) -> None:
        if size == 1:
            return
        level = self.depth - 1
        src = self.reg_at(level, "at")
        dst = self.result_reg(level)
        shift = _exact_log2(size)
        if shift is not None:
            self.emit(f"sll {src}, {shift}, {dst}")
        elif size <= 255:
            self.emit(f"mulq {src}, {size}, {dst}")
        else:
            self.emit(f"li pv, {size}")
            self.emit(f"mulq {src}, pv, {dst}")
        self.finish_result(level, dst)

    def _divide_top_by_const(self, size: int) -> None:
        level = self.depth - 1
        src = self.reg_at(level, "at")
        dst = self.result_reg(level)
        shift = _exact_log2(size)
        if shift is not None:
            self.emit(f"sra {src}, {shift}, {dst}")
        elif size <= 255:
            self.emit(f"divq {src}, {size}, {dst}")
        else:
            self.emit(f"li pv, {size}")
            self.emit(f"divq {src}, pv, {dst}")
        self.finish_result(level, dst)

    def _swap_top2(self) -> None:
        """Swap the top two temp-stack values (both made register-resident
        via scratch when memory-backed)."""
        la, lb = self.depth - 2, self.depth - 1
        a = self.reg_at(la, "pv")
        b = self.reg_at(lb, "at")
        self.emit(f"xor {a}, {b}, {a}")
        self.emit(f"xor {a}, {b}, {b}")
        self.emit(f"xor {a}, {b}, {a}")
        if la >= len(TEMP_POOL):
            self.emit(f"stq {a}, {self._slot(la)}(sp)")
        if lb >= len(TEMP_POOL):
            self.emit(f"stq {b}, {self._slot(lb)}(sp)")

    def _logical(self, node: A.Binary) -> None:
        end = self.new_label()
        result = self.push()      # allocate result slot first
        if node.op == "&&":
            self.emit(f"clr {result}")
            self.store_pushed(result)
            self._branch_false_sub(node.left, end)
            self._branch_false_sub(node.right, end)
            reg = self.reg_at(self.depth - 1, "at")
            self.emit(f"li {reg}, 1")
            self.finish_result(self.depth - 1, reg)
        else:
            self.emit(f"li {result}, 1")
            self.store_pushed(result)
            self._branch_true_sub(node.left, end)
            self._branch_true_sub(node.right, end)
            reg = self.reg_at(self.depth - 1, "at")
            self.emit(f"clr {reg}")
            self.finish_result(self.depth - 1, reg)
        self.emit_label(end)

    def _branch_false_sub(self, cond: A.Expr, label: str) -> None:
        self._expr(cond)
        reg = self.top_reg()
        self.emit(f"beq {reg}, {label}")
        self.pop()

    def _branch_true_sub(self, cond: A.Expr, label: str) -> None:
        self._expr(cond)
        reg = self.top_reg()
        self.emit(f"bne {reg}, {label}")
        self.pop()

    def _e_Assign(self, node: A.Assign) -> None:
        t = node.target.type
        if node.op == "=":
            self._expr(node.value)             # [val]
            self._addr(node.target)            # [val, addr]
            addr = self.reg_at(self.depth - 1, "pv")
            val = self.reg_at(self.depth - 2, "at")
            self._store_sized(val, addr, 0, t)
            self.pop()                          # drop addr; val is result
            return
        # Compound: evaluate address once.
        base_op = node.op[:-1]
        lt = T.decay(t)
        rt = T.decay(node.value.type)
        self._addr(node.target)                # [addr]
        addr_level = self.depth - 1
        addr = self.reg_at(addr_level, "pv")
        cur = self.push()                      # [addr, cur]
        self._load_sized(cur, addr, 0, t)
        self.store_pushed(cur)
        self._expr(node.value)                 # [addr, cur, rhs]
        if base_op in ("+", "-") and lt.is_pointer():
            self._scale_top(lt.target.size)
        a = self.reg_at(addr_level + 1, "pv")
        b = self.reg_at(addr_level + 2, "at")
        dst = self.result_reg(addr_level + 1)
        self._emit_binop(base_op, a, b, dst, lt, rt)
        self.finish_result(addr_level + 1, dst)
        self.pop()                              # [addr, new]
        addr_r = self.reg_at(addr_level, "pv")
        new_r = self.reg_at(addr_level + 1, "at")
        self._store_sized(new_r, addr_r, 0, t)
        # Collapse to the result value.
        keep = self.reg_at(addr_level + 1, "at")
        self.pop()
        self.pop()
        dst = self.push()
        if dst != keep:
            self.emit(f"mov {keep}, {dst}")
        self.store_pushed(dst)

    def _e_Cond(self, node: A.Cond) -> None:
        else_label = self.new_label()
        end = self.new_label()
        self._branch_false_sub(node.cond, else_label)
        self._expr(node.then)
        # Move into the canonical result position (same level either way).
        self.emit(f"br {end}")
        self.pop()
        self.emit_label(else_label)
        self._expr(node.els)
        self.emit_label(end)

    def _e_Call(self, node: A.Call) -> None:
        # __va_start builtin: address of the first anonymous argument.
        if isinstance(node.func, A.Ident) and node.func.name == "__va_start":
            f = self.frame
            self.frame_touched = True
            named = len(self.fn.params)
            if named <= 6:
                off = f.va_offset + 8 * named
            else:
                off = f.size + 8 * (named - 6)
            reg = self.push()
            self.emit(f"lda {reg}, {off}(sp)")
            self.store_pushed(reg)
            return

        direct = isinstance(node.func, A.Ident) \
            and node.func.symbol is not None \
            and getattr(node.func.symbol, "storage", "") == "func"
        base_level = self.depth
        for arg in node.args:
            self._expr(arg)
        if not direct:
            self._expr(node.func)     # callee address on top
        # Spill everything live, then marshal arguments from slots.
        self.save_live_temps()
        nargs = len(node.args)
        for i in range(min(nargs, 6)):
            self.emit(f"ldq {ARG_REGS[i]}, {self._slot(base_level + i)}(sp)")
        for i in range(6, nargs):
            self.emit(f"ldq at, {self._slot(base_level + i)}(sp)")
            self.emit(f"stq at, {8 * (i - 6)}(sp)")
        if direct:
            self.emit(f"bsr ra, {sym_name(node.func.symbol.name)}")
        else:
            self.emit(f"ldq pv, {self._slot(base_level + nargs)}(sp)")
            self.emit("jsr ra, (pv)")
            self.pop()
        for _ in range(nargs):
            self.pop()
        self.restore_live_temps()
        reg = self.push()
        if reg != "v0":
            self.emit(f"mov v0, {reg}")
        self.store_pushed(reg)

    def _e_Index(self, node: A.Index) -> None:
        self._addr_index(node)
        self._load_through(node.type)

    def _e_Member(self, node: A.Member) -> None:
        self._addr_member(node)
        self._load_through(node.type)

    def _e_Cast(self, node: A.Cast) -> None:
        self._expr(node.expr)
        to = node.to
        frm = T.decay(node.expr.type)
        if not to.is_integer() or not frm.is_integer():
            return    # pointer/int casts are bit-identical
        if not isinstance(to, T.IntType) or to.width >= 8:
            return
        level = self.depth - 1
        src = self.reg_at(level, "at")
        dst = self.result_reg(level)
        if to.signed:
            mn = {1: "sextb", 2: "sextw", 4: "sextl"}[to.width]
            self.emit(f"{mn} {src}, {dst}")
        else:
            if to.width == 1:
                self.emit(f"and {src}, 0xff, {dst}")
            else:
                bits = 64 - 8 * to.width
                self.emit(f"sll {src}, {bits}, {dst}")
                self.emit(f"srl {dst}, {bits}, {dst}")
        self.finish_result(level, dst)

    def _e_SizeofType(self, node: A.SizeofType) -> None:
        reg = self.push()
        self.emit(f"li {reg}, {node.of.size}")
        self.store_pushed(reg)

    # ---- addresses ---------------------------------------------------------------

    def _addr(self, expr: A.Expr) -> None:
        """Push the address of an lvalue."""
        if isinstance(expr, A.Ident):
            self._push_addr_of_sym(expr.symbol)
            return
        if isinstance(expr, A.Unary) and expr.op == "*":
            self._expr(expr.operand)
            return
        if isinstance(expr, A.Index):
            self._addr_index(expr)
            return
        if isinstance(expr, A.Member):
            self._addr_member(expr)
            return
        raise CodegenError("not an lvalue", expr.line)

    def _addr_index(self, node: A.Index) -> None:
        self._expr(node.base)      # pointer value / decayed array address
        self._expr(node.index)
        elem = T.decay(node.base.type).target
        self._scale_top(elem.size)
        level = self.depth - 2
        a = self.reg_at(level, "pv")
        b = self.reg_at(level + 1, "at")
        dst = self.result_reg(level)
        self.emit(f"addq {a}, {b}, {dst}")
        self.pop()
        self.pop()
        self.push()
        self.finish_result(level, dst)

    def _addr_member(self, node: A.Member) -> None:
        if node.arrow:
            self._expr(node.base)
        else:
            self._addr(node.base)
        offset = node.member.offset
        if offset:
            level = self.depth - 1
            src = self.reg_at(level, "at")
            dst = self.result_reg(level)
            self.emit(f"lda {dst}, {offset}({src})")
            self.finish_result(level, dst)

    def _load_through(self, t: T.Type) -> None:
        """Replace the address on top of the stack with the loaded value."""
        if isinstance(t, (T.ArrayType, T.StructType, T.FuncType)):
            return    # address *is* the value
        level = self.depth - 1
        addr = self.reg_at(level, "at")
        dst = self.result_reg(level)
        self._load_sized(dst, addr, 0, t)
        self.finish_result(level, dst)

    # ---- sized loads/stores ---------------------------------------------------------

    def _load_sized(self, dst: str, base: str, off: int, t: T.Type) -> None:
        t = T.decay(t)
        if t.is_pointer() or not isinstance(t, T.IntType):
            self.emit(f"ldq {dst}, {off}({base})")
            return
        if t.width == 8:
            self.emit(f"ldq {dst}, {off}({base})")
        elif t.width == 4:
            self.emit(f"ldl {dst}, {off}({base})")
            if not t.signed:
                self.emit(f"sll {dst}, 32, {dst}")
                self.emit(f"srl {dst}, 32, {dst}")
        elif t.width == 2:
            self.emit(f"ldwu {dst}, {off}({base})")
            if t.signed:
                self.emit(f"sextw {dst}, {dst}")
        else:
            self.emit(f"ldbu {dst}, {off}({base})")
            if t.signed:
                self.emit(f"sextb {dst}, {dst}")

    def _store_sized(self, src: str, base: str, off: int, t: T.Type) -> None:
        t = T.decay(t)
        width = 8
        if isinstance(t, T.IntType):
            width = t.width
        mn = {1: "stb", 2: "stw", 4: "stl", 8: "stq"}[width]
        self.emit(f"{mn} {src}, {off}({base})")


# ---- small helpers -----------------------------------------------------------

def _is_unsigned(t: T.Type) -> bool:
    return isinstance(t, T.IntType) and not t.signed and t.width == 8


def _exact_log2(n: int) -> int | None:
    if n > 0 and n & (n - 1) == 0:
        return n.bit_length() - 1
    return None


def _log2(n: int) -> int:
    return max(0, n.bit_length() - 1)


def _max_stack_args(stmt) -> int:
    """Scan a body for the largest number of stack-passed call arguments."""
    worst = 0

    def walk(obj) -> None:
        nonlocal worst
        if isinstance(obj, A.Call):
            worst = max(worst, len(obj.args) - 6)
        if isinstance(obj, (A.Expr, A.Stmt, A.SwitchCase)):
            for value in vars(obj).values():
                walk(value)
        elif isinstance(obj, list):
            for item in obj:
                walk(item)
    walk(stmt)
    return max(worst, 0)
