"""A Pixie-style basic-block counting rewriter.

Pixie is the paper's canonical prior tool (footnote 6): it *steals three
registers* from the application for its own use, keeps three memory
locations holding the application's values of those registers, and
replaces application uses of the registers with uses of the memory
locations.  Counts are written to a file at exit and analyzed offline —
the exact data-collection/analysis split ATOM eliminates.

This implementation mirrors that design on WRL-64:

* steals t9/t10/t11 (t9 = counter-array base, t10/t11 = scratch);
* prepends a three-instruction counter increment to every basic block;
* shadows application uses of the stolen registers through memory;
* dumps the counter array to ``pixie.counts`` when the program exits.

It exists as the comparison baseline for the ablation benchmarks: same
job as ATOM's dyninst tool, prior-generation mechanism.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..isa import const, opcodes, registers as R
from ..isa.instruction import Instruction
from ..objfile.module import Module
from ..objfile.sections import LITA, TEXT
from ..om import build_ir, emit
from ..om.ir import IRInst

#: The three stolen registers.
STOLEN = (R.T9, R.T10, R.T11)
BASE_REG, SCRATCH1, SCRATCH2 = STOLEN

COUNTS_FILE = "pixie.counts"


@dataclass
class PixieResult:
    module: Module
    nblocks: int
    #: block index -> original block PC (for offline analysis)
    block_pcs: list[int]


def pixie_instrument(app_exe: Module) -> PixieResult:
    """Rewrite ``app_exe`` into a block-counting executable."""
    app = Module.from_bytes(app_exe.to_bytes())
    program = build_ir(app)

    # Pixie data region lives in the text-data gap: shadow slots for the
    # three stolen registers, then one 8-byte counter per block, then the
    # output file name.
    gap_base = _gap_base(app)
    shadow_addr = {reg: gap_base + 8 * i for i, reg in enumerate(STOLEN)}
    counters_base = gap_base + 8 * len(STOLEN)

    blocks = [b for proc in program.procs for b in proc.blocks]
    nblocks = len(blocks)
    block_pcs = [b.orig_pc or 0 for b in blocks]
    name_addr = counters_base + 8 * nblocks
    name_bytes = COUNTS_FILE.encode() + b"\x00"

    exit_proc = program.find_proc("_exit")

    # Rewrite application instructions that touch stolen registers.
    for proc in program.procs:
        for block in proc.blocks:
            block.insts = _shadow_stolen(block.insts, shadow_addr,
                                         counters_base)

    # Dump counters at program exit.  Inserted before the bumps are
    # prepended so _exit's own block bump executes first and the dumped
    # counts include it.
    if exit_proc is not None:
        exit_proc.blocks[0].insts[:0] = _dump(name_addr, counters_base,
                                              nblocks)

    # Prepend the counter bump to every block (after shadowing, so the
    # bump itself is not rewritten).
    for index, block in enumerate(blocks):
        block.insts[:0] = _bump(index)

    # Establish pixie's counter base at process entry.
    entry_proc = None
    for proc in program.procs:
        if proc.orig_addr == app.entry:
            entry_proc = proc
    if entry_proc is None:
        raise ValueError("cannot locate the entry procedure")
    entry_proc.blocks[0].insts[:0] = _materialize(counters_base, BASE_REG)

    result = emit(program)
    out = result.module
    blob = bytearray(8 * len(STOLEN))                   # shadow slots
    blob += b"\x00" * (8 * nblocks)                     # counters
    blob += name_bytes
    out.extra_segments.append(("pixie.data", gap_base, bytes(blob)))
    out.meta["pixie:counters_base"] = counters_base
    out.meta["pixie:nblocks"] = nblocks
    return PixieResult(module=out, nblocks=nblocks, block_pcs=block_pcs)


def read_counts(run_result, result: PixieResult) -> list[int]:
    """Offline analysis: parse the counts file a pixified program wrote."""
    blob = run_result.files[COUNTS_FILE]
    return [v for (v,) in struct.iter_unpack("<Q", blob)]


def _gap_base(app: Module) -> int:
    text = app.section(TEXT)
    # Leave generous room for the fattened text.
    base = text.vaddr + 4 * len(text.data) + 0x40_000
    limit = app.section(LITA).vaddr
    if base >= limit:
        raise ValueError("no room for pixie data in the text-data gap")
    return (base + 15) & ~15


def _materialize(value: int, reg: int) -> list[IRInst]:
    return [IRInst(i) for i in const.materialize(value, reg)]


def _bump(index: int) -> list[IRInst]:
    """ldq t10, 8*index(t9); addq t10, 1, t10; stq t10, 8*index(t9)."""
    disp = 8 * index
    if disp <= 0x7FFF:
        return [
            IRInst(Instruction(opcodes.LDQ, ra=SCRATCH1, rb=BASE_REG,
                               disp=disp)),
            IRInst(Instruction(opcodes.ADDQ, ra=SCRATCH1, lit=1,
                               is_lit=True, rc=SCRATCH1)),
            IRInst(Instruction(opcodes.STQ, ra=SCRATCH1, rb=BASE_REG,
                               disp=disp)),
        ]
    # Far counters: compute the slot address in the second scratch.
    out = _materialize(disp, SCRATCH2)
    out.append(IRInst(Instruction(opcodes.ADDQ, ra=SCRATCH2, rb=BASE_REG,
                                  rc=SCRATCH2)))
    out.append(IRInst(Instruction(opcodes.LDQ, ra=SCRATCH1, rb=SCRATCH2,
                                  disp=0)))
    out.append(IRInst(Instruction(opcodes.ADDQ, ra=SCRATCH1, lit=1,
                                  is_lit=True, rc=SCRATCH1)))
    out.append(IRInst(Instruction(opcodes.STQ, ra=SCRATCH1, rb=SCRATCH2,
                                  disp=0)))
    return out


def _shadow_stolen(insts: list[IRInst], shadow_addr: dict[int, int],
                   counters_base: int) -> list[IRInst]:
    """Replace application uses of stolen registers with memory shadows.

    Before an instruction that reads a stolen register, its value is
    loaded from the shadow slot; after one that writes it, the result is
    stored back and pixie's own state (t9 = counter base) is re-derived.
    """
    out: list[IRInst] = []
    stolen = set(STOLEN)
    for ir in insts:
        inst = ir.inst
        uses = inst.uses() & stolen
        defs = inst.defs() & stolen
        if not uses and not defs:
            out.append(ir)
            continue
        if inst.is_control_transfer() and uses:
            # A branch/jump testing a stolen register: its app value is
            # loaded into a scratch and the register field rewritten, so
            # pixie's base register survives on *both* outgoing paths.
            (reg,) = uses
            scratch = SCRATCH1 if reg != SCRATCH1 else SCRATCH2
            out.extend(_materialize(shadow_addr[reg], scratch))
            out.append(IRInst(Instruction(opcodes.LDQ, ra=scratch,
                                          rb=scratch, disp=0)))
            new_inst = inst.copy()
            if inst.op.format is opcodes.Format.BRANCH:
                new_inst.ra = scratch
            else:
                new_inst.rb = scratch
            ir.inst = new_inst
            out.append(ir)
            continue
        for reg in sorted(uses):
            out.extend(_materialize(shadow_addr[reg], reg))
            out.append(IRInst(Instruction(opcodes.LDQ, ra=reg, rb=reg,
                                          disp=0)))
        out.append(ir)
        for reg in sorted(defs):
            # Store the app's new value via the *other* scratch register.
            helper = SCRATCH1 if reg != SCRATCH1 else SCRATCH2
            out.extend(_materialize(shadow_addr[reg], helper))
            out.append(IRInst(Instruction(opcodes.STQ, ra=reg, rb=helper,
                                          disp=0)))
        if BASE_REG in uses or BASE_REG in defs:
            # Pixie's counter base was clobbered: re-derive it.
            out.extend(_materialize(counters_base, BASE_REG))
    return out


def _dump(name_addr: int, counters_base: int, nblocks: int) -> list[IRInst]:
    """open(name, O_WRONLY); write(fd, counters, 8*n); close(fd).

    Runs at _exit entry: every register is dead, so the sequence uses the
    argument registers freely.
    """
    from ..machine.syscalls import SYS_CLOSE, SYS_OPEN, SYS_WRITE

    def sys(num: int) -> list[IRInst]:
        return (_materialize(num, R.V0)
                + [IRInst(Instruction(opcodes.SYS))])

    out: list[IRInst] = []
    # a0 holds _exit's status argument: preserve it in s0.
    out.append(IRInst(Instruction(opcodes.BIS, ra=R.A0, rb=R.ZERO,
                                  rc=R.S0)))
    out += _materialize(name_addr, R.A0)
    out += _materialize(1, R.A1)                    # O_WRONLY
    out += sys(SYS_OPEN)
    out.append(IRInst(Instruction(opcodes.BIS, ra=R.V0, rb=R.ZERO,
                                  rc=R.A0)))        # fd
    out.append(IRInst(Instruction(opcodes.BIS, ra=R.A0, rb=R.ZERO,
                                  rc=R.S1)))        # keep fd for close
    out += _materialize(counters_base, R.A1)
    out += _materialize(8 * nblocks, R.A2)
    out += sys(SYS_WRITE)
    out.append(IRInst(Instruction(opcodes.BIS, ra=R.S1, rb=R.ZERO,
                                  rc=R.A0)))
    out += sys(SYS_CLOSE)
    out.append(IRInst(Instruction(opcodes.BIS, ra=R.S0, rb=R.ZERO,
                                  rc=R.A0)))        # restore exit status
    return out
