"""An address-tracing tool, for the paper's motivating comparison.

The introduction's second complaint about prior systems: address-tracing
tools compute *everything* and ship it out — "the instruction and address
traces are extremely large even for small programs and typically run into
gigabytes" — and the data still has to cross into the analysis through
IPC or files.  ATOM's answer is to run the analysis in-process and keep
only the answer.

This module builds both sides of that comparison *with ATOM itself*:

* :func:`trace_instrument` — a tool whose analysis routines append every
  memory-reference address to a buffered trace file (the old world);
* the ordinary ``cache`` tool consumes the same stream in-process and
  keeps 2 KB of tags (the ATOM world).

The bench in ``benchmarks/test_ablation_tracing.py`` measures the trace
bytes an offline pipeline would have to move versus the size of the cache
tool's finished answer.
"""

from __future__ import annotations

from ..atom import EffAddrValue, InstBefore, InstTypeMemRef, ProgramAfter, ProgramBefore

TRACE_FILE = "addr.trace"

TRACE_ANALYSIS = r"""
// Buffered address tracer: the data-collection half of a classic
// trace-driven pipeline.  8 bytes per reference, flushed in 64 KB runs.

long *trace_buf;
long trace_n;
FILE *trace_f;
long trace_total;

void TraceInit(void) {
    trace_buf = (long *)malloc(8192 * sizeof(long));
    trace_f = fopen("addr.trace", "w");
    trace_n = 0;
}

void TraceRef(long addr) {
    trace_buf[trace_n++] = addr;
    trace_total++;
    if (trace_n == 8192) {
        fwrite(trace_buf, sizeof(long), trace_n, trace_f);
        trace_n = 0;
    }
}

void TraceDone(void) {
    if (trace_n) {
        fwrite(trace_buf, sizeof(long), trace_n, trace_f);
    }
    fclose(trace_f);
}
"""


def trace_instrument(iargc, iargv, atom):
    """Instrumentation routine: trace every memory reference."""
    atom.AddCallProto("TraceInit()")
    atom.AddCallProto("TraceRef(VALUE)")
    atom.AddCallProto("TraceDone()")
    atom.AddCallProgram(ProgramBefore, "TraceInit")
    for proc in atom.procs():
        for inst in atom.insts(proc):
            if atom.IsInstType(inst, InstTypeMemRef):
                atom.AddCallInst(inst, InstBefore, "TraceRef",
                                 EffAddrValue)
    atom.AddCallProgram(ProgramAfter, "TraceDone")
