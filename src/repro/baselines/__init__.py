"""Baseline rewriters the paper compares ATOM against."""

from .pixie import pixie_instrument

__all__ = ["pixie_instrument"]
