"""Symbols of a WOF module.

Symbols name offsets within sections (or absolute values once linked).
Procedure symbols (``FUNC``) carry sizes set by the assembler's
``.ent``/``.end`` bracket; OM's IR builder uses them to partition the text
segment into procedures, exactly the way the paper's OM recovers procedure
structure from the fully linked OSF/1 module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SymKind(enum.Enum):
    NOTYPE = "notype"
    FUNC = "func"
    OBJECT = "object"


class SymBind(enum.Enum):
    LOCAL = "local"
    GLOBAL = "global"


@dataclass
class Symbol:
    """A named location.

    Before linking ``value`` is an offset into ``section`` of its defining
    module; afterwards it is an absolute virtual address.  ``section`` is
    ``None`` for undefined references and for absolute symbols (the linker
    sets ``is_abs``).
    """

    name: str
    section: str | None = None
    value: int = 0
    kind: SymKind = SymKind.NOTYPE
    bind: SymBind = SymBind.LOCAL
    size: int = 0
    is_abs: bool = False

    @property
    def defined(self) -> bool:
        return self.section is not None or self.is_abs


class SymbolTable:
    """Ordered name -> :class:`Symbol` map with define/reference semantics."""

    def __init__(self) -> None:
        self._syms: dict[str, Symbol] = {}

    def __iter__(self):
        return iter(self._syms.values())

    def __len__(self) -> int:
        return len(self._syms)

    def __contains__(self, name: str) -> bool:
        return name in self._syms

    def get(self, name: str) -> Symbol | None:
        return self._syms.get(name)

    def __getitem__(self, name: str) -> Symbol:
        try:
            return self._syms[name]
        except KeyError:
            raise KeyError(f"undefined symbol: {name}") from None

    def refer(self, name: str) -> Symbol:
        """Return the symbol, creating an undefined reference if needed."""
        sym = self._syms.get(name)
        if sym is None:
            sym = Symbol(name)
            self._syms[name] = sym
        return sym

    def define(self, name: str, section: str, value: int, *,
               kind: SymKind = SymKind.NOTYPE,
               bind: SymBind = SymBind.LOCAL, size: int = 0) -> Symbol:
        """Define ``name``; raises on redefinition."""
        sym = self.refer(name)
        if sym.defined:
            raise ValueError(f"symbol multiply defined: {name}")
        sym.section = section
        sym.value = value
        sym.kind = kind
        if bind is SymBind.GLOBAL:
            sym.bind = SymBind.GLOBAL
        sym.size = size
        return sym

    def add(self, sym: Symbol) -> None:
        if sym.name in self._syms:
            raise ValueError(f"duplicate symbol entry: {sym.name}")
        self._syms[sym.name] = sym

    def globals(self) -> list[Symbol]:
        return [s for s in self._syms.values() if s.bind is SymBind.GLOBAL]

    def undefined(self) -> list[Symbol]:
        return [s for s in self._syms.values() if not s.defined]

    def functions(self) -> list[Symbol]:
        return [s for s in self._syms.values() if s.kind is SymKind.FUNC]
