"""The WOF linker.

Combines relocatable modules (and archive members, pulled on demand) into a
fully linked executable laid out the way the paper's OSF/1 platform does:

* text segment at ``text_base`` (the stack sits *below* it and grows down);
* data segment at ``data_base``: the ``.lita`` literal-address table first
  (so ``gp = lita + 0x8000`` reaches it with signed 16-bit displacements),
  then ``.data``, then ``.bss``; the heap starts at ``__end`` and grows up.

The wide gap between ``text_base`` and ``data_base`` is where ATOM later
places the analysis link unit (paper Figure 4), which is why executables
*retain* their resolved relocation records: :func:`relocate_unit` can shift
a linked unit to new bases exactly, and OM's code generator can re-resolve
text-address-bearing fixups after instrumentation moves code.
"""

from __future__ import annotations

import argparse
import struct
import sys
from dataclasses import dataclass

from .archive import Archive
from .module import Module, ObjError
from .relocs import Relocation, RelocType
from .sections import BSS, DATA, LITA, TEXT, align_up
from .symtab import SymBind, Symbol

#: gp sits 0x8000 past the start of .lita so the full signed-16 range is usable.
GP_OFFSET = 0x8000

DEFAULT_TEXT_BASE = 0x0010_0000
DEFAULT_DATA_BASE = 0x0200_0000
DEFAULT_ENTRY = "__start"


class LinkError(ObjError):
    """Unresolved symbols, duplicate definitions, or layout failures."""


@dataclass
class LinkConfig:
    text_base: int = DEFAULT_TEXT_BASE
    data_base: int = DEFAULT_DATA_BASE
    entry_symbol: str = DEFAULT_ENTRY
    #: When False the output is a linked *unit* without an entry point
    #: (used for ATOM's analysis group, which is only entered via calls).
    require_entry: bool = True
    name: str = "a.out"


def link(modules: list[Module], archives: list[Archive] | None = None,
         config: LinkConfig | None = None) -> Module:
    """Link modules (+ needed archive members) into an executable."""
    return _Linker(config or LinkConfig()).run(list(modules), archives or [])


class _Linker:
    def __init__(self, config: LinkConfig):
        self.config = config
        self.out = Module(name=config.name)

    # ---- top level --------------------------------------------------------

    def run(self, modules: list[Module], archives: list[Archive]) -> Module:
        modules = modules + self._pull_members(modules, archives)
        for index, mod in enumerate(modules):
            self._merge(mod, index)
        self._build_got()
        self._layout()
        self._absolutize()
        self._define_linker_symbols()
        self._check_undefined()
        self._apply_relocs()
        out = self.out
        out.linked = True
        if self.config.require_entry:
            sym = out.symtab.get(self.config.entry_symbol)
            if sym is None or not sym.defined:
                raise LinkError(f"entry symbol {self.config.entry_symbol!r} "
                                f"is undefined")
            out.entry = sym.value
        out.meta["text_base"] = self.config.text_base
        out.meta["data_base"] = self.config.data_base
        return out

    # ---- archive member selection -----------------------------------------

    def _pull_members(self, modules: list[Module],
                      archives: list[Archive]) -> list[Module]:
        defined: set[str] = set()
        needed: set[str] = set()
        for mod in modules:
            for sym in mod.symtab:
                if sym.bind is SymBind.GLOBAL and sym.defined:
                    defined.add(sym.name)
                elif not sym.defined:
                    needed.add(sym.name)
        pulled: list[Module] = []
        progress = True
        while progress:
            progress = False
            for want in sorted(needed - defined):
                if want in defined:
                    continue   # satisfied by a member pulled this sweep
                for ar in archives:
                    member = ar.member_defining(want)
                    if member is None:
                        continue
                    pulled.append(member)
                    progress = True
                    for sym in member.symtab:
                        if sym.bind is SymBind.GLOBAL and sym.defined:
                            defined.add(sym.name)
                        elif not sym.defined:
                            needed.add(sym.name)
                    break
        return pulled

    # ---- merging ------------------------------------------------------------

    def _merge(self, mod: Module, index: int) -> None:
        offsets: dict[str, int] = {}
        for name, sec in mod.sections.items():
            dest = self.out.section(name)
            dest.align_to(sec.align)
            offsets[name] = dest.size
            if name == BSS:
                dest.reserve(sec.bss_size)
            else:
                dest.append(bytes(sec.data))

        renames: dict[str, str] = {}
        for sym in mod.symtab:
            if sym.bind is SymBind.GLOBAL:
                self._merge_global(sym, offsets, mod.name)
            elif sym.defined:
                new_name = f"{sym.name}@{index}"
                renames[sym.name] = new_name
                self.out.symtab.add(Symbol(
                    name=new_name, section=sym.section,
                    value=sym.value + offsets.get(sym.section, 0),
                    kind=sym.kind, bind=SymBind.LOCAL, size=sym.size))
            else:
                # Undefined local reference: treat as a global reference.
                self.out.symtab.refer(sym.name)

        for rel in mod.relocs:
            self.out.relocs.append(Relocation(
                section=rel.section,
                offset=rel.offset + offsets.get(rel.section, 0),
                type=rel.type,
                symbol=renames.get(rel.symbol, rel.symbol),
                addend=rel.addend))

        # Carry per-procedure frame metadata (.frame directives) through.
        for key, value in mod.meta.items():
            if key.startswith(("frame:", "outgoing:")):
                prefix, _, proc = key.partition(":")
                self.out.meta[f"{prefix}:{renames.get(proc, proc)}"] = value

    def _merge_global(self, sym: Symbol, offsets: dict[str, int],
                      modname: str) -> None:
        existing = self.out.symtab.refer(sym.name)
        existing.bind = SymBind.GLOBAL
        if not sym.defined:
            return
        if existing.defined:
            raise LinkError(f"symbol multiply defined: {sym.name} "
                            f"(again in {modname})")
        existing.section = sym.section
        existing.value = sym.value + offsets.get(sym.section, 0)
        existing.kind = sym.kind
        existing.size = sym.size

    # ---- GOT ---------------------------------------------------------------

    def _build_got(self) -> None:
        lita = self.out.section(LITA)
        lita.align_to(8)
        slots: dict[tuple[str, int], int] = {}
        for rel in self.out.relocs:
            if rel.type is not RelocType.GOT16:
                continue
            key = (rel.symbol, rel.addend)
            offset = slots.get(key)
            if offset is None:
                offset = lita.reserve(8)
                slots[key] = offset
            rel.got_slot = offset   # section offset for now; absolute later

    # ---- layout & resolution -------------------------------------------------

    def _layout(self) -> None:
        text = self.out.section(TEXT)
        text.vaddr = self.config.text_base
        addr = align_up(self.config.data_base, 16)
        for name in (LITA, DATA, BSS):
            sec = self.out.section(name)
            addr = align_up(addr, max(sec.align, 8))
            sec.vaddr = addr
            addr += sec.size
        text_end = text.vaddr + text.size
        if text_end > self.out.section(LITA).vaddr:
            raise LinkError(
                f"text segment overruns data base: end {text_end:#x} > "
                f"{self.out.section(LITA).vaddr:#x}")
        self.out.gp_value = self.out.section(LITA).vaddr + GP_OFFSET

    def _absolutize(self) -> None:
        for sym in self.out.symtab:
            if sym.section is not None:
                sec = self.out.section(sym.section)
                sym.value += sec.vaddr
        for rel in self.out.relocs:
            if rel.got_slot is not None:
                rel.got_slot += self.out.section(LITA).vaddr

    def _define_linker_symbols(self) -> None:
        text = self.out.section(TEXT)
        bss = self.out.section(BSS)
        specials = {
            "_gp": self.out.gp_value,
            "__text_start": text.vaddr,
            "__text_end": text.vaddr + text.size,
            "__data_start": self.out.section(LITA).vaddr,
            "__bss_start": bss.vaddr,
            "__end": align_up(bss.vaddr + bss.size, 8),
        }
        for name, value in specials.items():
            sym = self.out.symtab.refer(name)
            if sym.defined:
                if sym.is_abs:
                    continue
                raise LinkError(f"reserved linker symbol defined by input: "
                                f"{name}")
            sym.value = value
            sym.is_abs = True
            sym.bind = SymBind.GLOBAL

    def _check_undefined(self) -> None:
        missing = sorted(s.name for s in self.out.symtab.undefined())
        if missing:
            raise LinkError("undefined symbols: " + ", ".join(missing))

    def _apply_relocs(self) -> None:
        for rel in self.out.relocs:
            apply_relocation(self.out, rel)


# ---- relocation application (shared with OM's re-resolution) ----------------

def apply_relocation(module: Module, rel: Relocation) -> None:
    """Resolve one relocation against the module's current symbol values."""
    sym = module.symtab.get(rel.symbol)
    if sym is None or not sym.defined:
        raise LinkError(f"relocation against undefined symbol {rel.symbol!r}")
    value = sym.value + rel.addend
    sec = module.section(rel.section)
    data = sec.data

    if rel.type is RelocType.QUAD64:
        struct.pack_into("<Q", data, rel.offset,
                         value & 0xFFFF_FFFF_FFFF_FFFF)
        return
    if rel.type is RelocType.LONG32:
        struct.pack_into("<I", data, rel.offset, value & 0xFFFF_FFFF)
        return

    word = struct.unpack_from("<I", data, rel.offset)[0]
    if rel.type is RelocType.HI16:
        lo = value & 0xFFFF
        lo_signed = lo - 0x10000 if lo & 0x8000 else lo
        hi = ((value - lo_signed) >> 16) & 0xFFFF
        word = (word & ~0xFFFF) | hi
    elif rel.type is RelocType.LO16:
        word = (word & ~0xFFFF) | (value & 0xFFFF)
    elif rel.type is RelocType.BRANCH21:
        pc = sec.vaddr + rel.offset
        delta = value - (pc + 4)
        if delta % 4:
            raise LinkError(f"misaligned branch target {value:#x}")
        disp = delta // 4
        if not -(1 << 20) <= disp < (1 << 20):
            raise LinkError(f"branch to {rel.symbol} out of range "
                            f"({disp} words)")
        word = (word & ~0x1FFFFF) | (disp & 0x1FFFFF)
    elif rel.type is RelocType.GOT16:
        if rel.got_slot is None:
            raise LinkError("GOT16 relocation without an allocated slot")
        lita = module.section(LITA)
        struct.pack_into("<Q", lita.data, rel.got_slot - lita.vaddr,
                         value & 0xFFFF_FFFF_FFFF_FFFF)
        disp = rel.got_slot - module.gp_value
        if not -(1 << 15) <= disp < (1 << 15):
            raise LinkError(f"literal table overflow reaching {rel.symbol}")
        word = (word & ~0xFFFF) | (disp & 0xFFFF)
    elif rel.type in (RelocType.GPHI16, RelocType.GPLO16):
        gp = module.gp_value
        lo = gp & 0xFFFF
        lo_signed = lo - 0x10000 if lo & 0x8000 else lo
        if rel.type is RelocType.GPHI16:
            patch = ((gp - lo_signed) >> 16) & 0xFFFF
        else:
            patch = lo
        word = (word & ~0xFFFF) | patch
    else:  # pragma: no cover - exhaustive
        raise AssertionError(rel.type)
    struct.pack_into("<I", data, rel.offset, word)


def relocate_unit(module: Module, text_base: int, data_base: int) -> None:
    """Shift a linked unit to new segment bases, re-resolving every fixup.

    This is the primitive ATOM's layout step uses to drop the (separately
    linked) analysis unit into the gap between the application's text and
    data segments.
    """
    if not module.linked:
        raise LinkError("relocate_unit requires a linked module")
    deltas: dict[str, int] = {}
    text = module.section(TEXT)
    deltas[TEXT] = text_base - text.vaddr
    text.vaddr = text_base
    addr = align_up(data_base, 16)
    for name in (LITA, DATA, BSS):
        sec = module.section(name)
        addr = align_up(addr, max(sec.align, 8))
        deltas[name] = addr - (sec.vaddr or 0)
        sec.vaddr = addr
        addr += sec.size

    for sym in module.symtab:
        if sym.is_abs:
            # Linker-provided landmarks track their segments.
            if sym.name in ("__text_start", "__text_end"):
                sym.value += deltas[TEXT]
            elif sym.name in ("_gp", "__data_start"):
                sym.value += deltas[LITA]
            elif sym.name in ("__bss_start", "__end"):
                sym.value += deltas[BSS]
        elif sym.section is not None:
            sym.value += deltas.get(sym.section, 0)
    module.gp_value += deltas[LITA]
    module.entry += deltas[TEXT] if module.entry else 0

    for rel in module.relocs:
        if rel.got_slot is not None:
            rel.got_slot += deltas[LITA]
        apply_relocation(module, rel)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="wrl-ld", description="WOF linker")
    ap.add_argument("inputs", nargs="+", help="object modules and archives")
    ap.add_argument("-o", "--output", required=True)
    ap.add_argument("--text-base", type=lambda s: int(s, 0),
                    default=DEFAULT_TEXT_BASE)
    ap.add_argument("--data-base", type=lambda s: int(s, 0),
                    default=DEFAULT_DATA_BASE)
    ap.add_argument("-e", "--entry", default=DEFAULT_ENTRY)
    ap.add_argument("-Olink", action="store_true", dest="optimize",
                    help="run OM's link-time optimizations on the result "
                         "(address calculation, unreachable procedures)")
    args = ap.parse_args(argv)
    modules, archives = [], []
    for path in args.inputs:
        if path.endswith(".a"):
            archives.append(Archive.load(path))
        else:
            modules.append(Module.load(path))
    config = LinkConfig(text_base=args.text_base, data_base=args.data_base,
                        entry_symbol=args.entry, name=args.output)
    try:
        out = link(modules, archives, config)
        if args.optimize:
            from ..om import (build_ir, eliminate_unreachable, emit,
                              optimize_address_calculation,
                              optimize_got_loads)
            program = build_ir(out)
            removed = eliminate_unreachable(program)
            rewritten = optimize_address_calculation(program)
            rewritten += optimize_got_loads(program)
            out = emit(program).module
            print(f"wrl-ld: -Olink removed {len(removed)} procedures, "
                  f"rewrote {rewritten} address loads", file=sys.stderr)
    except (LinkError, ObjError) as exc:
        print(f"wrl-ld: {exc}", file=sys.stderr)
        return 1
    out.save(args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
