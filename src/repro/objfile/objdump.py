"""``wrl-objdump``: inspect WOF modules and executables.

Prints headers, section layout, symbols, relocations, extra segments
(ATOM's analysis data), the new->old PC map, and a symbol-annotated
disassembly — the debugging companion for everything else in the
toolchain.
"""

from __future__ import annotations

import argparse

from ..isa import disasm
from .module import Module, PC_ATTR_NAMES
from .sections import TEXT


def dump_header(mod: Module, out) -> None:
    out(f"module:   {mod.name}")
    out(f"linked:   {mod.linked}")
    if mod.linked:
        out(f"entry:    {mod.entry:#x}")
        out(f"gp:       {mod.gp_value:#x}")
        if mod.analysis_gp:
            out(f"anal gp:  {mod.analysis_gp:#x}   (ATOM-instrumented)")
        opt = mod.meta.get("atom:opt_level")
        if opt is not None:
            splices = sum(1 for s in mod.symtab
                          if s.name.startswith("__atominl$"))
            line = f"atom opt: O{opt}"
            if splices:
                line += f"   ({splices} inline splices)"
            out(line)


def dump_sections(mod: Module, out) -> None:
    out("\nsections:")
    for sec in mod.sections.values():
        vaddr = f"{sec.vaddr:#010x}" if sec.vaddr is not None else "-"
        out(f"  {sec.name:8s} {vaddr}  size {sec.size:#x}")
    for name, vaddr, blob in mod.extra_segments:
        out(f"  {name:8s} {vaddr:#010x}  size {len(blob):#x}  (extra)")


def dump_symbols(mod: Module, out) -> None:
    out("\nsymbols:")
    for sym in sorted(mod.symtab, key=lambda s: (not s.defined, s.value)):
        where = "abs" if sym.is_abs else (sym.section or "undef")
        kind = sym.kind.value[0].upper()
        bind = "g" if sym.bind.value == "global" else "l"
        out(f"  {sym.value:#012x} {bind}{kind} {where:6s} {sym.name}"
            + (f"  [{sym.size}]" if sym.size else ""))


def dump_relocs(mod: Module, out) -> None:
    out(f"\nrelocations: {len(mod.relocs)}")
    for rel in mod.relocs[:200]:
        out(f"  {rel.section}+{rel.offset:#x}  {rel.type.value:9s} "
            f"{rel.symbol}{f'+{rel.addend}' if rel.addend else ''}")
    if len(mod.relocs) > 200:
        out(f"  ... {len(mod.relocs) - 200} more")


def dump_pc_map(mod: Module, out) -> None:
    if not mod.pc_map:
        return
    moved = sum(1 for n, o in mod.pc_map.items() if n != o)
    line = f"\npc map: {len(mod.pc_map)} entries, {moved} moved"
    if mod.pc_attr:
        by_kind: dict[str, int] = {}
        for code in mod.pc_attr.values():
            name = PC_ATTR_NAMES.get(code, f"code{code}")
            by_kind[name] = by_kind.get(name, 0) + 1
        detail = ", ".join(f"{by_kind[k]} {k}"
                           for k in ("save", "glue", "splice")
                           if k in by_kind)
        line += f"; inserted: {len(mod.pc_attr)} ({detail})"
    out(line)


def dump_disasm(mod: Module, out) -> None:
    text = mod.section(TEXT)
    base = text.vaddr if text.vaddr is not None else 0
    symbols = disasm.symbol_map(mod) if mod.linked else {}
    out("\ndisassembly:")
    # Mark ATOM-inserted instructions by kind (+s save bracket, +g call
    # glue, +i inlined splice) so instrumented dumps read at a glance.
    marks = {"save": "+s", "glue": "+g", "splice": "+i"}
    annotate = None
    if mod.pc_attr:
        def annotate(pc: int) -> str:
            code = mod.pc_attr.get(pc)
            if code is None:
                return "  "
            return marks.get(PC_ATTR_NAMES.get(code, ""), "+?")
    for line in disasm.disassemble(bytes(text.data), base, symbols,
                                   annotate=annotate):
        out(line)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="wrl-objdump",
                                 description="inspect a WOF module")
    ap.add_argument("module")
    ap.add_argument("-d", "--disassemble", action="store_true")
    ap.add_argument("-r", "--relocs", action="store_true")
    ap.add_argument("-t", "--symbols", action="store_true")
    ap.add_argument("-a", "--all", action="store_true")
    args = ap.parse_args(argv)
    mod = Module.load(args.module)
    lines: list[str] = []
    out = lines.append
    dump_header(mod, out)
    dump_sections(mod, out)
    if args.symbols or args.all:
        dump_symbols(mod, out)
    if args.relocs or args.all:
        dump_relocs(mod, out)
    dump_pc_map(mod, out)
    if args.disassemble or args.all:
        dump_disasm(mod, out)
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
