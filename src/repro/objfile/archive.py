"""Archives (static libraries) of WOF modules.

An archive is a bag of relocatable modules with an index of the global
symbols each defines.  The linker pulls members on demand, the classic
``ar``/``ld`` protocol the paper's toolchain relies on for the two private
libc copies (one linked into the application, one into the analysis unit).
"""

from __future__ import annotations

import io
import struct

from .module import Module, ObjError
from .symtab import SymBind

MAGIC = b"WAR1"


class Archive:
    """An ordered collection of relocatable modules."""

    def __init__(self, members: list[Module] | None = None,
                 name: str = "<archive>"):
        self.name = name
        self.members: list[Module] = list(members or [])
        self._index: dict[str, int] = {}
        self._reindex()

    def _reindex(self) -> None:
        self._index.clear()
        for i, member in enumerate(self.members):
            for sym in member.symtab:
                if sym.bind is SymBind.GLOBAL and sym.defined:
                    self._index.setdefault(sym.name, i)

    def add(self, member: Module) -> None:
        self.members.append(member)
        self._reindex()

    def member_defining(self, symbol: str) -> Module | None:
        idx = self._index.get(symbol)
        return self.members[idx] if idx is not None else None

    def defined_symbols(self) -> set[str]:
        return set(self._index)

    # ---- serialization ----------------------------------------------------

    def to_bytes(self) -> bytes:
        out = io.BytesIO()
        out.write(MAGIC)
        out.write(struct.pack("<I", len(self.members)))
        for member in self.members:
            blob = member.to_bytes()
            out.write(struct.pack("<I", len(blob)))
            out.write(blob)
        return out.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes, name: str = "<archive>") -> "Archive":
        inp = io.BytesIO(blob)
        if inp.read(4) != MAGIC:
            raise ObjError("not a WOF archive (bad magic)")
        (count,) = struct.unpack("<I", inp.read(4))
        members = []
        for _ in range(count):
            (size,) = struct.unpack("<I", inp.read(4))
            members.append(Module.from_bytes(inp.read(size)))
        return cls(members, name=name)

    def save(self, path) -> None:
        with open(path, "wb") as f:
            f.write(self.to_bytes())

    @classmethod
    def load(cls, path) -> "Archive":
        with open(path, "rb") as f:
            return cls.from_bytes(f.read(), name=str(path))
