"""WOF object-file format: sections, symbols, relocations, modules, linker."""

from .module import Module, ObjError
from .relocs import Relocation, RelocType
from .sections import BSS, DATA, LITA, TEXT, Section
from .symtab import SymBind, SymKind, Symbol, SymbolTable

__all__ = [
    "Module", "ObjError", "Relocation", "RelocType", "Section",
    "Symbol", "SymbolTable", "SymKind", "SymBind",
    "TEXT", "DATA", "BSS", "LITA",
]
