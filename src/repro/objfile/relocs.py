"""Relocation records of a WOF module.

The linker resolves these when producing an executable, but — critically
for this reproduction — the resolved records are *retained* in the
executable.  OM's code generator re-resolves every text-address-bearing
relocation after instrumentation moves code, which is how function
pointers, address tables and ``ldgp`` sequences keep working while program
*data* addresses remain untouched (the paper's pristine-behaviour
guarantee, Section 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RelocType(enum.Enum):
    #: ldah with the high 16 bits of S+A (carry-adjusted for the paired LO16).
    HI16 = "hi16"
    #: lda with the low 16 bits of S+A.
    LO16 = "lo16"
    #: 21-bit pc-relative word displacement to S+A (bsr/br/bcc targets).
    BRANCH21 = "branch21"
    #: Allocate an 8-byte .lita slot holding S+A; patch the 16-bit
    #: displacement with slot_address - gp of the containing link unit.
    GOT16 = "got16"
    #: ldah half of materializing the link unit's gp value.
    GPHI16 = "gphi16"
    #: lda half of materializing the link unit's gp value.
    GPLO16 = "gplo16"
    #: 64-bit data word = S+A.
    QUAD64 = "quad64"
    #: 32-bit data word = S+A.
    LONG32 = "long32"


#: Relocation types whose patched value embeds an absolute address and must
#: therefore be re-resolved by OM when the target moves.
ADDRESS_BEARING = frozenset({
    RelocType.HI16, RelocType.LO16, RelocType.GOT16,
    RelocType.QUAD64, RelocType.LONG32,
})


@dataclass
class Relocation:
    """One fixup: patch ``section``@``offset`` using ``symbol`` + ``addend``."""

    section: str
    offset: int
    type: RelocType
    symbol: str
    addend: int = 0
    #: Filled by the linker for GOT16: absolute address of the .lita slot.
    got_slot: int | None = None

    def key(self) -> tuple:
        return (self.section, self.offset, self.type.value)
