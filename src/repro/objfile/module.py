"""The WOF module: sections + symbols + relocations, with binary (de)serialization.

A module serves three roles over its lifetime, mirroring OSF/1 object
modules in the paper:

* relocatable object produced by the assembler;
* fully linked executable produced by the linker (``linked`` set, absolute
  symbol values, relocations resolved *and retained*);
* instrumented executable produced by ATOM (additionally carries the
  analysis link unit's gp and the static new-pc -> old-pc map).
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field

from .relocs import Relocation, RelocType
from .sections import BSS, SECTION_NAMES, Section
from .symtab import SymBind, SymKind, Symbol, SymbolTable

MAGIC = b"WOF1"

#: ``pc_attr`` codes: what an ATOM-*inserted* instruction (one with no
#: ``pc_map`` entry) is doing at its new address.  Together with the
#: analysis-text range recorded in ``meta`` this lets a profiler attribute
#: every sampled PC to {original program | save-bracket | call glue |
#: inlined splice | analysis routine}.
PC_ATTR_SAVE = 1    #: register save/restore bracket around a point
PC_ATTR_GLUE = 2    #: call glue: argument setup, bsr/jsr, wrappers, veneer
PC_ATTR_SPLICE = 3  #: O4-inlined analysis body (``__atominl$`` splice)

PC_ATTR_NAMES = {
    PC_ATTR_SAVE: "save",
    PC_ATTR_GLUE: "glue",
    PC_ATTR_SPLICE: "splice",
}


class ObjError(Exception):
    """Malformed object file or illegal module operation."""


@dataclass
class Module:
    """One object module or executable."""

    name: str = "<module>"
    sections: dict[str, Section] = field(default_factory=dict)
    symtab: SymbolTable = field(default_factory=SymbolTable)
    relocs: list[Relocation] = field(default_factory=list)
    linked: bool = False
    entry: int = 0
    #: Value of the program link unit's global pointer (linked only).
    gp_value: int = 0
    #: Value of the analysis link unit's gp (ATOM output only).
    analysis_gp: int = 0
    #: Static map of new text address -> original text address (ATOM output).
    pc_map: dict[int, int] = field(default_factory=dict)
    #: New text address -> PC_ATTR_* code for ATOM-inserted instructions
    #: (addresses absent from ``pc_map``).  ATOM output only.
    pc_attr: dict[int, int] = field(default_factory=dict)
    #: Free-form integer metadata (segment bases and the like).
    meta: dict[str, int] = field(default_factory=dict)
    #: Additional loadable segments outside the four standard sections —
    #: ATOM places the analysis unit's data here, in the gap between the
    #: application's text and data (paper Figure 4).  (name, vaddr, bytes).
    extra_segments: list[tuple[str, int, bytes]] = field(
        default_factory=list)

    # ---- section access -------------------------------------------------

    def section(self, name: str) -> Section:
        """Return the named section, creating it on first use."""
        sec = self.sections.get(name)
        if sec is None:
            if name not in SECTION_NAMES:
                raise ObjError(f"unknown section name: {name}")
            sec = Section(name)
            self.sections[name] = sec
        return sec

    def has_section(self, name: str) -> bool:
        return name in self.sections and self.sections[name].size > 0

    def text_bytes(self) -> bytes:
        return bytes(self.section(".text").data)

    # ---- linked-module queries -------------------------------------------

    def addr_of(self, name: str) -> int:
        """Absolute address of a symbol in a linked module."""
        if not self.linked:
            raise ObjError("addr_of requires a linked module")
        sym = self.symtab[name]
        if not sym.defined:
            raise ObjError(f"undefined symbol: {name}")
        return sym.value

    def section_at(self, addr: int) -> Section | None:
        for sec in self.sections.values():
            if sec.contains_addr(addr):
                return sec
        return None

    def functions_sorted(self) -> list[Symbol]:
        """FUNC symbols ordered by address (linked) or offset (relocatable)."""
        return sorted(self.symtab.functions(), key=lambda s: s.value)

    # ---- serialization ----------------------------------------------------

    def to_bytes(self) -> bytes:
        out = io.BytesIO()
        w = _Writer(out)
        out.write(MAGIC)
        w.u32(1 if self.linked else 0)
        w.u64(self.entry)
        w.u64(self.gp_value)
        w.u64(self.analysis_gp)
        w.string(self.name)

        w.u32(len(self.sections))
        for sec in self.sections.values():
            w.string(sec.name)
            w.u32(sec.align)
            w.u64(sec.vaddr if sec.vaddr is not None else 0xFFFF_FFFF_FFFF_FFFF)
            if sec.name == BSS:
                w.u32(0)
                w.u64(sec.bss_size)
            else:
                w.u32(len(sec.data))
                out.write(bytes(sec.data))
                w.u64(0)

        syms = list(self.symtab)
        w.u32(len(syms))
        for s in syms:
            w.string(s.name)
            w.string(s.section or "")
            w.u64(s.value & 0xFFFF_FFFF_FFFF_FFFF)
            w.string(s.kind.value)
            w.string(s.bind.value)
            w.u64(s.size)
            w.u32(1 if s.is_abs else 0)

        w.u32(len(self.relocs))
        for r in self.relocs:
            w.string(r.section)
            w.u64(r.offset)
            w.string(r.type.value)
            w.string(r.symbol)
            w.i64(r.addend)
            w.u64(r.got_slot if r.got_slot is not None else
                  0xFFFF_FFFF_FFFF_FFFF)

        w.u32(len(self.pc_map))
        for new, old in self.pc_map.items():
            w.u64(new)
            w.u64(old)

        w.u32(len(self.meta))
        for key, value in self.meta.items():
            w.string(key)
            w.i64(value)

        w.u32(len(self.extra_segments))
        for name, vaddr, blob in self.extra_segments:
            w.string(name)
            w.u64(vaddr)
            w.u32(len(blob))
            out.write(blob)

        w.u32(len(self.pc_attr))
        for pc, code in self.pc_attr.items():
            w.u64(pc)
            w.u32(code)
        return out.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Module":
        inp = io.BytesIO(blob)
        if inp.read(4) != MAGIC:
            raise ObjError("not a WOF module (bad magic)")
        r = _Reader(inp)
        mod = cls()
        mod.linked = bool(r.u32())
        mod.entry = r.u64()
        mod.gp_value = r.u64()
        mod.analysis_gp = r.u64()
        mod.name = r.string()

        for _ in range(r.u32()):
            name = r.string()
            sec = Section(name)
            sec.align = r.u32()
            vaddr = r.u64()
            sec.vaddr = None if vaddr == 0xFFFF_FFFF_FFFF_FFFF else vaddr
            nbytes = r.u32()
            sec.data = bytearray(inp.read(nbytes))
            sec.bss_size = r.u64()
            mod.sections[name] = sec

        for _ in range(r.u32()):
            sym = Symbol(name=r.string())
            section = r.string()
            sym.section = section or None
            sym.value = r.u64()
            sym.kind = SymKind(r.string())
            sym.bind = SymBind(r.string())
            sym.size = r.u64()
            sym.is_abs = bool(r.u32())
            mod.symtab.add(sym)

        for _ in range(r.u32()):
            rel = Relocation(section=r.string(), offset=r.u64(),
                             type=RelocType(r.string()), symbol=r.string(),
                             addend=r.i64())
            slot = r.u64()
            rel.got_slot = None if slot == 0xFFFF_FFFF_FFFF_FFFF else slot
            mod.relocs.append(rel)

        for _ in range(r.u32()):
            new = r.u64()
            mod.pc_map[new] = r.u64()

        for _ in range(r.u32()):
            key = r.string()
            mod.meta[key] = r.i64()

        # Trailing fields are optional so older serialized modules (cache
        # artifacts, committed fixtures) keep loading: tolerate EOF at each
        # field boundary.
        remaining = inp.read(4)
        if remaining:
            (nseg,) = struct.unpack("<I", remaining)
            for _ in range(nseg):
                name = r.string()
                vaddr = r.u64()
                size = r.u32()
                mod.extra_segments.append((name, vaddr, inp.read(size)))
            remaining = inp.read(4)
            if remaining:
                (nattr,) = struct.unpack("<I", remaining)
                for _ in range(nattr):
                    pc = r.u64()
                    mod.pc_attr[pc] = r.u32()
        return mod

    def save(self, path) -> None:
        with open(path, "wb") as f:
            f.write(self.to_bytes())

    @classmethod
    def load(cls, path) -> "Module":
        with open(path, "rb") as f:
            return cls.from_bytes(f.read())


class _Writer:
    def __init__(self, out: io.BytesIO) -> None:
        self._out = out

    def u32(self, v: int) -> None:
        self._out.write(struct.pack("<I", v))

    def u64(self, v: int) -> None:
        self._out.write(struct.pack("<Q", v & 0xFFFF_FFFF_FFFF_FFFF))

    def i64(self, v: int) -> None:
        self._out.write(struct.pack("<q", v))

    def string(self, s: str) -> None:
        raw = s.encode("utf-8")
        self._out.write(struct.pack("<H", len(raw)))
        self._out.write(raw)


class _Reader:
    def __init__(self, inp: io.BytesIO) -> None:
        self._inp = inp

    def _unpack(self, fmt: str, size: int):
        raw = self._inp.read(size)
        if len(raw) != size:
            raise ObjError("truncated WOF module")
        return struct.unpack(fmt, raw)[0]

    def u32(self) -> int:
        return self._unpack("<I", 4)

    def u64(self) -> int:
        return self._unpack("<Q", 8)

    def i64(self) -> int:
        return self._unpack("<q", 8)

    def string(self) -> str:
        n = self._unpack("<H", 2)
        raw = self._inp.read(n)
        if len(raw) != n:
            raise ObjError("truncated WOF module")
        return raw.decode("utf-8")
