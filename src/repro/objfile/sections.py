"""Sections of a WOF (WRL Object Format) module.

A module carries at most one section of each kind.  ``.text`` holds
instructions, ``.data`` initialized data, ``.bss`` only a size, and
``.lita`` is the literal-address table the linker builds for ``%got``
relocations (one 8-byte slot per distinct address constant, reached via the
global pointer exactly as on Alpha/OSF).
"""

from __future__ import annotations

from dataclasses import dataclass, field

TEXT = ".text"
DATA = ".data"
BSS = ".bss"
LITA = ".lita"

SECTION_NAMES = (TEXT, DATA, BSS, LITA)


@dataclass
class Section:
    """One section: raw bytes (or a bare size for ``.bss``) plus layout."""

    name: str
    data: bytearray = field(default_factory=bytearray)
    #: Size in bytes.  For .bss this is the only content; for others it
    #: must equal ``len(data)``.
    bss_size: int = 0
    align: int = 8
    #: Virtual address assigned by the linker (None before layout).
    vaddr: int | None = None

    @property
    def size(self) -> int:
        return self.bss_size if self.name == BSS else len(self.data)

    def append(self, chunk: bytes) -> int:
        """Append bytes, returning the offset they were placed at."""
        if self.name == BSS:
            raise ValueError(".bss cannot hold initialized bytes")
        offset = len(self.data)
        self.data.extend(chunk)
        return offset

    def reserve(self, nbytes: int) -> int:
        """Reserve zeroed space, returning its offset."""
        if self.name == BSS:
            offset = self.bss_size
            self.bss_size += nbytes
            return offset
        return self.append(b"\x00" * nbytes)

    def align_to(self, alignment: int) -> None:
        """Pad the section so its current end is ``alignment``-aligned."""
        if alignment > self.align:
            self.align = alignment
        cur = self.size
        pad = (-cur) % alignment
        if pad:
            self.reserve(pad)

    def contains_addr(self, addr: int) -> bool:
        """True when ``addr`` falls inside this laid-out section."""
        if self.vaddr is None:
            return False
        return self.vaddr <= addr < self.vaddr + self.size


def align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)
