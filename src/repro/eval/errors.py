"""Typed failures the evaluation harness can surface.

The machine raises :class:`~repro.machine.cpu.BudgetExhausted` when a run
overruns ``max_insts``; at the eval layer that is a *timeout* — the
budget is the harness's deterministic stand-in for a wall clock — so the
runner re-raises it as :class:`EvalTimeout`, which records which stage
(base or instrumented run) overran and at what budget.  It subclasses
``BudgetExhausted`` so existing ``except MachineError`` handlers keep
working.
"""

from __future__ import annotations

from ..machine.cpu import BudgetExhausted


class EvalTimeout(BudgetExhausted):
    """An evaluation run exhausted its instruction budget.

    ``stage`` names the phase that overran (``"base"`` or
    ``"instrumented"``); ``max_insts`` is the budget that ran out.
    """

    def __init__(self, stage: str, max_insts: int, pc: int | None = None):
        self.stage = stage
        self.max_insts = max_insts
        super().__init__(
            f"{stage} run exceeded the {max_insts:,}-instruction budget",
            pc)
