"""Applying tools to executables and running the results.

This is the glue the benchmarks and examples share: build (and cache) each
tool's analysis unit, instrument an application with it, and run either
version on the simulated machine collecting cycle counts.
"""

from __future__ import annotations

from ..atom import OptLevel, instrument_executable
from ..atom.instrument import InstrumentResult
from ..machine import RunResult, run_module
from ..mlc import build_analysis_unit
from ..objfile.module import Module
from ..tools import Tool

_analysis_cache: dict[str, bytes] = {}


def analysis_unit_for(tool: Tool) -> Module:
    """Compile the tool's analysis routines into a linked unit (cached)."""
    blob = _analysis_cache.get(tool.name)
    if blob is None:
        unit = build_analysis_unit([tool.analysis_source],
                                   name=f"{tool.name}-analysis")
        blob = unit.to_bytes()
        _analysis_cache[tool.name] = blob
    return Module.from_bytes(blob)


def apply_tool(app: Module, tool: Tool, *,
               opt: OptLevel = OptLevel.O1,
               heap_mode: str = "linked",
               tool_args: tuple[str, ...] = ()) -> InstrumentResult:
    """Instrument ``app`` with ``tool`` (the paper's step 2)."""
    return instrument_executable(app, tool.instrument,
                                 analysis_unit_for(tool), opt=opt,
                                 heap_mode=heap_mode, tool_args=tool_args)


def run_uninstrumented(app: Module, *, args=(), stdin=b"",
                       max_insts: int = 500_000_000) -> RunResult:
    return run_module(app, args=tuple(args), stdin=stdin,
                      max_insts=max_insts)


def run_instrumented(result: InstrumentResult, *, args=(), stdin=b"",
                     max_insts: int = 2_000_000_000) -> RunResult:
    return run_module(result.module, args=tuple(args), stdin=stdin,
                      max_insts=max_insts)
