"""Applying tools to executables and running the results.

This is the glue the benchmarks and examples share: build (and cache)
each tool's analysis unit, instrument an application with it, and run
either version on the simulated machine collecting cycle counts.

Caching is two-layered.  The in-memory maps below memoize blobs within
one process; underneath them sits the content-addressed on-disk store
(:mod:`repro.eval.cache`), so a warm ``.repro-cache/`` lets repeat runs —
and fresh worker processes in the parallel pipeline — skip
``build_analysis_unit``/``instrument_executable`` entirely.  Pass
``cache=None`` to bypass the disk store for one call, or set
``WRL_CACHE=0`` to disable it process-wide.
"""

from __future__ import annotations

import inspect
import struct

from ..atom import OptLevel, instrument_executable
from ..atom.instrument import InstrumentResult, InstrumentStats
from ..machine import RunResult, run_module
from ..machine.cpu import BudgetExhausted
from ..mlc import build_analysis_unit
from ..objfile.module import Module, ObjError
from ..obs import TRACE
from ..tools import Tool
from .cache import (ArtifactCache, CacheFormatError, analysis_key,
                    get_default_cache, instrument_key, pack_instrument,
                    unpack_instrument)
from .errors import EvalTimeout

#: Compiled analysis units keyed by a content hash of the analysis
#: source.  Keying on the tool *name* served stale units whenever a
#: tool's source changed between calls (or two tools shared a name);
#: the content key makes the cache insensitive to naming entirely.
#: Evicted FIFO past the cap — insertion order is good enough here
#: since the working set is "every distinct tool in one process".
_analysis_cache: dict[str, bytes] = {}
_ANALYSIS_CACHE_CAP = 64

#: Actual compiler invocations this process has performed, by kind.
#: The parallel pipeline snapshots these around each task to report
#: cache effectiveness; tests assert warm-cache runs leave them flat.
COMPILE_COUNTS = {"analysis": 0, "instrument": 0}

#: Distinguishes "use the process default store" from an explicit
#: ``cache=None`` (disable) or ``cache=ArtifactCache(...)``.
_DEFAULT_CACHE = object()


def _resolve_cache(cache) -> ArtifactCache | None:
    if cache is _DEFAULT_CACHE:
        return get_default_cache()
    return cache


#: The request trace id the current task is executing under (serve
#: requests propagate theirs into the worker; local CLIs set it from
#: ``--trace-id``/``WRL_TRACE_ID``).  Every span recorded below tags
#: itself with it, so one merged trace file can be filtered down to a
#: single request's compile/instrument/interpret phases.
_TRACE_ID: str | None = None


def set_trace_id(trace_id: str | None) -> None:
    """Set (or clear, with None) the ambient trace id for this process."""
    global _TRACE_ID
    _TRACE_ID = trace_id


def current_trace_id() -> str | None:
    return _TRACE_ID


def _tag(sp) -> None:
    """Tag a live span with the ambient trace id, when one is set."""
    if _TRACE_ID is not None:
        sp.add(trace_id=_TRACE_ID)


def preload_process() -> None:
    """Pre-import the whole compile/run stack into this process.

    The serve daemon's warm worker pool runs this as the pool
    initializer: a cold Python worker pays several hundred milliseconds
    of imports (parser, codegen, interpreter, tool registry) on its
    first task, which would be charged to whichever unlucky request
    lands there.  After preload, per-task cost is pure work.
    """
    # The imports at the top of this module already pull in the atom
    # instrumenter, the OM passes, the MLC frontend, and the machine;
    # what remains lazy are the tool/workload registries and the
    # heavier leaf modules the first task would fault in.
    from .. import tools, workloads                       # noqa: F401
    from ..machine import jit, loader                     # noqa: F401
    from ..mlc import codegen, parser                     # noqa: F401
    from ..obs import runtime                             # noqa: F401
    from ..tools import TOOL_NAMES, get_tool
    from ..workloads import load_source                   # noqa: F401
    for name in TOOL_NAMES:
        tool = get_tool(name)
        tool.analysis_source                              # noqa: B018


def analysis_unit_for(tool: Tool, *, cache=_DEFAULT_CACHE) -> Module:
    """Compile the tool's analysis routines into a linked unit (cached)."""
    key = analysis_key(tool.analysis_source)
    blob = _analysis_cache.get(key)
    if blob is None:
        disk = _resolve_cache(cache)
        if disk is not None:
            blob = disk.get(key)
            if blob is not None and _module_or_none(blob, disk) is None:
                blob = None                       # unreadable: recompile
        if blob is None:
            COMPILE_COUNTS["analysis"] += 1
            with TRACE.span("compile.analysis", "instrument",
                            tool=tool.name) as sp:
                _tag(sp)
                unit = build_analysis_unit([tool.analysis_source],
                                           name=f"{tool.name}-analysis")
            blob = unit.to_bytes()
            if disk is not None:
                disk.put(key, blob)
        while len(_analysis_cache) >= _ANALYSIS_CACHE_CAP:
            _analysis_cache.pop(next(iter(_analysis_cache)))
        _analysis_cache[key] = blob
    return Module.from_bytes(blob)


#: Exceptions a *malformed byte stream* can legitimately raise while
#: decoding a cached artifact: truncated/garbled framing (struct.error),
#: bad WOF structure (ObjError), stale or unparsable payload framing
#: (CacheFormatError), and value/lookup failures from garbage contents
#: (ValueError, KeyError).  Anything else — TypeError, AttributeError,
#: NameError... — is a programming error in the decoder and must
#: propagate: swallowing it would launder a real bug into a permanent
#: cache miss that gets silently recompiled around forever.
_DECODE_ERRORS = (struct.error, ObjError, CacheFormatError, ValueError,
                  KeyError)


def _module_or_none(blob: bytes,
                    cache: ArtifactCache | None = None) -> Module | None:
    try:
        return Module.from_bytes(blob)
    except _DECODE_ERRORS:
        if cache is not None:
            cache.note_corrupt()
        return None


def _instrument_fingerprint(tool: Tool) -> str | None:
    """Source text of the tool's instrumentation routine, or None when
    it cannot be recovered (interactively defined functions) — in which
    case the instrumented-executable cache is skipped for safety.

    A tool whose Instrument routine reads state outside the
    ``tool_args`` already in the cache key (e.g. taint's
    ``WRL_TAINT_SOURCES`` environment fallback) publishes that state
    via a ``cache_fingerprint_extra`` attribute; it is folded in here so
    a cached instrumented executable can never be served under inputs
    it was not built for."""
    try:
        text = inspect.getsource(tool.instrument)
    except (OSError, TypeError):
        return None
    extra = getattr(tool.instrument, "cache_fingerprint_extra", None)
    if extra is not None:
        text += f"\n# extra: {extra()}"
    return text


def apply_tool(app: Module, tool: Tool, *,
               opt: OptLevel = OptLevel.O1,
               heap_mode: str = "linked",
               tool_args: tuple[str, ...] = (),
               cache=_DEFAULT_CACHE) -> InstrumentResult:
    """Instrument ``app`` with ``tool`` (the paper's step 2).

    With a warm artifact cache the instrumented module and its stats are
    rehydrated from disk (``result.cached`` is True and ``result.plans``
    is None); otherwise the instrumenter runs and its output is stored.
    """
    with TRACE.span("apply_tool", "instrument", tool=tool.name,
                    opt=opt.name) as sp:
        _tag(sp)
        disk = _resolve_cache(cache)
        key = None
        if disk is not None:
            fingerprint = _instrument_fingerprint(tool)
            if fingerprint is not None:
                key = instrument_key(app.to_bytes(), tool.analysis_source,
                                     fingerprint, opt.name, heap_mode,
                                     tuple(tool_args))
                payload = disk.get(key)
                if payload is not None:
                    hit = _instrument_from_payload(payload, disk)
                    if hit is not None:
                        sp.add(cached=True)
                        return hit
        COMPILE_COUNTS["instrument"] += 1
        result = instrument_executable(app, tool.instrument,
                                       analysis_unit_for(tool, cache=cache),
                                       opt=opt, heap_mode=heap_mode,
                                       tool_args=tool_args)
        if key is not None:
            stats = {k: v for k, v in vars(result.stats).items()}
            disk.put(key, pack_instrument(result.module.to_bytes(), stats))
        sp.add(cached=False, points=result.stats.points,
               calls_added=result.stats.calls_added)
        return result


def _instrument_from_payload(payload: bytes,
                             cache: ArtifactCache | None = None,
                             ) -> InstrumentResult | None:
    try:
        module_bytes, stats = unpack_instrument(payload)
        module = Module.from_bytes(module_bytes)
    except _DECODE_ERRORS:
        # Malformed or stale payload: a counted miss, recompiled below.
        # Decoder bugs (TypeError & co.) propagate — see _DECODE_ERRORS.
        if cache is not None:
            cache.note_corrupt()
        return None
    return InstrumentResult(module=module,
                            stats=InstrumentStats(**stats),
                            plans=None, cached=True)


def _checked_run(module: Module, *, stage: str, args, stdin,
                 max_insts: int, fuse: bool = True, jit: bool = True,
                 sampler=None) -> RunResult:
    if not isinstance(max_insts, int) or max_insts <= 0:
        raise ValueError(
            f"max_insts must be a positive integer, got {max_insts!r}")
    try:
        with TRACE.span(f"interpret.{stage}", "interpret") as sp:
            _tag(sp)
            result = run_module(module, args=tuple(args), stdin=stdin,
                                max_insts=max_insts, fuse=fuse, jit=jit,
                                sampler=sampler)
            sp.add(insts=result.inst_count, cycles=result.cycles,
                   status=result.status)
            return result
    except EvalTimeout:
        raise
    except BudgetExhausted as exc:
        raise EvalTimeout(stage, max_insts, exc.pc) from exc


def run_uninstrumented(app: Module, *, args=(), stdin=b"",
                       max_insts: int = 500_000_000,
                       fuse: bool = True, jit: bool = True,
                       sampler=None) -> RunResult:
    return _checked_run(app, stage="base", args=args, stdin=stdin,
                        max_insts=max_insts, fuse=fuse, jit=jit,
                        sampler=sampler)


def run_instrumented(result: InstrumentResult, *, args=(), stdin=b"",
                     max_insts: int = 2_000_000_000,
                     fuse: bool = True, jit: bool = True,
                     sampler=None) -> RunResult:
    return _checked_run(result.module, stage="instrumented", args=args,
                        stdin=stdin, max_insts=max_insts, fuse=fuse,
                        jit=jit, sampler=sampler)
