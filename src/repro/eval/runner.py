"""Applying tools to executables and running the results.

This is the glue the benchmarks and examples share: build (and cache) each
tool's analysis unit, instrument an application with it, and run either
version on the simulated machine collecting cycle counts.
"""

from __future__ import annotations

import hashlib

from ..atom import OptLevel, instrument_executable
from ..atom.instrument import InstrumentResult
from ..machine import RunResult, run_module
from ..mlc import build_analysis_unit
from ..objfile.module import Module
from ..tools import Tool

#: Compiled analysis units keyed by a content hash of the analysis
#: source.  Keying on the tool *name* served stale units whenever a
#: tool's source changed between calls (or two tools shared a name);
#: the content key makes the cache insensitive to naming entirely.
#: Evicted FIFO past the cap — insertion order is good enough here
#: since the working set is "every distinct tool in one process".
_analysis_cache: dict[str, bytes] = {}
_ANALYSIS_CACHE_CAP = 64


def analysis_unit_for(tool: Tool) -> Module:
    """Compile the tool's analysis routines into a linked unit (cached)."""
    key = hashlib.sha256(tool.analysis_source.encode()).hexdigest()
    blob = _analysis_cache.get(key)
    if blob is None:
        unit = build_analysis_unit([tool.analysis_source],
                                   name=f"{tool.name}-analysis")
        blob = unit.to_bytes()
        while len(_analysis_cache) >= _ANALYSIS_CACHE_CAP:
            _analysis_cache.pop(next(iter(_analysis_cache)))
        _analysis_cache[key] = blob
    return Module.from_bytes(blob)


def apply_tool(app: Module, tool: Tool, *,
               opt: OptLevel = OptLevel.O1,
               heap_mode: str = "linked",
               tool_args: tuple[str, ...] = ()) -> InstrumentResult:
    """Instrument ``app`` with ``tool`` (the paper's step 2)."""
    return instrument_executable(app, tool.instrument,
                                 analysis_unit_for(tool), opt=opt,
                                 heap_mode=heap_mode, tool_args=tool_args)


def run_uninstrumented(app: Module, *, args=(), stdin=b"",
                       max_insts: int = 500_000_000) -> RunResult:
    return run_module(app, args=tuple(args), stdin=stdin,
                      max_insts=max_insts)


def run_instrumented(result: InstrumentResult, *, args=(), stdin=b"",
                     max_insts: int = 2_000_000_000) -> RunResult:
    return run_module(result.module, args=tuple(args), stdin=stdin,
                      max_insts=max_insts)
