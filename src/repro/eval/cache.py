"""Content-addressed on-disk store for compiled evaluation artifacts.

Compiling a workload, an analysis unit, or an instrumented executable is
pure: the output is a function of the source text and the build flags.
This module keys each artifact by a SHA-256 over those inputs and keeps
the resulting blobs under ``.repro-cache/`` so repeat bench/eval runs —
including runs in fresh worker processes — skip recompilation entirely.

Layout::

    <root>/objects/<k[:2]>/<k>     # k = 64-hex content key
                                   # blob = sha256(payload) || payload

* The key hashes the *inputs* (source, flags, schema version); the
  leading digest hashes the *payload*, so a corrupted or truncated blob
  is detected on read, deleted, and treated as a miss — callers
  recompile, they never crash on bad cache bytes.
* Writes are atomic (temp file + ``os.replace``), so concurrent workers
  racing on the same key at worst both compile; the store never holds a
  half-written blob.
* Eviction is LRU past ``cap`` entries — and, when a byte quota is set
  (``max_bytes``), past that many payload bytes on disk: the serve
  daemon layers per-tenant namespaces on this, giving every tenant its
  own rooted store whose eviction can only ever touch that tenant's
  blobs.  ``WRL_CACHE_CAP`` overrides the default entry cap of 512.
  Recency is tracked by stamping blobs with explicit,
  strictly increasing nanosecond mtimes (``os.utime(path, ns=...)``) on
  every store and hit: filesystem timestamp granularity can be as coarse
  as one second, and letting hits tie would make eviction pick among hot
  blobs effectively arbitrarily.  Ordering falls back to the blob name
  only for stamps not issued by this process (e.g. a pre-existing tree).

Resolution order for the default store: disabled when ``WRL_CACHE`` is
``0``/``off``/``false``; rooted at ``WRL_CACHE_DIR`` when set; otherwise
``.repro-cache/`` under the current working directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from .. import __version__ as _REPRO_VERSION
from ..obs import TRACE

#: Every key mixes in this tag and the package version, so a release
#: bump invalidates stale artifacts wholesale; bump the schema suffix
#: when the artifact format or the compiler pipeline changes
#: incompatibly within a version.
CACHE_SCHEMA = f"wrl-cache/v1/{_REPRO_VERSION}"

DEFAULT_DIR_NAME = ".repro-cache"
DEFAULT_CAP = 512

ENV_DIR = "WRL_CACHE_DIR"
ENV_TOGGLE = "WRL_CACHE"
ENV_CAP = "WRL_CACHE_CAP"

_DIGEST_LEN = 32


class CacheFormatError(Exception):
    """A cached payload did not unpack as the expected artifact."""


def cache_enabled() -> bool:
    """False when ``WRL_CACHE`` opts out of the on-disk store."""
    return os.environ.get(ENV_TOGGLE, "1").lower() not in (
        "0", "off", "false", "no")


def default_cache_dir() -> Path:
    """``WRL_CACHE_DIR`` when set, else ``.repro-cache/`` under cwd."""
    override = os.environ.get(ENV_DIR)
    return Path(override) if override else Path.cwd() / DEFAULT_DIR_NAME


def _default_cap() -> int:
    try:
        return max(1, int(os.environ.get(ENV_CAP, DEFAULT_CAP)))
    except ValueError:
        return DEFAULT_CAP


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    evicted: int = 0


class ArtifactCache:
    """One content-addressed blob store rooted at a directory."""

    def __init__(self, root: Path | str | None = None,
                 cap: int | None = None,
                 max_bytes: int | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.cap = cap if cap is not None else _default_cap()
        #: Optional byte quota over the blobs on disk (None = entry cap
        #: only).  Eviction keeps the store under *both* limits.
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        #: Cached blob count so a warm-cache ``put`` does O(1) work
        #: instead of re-listing ``objects/``; None means "recount on
        #: next use" (fresh store, or invalidated by clear/corruption —
        #: moments when our view of the tree may have drifted from disk).
        self._nblobs: int | None = None
        #: Cached byte total, maintained the same way (only consulted
        #: when a byte quota is set).
        self._nbytes: int | None = None
        #: Last LRU stamp issued (ns).  Each touch takes
        #: max(now_ns, last + 1), so stamps are strictly increasing even
        #: when the clock is coarse or steps backwards.
        self._lru_clock = 0

    # ---- paths ------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def _path(self, key: str) -> Path:
        return self.objects_dir / key[:2] / key

    # ---- store API --------------------------------------------------------

    def get(self, key: str) -> bytes | None:
        """The payload for ``key``, or None on miss or corruption."""
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            TRACE.count("cache.misses")
            return None
        digest, payload = blob[:_DIGEST_LEN], blob[_DIGEST_LEN:]
        if len(blob) < _DIGEST_LEN or \
                hashlib.sha256(payload).digest() != digest:
            self.stats.corrupt += 1
            TRACE.count("cache.corrupt")
            self._nblobs = None
            self._nbytes = None
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        TRACE.count("cache.hits")
        self._touch(path)                        # refresh LRU position
        return payload

    def put(self, key: str, payload: bytes) -> None:
        """Store ``payload`` under ``key`` atomically, then evict LRU."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = hashlib.sha256(payload).digest() + payload
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        existed = path.exists()
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        TRACE.count("cache.stores")
        self._touch(path)
        if not existed:
            if self._nblobs is not None:
                self._nblobs += 1
            if self._nbytes is not None:
                self._nbytes += len(blob)
        else:
            # Overwrite: the old size is unknown; recount lazily.
            self._nbytes = None
        self._evict()

    def note_corrupt(self) -> None:
        """Record an undecodable payload found by a caller: the blob
        passed the digest check but its contents did not unpack as the
        expected artifact.  Counted so these misses are visible in
        ``wrl-trace summary`` rather than silently recompiled around."""
        self.stats.corrupt += 1
        TRACE.count("cache.corrupt")
        self._nblobs = None
        self._nbytes = None

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_blobs())

    def total_bytes(self) -> int:
        """Bytes of blob data on disk (stat walk; not the cached view)."""
        total = 0
        for path in self._iter_blobs():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> None:
        """Delete every blob; a no-op on a never-populated root."""
        for path in list(self._iter_blobs()):
            try:
                path.unlink()
            except OSError:
                pass
        self._nblobs = None
        self._nbytes = None

    # ---- eviction ---------------------------------------------------------

    def _touch(self, path: Path) -> None:
        """Stamp ``path`` with the next strictly increasing LRU time.

        ``os.utime(path)`` alone is not enough: on filesystems with
        coarse (up to 1 s) timestamp granularity, blobs touched in the
        same tick tie and eviction order among them is arbitrary —
        evicting hot blobs.  Explicit ns stamps from a monotonically
        advanced clock make recency a total order.
        """
        self._lru_clock = t = max(time.time_ns(), self._lru_clock + 1)
        try:
            os.utime(path, ns=(t, t))
        except OSError:
            pass

    def _iter_blobs(self):
        # Tolerate a root that has never seen a put (or was removed from
        # under us): an empty iteration, not FileNotFoundError.
        try:
            buckets = list(self.objects_dir.iterdir())
        except OSError:
            return
        for bucket in buckets:
            if bucket.is_dir():
                for path in bucket.iterdir():
                    if not path.name.startswith("."):
                        yield path

    def _evict(self) -> None:
        # O(1) on the warm path: trust the cached count while it says we
        # are under cap, and only re-list ``objects/`` (re-establishing
        # the exact count) once it claims a limit is exceeded.
        if self._nblobs is None:
            self._nblobs = sum(1 for _ in self._iter_blobs())
        over_count = self._nblobs > self.cap
        over_bytes = False
        if self.max_bytes is not None:
            if self._nbytes is None:
                self._nbytes = self.total_bytes()
            over_bytes = self._nbytes > self.max_bytes
        if not over_count and not over_bytes:
            return
        def lru_key(entry):
            # ns-precision recency (matching _touch's stamps), with the
            # blob name as a deterministic tie-break for stamps this
            # process did not issue.
            path, _ = entry
            try:
                return (path.stat().st_mtime_ns, path.name)
            except OSError:
                return (0, path.name)
        blobs = []
        for path in self._iter_blobs():
            try:
                size = path.stat().st_size
            except OSError:
                size = 0
            blobs.append((path, size))
        self._nblobs = len(blobs)
        self._nbytes = sum(size for _, size in blobs)
        blobs.sort(key=lru_key)
        for path, size in blobs:
            if self._nblobs <= self.cap and (
                    self.max_bytes is None
                    or self._nbytes <= self.max_bytes):
                break
            try:
                path.unlink()
                self.stats.evicted += 1
                self._nblobs -= 1
                self._nbytes -= size
                TRACE.count("cache.evicted")
            except OSError:
                pass


#: Default stores memoized per resolved root, so counters accumulate
#: across calls within a process but tests get a fresh instance whenever
#: they repoint ``WRL_CACHE_DIR``.
_default_caches: dict[Path, ArtifactCache] = {}


def get_default_cache() -> ArtifactCache | None:
    """The process-default store, or None when caching is disabled."""
    if not cache_enabled():
        return None
    root = default_cache_dir()
    cache = _default_caches.get(root)
    if cache is None:
        cache = _default_caches[root] = ArtifactCache(root)
    return cache


# ---- content keys ---------------------------------------------------------

def content_key(kind: str, *parts: bytes | str | int | tuple) -> str:
    """SHA-256 over the schema tag, ``kind``, and length-framed parts.

    Length framing keeps distinct part sequences from colliding (e.g.
    ``("ab", "c")`` vs ``("a", "bc")``).
    """
    digest = hashlib.sha256()
    for piece in (CACHE_SCHEMA, kind) + parts:
        if isinstance(piece, tuple):
            raw = json.dumps(piece, default=str).encode()
        elif isinstance(piece, (int, float)):
            raw = repr(piece).encode()
        elif isinstance(piece, str):
            raw = piece.encode()
        else:
            raw = piece
        digest.update(struct.pack(">Q", len(raw)))
        digest.update(raw)
    return digest.hexdigest()


def analysis_key(analysis_source: str) -> str:
    """Key for a compiled analysis unit."""
    return content_key("analysis", analysis_source)


def executable_key(sources: tuple[str, ...], name: str) -> str:
    """Key for a compiled+linked application executable."""
    return content_key("executable", name, *sources)


def instrument_key(app_bytes: bytes, analysis_source: str,
                   instrument_fingerprint: str, opt: str, heap_mode: str,
                   tool_args: tuple[str, ...]) -> str:
    """Key for an instrumented executable (module bytes + stats)."""
    return content_key("instrument", app_bytes, analysis_source,
                       instrument_fingerprint, opt, heap_mode, tool_args)


# ---- instrumented-executable payload framing ------------------------------

def pack_instrument(module_bytes: bytes, stats: dict) -> bytes:
    """``[u32 header len][header JSON][module bytes]``."""
    header = json.dumps({"schema": CACHE_SCHEMA, "stats": stats},
                        sort_keys=True).encode()
    return struct.pack(">I", len(header)) + header + module_bytes


def unpack_instrument(payload: bytes) -> tuple[bytes, dict]:
    """Inverse of :func:`pack_instrument`; raises CacheFormatError."""
    try:
        (header_len,) = struct.unpack_from(">I", payload)
        header = json.loads(payload[4:4 + header_len])
        module_bytes = payload[4 + header_len:]
        if header.get("schema") != CACHE_SCHEMA:
            raise CacheFormatError(
                f"stale cache schema {header.get('schema')!r}")
        return module_bytes, header["stats"]
    except CacheFormatError:
        raise
    except Exception as exc:
        raise CacheFormatError(f"bad instrumented payload: {exc}") from exc
