"""Shard-aware parallel evaluation pipeline (``wrl-eval``).

The paper's evaluation is a (tool × workload × opt-level) matrix; this
module fans that matrix out across a ``ProcessPoolExecutor`` work queue
with:

* **deterministic shard assignment** — :func:`shard_of` hashes the task
  id, so a matrix split ``--shard i/n`` across n independent invocations
  covers every cell exactly once regardless of scheduling;
* **per-task timeout and retry** — a deterministic instruction-budget
  timeout inside the worker (surfaced as a ``timeout`` record via
  :class:`~repro.eval.errors.EvalTimeout`) plus an optional wall-clock
  backstop in the parent that kills and replaces the pool, quarantining
  the flaky task instead of aborting the whole run;
* **structured per-task records** — :class:`TaskResult` carries status,
  cycles, instruction counts, wall time, instrumentation stats, content
  hashes of the observable outputs, and cache effectiveness, and its
  :meth:`TaskResult.identity` tuple is the bit-identical contract the
  conformance suite checks serial-vs-parallel and run-vs-rerun.

Workers share compiled artifacts through the content-addressed on-disk
store (:mod:`repro.eval.cache`), so a warm cache makes a repeat matrix
run execute zero compiles.  ``jobs=0`` runs the same records inline in
the calling process — the serial reference the differential tests
compare against.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from collections import deque
from concurrent.futures import (FIRST_COMPLETED, ProcessPoolExecutor,
                                ThreadPoolExecutor, wait)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..atom import OptLevel
from ..obs import (TRACE, mint_trace_id, trace_id_from_env,
                   trace_path_from_env)
from ..obs.runtime import ENV_HEARTBEAT
from ..tools import TOOL_NAMES, get_tool
from ..workloads import WORKLOAD_NAMES, build_workload
from . import runner
from .cache import ArtifactCache, cache_enabled, default_cache_dir
from .errors import EvalTimeout

MATRIX_SCHEMA = "repro-eval-matrix/v1"


def default_jobs() -> int:
    """Worker-pool width for this process: the CPUs it may actually
    run on (``sched_getaffinity`` — cgroup/CPU-quota aware), not the
    machine-wide ``cpu_count()``, which oversubscribes the pool inside
    containers pinned to a slice of the host.  Shared by the ``wrl-eval``
    ``--jobs`` default and the serve daemon's pool sizing."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)

#: Compact default matrix: every stock tool over four small workloads at
#: the default opt level (use --all for the full 11 x 20 sweep).
DEFAULT_WORKLOADS = ("fileio", "espresso", "li", "fib")
DEFAULT_OPTS = ("O1",)


# ---- task specification ---------------------------------------------------

@dataclass(frozen=True)
class TaskSpec:
    """One (tool, workload, opt) cell of the evaluation matrix."""

    tool: str
    workload: str
    opt: str = "O1"
    heap_mode: str = "linked"
    tool_args: tuple[str, ...] = ()
    wl_args: tuple[str, ...] = ()
    stdin: bytes = b""
    base_max_insts: int = 500_000_000
    max_insts: int = 2_000_000_000
    #: Timed repetitions per run (wall-clock best-of-N); 1 warmup run is
    #: added when ``warmup`` — the bench harness convention.
    reps: int = 1
    warmup: bool = False

    @property
    def task_id(self) -> str:
        extra = ""
        if self.tool_args or self.wl_args or self.stdin:
            extra = ":" + hashlib.sha256(
                repr((self.tool_args, self.wl_args, self.stdin)).encode()
            ).hexdigest()[:12]
        return (f"{self.tool}:{self.workload}:{self.opt}:"
                f"{self.heap_mode}{extra}")


def plan_matrix(tools=TOOL_NAMES, workloads=DEFAULT_WORKLOADS,
                opts=DEFAULT_OPTS, **spec_kw) -> list[TaskSpec]:
    """The full matrix in deterministic workload-major order."""
    return [TaskSpec(tool=t, workload=w, opt=o, **spec_kw)
            for w in workloads for t in tools for o in opts]


def shard_of(spec: TaskSpec, num_shards: int) -> int:
    """Deterministic shard for a task: a hash of its id, not its list
    position, so adding or reordering cells never reshuffles the rest."""
    if num_shards <= 1:
        return 0
    digest = hashlib.sha256(spec.task_id.encode()).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


def select_shard(specs, shard: int, num_shards: int) -> list[TaskSpec]:
    """The subset of ``specs`` assigned to ``shard`` of ``num_shards``."""
    if not 0 <= shard < num_shards:
        raise ValueError(f"shard {shard} not in [0, {num_shards})")
    return [s for s in specs if shard_of(s, num_shards) == shard]


# ---- task records ---------------------------------------------------------

@dataclass
class TaskResult:
    """Structured outcome of one matrix cell.

    Deterministic fields (everything in :meth:`identity`) are
    bit-identical between serial and parallel execution and across
    repeat runs; wall-clock and cache fields are informational.
    """

    tool: str
    workload: str
    opt: str
    heap_mode: str = "linked"
    status: str = "ok"              # ok | timeout | error
    error: str = ""
    attempts: int = 1
    shard: int = 0
    quarantined: bool = False
    wall_s: float = 0.0
    base_status: int = 0
    base_cycles: int = 0
    base_insts: int = 0
    base_wall_s: float = 0.0
    instr_status: int = 0
    instr_cycles: int = 0
    instr_insts: int = 0
    instr_wall_s: float = 0.0
    points: int = 0
    calls_added: int = 0
    #: Instrumented stdout/status match the uninstrumented run — the
    #: paper's pristine-behaviour guarantee, checked per cell.
    pristine: bool = False
    stdout_sha: str = ""
    files_sha: str = ""
    analysis_compiled: bool = False
    instr_compiled: bool = False
    #: Tracer snapshot captured in a worker process (None unless the run
    #: was traced); merged into the parent trace, never part of
    #: :meth:`identity` and stripped from the matrix report.
    trace: dict | None = None

    def identity(self) -> tuple:
        """Everything that must be bit-identical across runners."""
        return (self.tool, self.workload, self.opt, self.heap_mode,
                self.status, self.base_status, self.base_cycles,
                self.base_insts, self.instr_status, self.instr_cycles,
                self.instr_insts, self.points, self.calls_added,
                self.pristine, self.stdout_sha, self.files_sha)

    @property
    def cycle_overhead(self) -> float:
        if self.status != "ok" or not self.base_cycles:
            return 0.0
        return self.instr_cycles / self.base_cycles


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _files_sha(files: dict[str, bytes]) -> str:
    digest = hashlib.sha256()
    for name in sorted(files):
        digest.update(name.encode() + b"\x00")
        digest.update(hashlib.sha256(files[name]).digest())
    return digest.hexdigest()


# ---- worker side ----------------------------------------------------------

#: Uninstrumented runs memoized per process: every tool cell of one
#: workload shares the same baseline, so a worker runs it once.
_base_memo: dict[tuple, tuple] = {}


def _resolve_worker_cache(cache_spec) -> ArtifactCache | None:
    """Materialize a picklable cache spec in a worker process.

    ``False`` disables the store, ``None`` uses the process default, a
    path roots a store there, and a ``(root, cap, max_bytes)`` tuple —
    the serve daemon's per-tenant namespaces — roots a quota-bounded
    store whose eviction only ever touches that root.
    """
    if cache_spec is False:
        return None
    if cache_spec is None:
        return runner._resolve_cache(runner._DEFAULT_CACHE)
    if isinstance(cache_spec, tuple):
        root, cap, max_bytes = cache_spec
        return ArtifactCache(Path(root), cap=cap, max_bytes=max_bytes)
    return ArtifactCache(Path(cache_spec))


def _timed(run_fn, *, reps: int, warmup: bool):
    """(result, best wall seconds) with the bench warmup convention."""
    if warmup:
        run_fn()
    best = None
    result = None
    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        result = run_fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def execute_task(spec: TaskSpec, cache_spec=None, fuse: bool = True,
                 trace: bool = False,
                 trace_id: str | None = None) -> TaskResult:
    """Run one cell; never raises — failures become the record status.

    ``trace=True`` captures the cell's spans and counters.  When the
    ambient tracer is owned by this process (the serial runner), events
    simply accumulate there; otherwise (a pool worker — its tracer is
    either disabled or a fork-inherited copy of the parent's) a fresh
    capture is started and shipped back in ``TaskResult.trace`` for the
    parent to merge.

    ``trace_id`` is the request context this cell executes under: it
    becomes the ambient :func:`repro.eval.runner.set_trace_id` for the
    duration and is stamped onto every captured event, so the worker's
    spans land in the merged trace under the same id as the client's
    and daemon's spans for that request.
    """
    capture = trace and not TRACE.owned()
    if capture:
        TRACE.reset()
        TRACE.enable()
    prev_id = runner.current_trace_id()
    runner.set_trace_id(trace_id)
    try:
        rec = _execute_task(spec, cache_spec, fuse)
    finally:
        runner.set_trace_id(prev_id)
        if capture:
            rec_trace = TRACE.snapshot()
            TRACE.disable()
            TRACE.reset()
    if capture:
        if trace_id is not None:
            for ev in rec_trace.get("events", ()):
                ev["args"].setdefault("trace_id", trace_id)
        rec.trace = rec_trace
    return rec


def _heartbeat(spec: TaskSpec):
    """A HeartbeatWriter when ``WRL_HEARTBEAT`` names a file, else None.

    Heartbeats are observational only: they ride the sampling hook (which
    never perturbs guest state) and touch no :meth:`TaskResult.identity`
    field, so a heartbeat-enabled matrix run stays bit-identical.
    """
    from ..obs.runtime import HeartbeatWriter, heartbeat_path
    path = heartbeat_path()
    if path is None:
        return None
    return HeartbeatWriter(path, spec.task_id)


def _execute_task(spec: TaskSpec, cache_spec, fuse: bool) -> TaskResult:
    rec = TaskResult(tool=spec.tool, workload=spec.workload, opt=spec.opt,
                     heap_mode=spec.heap_mode)
    cache = _resolve_worker_cache(cache_spec)
    analysis_before = runner.COMPILE_COUNTS["analysis"]
    t0 = time.perf_counter()
    task_span = TRACE.span("task", "eval", task=spec.task_id)
    task_span.__enter__()
    if runner.current_trace_id() is not None:
        task_span.add(trace_id=runner.current_trace_id())
    heartbeat = _heartbeat(spec)
    if heartbeat is not None:
        heartbeat.emit("start")
    try:
        app = build_workload(spec.workload)
        tool = get_tool(spec.tool)

        base_key = (spec.workload, spec.wl_args, spec.stdin,
                    spec.base_max_insts, fuse, spec.reps, spec.warmup)
        memo = _base_memo.get(base_key)
        if memo is None:
            base_sampler = None if heartbeat is None \
                else heartbeat.sampler("base")
            memo = _timed(
                lambda: runner.run_uninstrumented(
                    app, args=spec.wl_args, stdin=spec.stdin,
                    max_insts=spec.base_max_insts, fuse=fuse,
                    sampler=base_sampler),
                reps=spec.reps, warmup=spec.warmup)
            _base_memo[base_key] = memo
        base, base_wall = memo
        if heartbeat is not None:
            heartbeat.emit("base", insts=base.inst_count,
                           cycles=base.cycles)

        instrumented = runner.apply_tool(
            app, tool, opt=OptLevel[spec.opt], heap_mode=spec.heap_mode,
            tool_args=spec.tool_args, cache=cache)
        instr_sampler = None if heartbeat is None \
            else heartbeat.sampler("instrumented")
        if heartbeat is not None:
            heartbeat.emit("instrumented-built",
                           cache_hit=instrumented.cached)
        instr, instr_wall = _timed(
            lambda: runner.run_instrumented(
                instrumented, args=spec.wl_args, stdin=spec.stdin,
                max_insts=spec.max_insts, fuse=fuse,
                sampler=instr_sampler),
            reps=spec.reps, warmup=spec.warmup)

        rec.base_status = base.status
        rec.base_cycles = base.cycles
        rec.base_insts = base.inst_count
        rec.base_wall_s = base_wall
        rec.instr_status = instr.status
        rec.instr_cycles = instr.cycles
        rec.instr_insts = instr.inst_count
        rec.instr_wall_s = instr_wall
        rec.points = instrumented.stats.points
        rec.calls_added = instrumented.stats.calls_added
        rec.pristine = (instr.stdout == base.stdout
                        and instr.status == base.status)
        rec.stdout_sha = _sha(instr.stdout)
        rec.files_sha = _files_sha(instr.files)
        rec.instr_compiled = not instrumented.cached
    except EvalTimeout as exc:
        rec.status = "timeout"
        rec.error = str(exc)
    except Exception as exc:                         # noqa: BLE001
        rec.status = "error"
        rec.error = f"{type(exc).__name__}: {exc}"
    rec.wall_s = time.perf_counter() - t0
    rec.analysis_compiled = \
        runner.COMPILE_COUNTS["analysis"] > analysis_before
    if heartbeat is not None:
        ips = int(rec.instr_insts / rec.instr_wall_s) \
            if rec.instr_wall_s else 0
        heartbeat.emit("done", status=rec.status,
                       insts=rec.instr_insts, ips=ips,
                       cache_hit=not rec.instr_compiled,
                       wall_s=round(rec.wall_s, 3))
    task_span.add(status=rec.status)
    task_span.__exit__(None, None, None)
    return rec


def run_with_retries(spec: TaskSpec, cache_spec=None, fuse: bool = True,
                     retries: int = 1, trace: bool = False,
                     trace_id: str | None = None) -> TaskResult:
    """One cell with the serial retry/quarantine semantics.

    This is the *contract* the serve daemon's workers share with the
    inline (``jobs=0``) runner: erroring tasks are retried up to
    ``retries`` times, deterministic timeouts are never retried, and
    the surviving record carries its attempt count with ``quarantined``
    set for any non-ok outcome — so a task that times out under the
    daemon produces the same record as under ``wrl-eval``.
    """
    attempt = 0
    while True:
        attempt += 1
        rec = execute_task(spec, cache_spec, fuse, trace, trace_id)
        if rec.status != "error" or attempt > retries:
            break
    rec.attempts = attempt
    rec.quarantined = rec.status != "ok"
    return rec


# ---- the work-queue runner ------------------------------------------------

def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool whose worker is wedged past its wall timeout."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except OSError:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def run_matrix(specs, *, jobs: int = 0, cache_spec=None, fuse: bool = True,
               retries: int = 1, wall_timeout: float | None = None,
               num_shards: int = 1, progress=None,
               trace_id: str | None = None) -> list[TaskResult]:
    """Execute every spec; results come back in spec order.

    ``jobs=0`` runs inline (the serial reference); ``jobs>=1`` fans out
    over that many worker processes.  A task whose worker raises is
    retried up to ``retries`` times and then quarantined (recorded, not
    fatal); deterministic timeouts (instruction budget) are never
    retried.  ``wall_timeout`` seconds per task is the non-deterministic
    backstop: an overdue worker is killed, the pool is rebuilt, the
    overdue task is quarantined as a timeout, and its innocent in-flight
    siblings are requeued *without* consuming an attempt.

    A crashed worker breaks the whole pool, so every sibling future
    raises ``BrokenProcessPool`` and the guilty task cannot be told
    apart from the innocents.  No task is charged an attempt for a
    batch break; instead every implicated task becomes a *suspect* and
    is probed serially (one submission at a time, nothing else in
    flight).  A task that breaks the pool while alone in flight is
    definitively guilty: that break consumes one of its attempts, and
    past ``retries`` it is quarantined as ``worker process died``.

    When tracing is enabled (:data:`repro.obs.TRACE`), each worker
    captures its own spans and ships them back in ``TaskResult.trace``;
    they are merged into the ambient tracer here, so serial and
    parallel runs produce one coherent trace.
    """
    specs = list(specs)
    results: dict[int, TaskResult] = {}
    trace_on = TRACE.enabled

    def finish(idx: int, rec: TaskResult, attempt: int) -> None:
        rec.attempts = attempt
        rec.shard = shard_of(specs[idx], num_shards)
        if rec.trace is not None:
            TRACE.merge(rec.trace)
            rec.trace = None
        results[idx] = rec
        if progress is not None:
            progress(rec)

    if jobs <= 0:
        for idx, spec in enumerate(specs):
            rec = run_with_retries(spec, cache_spec, fuse, retries,
                                   trace_on, trace_id)
            finish(idx, rec, rec.attempts)
        return [results[i] for i in range(len(specs))]

    pending: deque[tuple[int, int]] = deque(
        (idx, 1) for idx in range(len(specs)))
    #: Tasks implicated in a pool break, probed one at a time so a
    #: repeat break attributes guilt exactly.
    suspects: deque[tuple[int, int]] = deque()
    pool = ProcessPoolExecutor(max_workers=jobs)
    inflight: dict = {}              # future -> (idx, attempt, start time)

    def reinstate(items) -> None:
        """Return innocents to the *front* of the queue in spec order,
        at their current attempt — being collateral costs nothing."""
        for idx, attempt in sorted(items, reverse=True):
            pending.appendleft((idx, attempt))

    def quarantine_dead(idx: int, attempt: int) -> None:
        spec = specs[idx]
        finish(idx, TaskResult(
            tool=spec.tool, workload=spec.workload, opt=spec.opt,
            heap_mode=spec.heap_mode, status="error",
            error="worker process died", quarantined=True), attempt)

    def rebuild_pool() -> ProcessPoolExecutor:
        _kill_pool(pool)
        return ProcessPoolExecutor(max_workers=jobs)

    try:
        while pending or suspects or inflight:
            if suspects:
                # Probe mode: exactly one suspect in flight at a time.
                if not inflight:
                    idx, attempt = suspects.popleft()
                    fut = pool.submit(execute_task, specs[idx],
                                      cache_spec, fuse, trace_on,
                                      trace_id)
                    inflight[fut] = (idx, attempt, time.monotonic())
            else:
                while pending and len(inflight) < jobs:
                    idx, attempt = pending.popleft()
                    fut = pool.submit(execute_task, specs[idx],
                                      cache_spec, fuse, trace_on,
                                      trace_id)
                    inflight[fut] = (idx, attempt, time.monotonic())

            done, _ = wait(list(inflight), timeout=0.1,
                           return_when=FIRST_COMPLETED)
            breakers: list[tuple[int, int]] = []
            for fut in done:
                idx, attempt, _ = inflight.pop(fut)
                spec = specs[idx]
                try:
                    rec = fut.result()
                except BrokenProcessPool:
                    breakers.append((idx, attempt))
                    continue
                except Exception as exc:             # noqa: BLE001
                    rec = TaskResult(
                        tool=spec.tool, workload=spec.workload,
                        opt=spec.opt, heap_mode=spec.heap_mode,
                        status="error",
                        error=f"{type(exc).__name__}: {exc}")
                if rec.status == "error" and attempt <= retries:
                    pending.append((idx, attempt + 1))
                    continue
                rec.quarantined = rec.status != "ok"
                finish(idx, rec, attempt)
            if breakers:
                # Everything still in flight went down with the pool.
                for fut, (idx, attempt, _) in list(inflight.items()):
                    fut.cancel()
                    breakers.append((idx, attempt))
                inflight.clear()
                if len(breakers) == 1:
                    # Alone in flight: definitively guilty — this break
                    # consumes an attempt.
                    idx, attempt = breakers[0]
                    if attempt <= retries:
                        suspects.append((idx, attempt + 1))
                    else:
                        quarantine_dead(idx, attempt)
                else:
                    # Guilt is unattributable in a batch: nobody is
                    # charged; everyone gets probed serially.
                    suspects.extend(sorted(breakers))
                pool = rebuild_pool()
                continue

            if wall_timeout is not None and inflight:
                now = time.monotonic()
                overdue = [fut for fut, (_, _, t0) in inflight.items()
                           if now - t0 > wall_timeout]
                if overdue:
                    for fut in overdue:
                        idx, attempt, t0 = inflight.pop(fut)
                        spec = specs[idx]
                        rec = TaskResult(
                            tool=spec.tool, workload=spec.workload,
                            opt=spec.opt, heap_mode=spec.heap_mode,
                            status="timeout",
                            error=(f"wall timeout after "
                                   f"{wall_timeout:.1f}s"),
                            wall_s=now - t0, quarantined=True)
                        finish(idx, rec, attempt)
                    innocents = []
                    for fut, (idx, attempt, _) in list(inflight.items()):
                        fut.cancel()
                        innocents.append((idx, attempt))
                    inflight.clear()
                    reinstate(innocents)
                    pool = rebuild_pool()
    finally:
        _kill_pool(pool)

    return [results[i] for i in range(len(specs))]


def run_matrix_via_server(specs, server, *, tenant=None, jobs: int = 4,
                          retries: int = 1, num_shards: int = 1,
                          progress=None,
                          trace_id: str | None = None) -> list[TaskResult]:
    """Execute every spec through a ``wrl-serve`` daemon (spec order).

    The thin-client counterpart of :func:`run_matrix`: each cell becomes
    one eval request, issued over up to ``jobs`` concurrent connections
    so the daemon can dedup and batch across them.  Structured daemon
    errors (``overloaded``, protocol rejections) become error records
    rather than exceptions, mirroring the local runner's never-raise
    contract; everything in :meth:`TaskResult.identity` is byte-identical
    to a local run because the daemon's workers execute the very same
    :func:`run_with_retries`.
    """
    from ..serve.client import ServeClient, ServeError
    specs = list(specs)
    client = ServeClient(server)
    results: dict[int, TaskResult] = {}

    def one(item):
        idx, spec = item
        try:
            record = client.eval_task(spec, tenant=tenant,
                                      retries=retries, trace_id=trace_id)
            rec = TaskResult(**record)
        except ServeError as exc:
            rec = TaskResult(tool=spec.tool, workload=spec.workload,
                             opt=spec.opt, heap_mode=spec.heap_mode,
                             status="error",
                             error=f"serve:{exc.kind}: {exc}",
                             quarantined=True)
        rec.shard = shard_of(spec, num_shards)
        return idx, rec

    with ThreadPoolExecutor(max_workers=max(1, jobs)) as pool:
        for idx, rec in pool.map(one, enumerate(specs)):
            results[idx] = rec
            if progress is not None:
                progress(rec)
    return [results[i] for i in range(len(specs))]


# ---- the matrix report ----------------------------------------------------

def default_matrix_path() -> Path:
    """``EVAL_matrix.json`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "EVAL_matrix.json"


def summarize(records) -> dict:
    records = list(records)
    return {
        "total": len(records),
        "ok": sum(r.status == "ok" for r in records),
        "timeout": sum(r.status == "timeout" for r in records),
        "error": sum(r.status == "error" for r in records),
        "quarantined": sum(r.quarantined for r in records),
        "pristine": sum(r.pristine for r in records),
        "analysis_compiles": sum(r.analysis_compiled for r in records),
        "instr_compiles": sum(r.instr_compiled for r in records),
        "wall_s": round(sum(r.wall_s for r in records), 3),
    }


def build_report(records, config: dict) -> dict:
    records = list(records)
    rows = [asdict(rec) for rec in records]
    for row in rows:
        row.pop("trace", None)       # tracer payload, not a result field
    return {
        "schema": MATRIX_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "config": config,
        "summary": summarize(records),
        "records": rows,
    }


def validate_matrix_report(report: dict) -> None:
    """Raise ValueError when ``report`` does not match the schema."""
    def need(cond, what):
        if not cond:
            raise ValueError(f"bad eval matrix report: {what}")

    need(isinstance(report, dict), "not an object")
    need(report.get("schema") == MATRIX_SCHEMA,
         f"schema != {MATRIX_SCHEMA!r}")
    for key in ("created", "host", "config", "summary", "records"):
        need(key in report, f"missing key {key!r}")
    summary = report["summary"]
    for key in ("total", "ok", "timeout", "error", "quarantined",
                "analysis_compiles", "instr_compiles"):
        need(isinstance(summary.get(key), int), f"summary[{key!r}]")
    records = report["records"]
    need(isinstance(records, list) and records, "empty records")
    need(summary["total"] == len(records), "summary/records mismatch")
    for i, row in enumerate(records):
        for key in ("tool", "workload", "opt", "status", "base_cycles",
                    "instr_cycles", "base_insts", "instr_insts",
                    "points", "stdout_sha", "files_sha", "shard"):
            need(key in row, f"records[{i}] missing {key!r}")
        need(row["status"] in ("ok", "timeout", "error"),
             f"records[{i}] bad status {row['status']!r}")


def load_matrix_report(path: Path | None = None) -> dict | None:
    """Load and validate a committed report; None when absent."""
    path = path or default_matrix_path()
    if not path.exists():
        return None
    report = json.loads(path.read_text())
    validate_matrix_report(report)
    return report


# ---- CLI ------------------------------------------------------------------

def _parse_shard(text: str) -> tuple[int, int]:
    try:
        shard, num = text.split("/")
        shard, num = int(shard), int(num)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected I/N (e.g. 0/2), got {text!r}") from None
    if num < 1 or not 0 <= shard < num:
        raise argparse.ArgumentTypeError(f"shard {shard}/{num} out of range")
    return shard, num


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="wrl-eval",
        description="Run the tool x workload x opt evaluation matrix "
                    "through the parallel shard-aware pipeline.")
    parser.add_argument("--tools", default=",".join(TOOL_NAMES),
                        help="comma-separated tool names")
    parser.add_argument("--workloads", default=",".join(DEFAULT_WORKLOADS),
                        help="comma-separated workload names")
    parser.add_argument("--opts", default=",".join(DEFAULT_OPTS),
                        help="comma-separated opt levels (O0..O3)")
    parser.add_argument("--jobs", type=int, default=default_jobs(),
                        help="worker processes (0 = inline/serial; "
                             "default: CPUs this process may run on)")
    parser.add_argument("--server", default=None, metavar="SOCKET",
                        help="run as a thin client against a wrl-serve "
                             "daemon at SOCKET instead of executing "
                             "locally (default: $WRL_SERVER); --jobs "
                             "bounds concurrent requests")
    parser.add_argument("--tenant", default=None,
                        help="cache-namespace tenant for --server "
                             "requests (default: $WRL_TENANT or "
                             "'default')")
    parser.add_argument("--shard", type=_parse_shard, default=(0, 1),
                        metavar="I/N",
                        help="run shard I of N (deterministic split)")
    parser.add_argument("--retries", type=int, default=1,
                        help="retries per erroring task before quarantine")
    parser.add_argument("--timeout", type=float, default=None,
                        help="wall-clock seconds per task (backstop; the "
                             "deterministic limit is --max-insts)")
    parser.add_argument("--max-insts", type=int, default=2_000_000_000,
                        help="instruction budget per instrumented run")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk artifact cache")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache root (default: "
                             "$WRL_CACHE_DIR or .repro-cache/)")
    parser.add_argument("--all", action="store_true",
                        help="full matrix: every workload")
    parser.add_argument("--quick", action="store_true",
                        help="smoke run: one workload, one tool")
    parser.add_argument("--out", default=str(default_matrix_path()),
                        help="report path (default: repo root)")
    parser.add_argument("--trace", default=trace_path_from_env(),
                        metavar="PATH",
                        help="capture a structured trace of the run "
                             "(.json = Chrome trace event format, "
                             ".jsonl = line-delimited; default: "
                             "$WRL_TRACE)")
    parser.add_argument("--heartbeat", default=None, metavar="PATH",
                        help="append live JSONL progress records "
                             "(task id, insts retired, insts/sec, cache "
                             "hits) to PATH while the matrix runs; "
                             "default: $WRL_HEARTBEAT")
    parser.add_argument("--trace-id", default=trace_id_from_env(),
                        metavar="ID",
                        help="request trace id stamped on every span of "
                             "this invocation (server mode mints one "
                             "when absent; default: $WRL_TRACE_ID)")
    args = parser.parse_args(argv)

    tools = tuple(args.tools.split(","))
    workloads = tuple(args.workloads.split(","))
    opts = tuple(args.opts.split(","))
    if args.all:
        workloads = WORKLOAD_NAMES
    if args.quick:
        tools, workloads, opts = tools[:1], workloads[:1], opts[:1]

    for names, known, flag in (
            (tools, TOOL_NAMES, "--tools"),
            (workloads, WORKLOAD_NAMES, "--workloads"),
            (opts, tuple(level.name for level in OptLevel), "--opts")):
        unknown = [n for n in names if n not in known]
        if unknown:
            parser.error(f"{flag}: unknown {', '.join(unknown)} "
                         f"(choose from {', '.join(known)})")
    if args.max_insts <= 0:
        parser.error("--max-insts must be positive")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    out = Path(args.out)
    if not out.parent.is_dir():
        parser.error(f"--out: directory {out.parent} does not exist")

    shard, num_shards = args.shard
    specs = plan_matrix(tools, workloads, opts,
                        max_insts=args.max_insts)
    selected = select_shard(specs, shard, num_shards)
    if not selected:
        print(f"wrl-eval: shard {shard}/{num_shards} selected none of "
              f"the {len(specs)} cells; nothing to do")
        return 0
    cache_spec = False if args.no_cache else args.cache_dir
    cache_root = ("(disabled)" if args.no_cache
                  else args.cache_dir or
                  (str(default_cache_dir()) if cache_enabled()
                   else "(disabled by WRL_CACHE=0)"))
    server = args.server or os.environ.get("WRL_SERVER") or None
    tenant = args.tenant or os.environ.get("WRL_TENANT") or "default"
    trace_id = args.trace_id
    if server and not trace_id:
        # Thin clients mint the request context so the daemon's spans,
        # the workers' spans, and any client-side trace correlate.
        trace_id = mint_trace_id()
    if server:
        print(f"wrl-eval: {len(selected)}/{len(specs)} cells "
              f"(shard {shard}/{num_shards}) via server {server}, "
              f"tenant={tenant}, {args.jobs} concurrent requests, "
              f"trace_id={trace_id}")
    else:
        print(f"wrl-eval: {len(selected)}/{len(specs)} cells "
              f"(shard {shard}/{num_shards}), jobs={args.jobs}, "
              f"cache={cache_root}")

    def progress(rec: TaskResult) -> None:
        mark = {"ok": ".", "timeout": "T", "error": "E"}[rec.status]
        detail = (f"{rec.cycle_overhead:.2f}x cycles"
                  if rec.status == "ok" else rec.error)
        print(f"  [{mark}] {rec.workload}+{rec.tool}@{rec.opt}: {detail}")

    if server:
        t0 = time.perf_counter()
        records = run_matrix_via_server(
            selected, server, tenant=tenant, jobs=max(1, args.jobs),
            retries=args.retries, num_shards=num_shards,
            progress=progress, trace_id=trace_id)
        elapsed = time.perf_counter() - t0
        config = {
            "tools": list(tools), "workloads": list(workloads),
            "opts": list(opts), "jobs": args.jobs, "shard": shard,
            "num_shards": num_shards, "retries": args.retries,
            "max_insts": args.max_insts,
            "server": server, "tenant": tenant,
        }
        report = build_report(records, config)
        validate_matrix_report(report)
        out.write_text(json.dumps(report, indent=2) + "\n")
        summary = report["summary"]
        print(f"wrote {out}")
        print(f"  {summary['ok']}/{summary['total']} ok, "
              f"{summary['timeout']} timeout, {summary['error']} error, "
              f"{summary['quarantined']} quarantined")
        print(f"  wall: {elapsed:.1f}s end-to-end via {server}")
        return 0 if summary["ok"] == summary["total"] else 1

    if args.heartbeat:
        # Workers inherit the environment (fork and spawn alike), so the
        # env var is the one channel that reaches every executor.
        os.environ[ENV_HEARTBEAT] = str(Path(args.heartbeat).resolve())
    if args.trace:
        TRACE.reset()
        TRACE.enable()
    t0 = time.perf_counter()
    try:
        with TRACE.span("wrl-eval", "eval", cells=len(selected),
                        jobs=args.jobs):
            records = run_matrix(selected, jobs=args.jobs,
                                 cache_spec=cache_spec,
                                 retries=args.retries,
                                 wall_timeout=args.timeout,
                                 num_shards=num_shards, progress=progress,
                                 trace_id=trace_id)
    finally:
        if args.trace:
            TRACE.write(Path(args.trace))
            TRACE.disable()
            print(f"wrote trace to {args.trace}")
        if args.heartbeat:
            print(f"heartbeats in {args.heartbeat} "
                  f"(tail -f while running; wrl-trace summary to "
                  f"aggregate)")
    elapsed = time.perf_counter() - t0

    config = {
        "tools": list(tools), "workloads": list(workloads),
        "opts": list(opts), "jobs": args.jobs, "shard": shard,
        "num_shards": num_shards, "retries": args.retries,
        "max_insts": args.max_insts,
        "cache": not args.no_cache and cache_enabled(),
    }
    report = build_report(records, config)
    validate_matrix_report(report)
    out.write_text(json.dumps(report, indent=2) + "\n")

    summary = report["summary"]
    print(f"wrote {out}")
    print(f"  {summary['ok']}/{summary['total']} ok, "
          f"{summary['timeout']} timeout, {summary['error']} error, "
          f"{summary['quarantined']} quarantined")
    print(f"  compiles: {summary['analysis_compiles']} analysis, "
          f"{summary['instr_compiles']} instrument "
          f"(0 of each = fully warm cache)")
    print(f"  wall: {elapsed:.1f}s end-to-end, "
          f"{summary['wall_s']:.1f}s of task time")
    return 0 if summary["ok"] == summary["total"] else 1


if __name__ == "__main__":
    sys.exit(main())
