"""``python -m repro.eval``: the parallel matrix CLI (``wrl-eval``)."""

import sys

from .parallel import main

sys.exit(main())
