"""Differential conformance over fuzzed programs (the ``wrl-fuzz`` CLI).

ATOM's transparency guarantee is that analysis output is a pure
function of the program — never of how we rewrote or executed it.  This
harness operationalizes that over :mod:`repro.mlc.fuzz` programs: each
program is compiled once, then every cell of

    (tool, opt in O0..O4) x dispatch in {simple, fused, jit} x
    {serial, parallel}

is fingerprinted and the fingerprints are compared **byte-for-byte**
(everything is serialized through canonical JSON before comparison):

* across dispatch tiers, the *complete* run fingerprint must match —
  exit status, stdout, stderr, every output file, simulated cycles,
  retired instruction count, and (on sampled cells) the full
  ``wrl-profile/v1`` document at a fixed interval;
* across opt levels, the *analysis artifacts* must match — status,
  stdout, stderr and output files (cycles legitimately differ: lower
  overhead is the point of O1–O4);
* instrumented runs must preserve the *program's own* observables
  exactly as the uninstrumented base run produced them (the tool's
  report file aside) — the paper's §2 transparency claim;
* the parallel leg re-instruments and re-runs each (tool, opt) cell in
  a fresh worker process and must reproduce the serial fingerprints and
  ``InstrumentStats`` byte-identically — cross-process determinism.

Any divergence is shrunk by :mod:`repro.mlc.reduce` under a *narrow*
predicate that replays only the two cells that disagreed, and the
reduced program plus a JSON description are written out as a repro
artifact (CI uploads it on failure).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..atom import OptLevel
from ..machine import run_module
from ..machine.cpu import MachineError
from ..mlc import build_executable
from ..mlc.fuzz import PROFILES, generate_program, profile_for
from ..mlc.reduce import checked_predicate, reduce_source
from ..obs.runtime import PcSampler, profile_doc
from ..tools import get_tool
from .runner import apply_tool

#: Dispatch tiers under test, name -> (fuse, jit).
DISPATCH: dict[str, tuple[bool, bool]] = {
    "simple": (False, False),
    "fused": (True, False),
    "jit": (True, True),
}

#: Opt levels whose cells also carry a wrl-profile/v1 document.  Base
#: runs are always sampled.  Sampling every opt level would roughly
#: double matrix cost for no extra signal: the profiler's dispatch
#: invariance is a property of the *machine*, so the cheapest and the
#: most aggressively rewritten instrumented modules bracket it.
SAMPLED_OPTS = ("O0", "O4")

DEFAULT_INTERVAL = 509          # prime, so samples drift across loops
DEFAULT_MAX_INSTS = 80_000_000
DEFAULT_TOOLS = ("prof", "dyninst", "taint")


# ---------------------------------------------------------------- cells

def _fingerprint(module, *, fuse: bool, jit: bool, max_insts: int,
                 sample_interval: int | None,
                 profile_module=None) -> dict:
    """One cell's observables as a canonical-JSON-able dict.

    Machine faults are *part of the fingerprint*: a program that
    divides by zero must fault identically in every cell, so errors are
    recorded, not raised.
    """
    sampler = None
    if sample_interval is not None:
        sampler = PcSampler(interval=sample_interval)
    try:
        r = run_module(module, max_insts=max_insts, fuse=fuse, jit=jit,
                       sampler=sampler)
        fp = {
            "status": r.status,
            "stdout": r.stdout.hex(),
            "stderr": r.stderr.hex(),
            "files": {k: v.hex() for k, v in sorted(r.files.items())},
            "cycles": r.cycles,
            "inst_count": r.inst_count,
        }
    except MachineError as exc:
        # BudgetExhausted included: its pc must match across tiers too.
        fp = {"error": f"{type(exc).__name__}: {exc}"}
    if sampler is not None:
        doc = profile_doc(sampler, profile_module or module)
        fp["profile"] = json.dumps(doc, sort_keys=True)
    return fp


def _canon(obj) -> str:
    return json.dumps(obj, sort_keys=True)


def _analysis_view(fp: dict, drop: tuple[str, ...] = ()) -> dict:
    """The opt-invariant slice of a fingerprint: the analysis artifacts
    (optionally without the files in ``drop``), not the cost."""
    if "error" in fp:
        return {"error": fp["error"]}
    return {
        "status": fp["status"],
        "stdout": fp["stdout"],
        "stderr": fp["stderr"],
        "files": {k: v for k, v in fp["files"].items() if k not in drop},
    }


def _cell_fingerprints(exe, tool_name: str | None, opt_name: str | None,
                       *, interval: int, max_insts: int) -> dict:
    """All three dispatch fingerprints (plus stats) for one column.

    ``tool_name is None`` means the uninstrumented base column.  This
    is the unit of work the parallel leg re-executes in a worker.
    """
    if tool_name is None:
        module, stats, sample = exe, None, interval
    else:
        res = apply_tool(exe, get_tool(tool_name),
                         opt=OptLevel[opt_name], cache=None)
        module = res.module
        stats = {k: v for k, v in sorted(vars(res.stats).items())}
        sample = interval if opt_name in SAMPLED_OPTS else None
    cells = {}
    for dispatch, (fuse, jit) in DISPATCH.items():
        cells[dispatch] = _fingerprint(module, fuse=fuse, jit=jit,
                                       max_insts=max_insts,
                                       sample_interval=sample)
    return {"stats": stats, "cells": cells}


def _worker_column(exe_bytes: bytes, tool_name: str | None,
                   opt_name: str | None, interval: int,
                   max_insts: int) -> str:
    """Parallel-leg unit: rebuild everything from bytes in a fresh
    process and return the canonical JSON of the whole column."""
    from ..objfile.module import Module
    exe = Module.from_bytes(exe_bytes)
    return _canon(_cell_fingerprints(exe, tool_name, opt_name,
                                     interval=interval,
                                     max_insts=max_insts))


# ------------------------------------------------------------- checking

@dataclass
class Divergence:
    """One byte-level disagreement, with enough context to replay it."""

    kind: str                   # dispatch | cross-opt | transparency |
    #                             profile | parallel
    tool: str | None
    opt: str | None
    cell_a: str
    cell_b: str
    detail: str

    def describe(self) -> str:
        where = self.tool and f"{self.tool}@{self.opt}" or "base"
        return (f"{self.kind} divergence [{where}] "
                f"{self.cell_a} != {self.cell_b}: {self.detail}")


@dataclass
class ProgramReport:
    seed: int | None
    source: str
    divergences: list[Divergence] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergences


def _diff_keys(fa: dict, fb: dict) -> str:
    keys = sorted(set(fa) | set(fb))
    bad = [k for k in keys if _canon(fa.get(k)) != _canon(fb.get(k))]
    return "differs in " + ", ".join(bad or ["(structure)"])


def check_program(source: str, *, seed: int | None = None,
                  tools=DEFAULT_TOOLS,
                  opts: tuple[str, ...] = tuple(o.name for o in OptLevel),
                  interval: int = DEFAULT_INTERVAL,
                  max_insts: int = DEFAULT_MAX_INSTS,
                  pool: ProcessPoolExecutor | None = None,
                  stop_on_first: bool = False) -> ProgramReport:
    """Run the full differential matrix over one program."""
    t0 = time.monotonic()
    report = ProgramReport(seed=seed, source=source)
    exe = build_executable([source])
    columns: dict[tuple[str | None, str | None], dict] = {}
    futures = {}
    if pool is not None:
        exe_bytes = exe.to_bytes()
        for key in [(None, None)] + [(t, o) for t in tools for o in opts]:
            futures[key] = pool.submit(_worker_column, exe_bytes,
                                       key[0], key[1], interval, max_insts)

    def diverge(kind, tool, opt, a, b, detail):
        report.divergences.append(Divergence(kind, tool, opt, a, b, detail))

    # serial leg: base column, then each (tool, opt) column
    for key in [(None, None)] + [(t, o) for t in tools for o in opts]:
        tool_name, opt_name = key
        columns[key] = _cell_fingerprints(exe, tool_name, opt_name,
                                          interval=interval,
                                          max_insts=max_insts)
        cells = columns[key]["cells"]
        ref = cells["simple"]
        for dispatch in ("fused", "jit"):
            if _canon(cells[dispatch]) != _canon(ref):
                kind = "profile" if (
                    _canon({k: v for k, v in cells[dispatch].items()
                            if k != "profile"}) ==
                    _canon({k: v for k, v in ref.items()
                            if k != "profile"})) else "dispatch"
                diverge(kind, tool_name, opt_name, "simple", dispatch,
                        _diff_keys(ref, cells[dispatch]))
                if stop_on_first:
                    report.seconds = time.monotonic() - t0
                    return report

    # cross-opt: analysis artifacts identical along each tool's row
    for tool_name in tools:
        ref_opt = opts[0]
        ref = _analysis_view(columns[(tool_name, ref_opt)]["cells"]["simple"])
        for opt_name in opts[1:]:
            got = _analysis_view(
                columns[(tool_name, opt_name)]["cells"]["simple"])
            if _canon(got) != _canon(ref):
                diverge("cross-opt", tool_name, opt_name,
                        ref_opt, opt_name, _diff_keys(ref, got))

    # transparency: the program's own observables survive instrumentation
    base_view = _analysis_view(columns[(None, None)]["cells"]["simple"])
    for tool_name in tools:
        out_file = get_tool(tool_name).output_file
        for opt_name in opts:
            got = _analysis_view(
                columns[(tool_name, opt_name)]["cells"]["simple"],
                drop=(out_file,))
            if _canon(got) != _canon(base_view):
                diverge("transparency", tool_name, opt_name,
                        "base", f"{tool_name}@{opt_name}",
                        _diff_keys(base_view, got))

    # parallel leg: worker columns byte-identical to the serial ones
    for key, fut in futures.items():
        serial = _canon(columns[key])
        parallel = fut.result()
        if parallel != serial:
            diverge("parallel", key[0], key[1], "serial", "parallel",
                    "worker column differs from serial column")

    report.seconds = time.monotonic() - t0
    return report


# ------------------------------------------------------------ reduction

def divergence_predicate(div: Divergence, *, interval: int = DEFAULT_INTERVAL,
                         max_insts: int = DEFAULT_MAX_INSTS):
    """A narrow ``source -> bool`` predicate replaying only the two
    cells that disagreed — cheap enough to drive the reducer.  Sources
    that fail to compile are rejected (reducer contract)."""

    def instrumented(exe):
        if div.tool is None:
            return exe, None
        res = apply_tool(exe, get_tool(div.tool),
                         opt=OptLevel[div.opt], cache=None)
        return res.module, div.opt

    def still_fails(source: str) -> bool:
        exe = build_executable([source])
        if div.kind in ("dispatch", "profile"):
            module, opt_name = instrumented(exe)
            sample = interval if (div.tool is None
                                  or opt_name in SAMPLED_OPTS) else None
            fps = {}
            for dispatch in (div.cell_a, div.cell_b):
                fuse, jit = DISPATCH[dispatch]
                fps[dispatch] = _fingerprint(
                    module, fuse=fuse, jit=jit, max_insts=max_insts,
                    sample_interval=sample)
            return _canon(fps[div.cell_a]) != _canon(fps[div.cell_b])
        if div.kind == "cross-opt":
            views = {}
            for opt_name in (div.cell_a, div.cell_b):
                res = apply_tool(exe, get_tool(div.tool),
                                 opt=OptLevel[opt_name], cache=None)
                views[opt_name] = _analysis_view(_fingerprint(
                    res.module, fuse=False, jit=False,
                    max_insts=max_insts, sample_interval=None))
            return _canon(views[div.cell_a]) != _canon(views[div.cell_b])
        if div.kind == "transparency":
            base = _analysis_view(_fingerprint(
                exe, fuse=False, jit=False, max_insts=max_insts,
                sample_interval=None))
            res = apply_tool(exe, get_tool(div.tool),
                             opt=OptLevel[div.opt], cache=None)
            got = _analysis_view(
                _fingerprint(res.module, fuse=False, jit=False,
                             max_insts=max_insts, sample_interval=None),
                drop=(get_tool(div.tool).output_file,))
            return _canon(got) != _canon(base)
        if div.kind == "parallel":
            serial = _canon(_cell_fingerprints(
                exe, div.tool, div.opt,
                interval=interval, max_insts=max_insts))
            with ProcessPoolExecutor(max_workers=1) as one:
                parallel = one.submit(
                    _worker_column, exe.to_bytes(), div.tool, div.opt,
                    interval, max_insts).result()
            return parallel != serial
        raise ValueError(f"unknown divergence kind {div.kind!r}")

    return checked_predicate(lambda src: build_executable([src]),
                             still_fails)


def reduce_divergence(source: str, div: Divergence, *,
                      interval: int = DEFAULT_INTERVAL,
                      max_insts: int = DEFAULT_MAX_INSTS,
                      progress=None) -> str:
    """Shrink ``source`` while the given divergence still reproduces."""
    predicate = divergence_predicate(div, interval=interval,
                                     max_insts=max_insts)
    return reduce_source(source, predicate, progress=progress)


# ------------------------------------------------------------------ CLI

def _write_repro(out_dir, report: ProgramReport, reduced: str | None):
    from pathlib import Path
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    tag = "corpus" if report.seed is None else f"seed_{report.seed:04d}"
    (out / f"repro_{tag}.mlc").write_text(reduced or report.source)
    (out / f"repro_{tag}.full.mlc").write_text(report.source)
    (out / f"repro_{tag}.json").write_text(_canon({
        "seed": report.seed,
        "divergences": [vars(d) for d in report.divergences],
        "reduced_lines": len((reduced or report.source).splitlines()),
    }) + "\n")
    return out / f"repro_{tag}.mlc"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="wrl-fuzz",
        description="differential conformance fuzzing over the full "
                    "opt x dispatch x serial/parallel matrix")
    ap.add_argument("--seed", type=int, default=0,
                    help="first generator seed (default 0)")
    ap.add_argument("--count", type=int, default=20,
                    help="number of programs (default 20)")
    ap.add_argument("--time-budget", type=float, default=None,
                    metavar="SECONDS",
                    help="stop starting new programs past this wall time")
    ap.add_argument("--profile", choices=sorted(PROFILES), default=None,
                    help="grammar weight profile (default: rotate by seed)")
    ap.add_argument("--corpus", default=None, metavar="DIR",
                    help="check committed .mlc files from DIR instead of "
                         "generating")
    ap.add_argument("--tools", default=",".join(DEFAULT_TOOLS),
                    help="comma-separated tool list "
                         "(default prof,dyninst,taint)")
    ap.add_argument("--rotate-tools", action=argparse.BooleanOptionalAction,
                    default=True,
                    help="one tool per program, rotating by seed "
                         "(--no-rotate-tools runs every tool on every "
                         "program)")
    ap.add_argument("--opts", default=",".join(o.name for o in OptLevel),
                    help="comma-separated opt levels (default O0..O4)")
    ap.add_argument("--interval", type=int, default=DEFAULT_INTERVAL,
                    help=f"profile sample interval (default "
                         f"{DEFAULT_INTERVAL})")
    ap.add_argument("--max-insts", type=int, default=DEFAULT_MAX_INSTS)
    ap.add_argument("--jobs", type=int, default=2,
                    help="worker processes for the parallel leg "
                         "(0 disables the parallel leg; default 2)")
    ap.add_argument("--out", default="fuzz-artifacts", metavar="DIR",
                    help="where reduced repro programs are written")
    ap.add_argument("--reduce", action=argparse.BooleanOptionalAction,
                    default=True,
                    help="shrink the first diverging program")
    args = ap.parse_args(argv)

    if args.corpus is None and args.count < 1:
        ap.error("--count must be >= 1 (a zero-program run proves nothing)")
    tools = tuple(t.strip() for t in args.tools.split(",") if t.strip())
    opts = tuple(o.strip() for o in args.opts.split(",") if o.strip())
    for opt_name in opts:
        if opt_name not in OptLevel.__members__:
            ap.error(f"unknown opt level {opt_name!r}; choose from "
                     f"{', '.join(OptLevel.__members__)}")
    for tool_name in tools:
        try:
            get_tool(tool_name)
        except KeyError as exc:
            ap.error(str(exc.args[0]))

    if args.corpus is not None:
        from pathlib import Path
        paths = sorted(Path(args.corpus).glob("*.mlc"))
        programs = [(None, p.read_text(), p.name) for p in paths]
        if not programs:
            print(f"no .mlc files under {args.corpus}", file=sys.stderr)
            return 2
    else:
        programs = []
        for i in range(args.count):
            seed = args.seed + i
            weights = profile_for(seed, args.profile)
            programs.append((seed, generate_program(seed, weights),
                             f"seed {seed}"))

    t0 = time.monotonic()
    checked = 0
    failed: ProgramReport | None = None
    pool = None
    if args.jobs > 0:
        pool = ProcessPoolExecutor(max_workers=args.jobs)
    try:
        for seed, source, label in programs:
            elapsed = time.monotonic() - t0
            if (args.time_budget is not None and checked > 0
                    and elapsed > args.time_budget):
                print(f"time budget reached after {checked} programs "
                      f"({elapsed:.1f}s)", flush=True)
                break
            program_tools = tools
            if args.rotate_tools and len(tools) > 1:
                index = seed if seed is not None else checked
                program_tools = (tools[index % len(tools)],)
            report = check_program(source, seed=seed,
                                   tools=program_tools, opts=opts,
                                   interval=args.interval,
                                   max_insts=args.max_insts, pool=pool)
            checked += 1
            state = "ok" if report.ok else "DIVERGED"
            print(f"[{checked}/{len(programs)}] {label} "
                  f"tools={','.join(program_tools)} "
                  f"{report.seconds:.1f}s {state}", flush=True)
            if not report.ok:
                failed = report
                break
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    if failed is None:
        print(f"all {checked} programs byte-identical across the matrix "
              f"({time.monotonic() - t0:.1f}s)")
        return 0

    for div in failed.divergences:
        print("  " + div.describe())
    reduced = None
    if args.reduce:
        print("reducing...", flush=True)
        reduced = reduce_divergence(
            failed.source, failed.divergences[0],
            interval=args.interval, max_insts=args.max_insts,
            progress=lambda msg: print(f"  {msg}", flush=True))
        print(f"reduced to {len(reduced.splitlines())} lines")
    path = _write_repro(args.out, failed, reduced)
    print(f"repro written to {path}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
