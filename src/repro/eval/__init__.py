"""Shared evaluation harness for the benchmark suite."""

from .runner import (apply_tool, analysis_unit_for, run_instrumented,
                     run_uninstrumented)

__all__ = ["apply_tool", "analysis_unit_for", "run_instrumented",
           "run_uninstrumented"]
