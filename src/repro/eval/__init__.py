"""Shared evaluation harness for the benchmark suite.

``runner`` is the single-cell API (instrument + run, artifact-cached);
``parallel`` fans the full tool x workload x opt matrix out across a
shard-aware process pool (the ``wrl-eval`` CLI); ``cache`` is the
content-addressed on-disk store both share.
"""

from .cache import ArtifactCache, cache_enabled, default_cache_dir
from .errors import EvalTimeout
from .parallel import (TaskResult, TaskSpec, plan_matrix, run_matrix,
                       select_shard, shard_of)
from .runner import (apply_tool, analysis_unit_for, run_instrumented,
                     run_uninstrumented)

__all__ = [
    "ArtifactCache", "cache_enabled", "default_cache_dir",
    "EvalTimeout",
    "TaskResult", "TaskSpec", "plan_matrix", "run_matrix",
    "select_shard", "shard_of",
    "apply_tool", "analysis_unit_for", "run_instrumented",
    "run_uninstrumented",
]
