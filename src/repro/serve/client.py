"""Synchronous thin client for the ``wrl-serve`` daemon.

``wrl-run --server`` and ``wrl-eval --server`` are this class plus
argument plumbing: open a unix socket, send one JSON request line, read
heartbeat frames until the terminal frame, return the payload.  Error
frames surface as :class:`~repro.serve.protocol.ServeError` carrying the
structured kind (``overloaded``, ``machine-error``, ...), so callers can
map them onto the same exit codes the cold-process CLIs use.

The client is deliberately stateless — one socket per request, safe to
share across threads (``run_matrix_via_server`` drives one instance from
a thread pool).
"""

from __future__ import annotations

import base64
import socket
import uuid
from dataclasses import dataclass

from ..obs import TRACE
from .protocol import (DEFAULT_SOCKET_NAME, ServeError, decode_frame,
                       encode_frame, server_path_from_env, spec_to_wire)


@dataclass
class RunReply:
    """Decoded terminal payload of a ``run`` op."""

    timeout: bool
    message: str = ""
    status: str = ""
    stdout: bytes = b""
    stderr: bytes = b""
    files: dict[str, bytes] | None = None
    cycles: int = 0
    insts: int = 0
    jit_stats: dict[str, int] | None = None


class ServeClient:
    """Blocking client; every method is one request/response exchange."""

    def __init__(self, socket_path=None, *, timeout: float = 600.0):
        path = socket_path or server_path_from_env() \
            or DEFAULT_SOCKET_NAME
        self.socket_path = str(path)
        self.timeout = timeout

    # ---- transport ---------------------------------------------------------

    def _roundtrip(self, request: dict, on_heartbeat=None,
                   trace_id: str | None = None) -> dict:
        request.setdefault("id", uuid.uuid4().hex[:12])
        if trace_id is not None:
            request["trace_id"] = trace_id
        # The client half of the request timeline: one span covering
        # connect -> terminal frame, under the same trace id the daemon
        # and workers stamp their spans with.  Free when tracing is off
        # (the span call returns the shared null span).
        with TRACE.span("serve.client", "serve", op=request.get("op"),
                        request_id=request["id"]) as sp:
            if trace_id is not None:
                sp.add(trace_id=trace_id)
            return self._exchange(request, on_heartbeat)

    def _exchange(self, request: dict, on_heartbeat=None) -> dict:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            try:
                sock.connect(self.socket_path)
            except OSError as exc:
                raise ServeError(
                    "internal",
                    f"cannot connect to wrl-serve at "
                    f"{self.socket_path}: {exc}") from exc
            sock.sendall(encode_frame(request))
            with sock.makefile("rb") as stream:
                for line in stream:
                    frame = decode_frame(line)
                    kind = frame.get("type")
                    if kind == "span":
                        if on_heartbeat is not None:
                            on_heartbeat(frame)
                        continue
                    if kind == "error":
                        err = frame.get("error") or {}
                        raise ServeError(
                            err.get("kind", "internal"),
                            err.get("message", "unknown daemon error"))
                    return frame
        except socket.timeout as exc:
            raise ServeError(
                "internal",
                f"timed out after {self.timeout}s waiting on "
                f"{self.socket_path}") from exc
        finally:
            sock.close()
        raise ServeError("internal",
                         "daemon closed the connection without a "
                         "terminal frame")

    # ---- ops ---------------------------------------------------------------

    def ping(self) -> dict:
        return self._roundtrip({"op": "ping"})

    def stats(self) -> dict:
        return self._roundtrip({"op": "stats"})["stats"]

    def metrics(self) -> dict:
        """The daemon's metrics exposition: ``{"text": <Prometheus
        text>, "metrics": <JSON doc>, "enabled": bool}``."""
        frame = self._roundtrip({"op": "metrics"})
        return {"text": frame.get("text", ""),
                "metrics": frame.get("metrics", {}),
                "enabled": frame.get("enabled", False)}

    def shutdown(self) -> dict:
        return self._roundtrip({"op": "shutdown"})

    def eval_task(self, spec, *, tenant: str | None = None,
                  fuse: bool = True, retries: int = 1,
                  on_heartbeat=None, trace_id: str | None = None) -> dict:
        """Evaluate one matrix cell; returns the TaskResult record as a
        plain dict (the daemon strips the trace)."""
        request = {"op": "eval", "spec": spec_to_wire(spec),
                   "fuse": fuse, "retries": retries}
        if tenant is not None:
            request["tenant"] = tenant
        frame = self._roundtrip(request, on_heartbeat, trace_id)
        record = frame.get("record")
        if not isinstance(record, dict):
            raise ServeError("internal",
                             "result frame carried no record")
        return record

    def run_exe(self, exe: bytes, *, args=(), stdin: bytes = b"",
                max_insts: int = 500_000_000, fuse: bool = True,
                jit: bool = True, tenant: str | None = None,
                on_heartbeat=None, trace_id: str | None = None) -> RunReply:
        """Run an executable uninstrumented — the wrl-run hot path."""
        request = {"op": "run",
                   "exe": base64.b64encode(exe).decode(),
                   "args": list(args), "max_insts": max_insts,
                   "fuse": fuse, "jit": jit}
        if stdin:
            request["stdin"] = base64.b64encode(stdin).decode()
        if tenant is not None:
            request["tenant"] = tenant
        frame = self._roundtrip(request, on_heartbeat, trace_id)
        payload = frame.get("run")
        if not isinstance(payload, dict):
            raise ServeError("internal",
                             "result frame carried no run payload")
        if payload.get("timeout"):
            return RunReply(timeout=True,
                            message=payload.get("message", ""))
        return RunReply(
            timeout=False,
            status=payload.get("status", ""),
            stdout=base64.b64decode(payload.get("stdout", "")),
            stderr=base64.b64decode(payload.get("stderr", "")),
            files={name: base64.b64decode(data)
                   for name, data in sorted(
                       (payload.get("files") or {}).items())},
            cycles=int(payload.get("cycles", 0)),
            insts=int(payload.get("insts", 0)),
            jit_stats=payload.get("jit_stats"))
