"""``wrl-serve``: the persistent instrumentation-as-a-service daemon.

One asyncio event loop fronts a *warm* ``ProcessPoolExecutor`` (workers
pre-import the whole compile/run stack, so per-task cost is pure work)
behind a unix-domain socket speaking the newline-JSON protocol of
:mod:`repro.serve.protocol`.  The hot path is the point:

* **Dedup** — concurrent identical requests (same spec/exe-hash, args,
  budgets, tenant) coalesce onto one in-flight entry: N clients, one
  compile+run, N streamed results.  A client disconnecting mid-stream
  cancels only its own subscription; deduped siblings are untouched.
* **Batching** — requests admitted within one ``batch_window`` are
  packed into shard-aware batches (eval cells grouped by workload, so a
  batch shares its worker's memoized uninstrumented baseline) and each
  batch costs one pool round-trip.
* **Admission control** — at most ``max_queue`` requests are queued or
  executing; past that the daemon *sheds* with a structured
  ``overloaded`` error immediately instead of stacking latency.
* **Per-tenant quotas** — every tenant's artifacts live in their own
  cache namespace (:mod:`repro.serve.quota`); a tenant over its entry or
  byte quota evicts only its own blobs.
* **Observability** — queue depth, batch size, dedup hit rate and
  latency percentiles are kept as counters/histograms (mirrored into
  :data:`repro.obs.TRACE` when tracing) and served by the ``stats`` op;
  progress streams as heartbeat frames in the ``WRL_HEARTBEAT`` JSONL
  row format.  A :class:`repro.obs.metrics.MetricsRegistry` additionally
  keeps labeled rolling-window instruments served by the ``metrics`` op
  (Prometheus text + JSON), every request carries a ``trace_id``
  (client-minted or server-assigned) stamped on its daemon spans,
  heartbeats, and worker trace snapshot, and an optional SLO watchdog
  (``--slo-p99-ms``/``--slo-error-rate``) emits structured breach
  events.

Execution inside a worker goes through the very same
:func:`repro.eval.parallel.run_with_retries` /
:func:`repro.eval.runner.run_uninstrumented` paths the cold-process CLIs
use, so artifacts fetched through the daemon are byte-identical to
``wrl-run``/``wrl-eval`` output — the contract ``make check-serve``
enforces differentially.
"""

from __future__ import annotations

import argparse
import asyncio
import base64
import contextlib
import hashlib
import signal
import sys
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict
from pathlib import Path

from ..eval import runner
from ..eval.parallel import TaskResult, default_jobs, run_with_retries
from ..obs import (TRACE, hist_summary, mint_trace_id, percentile,
                   trace_path_from_env)
from ..obs.metrics import MetricsRegistry
from .protocol import (DEFAULT_SOCKET_NAME, MAX_REQUEST_BYTES, OPS,
                       SERVE_SCHEMA, ProtocolError, decode_frame,
                       encode_frame, error_frame, eval_dedup_key,
                       heartbeat_frame, run_dedup_key, spec_from_wire,
                       validate_tenant, validate_trace_id)
from .quota import DEFAULT_TENANT_CAP, TenantCaches

DEFAULT_BATCH_WINDOW = 0.005          # seconds
DEFAULT_MAX_BATCH = 8                 # eval cells per pool round-trip
DEFAULT_MAX_QUEUE = 64                # queued + executing requests


# ---- worker side (picklable top-level functions) ---------------------------

def _warm_worker() -> None:
    """Pool initializer: pre-import so first tasks pay pure work."""
    runner.preload_process()


def _execute_eval_batch(items, fuse: bool, trace: bool = False) -> list[dict]:
    """Run a shard-aware batch of eval cells serially in one worker.

    ``items`` is ``[(spec, cache_spec, retries, trace_id), ...]`` — all
    cells of a batch share a workload, so after the first the worker's
    memoized uninstrumented baseline makes the rest
    instrumentation-only.  Records use the exact serial
    retry/quarantine semantics (:func:`run_with_retries`), shipped back
    as plain dicts.  With ``trace``, each record carries the worker's
    captured span snapshot (stamped with the request's trace id) for
    the daemon to merge; it never reaches the wire.
    """
    out = []
    for spec, cache_spec, retries, trace_id in items:
        rec = run_with_retries(spec, cache_spec, fuse, retries,
                               trace, trace_id)
        doc = asdict(rec)
        if not trace:
            doc["trace"] = None
        out.append(doc)
    return out


def _execute_run(exe: bytes, args: tuple[str, ...], stdin: bytes,
                 max_insts: int, fuse: bool, jit: bool,
                 trace: bool = False, trace_id: str | None = None) -> dict:
    """One uninstrumented execution — the daemon half of ``wrl-run``.

    With ``trace``, the worker captures its interpret spans under
    ``trace_id`` and ships them back in the reply's ``trace`` key; the
    daemon merges and strips it before the result frame hits the wire.
    """
    from ..eval.errors import EvalTimeout
    from ..machine.cpu import MachineError
    from ..objfile.module import Module, ObjError
    capture = trace and not TRACE.owned()
    if capture:
        TRACE.reset()
        TRACE.enable()
    prev_id = runner.current_trace_id()
    runner.set_trace_id(trace_id)
    try:
        try:
            module = Module.from_bytes(exe)
            result = runner.run_uninstrumented(
                module, args=args, stdin=stdin, max_insts=max_insts,
                fuse=fuse, jit=jit)
        except EvalTimeout as exc:
            reply = {"timeout": True, "message": str(exc)}
        except (MachineError, ObjError) as exc:
            reply = {"fault": str(exc)}
        else:
            reply = {
                "timeout": False,
                "status": result.status,
                "stdout": base64.b64encode(result.stdout).decode(),
                "stderr": base64.b64encode(result.stderr).decode(),
                "files": {name: base64.b64encode(data).decode()
                          for name, data in sorted(result.files.items())},
                "cycles": result.cycles,
                "insts": result.inst_count,
                "jit_stats": result.jit_stats,
            }
    finally:
        runner.set_trace_id(prev_id)
        if capture:
            snap = TRACE.snapshot()
            TRACE.disable()
            TRACE.reset()
    if capture:
        if trace_id is not None:
            for ev in snap.get("events", ()):
                ev["args"].setdefault("trace_id", trace_id)
        reply["trace"] = snap
    return reply


# ---- daemon-side request bookkeeping ---------------------------------------

class _Sub:
    """One client's subscription to an entry's frame stream."""

    __slots__ = ("queue",)

    def __init__(self):
        self.queue: asyncio.Queue = asyncio.Queue()


class _Entry:
    """One unit of in-flight work; N deduped subscribers share it."""

    __slots__ = ("key", "op", "label", "payload", "tenant", "retries",
                 "attempts", "subs", "t0", "trace_id", "t0_ns",
                 "t_dispatch_ns")

    def __init__(self, key: str, op: str, label: str, payload,
                 tenant: str, retries: int, trace_id: str):
        self.key = key
        self.op = op                  # "eval" | "run"
        self.label = label
        self.payload = payload
        self.tenant = tenant
        self.retries = retries
        self.attempts = 1             # pool-break resubmission counter
        self.subs: list[_Sub] = []
        self.t0 = time.monotonic()
        #: Request trace context: the executing client's id (or a
        #: server-minted one); every span/heartbeat of this entry and
        #: its worker execution is stamped with it.
        self.trace_id = trace_id
        self.t0_ns = time.monotonic_ns()
        self.t_dispatch_ns: int | None = None

    def publish(self, frame: dict) -> None:
        for sub in list(self.subs):
            sub.queue.put_nowait(frame)


class ServeStats:
    """Daemon-lifetime counters and bounded histogram samples."""

    def __init__(self):
        self.started = time.monotonic()
        self.requests: dict[str, int] = {}
        self.dedup_hits = 0
        self.overloaded = 0
        self.cancelled = 0
        self.executed = 0
        self.errors = 0
        self.batches = 0
        self.pool_rebuilds = 0
        self.slo_breaches: dict[str, int] = {}
        self.batch_sizes: deque = deque(maxlen=4096)
        self.queue_depths: deque = deque(maxlen=4096)
        self.latencies_ms: deque = deque(maxlen=4096)
        #: Per-op latency samples ("run" vs "eval"), so slow evals
        #: cannot hide behind fast run/ping traffic in the percentiles.
        self.latencies_by_op: dict[str, deque] = {
            "eval": deque(maxlen=4096), "run": deque(maxlen=4096)}


def _lat_summary(latencies) -> dict:
    """count/mean/max plus nearest-rank p50/p90/p99 (zeros when empty)."""
    lats = sorted(latencies)
    n = len(lats)
    return {
        "count": n,
        "mean": round(sum(lats) / n, 3) if n else 0.0,
        "max": round(lats[-1], 3) if n else 0.0,
        "p50": round(percentile(lats, 0.50), 3),
        "p90": round(percentile(lats, 0.90), 3),
        "p99": round(percentile(lats, 0.99), 3),
    }


class ServeMetrics:
    """The daemon's labeled rolling-window instruments.

    A thin façade over :class:`repro.obs.metrics.MetricsRegistry`: one
    attribute per instrument so hot-path call sites read as intent
    (``metrics.dedup_hits.inc()``), and gauges whose truth lives
    elsewhere (tenant cache usage) are refreshed at exposition time
    rather than sampled on the request path.
    """

    def __init__(self, enabled: bool = True):
        reg = MetricsRegistry(enabled=enabled)
        self.registry = reg
        self.enabled = enabled
        self.requests = reg.counter(
            "wrl_requests_total", "Requests received, by op", ("op",))
        self.tenant_requests = reg.counter(
            "wrl_tenant_requests_total",
            "Work (eval/run) requests admitted, by tenant", ("tenant",))
        self.latency = reg.histogram(
            "wrl_request_latency_ms",
            "End-to-end request latency in milliseconds, by op", ("op",))
        self.queue_depth = reg.gauge(
            "wrl_queue_depth", "Requests queued or executing right now")
        self.dedup_hits = reg.counter(
            "wrl_dedup_hits_total",
            "Requests coalesced onto an in-flight identical entry")
        self.overloaded = reg.counter(
            "wrl_overloaded_total", "Requests shed by admission control")
        self.cancelled = reg.counter(
            "wrl_cancelled_total",
            "Subscriptions cancelled by client disconnect")
        self.errors = reg.counter(
            "wrl_request_errors_total", "Requests finished with an error")
        self.executed = reg.counter(
            "wrl_executed_total", "Requests finished with a result")
        self.batches = reg.counter(
            "wrl_batches_total", "Batches shipped to the worker pool")
        self.batch_occupancy = reg.histogram(
            "wrl_batch_occupancy", "Entries per dispatched batch",
            buckets=(1, 2, 4, 8, 16, 32))
        self.pool_rebuilds = reg.counter(
            "wrl_pool_rebuilds_total",
            "Worker-pool rebuilds after a pool break")
        self.cache_results = reg.counter(
            "wrl_cache_results_total",
            "Instrument-artifact cache outcomes of eval cells", ("kind",))
        self.cache_blobs = reg.gauge(
            "wrl_tenant_cache_blobs",
            "Cached artifacts in the tenant's namespace", ("tenant",))
        self.cache_bytes = reg.gauge(
            "wrl_tenant_cache_bytes",
            "Bytes cached in the tenant's namespace", ("tenant",))
        self.slo_breaches = reg.counter(
            "wrl_slo_breaches_total", "SLO watchdog breaches, by metric",
            ("metric",))
        # The request counter sits on every op's dispatch path, so its
        # per-op children are pre-bound: the hot path is one inc(), not
        # a label coercion + child lookup per request (the check-metrics
        # overhead gate measures exactly this on pings).
        self.requests_by_op = {op: self.requests.labels(op)
                               for op in OPS}

    def refresh_tenant_gauges(self, usage_all: dict) -> None:
        for tenant, usage in usage_all.items():
            self.cache_blobs.labels(tenant).set(usage.get("blobs", 0))
            self.cache_bytes.labels(tenant).set(usage.get("bytes", 0))


class Daemon:
    """The asyncio server; construct, then ``await run()`` (or use
    :class:`DaemonThread` / the ``wrl-serve`` CLI)."""

    def __init__(self, socket_path=None, *, jobs: int | None = None,
                 batch_window: float = DEFAULT_BATCH_WINDOW,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_queue: int = DEFAULT_MAX_QUEUE,
                 fuse: bool = True,
                 cache_root=None,
                 tenant_cap: int = DEFAULT_TENANT_CAP,
                 tenant_max_bytes: int | None = None,
                 limit: int = MAX_REQUEST_BYTES,
                 metrics: bool = True,
                 slo_p99_ms: float | None = None,
                 slo_error_rate: float | None = None):
        self.socket_path = Path(socket_path or DEFAULT_SOCKET_NAME)
        self.jobs = jobs if jobs else default_jobs()
        self.batch_window = batch_window
        self.max_batch = max(1, max_batch)
        self.max_queue = max(1, max_queue)
        self.fuse = fuse
        self.limit = limit
        self.tenants = TenantCaches(cache_root, cap=tenant_cap,
                                    max_bytes=tenant_max_bytes)
        self.stats = ServeStats()
        self.slo_p99_ms = slo_p99_ms
        self.slo_error_rate = slo_error_rate
        slo_configured = slo_p99_ms is not None \
            or slo_error_rate is not None
        # The watchdog needs the rolling windows, so configuring an SLO
        # force-enables the registry even under --no-metrics.
        self.metrics = ServeMetrics(enabled=metrics or slo_configured)
        self._slo_last_breach: dict | None = None
        self._slo_last_emit: dict[str, float] = {}
        self.pool: ProcessPoolExecutor | None = None
        self._inflight: dict[str, _Entry] = {}
        self._batch_buf: list[_Entry] = []
        self._dispatched = 0
        self._flush_handle = None
        self._server = None
        self._stop: asyncio.Event | None = None

    # ---- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        path = self.socket_path
        if path.exists():
            alive = True
            try:
                _, probe = await asyncio.open_unix_connection(str(path))
                probe.close()
            except OSError:
                alive = False
            if alive:
                raise RuntimeError(
                    f"a daemon is already listening on {path}")
            # Stale socket from a dead daemon: reclaim it.
            path.unlink(missing_ok=True)
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        self.pool = ProcessPoolExecutor(max_workers=self.jobs,
                                        initializer=_warm_worker)
        self._stop = asyncio.Event()
        self._server = await asyncio.start_unix_server(
            self._handle, path=str(path), limit=self.limit)

    async def run(self, ready=None) -> None:
        """Serve until :meth:`request_stop`; cleans up socket and pool."""
        await self.start()
        if ready is not None:
            ready.set()
        try:
            await self._stop.wait()
        finally:
            await self.close()

    def request_stop(self) -> None:
        if self._stop is not None:
            self._stop.set()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            self._server = None
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        for entry in list(self._inflight.values()):
            entry.publish(error_frame(None, "shutting-down",
                                      "daemon stopping"))
        self._inflight.clear()
        self._batch_buf.clear()
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
            self.pool = None
        self.socket_path.unlink(missing_ok=True)

    def _rebuild_pool(self) -> None:
        dead, self.pool = self.pool, ProcessPoolExecutor(
            max_workers=self.jobs, initializer=_warm_worker)
        self.stats.pool_rebuilds += 1
        TRACE.count("serve.pool_rebuilds")
        self.metrics.pool_rebuilds.inc()
        if dead is not None:
            for proc in list(getattr(dead, "_processes", {}).values()):
                with contextlib.suppress(OSError):
                    proc.terminate()
            dead.shutdown(wait=False, cancel_futures=True)

    # ---- connection handling ----------------------------------------------

    async def _send(self, writer, frame: dict) -> None:
        writer.write(encode_frame(frame))
        await writer.drain()

    async def _handle(self, reader, writer) -> None:
        req_id = None
        try:
            try:
                line = await reader.readline()
            except ValueError:
                # StreamReader's limit tripped: the request line never
                # terminated within MAX_REQUEST_BYTES.
                with contextlib.suppress(ConnectionError, OSError):
                    await self._send(writer, error_frame(
                        None, "oversized",
                        f"request exceeds {self.limit} bytes"))
                return
            if not line:
                return
            try:
                req = decode_frame(line)
                op = req.get("op")
                req_id = req.get("id")
                if op not in OPS:
                    raise ProtocolError("unknown-op",
                                        f"unknown op {op!r}")
                self.stats.requests[op] = \
                    self.stats.requests.get(op, 0) + 1
                TRACE.count(f"serve.requests.{op}")
                self.metrics.requests_by_op[op].inc()
                if op == "ping":
                    await self._send(writer, {"type": "pong",
                                              "id": req_id,
                                              "schema": SERVE_SCHEMA})
                    return
                if op == "stats":
                    await self._send(writer, {"type": "stats",
                                              "id": req_id,
                                              "stats": self.stats_doc()})
                    return
                if op == "metrics":
                    await self._send(writer, self.metrics_frame(req_id))
                    return
                if op == "shutdown":
                    await self._send(writer, {"type": "ok",
                                              "id": req_id,
                                              "op": "shutdown"})
                    self.request_stop()
                    return
                entry, sub = self._register(op, req)
            except ProtocolError as exc:
                if exc.kind != "overloaded":
                    self.stats.errors += 1
                with contextlib.suppress(ConnectionError, OSError):
                    await self._send(writer, error_frame(
                        req_id, exc.kind, str(exc)))
                return
            await self._stream(entry, sub, reader, writer)
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def _stream(self, entry: _Entry, sub: _Sub, reader,
                      writer) -> None:
        """Pump the subscription's frames to one client, watching its
        half of the connection so a disconnect cancels *only* this
        subscription (deduped siblings keep their stream)."""
        watcher = asyncio.ensure_future(reader.read(1))
        try:
            while True:
                getter = asyncio.ensure_future(sub.queue.get())
                done, _ = await asyncio.wait(
                    {getter, watcher},
                    return_when=asyncio.FIRST_COMPLETED)
                if getter not in done:
                    getter.cancel()
                    try:
                        data = watcher.result()
                    except (ConnectionError, OSError):
                        data = b""
                    if data:
                        # Spurious extra bytes; keep watching for EOF.
                        watcher = asyncio.ensure_future(reader.read(1))
                        continue
                    self._unsubscribe(entry, sub)
                    return
                frame = getter.result()
                try:
                    await self._send(writer, frame)
                except (ConnectionError, OSError):
                    self._unsubscribe(entry, sub)
                    return
                if frame.get("type") in ("result", "error"):
                    return
        finally:
            watcher.cancel()

    def _unsubscribe(self, entry: _Entry, sub: _Sub) -> None:
        with contextlib.suppress(ValueError):
            entry.subs.remove(sub)
        self.stats.cancelled += 1
        TRACE.count("serve.cancelled")
        self.metrics.cancelled.inc()

    # ---- admission, dedup, batching ----------------------------------------

    def _register(self, op: str, req: dict) -> tuple[_Entry, _Sub]:
        tenant = validate_tenant(req.get("tenant"))
        # v2 trace context: accept the client's id, mint one for v1
        # requests so every entry is correlatable either way.
        trace_id = validate_trace_id(req.get("trace_id")) \
            or mint_trace_id()
        fuse = req.get("fuse", True)
        if not isinstance(fuse, bool):
            raise ProtocolError("bad-request", "fuse must be a boolean")
        retries = req.get("retries", 1)
        if not isinstance(retries, int) or isinstance(retries, bool) \
                or retries < 0:
            raise ProtocolError("bad-request",
                                "retries must be an integer >= 0")
        if op == "eval":
            spec = spec_from_wire(req.get("spec"))
            key = eval_dedup_key(spec, tenant, fuse, retries)
            label = spec.task_id
            payload = spec
        else:
            exe = req.get("exe")
            if not isinstance(exe, str) or not exe:
                raise ProtocolError("bad-request",
                                    "run op needs base64 exe bytes")
            try:
                exe_bytes = base64.b64decode(exe, validate=True)
            except Exception as exc:
                raise ProtocolError(
                    "bad-request",
                    f"exe is not valid base64: {exc}") from exc
            args = req.get("args", [])
            if not isinstance(args, list) \
                    or not all(isinstance(a, str) for a in args):
                raise ProtocolError("bad-request",
                                    "args must be a list of strings")
            stdin_b64 = req.get("stdin")
            stdin = b""
            if stdin_b64 is not None:
                try:
                    stdin = base64.b64decode(stdin_b64, validate=True)
                except Exception as exc:
                    raise ProtocolError(
                        "bad-request",
                        f"stdin is not valid base64: {exc}") from exc
            max_insts = req.get("max_insts", 2_000_000_000)
            if not isinstance(max_insts, int) \
                    or isinstance(max_insts, bool) or max_insts <= 0:
                raise ProtocolError("bad-request",
                                    "max_insts must be a positive "
                                    "integer")
            jit = req.get("jit", True)
            if not isinstance(jit, bool):
                raise ProtocolError("bad-request",
                                    "jit must be a boolean")
            args = tuple(args)
            key = run_dedup_key(exe_bytes, args, stdin, max_insts,
                                fuse, jit, tenant)
            label = "run:" + hashlib.sha256(exe_bytes).hexdigest()[:12]
            payload = (exe_bytes, args, stdin, max_insts, fuse, jit)

        entry = self._inflight.get(key)
        if entry is not None:
            self.stats.dedup_hits += 1
            TRACE.count("serve.dedup_hits")
            self.metrics.dedup_hits.inc()
            sub = _Sub()
            entry.subs.append(sub)
            # The follower keeps its own trace id but is linked to the
            # executing entry's, so `wrl-trace summary --trace-id` on
            # either id surfaces the relationship.
            TRACE.instant("serve.dedup", "serve", trace_id=trace_id,
                          linked_to=entry.trace_id, task=entry.label)
            sub.queue.put_nowait(heartbeat_frame(
                entry.label, "deduped", subscribers=len(entry.subs),
                trace_id=trace_id, linked_to=entry.trace_id))
            return entry, sub

        depth = len(self._batch_buf) + self._dispatched
        if depth >= self.max_queue:
            self.stats.overloaded += 1
            TRACE.count("serve.overloaded")
            self.metrics.overloaded.inc()
            raise ProtocolError(
                "overloaded",
                f"{depth} requests in flight (max {self.max_queue}); "
                f"retry later")
        entry = _Entry(key, op, label, payload, tenant, retries,
                       trace_id)
        self._inflight[key] = entry
        sub = _Sub()
        entry.subs.append(sub)
        self._batch_buf.append(entry)
        self.stats.queue_depths.append(depth + 1)
        TRACE.observe("serve.queue_depth", depth + 1)
        self.metrics.tenant_requests.labels(tenant).inc()
        self.metrics.queue_depth.set(depth + 1)
        entry.publish(heartbeat_frame(label, "queued",
                                      queue_depth=depth + 1,
                                      trace_id=trace_id))
        self._schedule_flush()
        return entry, sub

    def _schedule_flush(self) -> None:
        if self._flush_handle is None:
            loop = asyncio.get_running_loop()
            self._flush_handle = loop.call_later(self.batch_window,
                                                 self._flush)

    def _flush(self) -> None:
        """Close the batching window: pack admitted requests into
        shard-aware batches and ship them to the warm pool."""
        self._flush_handle = None
        buf, self._batch_buf = self._batch_buf, []
        if not buf:
            return
        batches: list[list[_Entry]] = []
        groups: dict[str, list[_Entry]] = {}
        for entry in buf:
            if entry.op == "run":
                batches.append([entry])
            else:
                groups.setdefault(entry.payload.workload,
                                  []).append(entry)
        for _, entries in sorted(groups.items()):
            for i in range(0, len(entries), self.max_batch):
                batches.append(entries[i:i + self.max_batch])
        for batch in batches:
            self._submit(batch)

    def _submit(self, batch: list[_Entry]) -> None:
        loop = asyncio.get_running_loop()
        self._dispatched += len(batch)
        self.stats.batches += 1
        self.stats.batch_sizes.append(len(batch))
        TRACE.count("serve.batches")
        TRACE.observe("serve.batch_size", len(batch))
        self.metrics.batches.inc()
        self.metrics.batch_occupancy.observe(len(batch))
        now_ns = time.monotonic_ns()
        for entry in batch:
            entry.t_dispatch_ns = now_ns
            self._record_span("serve.queue", entry.t0_ns, now_ns, entry,
                              batch=len(batch))
            entry.publish(heartbeat_frame(entry.label, "dispatch",
                                          batch=len(batch),
                                          trace_id=entry.trace_id))
        if batch[0].op == "run":
            fut = loop.run_in_executor(self.pool, _execute_run,
                                       *batch[0].payload, TRACE.enabled,
                                       batch[0].trace_id)
            fut.add_done_callback(
                lambda f, b=batch: self._on_run_done(b, f))
        else:
            items = [(entry.payload,
                      self.tenants.cache_spec(entry.tenant),
                      entry.retries, entry.trace_id) for entry in batch]
            fut = loop.run_in_executor(self.pool, _execute_eval_batch,
                                       items, self.fuse, TRACE.enabled)
            fut.add_done_callback(
                lambda f, b=batch: self._on_eval_done(b, f))

    def _record_span(self, name: str, t0_ns: int, t1_ns: int,
                     entry: _Entry, **extra) -> None:
        """Record a request-lifecycle span onto the ambient tracer.

        Entry lifetimes are event-driven, not lexical, so the span
        context manager does not fit; this writes the finished span
        directly (guarded, so disabled tracing stays free)."""
        if TRACE.enabled:
            TRACE._record(name, "serve", t0_ns, t1_ns,
                          {"task": entry.label, "op": entry.op,
                           "trace_id": entry.trace_id, **extra})

    # ---- completion --------------------------------------------------------

    def _on_eval_done(self, batch: list[_Entry], fut) -> None:
        self._dispatched -= len(batch)
        try:
            records = fut.result()
        except BrokenProcessPool:
            self._on_pool_break(batch)
            return
        except asyncio.CancelledError:
            return
        except Exception as exc:                     # noqa: BLE001
            for entry in batch:
                self._finish_error(entry, "internal",
                                   f"{type(exc).__name__}: {exc}")
            return
        for entry, record in zip(batch, records):
            # The worker's span snapshot is merged into the daemon's
            # trace under the request's id, then stripped: result
            # frames stay byte-identical whether or not tracing is on.
            snap = record.get("trace")
            record["trace"] = None
            if snap and TRACE.enabled:
                TRACE.merge(snap)
            kind = "miss" if record.get("instr_compiled") else "hit"
            self.metrics.cache_results.labels(kind).inc()
            self._finish_result(entry, {"type": "result",
                                        "record": record})

    def _on_run_done(self, batch: list[_Entry], fut) -> None:
        entry = batch[0]
        self._dispatched -= 1
        try:
            reply = fut.result()
        except BrokenProcessPool:
            self._on_pool_break(batch)
            return
        except asyncio.CancelledError:
            return
        except Exception as exc:                     # noqa: BLE001
            self._finish_error(entry, "internal",
                               f"{type(exc).__name__}: {exc}")
            return
        snap = reply.pop("trace", None)
        if snap and TRACE.enabled:
            TRACE.merge(snap)
        if "fault" in reply:
            self._finish_error(entry, "machine-error", reply["fault"])
            return
        self._finish_result(entry, {"type": "result", "run": reply})

    def _on_pool_break(self, batch: list[_Entry]) -> None:
        """Mirror ``run_matrix``'s guilt attribution: a multi-entry
        batch break charges nobody (every entry is probed solo); a solo
        break is definitively guilty and consumes an attempt."""
        self._rebuild_pool()
        for entry in batch:
            if len(batch) == 1:
                if entry.attempts > entry.retries:
                    self._finish_dead(entry)
                    continue
                entry.attempts += 1
            entry.publish(heartbeat_frame(entry.label, "probe",
                                          attempt=entry.attempts,
                                          trace_id=entry.trace_id))
            self._submit([entry])

    def _finish_dead(self, entry: _Entry) -> None:
        if entry.op == "eval":
            spec = entry.payload
            rec = TaskResult(tool=spec.tool, workload=spec.workload,
                             opt=spec.opt, heap_mode=spec.heap_mode,
                             status="error", error="worker process died",
                             attempts=entry.attempts, quarantined=True)
            doc = asdict(rec)
            doc["trace"] = None
            self._finish_result(entry, {"type": "result", "record": doc})
        else:
            self._finish_error(entry, "worker-died",
                               "worker process died executing this run")

    def _finish_result(self, entry: _Entry, frame: dict) -> None:
        self._inflight.pop(entry.key, None)
        self.stats.executed += 1
        TRACE.count("serve.executed")
        now_ns = time.monotonic_ns()
        latency = (time.monotonic() - entry.t0) * 1000.0
        self.stats.latencies_ms.append(latency)
        if entry.op in self.stats.latencies_by_op:
            self.stats.latencies_by_op[entry.op].append(latency)
        TRACE.observe("serve.latency_ms", latency)
        if entry.t_dispatch_ns is not None:
            self._record_span("serve.execute", entry.t_dispatch_ns,
                              now_ns, entry)
        self._record_span("serve.request", entry.t0_ns, now_ns, entry,
                          latency_ms=round(latency, 3),
                          subscribers=len(entry.subs))
        self.metrics.executed.inc()
        self.metrics.latency.labels(entry.op).observe(latency)
        self.metrics.queue_depth.set(
            len(self._batch_buf) + self._dispatched)
        entry.publish(frame)
        self._check_slo()

    def _finish_error(self, entry: _Entry, kind: str,
                      message: str) -> None:
        self._inflight.pop(entry.key, None)
        self.stats.errors += 1
        TRACE.count("serve.request_errors")
        self._record_span("serve.request", entry.t0_ns,
                          time.monotonic_ns(), entry, error=kind)
        self.metrics.errors.inc()
        self.metrics.queue_depth.set(
            len(self._batch_buf) + self._dispatched)
        entry.publish(error_frame(None, kind, message))
        self._check_slo()

    # ---- SLO watchdog ------------------------------------------------------

    def _slo_window(self) -> dict:
        """Current 60s-window p99 latency and error rate (the
        watchdog's view; zeros while the window is empty)."""
        lats = sorted(self.metrics.latency.window_values(60))
        err = self.metrics.errors.rate(60)
        done = self.metrics.executed.rate(60)
        total = err + done
        return {
            "p99_ms": round(percentile(lats, 0.99), 3),
            "error_rate": round(err / total, 4) if total else 0.0,
            "samples": len(lats),
        }

    def _check_slo(self) -> None:
        """Compare the rolling 60s window against the configured
        thresholds; called on every terminal completion."""
        if self.slo_p99_ms is None and self.slo_error_rate is None:
            return
        window = self._slo_window()
        if self.slo_p99_ms is not None and window["samples"] \
                and window["p99_ms"] > self.slo_p99_ms:
            self._breach("p99_ms", window["p99_ms"], self.slo_p99_ms)
        if self.slo_error_rate is not None \
                and window["error_rate"] > self.slo_error_rate:
            self._breach("error_rate", window["error_rate"],
                         self.slo_error_rate)

    def _breach(self, metric: str, value: float,
                threshold: float) -> None:
        self.stats.slo_breaches[metric] = \
            self.stats.slo_breaches.get(metric, 0) + 1
        self.metrics.slo_breaches.labels(metric).inc()
        self._slo_last_breach = {
            "metric": metric, "value": value, "threshold": threshold,
            "uptime_s": round(time.monotonic() - self.stats.started, 3),
        }
        # Structured breach events are rate-limited to one per second
        # per metric: a sustained breach shouldn't flood the trace with
        # one event per completed request.
        now = time.monotonic()
        if now - self._slo_last_emit.get(metric, -1e9) >= 1.0:
            self._slo_last_emit[metric] = now
            TRACE.instant("slo.breach", "serve", metric=metric,
                          value=value, threshold=threshold)

    # ---- stats -------------------------------------------------------------

    def metrics_frame(self, req_id) -> dict:
        """The terminal frame of the ``metrics`` op: Prometheus text
        plus the JSON document, gauges refreshed at exposition time."""
        if self.metrics.enabled:
            self.metrics.queue_depth.set(
                len(self._batch_buf) + self._dispatched)
            self.metrics.refresh_tenant_gauges(self.tenants.usage_all())
        return {"type": "metrics", "id": req_id,
                "enabled": self.metrics.enabled,
                "text": self.metrics.registry.render_text(),
                "metrics": self.metrics.registry.render_doc()}

    def stats_doc(self) -> dict:
        """The SLO view served by the ``stats`` op."""
        stats = self.stats
        eligible = sum(stats.requests.get(op, 0)
                       for op in ("eval", "run"))
        slo_configured = self.slo_p99_ms is not None \
            or self.slo_error_rate is not None
        return {
            "schema": SERVE_SCHEMA,
            "uptime_s": round(time.monotonic() - stats.started, 3),
            "jobs": self.jobs,
            "batch_window_s": self.batch_window,
            "max_queue": self.max_queue,
            "queue_depth": len(self._batch_buf) + self._dispatched,
            "requests": dict(stats.requests),
            "dedup_hits": stats.dedup_hits,
            "dedup_rate": round(stats.dedup_hits / eligible, 4)
            if eligible else 0.0,
            "overloaded": stats.overloaded,
            "cancelled": stats.cancelled,
            "executed": stats.executed,
            "errors": stats.errors,
            "batches": stats.batches,
            "pool_rebuilds": stats.pool_rebuilds,
            "batch_size": hist_summary(stats.batch_sizes),
            "queue_depth_seen": hist_summary(stats.queue_depths),
            "latency_ms": _lat_summary(stats.latencies_ms),
            "latency_ms_by_op": {
                op: _lat_summary(samples)
                for op, samples in sorted(stats.latencies_by_op.items())
            },
            "slo": {
                "configured": slo_configured,
                "p99_ms": self.slo_p99_ms,
                "error_rate": self.slo_error_rate,
                "window_s": 60,
                "breaches": dict(stats.slo_breaches),
                "last_breach": self._slo_last_breach,
                "current": self._slo_window() if self.metrics.enabled
                else {"p99_ms": 0.0, "error_rate": 0.0, "samples": 0},
            },
            "metrics_enabled": self.metrics.enabled,
            "tenants": self.tenants.usage_all(),
        }


# ---- embedding helper (tests, bench) ---------------------------------------

class DaemonThread:
    """Run a :class:`Daemon` on a dedicated event-loop thread.

    The in-process twin of the ``wrl-serve`` CLI — same daemon, same
    socket protocol — used by the bench harness and the test suite so
    client and server can live in one process.
    """

    def __init__(self, **daemon_kwargs):
        self.daemon = Daemon(**daemon_kwargs)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._failure: BaseException | None = None

    @property
    def socket_path(self) -> Path:
        return self.daemon.socket_path

    def __enter__(self) -> "DaemonThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def start(self, timeout: float = 60.0) -> "DaemonThread":
        ready = threading.Event()

        def target():
            try:
                asyncio.run(self._amain(ready))
            except BaseException as exc:         # noqa: BLE001
                self._failure = exc
            finally:
                ready.set()

        self._thread = threading.Thread(target=target, daemon=True,
                                        name="wrl-serve")
        self._thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("daemon did not start in time")
        if self._failure is not None:
            raise RuntimeError("daemon failed to start") \
                from self._failure
        return self

    async def _amain(self, ready: threading.Event) -> None:
        self._loop = asyncio.get_running_loop()
        await self.daemon.run(ready)

    def stop(self, timeout: float = 60.0) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self.daemon.request_stop)
        if self._thread is not None:
            self._thread.join(timeout)


# ---- CLI -------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="wrl-serve",
        description="Persistent instrumentation daemon: dedup, "
                    "batching, per-tenant cache quotas over a warm "
                    "worker pool.  wrl-run/wrl-eval connect with "
                    "--server (or WRL_SERVER).")
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help=f"unix socket path (default: $WRL_SERVER "
                             f"or ./{DEFAULT_SOCKET_NAME})")
    parser.add_argument("--jobs", type=int, default=default_jobs(),
                        help="warm worker processes (default: CPUs "
                             "this process may run on)")
    parser.add_argument("--batch-window", type=float, default=5.0,
                        metavar="MS",
                        help="batching window in milliseconds "
                             "(default 5)")
    parser.add_argument("--max-batch", type=int,
                        default=DEFAULT_MAX_BATCH,
                        help="max eval cells per batch (default 8)")
    parser.add_argument("--max-queue", type=int,
                        default=DEFAULT_MAX_QUEUE,
                        help="admission cap: queued+executing requests "
                             "before shedding 'overloaded' (default 64)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache root; tenant namespaces live under "
                             "<root>/tenants/ (default: $WRL_CACHE_DIR "
                             "or .repro-cache/)")
    parser.add_argument("--tenant-cap", type=int,
                        default=DEFAULT_TENANT_CAP,
                        help="per-tenant cache entry quota "
                             "(default 256)")
    parser.add_argument("--tenant-max-bytes", type=int, default=None,
                        help="per-tenant cache byte quota "
                             "(default: none)")
    parser.add_argument("--max-request", type=int,
                        default=MAX_REQUEST_BYTES,
                        help="request size limit in bytes; larger "
                             "requests get a structured 'oversized' "
                             "error")
    parser.add_argument("--trace", default=trace_path_from_env(),
                        metavar="PATH",
                        help="write a structured trace (spans, serve.* "
                             "counters/histograms) on exit; default: "
                             "$WRL_TRACE")
    parser.add_argument("--metrics", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="keep the rolling-window metrics registry "
                             "serving the 'metrics' op (default on; "
                             "--no-metrics makes every hook a no-op)")
    parser.add_argument("--slo-p99-ms", type=float, default=None,
                        metavar="MS",
                        help="SLO watchdog: breach when rolling-60s p99 "
                             "latency exceeds MS (implies metrics)")
    parser.add_argument("--slo-error-rate", type=float, default=None,
                        metavar="FRACTION",
                        help="SLO watchdog: breach when rolling-60s "
                             "error rate exceeds FRACTION (0..1; "
                             "implies metrics)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.batch_window < 0:
        parser.error("--batch-window must be >= 0")
    if args.max_batch < 1 or args.max_queue < 1:
        parser.error("--max-batch/--max-queue must be >= 1")
    if args.max_request < 1024:
        parser.error("--max-request must be >= 1024")
    if args.tenant_cap < 1:
        parser.error("--tenant-cap must be >= 1")
    if args.tenant_max_bytes is not None and args.tenant_max_bytes < 1:
        parser.error("--tenant-max-bytes must be >= 1")
    if args.slo_p99_ms is not None and args.slo_p99_ms <= 0:
        parser.error("--slo-p99-ms must be > 0")
    if args.slo_error_rate is not None \
            and not 0 < args.slo_error_rate <= 1:
        parser.error("--slo-error-rate must be in (0, 1]")

    from .protocol import server_path_from_env
    socket_path = args.socket or server_path_from_env() \
        or DEFAULT_SOCKET_NAME
    daemon = Daemon(socket_path, jobs=args.jobs,
                    batch_window=args.batch_window / 1000.0,
                    max_batch=args.max_batch, max_queue=args.max_queue,
                    cache_root=args.cache_dir,
                    tenant_cap=args.tenant_cap,
                    tenant_max_bytes=args.tenant_max_bytes,
                    limit=args.max_request,
                    metrics=args.metrics,
                    slo_p99_ms=args.slo_p99_ms,
                    slo_error_rate=args.slo_error_rate)

    if args.trace:
        TRACE.reset()
        TRACE.enable()

    async def _amain() -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(sig, daemon.request_stop)
        ready = asyncio.Event()
        serving = asyncio.create_task(daemon.run(ready))
        await ready.wait()
        print(f"wrl-serve: listening on {daemon.socket_path} "
              f"(jobs={daemon.jobs}, batch window "
              f"{daemon.batch_window * 1000:.0f}ms, "
              f"queue cap {daemon.max_queue})", flush=True)
        await serving

    try:
        asyncio.run(_amain())
    except RuntimeError as exc:
        print(f"wrl-serve: {exc}", file=sys.stderr)
        return 1
    finally:
        if args.trace:
            TRACE.write(Path(args.trace))
            TRACE.disable()
            print(f"wrl-serve: wrote trace to {args.trace}",
                  file=sys.stderr)
    doc = daemon.stats_doc()
    print(f"wrl-serve: served {doc['executed']} request(s), "
          f"{doc['dedup_hits']} dedup hit(s), "
          f"{doc['overloaded']} shed; stopping", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
