"""``python -m repro.serve`` — the wrl-serve daemon entry point."""

import sys

from .daemon import main

if __name__ == "__main__":
    sys.exit(main())
