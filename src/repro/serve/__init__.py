"""Instrumentation-as-a-service: the ``wrl-serve`` daemon and client.

A persistent asyncio daemon fronting the warm worker pool and the
content-addressed artifact cache — request dedup, window batching,
per-tenant cache quotas, admission control, and streamed heartbeats over
one newline-JSON unix-socket protocol.  ``wrl-run``/``wrl-eval`` become
thin clients via ``--server`` / ``WRL_SERVER`` with byte-identical
artifacts versus their cold-process paths.
"""

from .client import RunReply, ServeClient
from .daemon import Daemon, DaemonThread, main
from .protocol import (ENV_SERVER, ENV_TENANT, SERVE_SCHEMA,
                       ProtocolError, ServeError)

__all__ = [
    "Daemon", "DaemonThread", "ServeClient", "RunReply", "ServeError",
    "ProtocolError", "SERVE_SCHEMA", "ENV_SERVER", "ENV_TENANT", "main",
]
