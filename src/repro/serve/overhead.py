"""The metrics overhead budget (``python -m repro.serve.overhead``).

The metrics registry's contract mirrors the tracer's: *zero cost when
disabled*, and cheap enough when enabled that operators never have to
choose between visibility and throughput.  The check-metrics CI lane
enforces the second half as a budget: a metrics-on daemon must serve
requests within ``--budget`` (default 2%) of a metrics-off daemon.

Two in-process :class:`~repro.serve.daemon.DaemonThread` instances run
side by side on distinct sockets — identical except for ``metrics=`` —
and each rep times a burst of sequential requests against both,
interleaved so clock drift and scheduler warmth hit both equally.
Requests are ``ping`` ops: the cheapest round-trip the protocol has,
which makes the measurement *adversarial* — every microsecond the
instrumented dispatch path spends in counters shows up undiluted by
interpreter work.  Throughput is best-of-N requests/sec per variant;
like ``repro.obs.overhead`` the harness re-measures once with more reps
before declaring a violation, so one noisy interval cannot fail the
lane.

On failure the metrics exposition text and both daemons' stats
snapshots land in ``--artifacts`` for CI to upload.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from .client import ServeClient
from .daemon import DaemonThread

OVERHEAD_SCHEMA = "repro-serve-overhead/v1"
DEFAULT_BUDGET = 0.02
DEFAULT_REPS = 5
DEFAULT_PINGS = 200


def measure(reps: int = DEFAULT_REPS, pings: int = DEFAULT_PINGS,
            artifacts: Path | None = None) -> dict:
    """Best-of-N requests/sec for metrics-on vs metrics-off daemons."""
    tmp = Path(tempfile.mkdtemp(prefix="wrl-serve-overhead-"))
    with DaemonThread(socket_path=tmp / "on.sock", jobs=1,
                      cache_root=tmp / "cache-on",
                      metrics=True) as on_dt, \
            DaemonThread(socket_path=tmp / "off.sock", jobs=1,
                         cache_root=tmp / "cache-off",
                         metrics=False) as off_dt:
        clients = {"on": ServeClient(on_dt.socket_path, timeout=120.0),
                   "off": ServeClient(off_dt.socket_path, timeout=120.0)}
        for client in clients.values():        # warmup: loop + socket
            for _ in range(20):
                client.ping()
        best = {"on": None, "off": None}
        for _ in range(max(1, reps)):
            for label, client in clients.items():
                t0 = time.perf_counter()
                for _ in range(pings):
                    client.ping()
                elapsed = time.perf_counter() - t0
                if best[label] is None or elapsed < best[label]:
                    best[label] = elapsed
        on_rps = pings / best["on"]
        off_rps = pings / best["off"]
        row = {
            "pings": pings,
            "reps": reps,
            "on_rps": round(on_rps, 1),
            "off_rps": round(off_rps, 1),
            #: > 0 means the metrics-on daemon is slower.
            "overhead": round(1.0 - on_rps / off_rps, 4),
        }
        if artifacts is not None:
            artifacts.mkdir(parents=True, exist_ok=True)
            reply = clients["on"].metrics()
            (artifacts / "metrics.txt").write_text(reply["text"])
            (artifacts / "stats.json").write_text(json.dumps(
                {"on": clients["on"].stats(),
                 "off": clients["off"].stats()},
                indent=2, default=str) + "\n")
        return row


def run_overhead(reps: int = DEFAULT_REPS, pings: int = DEFAULT_PINGS,
                 budget: float = DEFAULT_BUDGET,
                 artifacts: Path | None = None) -> dict:
    """Measure; re-measure once with more reps before declaring a
    budget violation."""
    row = measure(reps=reps, pings=pings)
    if row["overhead"] > budget:
        # The re-measure doubles reps and burst length (longer bursts
        # shrink relative timer noise) AND captures the exposition
        # text + stats snapshots, so a real failure ships evidence.
        row = measure(reps=reps * 2, pings=pings * 2,
                      artifacts=artifacts)
        row["remeasured"] = True
    return {
        "schema": OVERHEAD_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "budget": budget,
        "row": row,
        "ok": row["overhead"] <= budget,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve-overhead",
        description="Assert a metrics-on wrl-serve daemon stays within "
                    "its throughput budget vs a metrics-off daemon.")
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS,
                        help="timed repetitions per variant")
    parser.add_argument("--pings", type=int, default=DEFAULT_PINGS,
                        help="sequential requests per repetition")
    parser.add_argument("--budget", type=float, default=DEFAULT_BUDGET,
                        help="max tolerated slowdown (fraction, e.g. "
                             "0.02)")
    parser.add_argument("--quick", action="store_true",
                        help="fewer reps and shorter bursts")
    parser.add_argument("--out", default=None, help="JSON report path")
    parser.add_argument("--artifacts", default=None, metavar="DIR",
                        help="dump metrics text + stats snapshots here "
                             "when the budget is violated")
    args = parser.parse_args(argv)
    if args.reps < 1:
        parser.error("--reps must be at least 1")
    if args.pings < 1:
        parser.error("--pings must be at least 1")
    if not 0 < args.budget < 1:
        parser.error("--budget must be a fraction in (0, 1)")
    reps, pings = args.reps, args.pings
    if args.quick:
        reps, pings = min(reps, 3), min(pings, 100)

    artifacts = Path(args.artifacts) if args.artifacts else None
    report = run_overhead(reps=reps, pings=pings, budget=args.budget,
                          artifacts=artifacts)
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")

    row = report["row"]
    verdict = "ok" if report["ok"] else "OVER BUDGET"
    print(f"  ping: metrics-on {row['on_rps']:,.0f} vs metrics-off "
          f"{row['off_rps']:,.0f} req/s ({row['overhead']:+.2%}) "
          f"{verdict}")
    print(f"metrics overhead budget {args.budget:.0%}: "
          f"{'pass' if report['ok'] else 'FAIL'}")
    if not report["ok"] and artifacts is not None:
        print(f"artifacts in {artifacts}/", file=sys.stderr)
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
