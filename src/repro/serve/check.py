"""``make check-serve``: differential byte-identity replay vs the daemon.

The daemon's core contract is that being served is *invisible in the
artifacts*: everything a client gets back — exit status, stdout,
stderr, output files, simulated cycles, retired instruction counts,
eval records — must be byte-identical to what the cold-process path
(``wrl-run`` / ``wrl-eval`` without ``--server``) produces.  This
harness enforces it end to end:

1. start a real ``wrl-serve`` daemon subprocess (fresh socket, fresh
   cache root, trace enabled);
2. compile a slice of the fuzz corpus and compute cold in-process
   reference fingerprints for each program;
3. replay every program through thin clients *concurrently and in
   duplicate* — the duplicates must coalesce (dedup) and every reply
   must match its reference byte-for-byte;
4. replay a few eval matrix cells and compare the daemon's records
   against serial ``run_with_retries`` references on the
   ``TaskResult.identity()`` contract;
5. replay one run as a raw v1 client (no ``trace_id``) and as a v2
   client — the terminal frames must be byte-identical — and assert
   the ``metrics`` op emits parseable Prometheus text covering the
   core serving signals;
6. assert the daemon's measured dedup hit rate clears a floor, and
   that shutdown reaps the socket.

On failure the daemon trace and a failures report land in
``--artifacts`` for CI to upload.
"""

from __future__ import annotations

import argparse
import base64
import json
import shutil
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from ..eval.parallel import TaskResult, TaskSpec, run_with_retries
from ..eval.runner import run_uninstrumented
from ..mlc import build_executable
from .client import ServeClient
from .protocol import ServeError

DEFAULT_CORPUS = Path("tests/fuzz/corpus")
#: Eval cells replayed through the daemon and diffed on the
#: TaskResult.identity() contract (small workloads keep this fast).
EVAL_CELLS = (
    TaskSpec(tool="prof", workload="fib", wl_args=("10",)),
    TaskSpec(tool="branch", workload="fib", wl_args=("10",), opt="O2"),
)


def _reference_fingerprint(exe: bytes, max_insts: int) -> dict:
    """Cold in-process observables for one corpus executable."""
    from ..eval.errors import EvalTimeout
    from ..machine.cpu import MachineError
    from ..objfile.module import Module, ObjError
    try:
        res = run_uninstrumented(Module.from_bytes(exe),
                                 max_insts=max_insts)
    except EvalTimeout as exc:
        return {"timeout": True, "message": str(exc)}
    except (MachineError, ObjError) as exc:
        return {"fault": str(exc)}
    return {
        "timeout": False,
        "status": res.status,
        "stdout": base64.b64encode(res.stdout).decode(),
        "stderr": base64.b64encode(res.stderr).decode(),
        "files": {k: base64.b64encode(v).decode()
                  for k, v in sorted(res.files.items())},
        "cycles": res.cycles,
        "insts": res.inst_count,
    }


def _served_fingerprint(client: ServeClient, exe: bytes,
                        max_insts: int) -> dict:
    """The same observables fetched through the daemon."""
    try:
        reply = client.run_exe(exe, max_insts=max_insts)
    except ServeError as exc:
        if exc.kind == "machine-error":
            return {"fault": str(exc)}
        raise
    if reply.timeout:
        return {"timeout": True, "message": reply.message}
    return {
        "timeout": False,
        "status": reply.status,
        "stdout": base64.b64encode(reply.stdout).decode(),
        "stderr": base64.b64encode(reply.stderr).decode(),
        "files": {k: base64.b64encode(v).decode()
                  for k, v in sorted((reply.files or {}).items())},
        "cycles": reply.cycles,
        "insts": reply.insts,
    }


def _raw_terminal_frame(sock_path, request: dict) -> bytes:
    """Speak the wire protocol by hand (no ServeClient): send one
    request frame, return the terminal frame's exact bytes."""
    import socket as socketlib

    from .protocol import TERMINAL_TYPES, decode_frame, encode_frame
    sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    sock.settimeout(300.0)
    try:
        sock.connect(str(sock_path))
        sock.sendall(encode_frame(request))
        with sock.makefile("rb") as stream:
            for line in stream:
                if decode_frame(line).get("type") in TERMINAL_TYPES:
                    return line
    finally:
        sock.close()
    raise RuntimeError("no terminal frame")


def _check_v1_compat(sock_path, exe: bytes, max_insts: int) -> list[dict]:
    """v1 clients (no ``trace_id``) must get byte-identical terminal
    frames to v2 clients for the same request — the trace context may
    ride only on heartbeats and in the trace, never in results."""
    # jit=False keeps the reply fully repeatable: JIT code-cache
    # counters depend on warm-worker history (hits vs compiles).
    base = {"op": "run", "id": "v1compat",
            "exe": base64.b64encode(exe).decode(),
            "args": [], "max_insts": max_insts,
            "fuse": True, "jit": False}
    v1_frame = _raw_terminal_frame(sock_path, dict(base))
    v2_frame = _raw_terminal_frame(
        sock_path, dict(base, trace_id="checkserve-v2"))
    if v1_frame != v2_frame:
        return [{"error": "v1/v2 terminal frames differ",
                 "v1": v1_frame.decode(errors="replace"),
                 "v2": v2_frame.decode(errors="replace")}]
    return []


def _check_metrics_op(client: ServeClient) -> list[dict]:
    """The ``metrics`` op must emit parseable Prometheus text covering
    the core serving signals."""
    from ..obs.metrics import parse_text
    reply = client.metrics()
    if not reply["enabled"]:
        return [{"error": "metrics op reports disabled registry"}]
    try:
        families = parse_text(reply["text"])
    except ValueError as exc:
        return [{"error": f"metrics exposition unparseable: {exc}"}]
    missing = [name for name in
               ("wrl_requests_total", "wrl_request_latency_ms",
                "wrl_queue_depth", "wrl_dedup_hits_total",
                "wrl_tenant_cache_bytes")
               if name not in families]
    if missing:
        return [{"error": f"metrics exposition missing {missing}"}]
    return []


def _wait_ready(client: ServeClient, proc, deadline: float) -> None:
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon exited early with status {proc.returncode}")
        try:
            client.ping()
            return
        except ServeError:
            time.sleep(0.05)
    raise RuntimeError("daemon did not become ready in time")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="wrl-check-serve",
        description="byte-identity replay of the corpus through a "
                    "live wrl-serve daemon")
    ap.add_argument("--corpus", default=str(DEFAULT_CORPUS),
                    help="directory of .mlc corpus programs")
    ap.add_argument("--limit", type=int, default=10,
                    help="corpus programs to replay (default 10)")
    ap.add_argument("--dup", type=int, default=3,
                    help="concurrent duplicate clients per program "
                         "(default 3; duplicates must dedup)")
    ap.add_argument("--jobs", type=int, default=2,
                    help="daemon worker processes (default 2)")
    ap.add_argument("--max-insts", type=int, default=80_000_000)
    ap.add_argument("--min-dedup-rate", type=float, default=0.34,
                    help="required dedup hit rate over eval+run "
                         "requests (default 0.34)")
    ap.add_argument("--artifacts", default="serve-artifacts",
                    help="directory for the daemon trace + failure "
                         "report when the check fails")
    args = ap.parse_args(argv)

    paths = sorted(Path(args.corpus).glob("*.mlc"))[:args.limit]
    if not paths:
        print(f"check-serve: no .mlc files under {args.corpus}",
              file=sys.stderr)
        return 2

    tmp = Path(tempfile.mkdtemp(prefix="wrl-check-serve-"))
    sock = tmp / "serve.sock"
    trace = tmp / "serve-trace.jsonl"
    failures: list[dict] = []

    print(f"check-serve: compiling {len(paths)} corpus program(s)",
          flush=True)
    exes = {}
    for path in paths:
        exes[path.name] = build_executable(
            [path.read_text()], name=path.stem).to_bytes()

    refs = {name: _reference_fingerprint(exe, args.max_insts)
            for name, exe in exes.items()}
    eval_refs = [run_with_retries(spec, False, True, 1)
                 for spec in EVAL_CELLS]

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--socket", str(sock),
         "--jobs", str(args.jobs), "--trace", str(trace),
         "--cache-dir", str(tmp / "cache")],
        env=None, cwd=str(Path.cwd()))
    client = ServeClient(sock, timeout=600.0)
    stats = None
    try:
        _wait_ready(client, proc, time.monotonic() + 60.0)
        print(f"check-serve: daemon up on {sock}; replaying with "
              f"{args.dup}x duplication", flush=True)

        jobs = [(name, exes[name]) for name in exes
                for _ in range(args.dup)]
        with ThreadPoolExecutor(max_workers=min(16, len(jobs))) as tp:
            futs = [(name, tp.submit(_served_fingerprint, client, exe,
                                     args.max_insts))
                    for name, exe in jobs]
            for name, fut in futs:
                try:
                    got = fut.result()
                except Exception as exc:             # noqa: BLE001
                    failures.append({"program": name,
                                     "error": f"{type(exc).__name__}: "
                                              f"{exc}"})
                    continue
                want = refs[name]
                if got != want:
                    failures.append({"program": name, "want": want,
                                     "got": got})

        for spec, ref in zip(EVAL_CELLS, eval_refs):
            record = client.eval_task(spec, tenant="check")
            record.pop("trace", None)
            served = TaskResult(**record)
            if served.identity() != ref.identity():
                failures.append({
                    "cell": spec.task_id,
                    "want": list(ref.identity()),
                    "got": list(served.identity()),
                })
            if (served.attempts, served.quarantined) \
                    != (ref.attempts, ref.quarantined):
                failures.append({
                    "cell": spec.task_id,
                    "error": "retry/quarantine mismatch",
                    "want": [ref.attempts, ref.quarantined],
                    "got": [served.attempts, served.quarantined],
                })

        first_exe = exes[sorted(exes)[0]]
        failures.extend(_check_v1_compat(sock, first_exe,
                                         args.max_insts))
        failures.extend(_check_metrics_op(client))

        stats = client.stats()
        rate = stats["dedup_rate"]
        if rate < args.min_dedup_rate:
            failures.append({
                "error": f"dedup rate {rate} below floor "
                         f"{args.min_dedup_rate}",
                "stats": stats})
        print(f"check-serve: {len(jobs)} run + {len(EVAL_CELLS)} eval "
              f"requests (+v1 compat, +metrics), dedup rate {rate}, "
              f"p99 latency {stats['latency_ms']['p99']}ms", flush=True)
    finally:
        try:
            client.shutdown()
        except ServeError:
            proc.terminate()
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()

    if sock.exists():
        failures.append({"error": f"stale socket left at {sock}"})

    if failures:
        art = Path(args.artifacts)
        art.mkdir(parents=True, exist_ok=True)
        (art / "failures.json").write_text(
            json.dumps({"failures": failures, "stats": stats},
                       indent=2, default=str) + "\n")
        if trace.exists():
            shutil.copy(trace, art / "serve-trace.jsonl")
        print(f"check-serve: FAIL — {len(failures)} mismatch(es); "
              f"artifacts in {art}/", file=sys.stderr)
        for failure in failures[:5]:
            print(f"  - {json.dumps(failure, default=str)[:200]}",
                  file=sys.stderr)
        return 1

    shutil.rmtree(tmp, ignore_errors=True)
    print(f"check-serve: OK — {len(paths)} program(s) x{args.dup} "
          f"byte-identical through the daemon", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
