"""Wire protocol for the instrumentation-as-a-service daemon.

Newline-delimited JSON over a unix-domain socket, one request per
connection (the HTTP/1.0 of instrumentation services — trivially
debuggable with ``socat`` and immune to head-of-line blocking between
requests, since concurrency comes from concurrent connections):

* The client sends exactly one request line and then only reads; the
  daemon detects EOF on the request side as "client gone" and cancels
  that subscription without touching deduped siblings.
* The daemon streams zero or more *heartbeat* frames — byte-compatible
  with the ``WRL_HEARTBEAT`` JSONL rows (``type=span``/``name=heartbeat``)
  so they parse with :func:`repro.obs.read_jsonl` and merge into tracer
  snapshots — followed by exactly one terminal frame (``result``,
  ``stats``, ``pong``, ``ok``, or ``error``).

Requests::

    {"op": "eval", "id": "...", "tenant": "t", "fuse": true,
     "retries": 1, "spec": {"tool": "prof", "workload": "fib", ...}}
    {"op": "run", "id": "...", "tenant": "t", "exe": "<base64 WOF>",
     "args": [...], "stdin": "<base64>", "max_insts": N,
     "fuse": true, "jit": true}
    {"op": "stats"} | {"op": "metrics"} | {"op": "ping"}
    {"op": "shutdown"}

Errors are always structured: ``{"type": "error", "error": {"kind":
..., "message": ...}}`` with ``kind`` drawn from :data:`ERROR_KINDS` —
``overloaded`` is the admission-control shed signal clients can back
off on, never an exception stack.

**v2 (trace context).**  Requests may carry an optional ``trace_id``
(client-minted, validated by :func:`validate_trace_id`); the daemon
tags every span and heartbeat for that request with it, threads it into
the worker's trace capture, and links deduplicated followers to the
executing request's id.  v1 requests (no ``trace_id``) are still
accepted — the daemon mints a server-side id — and their *terminal*
frames are byte-identical to v1's, since trace ids ride only on
heartbeat frames and in the trace itself, never in result frames.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import os
import re
import time

from ..atom import OptLevel
from ..tools import TOOL_NAMES
from ..workloads import WORKLOAD_NAMES
from .. import __version__ as _REPRO_VERSION
from ..eval.parallel import TaskSpec

SERVE_SCHEMA = f"wrl-serve/v2/{_REPRO_VERSION}"
SERVE_SCHEMA_V1 = f"wrl-serve/v1/{_REPRO_VERSION}"

ENV_SERVER = "WRL_SERVER"
ENV_TENANT = "WRL_TENANT"

DEFAULT_SOCKET_NAME = ".repro-serve.sock"

#: Hard ceiling on one request line; anything longer is rejected with a
#: structured ``oversized`` error before parsing (the daemon's stream
#: limit guarantees the bytes are never buffered past ~2x this).
MAX_REQUEST_BYTES = 4 * 1024 * 1024

OPS = ("eval", "run", "stats", "metrics", "ping", "shutdown")

ERROR_KINDS = ("bad-request", "oversized", "unknown-op", "overloaded",
               "worker-died", "machine-error", "internal", "shutting-down")

_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class ProtocolError(Exception):
    """A request the daemon rejects; carries the structured kind."""

    def __init__(self, kind: str, message: str):
        assert kind in ERROR_KINDS
        super().__init__(message)
        self.kind = kind


class ServeError(Exception):
    """Client-side surface of a structured daemon error frame."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


# ---- framing ---------------------------------------------------------------

def encode_frame(obj: dict) -> bytes:
    """One compact JSON object + newline (the only wire unit)."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode() \
        + b"\n"


def decode_frame(line: bytes) -> dict:
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad-request", f"unparsable frame: {exc}") \
            from exc
    if not isinstance(obj, dict):
        raise ProtocolError("bad-request", "frame is not a JSON object")
    return obj


def error_frame(req_id, kind: str, message: str) -> dict:
    return {"type": "error", "id": req_id,
            "error": {"kind": kind, "message": message}}


def heartbeat_frame(task: str, phase: str, **fields) -> dict:
    """A daemon progress frame in the ``WRL_HEARTBEAT`` JSONL row shape
    (``repro.obs.read_jsonl`` parses a stream of these directly)."""
    now = time.monotonic_ns()
    return {"type": "span", "name": "heartbeat", "cat": "serve",
            "ts_ns": now, "dur_ns": 0, "pid": os.getpid(), "tid": 0,
            "args": {"task": task, "phase": phase, **fields}}


TERMINAL_TYPES = ("result", "stats", "metrics", "pong", "ok", "error")


# ---- request validation ----------------------------------------------------

def _need(cond, message: str) -> None:
    if not cond:
        raise ProtocolError("bad-request", message)


def validate_tenant(tenant) -> str:
    if tenant is None:
        return "default"
    _need(isinstance(tenant, str) and _TENANT_RE.match(tenant),
          f"bad tenant {tenant!r} (want [A-Za-z0-9._-]{{1,64}})")
    return tenant


def validate_trace_id(trace_id) -> str | None:
    """A client-supplied trace id, or None when absent (v1 request).

    Absence is not an error — the daemon mints a server-side id — but a
    present-and-malformed id is rejected rather than silently dropped,
    so a typo'd ``--trace-id`` fails loudly instead of producing an
    uncorrelatable trace.
    """
    if trace_id is None:
        return None
    _need(isinstance(trace_id, str) and _TRACE_ID_RE.match(trace_id),
          f"bad trace_id {trace_id!r} (want [A-Za-z0-9._-]{{1,64}})")
    return trace_id


def _b64_field(obj: dict, key: str, default: bytes = b"") -> bytes:
    raw = obj.get(key)
    if raw is None:
        return default
    _need(isinstance(raw, str), f"{key} must be base64 text")
    try:
        return base64.b64decode(raw, validate=True)
    except (binascii.Error, ValueError) as exc:
        raise ProtocolError("bad-request",
                            f"{key} is not valid base64: {exc}") from exc


def _str_tuple(obj: dict, key: str) -> tuple[str, ...]:
    raw = obj.get(key, [])
    _need(isinstance(raw, list) and all(isinstance(x, str) for x in raw),
          f"{key} must be a list of strings")
    return tuple(raw)


def _bounded_int(obj: dict, key: str, default: int, lo: int = 1) -> int:
    raw = obj.get(key, default)
    _need(isinstance(raw, int) and not isinstance(raw, bool)
          and raw >= lo, f"{key} must be an integer >= {lo}")
    return raw


def spec_from_wire(obj) -> TaskSpec:
    """Validate and build the TaskSpec of an eval request."""
    _need(isinstance(obj, dict), "spec must be an object")
    unknown = set(obj) - {"tool", "workload", "opt", "heap_mode",
                          "tool_args", "wl_args", "stdin", "base_max_insts",
                          "max_insts", "reps", "warmup"}
    _need(not unknown, f"unknown spec fields {sorted(unknown)}")
    tool = obj.get("tool")
    _need(tool in TOOL_NAMES, f"unknown tool {tool!r}")
    workload = obj.get("workload")
    _need(workload in WORKLOAD_NAMES, f"unknown workload {workload!r}")
    opt = obj.get("opt", "O1")
    _need(opt in tuple(level.name for level in OptLevel),
          f"unknown opt {opt!r}")
    heap_mode = obj.get("heap_mode", "linked")
    _need(isinstance(heap_mode, str), "heap_mode must be a string")
    warmup = obj.get("warmup", False)
    _need(isinstance(warmup, bool), "warmup must be a boolean")
    return TaskSpec(
        tool=tool, workload=workload, opt=opt, heap_mode=heap_mode,
        tool_args=_str_tuple(obj, "tool_args"),
        wl_args=_str_tuple(obj, "wl_args"),
        stdin=_b64_field(obj, "stdin"),
        base_max_insts=_bounded_int(obj, "base_max_insts", 500_000_000),
        max_insts=_bounded_int(obj, "max_insts", 2_000_000_000),
        reps=_bounded_int(obj, "reps", 1),
        warmup=warmup)


def spec_to_wire(spec: TaskSpec) -> dict:
    """Client-side inverse of :func:`spec_from_wire`."""
    wire = {
        "tool": spec.tool, "workload": spec.workload, "opt": spec.opt,
        "heap_mode": spec.heap_mode,
        "base_max_insts": spec.base_max_insts,
        "max_insts": spec.max_insts,
        "reps": spec.reps, "warmup": spec.warmup,
    }
    if spec.tool_args:
        wire["tool_args"] = list(spec.tool_args)
    if spec.wl_args:
        wire["wl_args"] = list(spec.wl_args)
    if spec.stdin:
        wire["stdin"] = base64.b64encode(spec.stdin).decode()
    return wire


# ---- dedup keys ------------------------------------------------------------

def _canon(obj) -> str:
    return hashlib.sha256(
        json.dumps(obj, separators=(",", ":"), sort_keys=True).encode()
    ).hexdigest()


def eval_dedup_key(spec: TaskSpec, tenant: str, fuse: bool,
                   retries: int) -> str:
    """Identity of an eval request: everything that can change the
    record (including the tenant, so coalesced work is charged to one
    cache namespace, never smeared across quotas)."""
    wire = spec_to_wire(spec)
    if spec.stdin:
        wire["stdin"] = hashlib.sha256(spec.stdin).hexdigest()
    return _canon({"op": "eval", "tenant": tenant, "fuse": fuse,
                   "retries": retries, "spec": wire})


def run_dedup_key(exe: bytes, args: tuple[str, ...], stdin: bytes,
                  max_insts: int, fuse: bool, jit: bool,
                  tenant: str) -> str:
    """Identity of a run request: the exe-hash, not the exe bytes."""
    return _canon({"op": "run", "tenant": tenant,
                   "exe": hashlib.sha256(exe).hexdigest(),
                   "args": list(args),
                   "stdin": hashlib.sha256(stdin).hexdigest(),
                   "max_insts": max_insts, "fuse": fuse, "jit": jit})


def server_path_from_env() -> str | None:
    """The ``WRL_SERVER`` socket path, or None when not configured."""
    return os.environ.get(ENV_SERVER) or None
