"""Per-tenant cache namespaces with admission-side quotas.

The daemon never shares one artifact store across tenants: each tenant
gets its own :class:`~repro.eval.cache.ArtifactCache` rooted at
``<root>/tenants/<tenant>/`` with its own entry cap and optional byte
quota.  Because LRU eviction in an ``ArtifactCache`` is scoped to its
root by construction, a tenant blowing through its quota can only ever
evict *its own* blobs — a noisy tenant degrades its own hit rate, not
its neighbours'.

Workers receive the namespace as a picklable ``(root, cap, max_bytes)``
tuple (see :func:`repro.eval.parallel._resolve_worker_cache`); this
module only decides *where* each tenant's store lives and reports usage
for the ``stats`` op.
"""

from __future__ import annotations

from pathlib import Path

from ..eval.cache import ArtifactCache, default_cache_dir

DEFAULT_TENANT = "default"
#: Default per-tenant entry cap (smaller than the global single-user
#: default of 512: a multi-tenant daemon multiplies stores).
DEFAULT_TENANT_CAP = 256


class TenantCaches:
    """Maps tenant names to quota-bounded cache namespaces."""

    def __init__(self, root: Path | str | None = None,
                 cap: int = DEFAULT_TENANT_CAP,
                 max_bytes: int | None = None):
        base = Path(root) if root is not None else default_cache_dir()
        self.root = base / "tenants"
        self.cap = cap
        self.max_bytes = max_bytes
        self._seen: set[str] = set()

    def tenant_root(self, tenant: str) -> Path:
        return self.root / tenant

    def cache_spec(self, tenant: str) -> tuple[str, int, int | None]:
        """The picklable worker-side spec for this tenant's store."""
        self._seen.add(tenant)
        return (str(self.tenant_root(tenant)), self.cap, self.max_bytes)

    def cache(self, tenant: str) -> ArtifactCache:
        """An in-process handle on the tenant's store (usage/tests)."""
        self._seen.add(tenant)
        return ArtifactCache(self.tenant_root(tenant), cap=self.cap,
                             max_bytes=self.max_bytes)

    def tenants(self) -> list[str]:
        """Every tenant with a namespace: seen this run or on disk."""
        names = set(self._seen)
        try:
            names.update(p.name for p in self.root.iterdir()
                         if p.is_dir())
        except OSError:
            pass
        return sorted(names)

    def usage(self, tenant: str) -> dict:
        cache = ArtifactCache(self.tenant_root(tenant), cap=self.cap,
                              max_bytes=self.max_bytes)
        return {"blobs": len(cache), "bytes": cache.total_bytes(),
                "cap": self.cap, "max_bytes": self.max_bytes}

    def usage_all(self) -> dict[str, dict]:
        return {tenant: self.usage(tenant) for tenant in self.tenants()}
