"""Deterministic cycle cost model for the WRL-64 machine.

The paper reports instrumented-vs-uninstrumented *wall-clock* ratios on an
Alpha 3000/400.  Our stand-in for silicon charges a fixed cycle cost per
opcode, so the Figure 6 reproduction compares cycle counts instead —
deterministic, and sensitive to exactly the overheads ATOM adds (register
saves, argument setup, wrapper indirection, analysis work).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.opcodes import ALL_OPS, OpInfo

#: Bytes per cache line for the sequence-aware memory-cost rule.
CACHE_LINE = 64


@dataclass
class CostModel:
    """Cycles charged per executed instruction, by mnemonic."""

    overrides: dict[str, int] = field(default_factory=dict)

    def table(self) -> dict[int, int]:
        """Opcode-number -> cycles, with overrides applied."""
        out: dict[int, int] = {}
        for op in ALL_OPS:
            out[op.opcode] = self.overrides.get(op.mnemonic, op.cycles)
        return out

    def cost(self, op: OpInfo) -> int:
        return self.overrides.get(op.mnemonic, op.cycles)

    def sequence_costs(self, insts, streams=None) -> list[int]:
        """Per-instruction cycles with a static same-cache-line discount.

        ATOM's save/restore brackets issue runs of stq/ldq against
        adjacent stack slots; charging each the full load/store cost
        over-reports the very overhead the bench measures.  A memory op
        statically addressed into the same (base register, line) as the
        memory op textually preceding it is charged 1 cycle — the line is
        already hot.  Position-based and branch-agnostic, so fused and
        per-instruction execution charge identical totals by
        construction.

        ``streams`` (optional, one int per instruction) partitions the
        text by provenance: the discount chain runs *within* a stream
        only, each stream seeing the subsequence of instructions carrying
        its id.  Instrumented executables pass 0 for original
        instructions and 1 for ATOM-inserted ones, which makes
        instrumentation cost-transparent — an original instruction is
        charged exactly what the uninstrumented text charges it, however
        many snippets are spliced around it, so the profiler's ``orig``
        attribution bucket reconciles with the uninstrumented run to the
        cycle even under per-instruction-dense tools like taint.
        """
        out: list[int] = []
        if streams is None:
            streams = [0] * len(insts)
        prev: dict[int, tuple[int, int] | None] = {}
        for inst, stream in zip(insts, streams):
            cycles = self.cost(inst.op)
            if inst.is_load() or inst.is_store():
                key = (inst.rb, inst.disp // CACHE_LINE)
                if prev.get(stream) == key and cycles > 1:
                    cycles = 1
                prev[stream] = key
            else:
                prev[stream] = None
            out.append(cycles)
        return out


DEFAULT = CostModel()
