"""Deterministic cycle cost model for the WRL-64 machine.

The paper reports instrumented-vs-uninstrumented *wall-clock* ratios on an
Alpha 3000/400.  Our stand-in for silicon charges a fixed cycle cost per
opcode, so the Figure 6 reproduction compares cycle counts instead —
deterministic, and sensitive to exactly the overheads ATOM adds (register
saves, argument setup, wrapper indirection, analysis work).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.opcodes import ALL_OPS, OpInfo


@dataclass
class CostModel:
    """Cycles charged per executed instruction, by mnemonic."""

    overrides: dict[str, int] = field(default_factory=dict)

    def table(self) -> dict[int, int]:
        """Opcode-number -> cycles, with overrides applied."""
        out: dict[int, int] = {}
        for op in ALL_OPS:
            out[op.opcode] = self.overrides.get(op.mnemonic, op.cycles)
        return out

    def cost(self, op: OpInfo) -> int:
        return self.overrides.get(op.mnemonic, op.cycles)


DEFAULT = CostModel()
