"""Loading executables and running them: the OSF/1-like process model.

Per the paper's footnote 10: the stack begins at the start of the text
segment and grows toward low memory; the heap starts at the end of
uninitialized data and grows toward high memory.  Keeping both anchors
unchanged is half of ATOM's pristine-address guarantee, so the loader works
purely from segment addresses recorded in the executable — instrumented
and uninstrumented binaries get byte-identical stack and heap placement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..obs import TRACE
from ..objfile.module import Module
from ..objfile.sections import BSS, DATA, LITA, TEXT
from .costmodel import CostModel, DEFAULT
from .cpu import Cpu, MachineError
from .memory import PAGE_SIZE, Memory
from .syscalls import Kernel

DEFAULT_STACK_SIZE = 0x80000      # 512 KB
STACK_GUARD = PAGE_SIZE


@dataclass
class RunResult:
    """Everything observable from one program run."""

    status: int
    stdout: bytes
    stderr: bytes
    files: dict[str, bytes]
    cycles: int
    inst_count: int
    #: Addresses a test may want to compare across runs.
    heap_base: int = 0
    initial_sp: int = 0
    #: Region-JIT cache counters (None when the JIT is off).  Excluded
    #: from equality: cache behaviour is not architectural state.
    jit_stats: dict | None = field(default=None, compare=False)

    def output_text(self) -> str:
        return self.stdout.decode("utf-8", "replace")

    def file_text(self, name: str) -> str:
        return self.files[name].decode("utf-8", "replace")


@dataclass
class Machine:
    """A loaded process, ready to run."""

    module: Module
    stdin: bytes = b""
    args: tuple[str, ...] = ()
    stack_size: int = DEFAULT_STACK_SIZE
    cost_model: CostModel = field(default_factory=lambda: DEFAULT)
    preload_files: dict[str, bytes] = field(default_factory=dict)
    #: Superblock fusion in the interpreter (architecturally invisible;
    #: disable to A/B the per-instruction dispatch loop).
    fuse: bool = True
    #: Region JIT above fusion (also architecturally invisible; disable
    #: to A/B hot-path compilation).  Requires ``fuse``.
    jit: bool = True

    def __post_init__(self) -> None:
        if not self.module.linked:
            raise MachineError("cannot load an unlinked module")
        self.memory = Memory()
        self.kernel = Kernel(self.memory, stdin=self.stdin)
        for name, content in self.preload_files.items():
            self.kernel.files[name] = bytearray(content)
        self._load_segments()
        self.cpu = Cpu(self.memory, self.kernel, self._text_vaddr,
                       self._text_bytes, self.cost_model, fuse=self.fuse,
                       jit=self.jit,
                       cost_streams=self._cost_streams())
        self._setup_stack()

    def _cost_streams(self) -> list[int] | None:
        """Provenance streams for the cost model's same-line discount.

        For ATOM output (``pc_map`` non-empty) original instructions form
        stream 0 and everything ATOM inserted (brackets, glue, splices,
        the analysis unit) forms stream 1, so instrumentation never
        changes what an original instruction costs — the profiler's
        ``orig`` bucket then matches the uninstrumented run exactly.
        Plain executables keep the single-stream behaviour.
        """
        pc_map = self.module.pc_map
        if not pc_map:
            return None
        base = self._text_vaddr
        return [0 if base + 4 * i in pc_map else 1
                for i in range(len(self._text_bytes) // 4)]

    # ---- loading ----------------------------------------------------------

    def _load_segments(self) -> None:
        mod = self.module
        text = mod.section(TEXT)
        self._text_vaddr = text.vaddr
        self._text_bytes = bytes(text.data)
        self.memory.map_region(text.vaddr, len(text.data), "text")
        self.memory.write(text.vaddr, self._text_bytes)

        data_secs = [mod.section(n) for n in (LITA, DATA)]
        for sec in data_secs:
            if sec.size:
                self.memory.map_region(sec.vaddr, sec.size, "data")
                self.memory.write(sec.vaddr, bytes(sec.data))
        bss = mod.section(BSS)
        if bss.size:
            self.memory.map_region(bss.vaddr, bss.size, "bss")

        # Extra segments (ATOM's analysis data in the text-data gap).
        for name, vaddr, blob in mod.extra_segments:
            if blob:
                self.memory.map_region(vaddr, len(blob), name)
                self.memory.write(vaddr, blob)

        # Heap: from __end (page aligned up), grows high.
        end_sym = mod.symtab.get("__end")
        heap_base = end_sym.value if end_sym else bss.vaddr + bss.size
        heap_base = (heap_base + 7) & ~7
        self.heap_base = heap_base
        self.memory.map_region(heap_base, 0, "heap")
        self.kernel.brk = heap_base

        # Stack: below text, grows down.
        stack_top = text.vaddr
        stack_bottom = stack_top - self.stack_size
        if stack_bottom < STACK_GUARD:
            raise MachineError("stack does not fit below the text segment")
        self.memory.map_region(stack_bottom, self.stack_size, "stack")
        self.stack_top = stack_top

    def _setup_stack(self) -> None:
        """Place argc/argv at the top of the stack, OSF/1 style."""
        argv = ("prog",) + tuple(self.args)
        ptrs: list[int] = []
        cursor = self.stack_top
        for arg in argv:
            raw = arg.encode() + b"\x00"
            cursor -= len(raw)
            self.memory.write(cursor, raw)
            ptrs.append(cursor)
        cursor &= ~7
        cursor -= 8 * (len(ptrs) + 1)
        argv_addr = cursor
        for i, p in enumerate(ptrs):
            self.memory.write_uint(argv_addr + 8 * i, p, 8)
        self.memory.write_uint(argv_addr + 8 * len(ptrs), 0, 8)
        cursor &= ~15
        self.initial_sp = cursor
        regs = self.cpu.regs
        regs[30] = cursor                 # sp
        regs[16] = len(argv)              # a0 = argc
        regs[17] = argv_addr              # a1 = argv
        regs[29] = self.module.gp_value   # gp (crt0 re-derives it anyway)
        regs[26] = 0                      # ra sentinel

    # ---- running -----------------------------------------------------------

    def run(self, max_insts: int = 2_000_000_000,
            sampler=None) -> RunResult:
        # Tracing disabled (the common case): one attribute check, then
        # the exact pre-observability path.
        if not TRACE.enabled:
            status = self.cpu.run(self.module.entry, max_insts=max_insts,
                                  sampler=sampler)
            return self._result(status)
        with TRACE.span("machine.run", "interpret", fuse=self.fuse) as sp:
            t0 = time.perf_counter_ns()
            status = self.cpu.run(self.module.entry, max_insts=max_insts,
                                  sampler=sampler)
            wall_ns = time.perf_counter_ns() - t0
            _note_run(self.cpu, status, wall_ns, sp)
        return self._result(status)

    def _result(self, status: int) -> RunResult:
        return RunResult(
            status=status,
            stdout=bytes(self.kernel.stdout),
            stderr=bytes(self.kernel.stderr),
            files={k: bytes(v) for k, v in self.kernel.files.items()},
            cycles=self.cpu.cycles,
            inst_count=self.cpu.inst_count,
            heap_base=self.heap_base,
            initial_sp=self.initial_sp,
            jit_stats=self.cpu.jit_stats(),
        )


def _note_run(cpu: Cpu, status: int, wall_ns: int, sp) -> None:
    """Fold one run's interpreter stats into the ambient trace."""
    insts, cycles = cpu.stats[1], cpu.stats[0]
    sp.add(status=status, insts=insts, cycles=cycles,
           sb_runs=cpu.sb_runs, sb_compiled=cpu.sb_compiled,
           sb_cache_hits=cpu.sb_cache_hits)
    TRACE.count("machine.runs")
    TRACE.count("machine.insts", insts)
    TRACE.count("machine.cycles", cycles)
    TRACE.count("cpu.superblocks", cpu.sb_runs)
    TRACE.count("cpu.superblocks_compiled", cpu.sb_compiled)
    TRACE.count("cpu.sb_cache_hits", cpu.sb_cache_hits)
    if cpu.jit is not None:
        jstats = cpu.jit.stats()
        sp.add(jit_regions=jstats["jit_regions"])
        TRACE.count("cpu.jit_regions", jstats["jit_regions"])
        TRACE.count("cpu.jit_evictions", jstats["jit_evictions"])
        TRACE.count("cpu.jit_denied", jstats["jit_denied"])
    if wall_ns > 0 and insts:
        TRACE.observe("machine.insts_per_sec", insts * 1e9 / wall_ns)


def run_module(module: Module, *, stdin: bytes = b"",
               args: tuple[str, ...] = (),
               cost_model: CostModel | None = None,
               preload_files: dict[str, bytes] | None = None,
               max_insts: int = 2_000_000_000,
               fuse: bool = True, jit: bool = True,
               sampler=None) -> RunResult:
    """Convenience: load and run an executable module in one call."""
    machine = Machine(module, stdin=stdin, args=args,
                      cost_model=cost_model or DEFAULT,
                      preload_files=preload_files or {},
                      fuse=fuse, jit=jit)
    return machine.run(max_insts=max_insts, sampler=sampler)
