"""The machine's OS surface: syscall numbers and the kernel model.

A deliberately small OSF/1-flavoured set.  File descriptors live in an
in-memory virtual filesystem so instrumented-program output (for example
the branch tool's ``btaken.out``) is captured per run instead of touching
the host.

Two break pointers exist: the ordinary ``SBRK`` used by the application's
libc (and, in ATOM's default *linked-sbrk* mode, by the analysis libc too —
both bump the same kernel break, so "each starts where the other left
off"), and ``SBRK2`` for ATOM's *partitioned-heap* mode, where the analysis
heap starts at a user-chosen offset and — exactly as the paper warns —
nothing checks that the application heap does not grow into it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .memory import Memory, PAGE_SIZE

SYS_EXIT = 1
SYS_WRITE = 2
SYS_READ = 3
SYS_OPEN = 4
SYS_CLOSE = 5
SYS_SBRK = 6
SYS_SBRK2 = 7
SYS_CYCLES = 8

O_RDONLY = 0
O_WRONLY = 1
O_APPEND = 2


class ExitProgram(Exception):
    def __init__(self, status: int):
        self.status = status
        super().__init__(f"program exited with status {status}")


class SyscallError(Exception):
    pass


@dataclass
class _OpenFile:
    name: str
    mode: int
    pos: int = 0


@dataclass
class Kernel:
    """Kernel state: virtual filesystem, descriptors, break pointers."""

    memory: Memory
    stdin: bytes = b""
    stdout: bytearray = field(default_factory=bytearray)
    stderr: bytearray = field(default_factory=bytearray)
    files: dict[str, bytearray] = field(default_factory=dict)
    brk: int = 0
    brk2: int = 0
    exit_status: int | None = None

    def __post_init__(self) -> None:
        self._fds: dict[int, _OpenFile] = {}
        self._next_fd = 3
        self._stdin_pos = 0

    # ---- dispatch ----------------------------------------------------------

    def syscall(self, num: int, args: tuple[int, ...], cycles: int) -> int:
        """Execute syscall ``num``; returns the v0 result value."""
        if num == SYS_EXIT:
            self.exit_status = args[0] & 0xFF
            raise ExitProgram(self.exit_status)
        if num == SYS_WRITE:
            return self._write(args[0], args[1], args[2])
        if num == SYS_READ:
            return self._read(args[0], args[1], args[2])
        if num == SYS_OPEN:
            return self._open(args[0], args[1])
        if num == SYS_CLOSE:
            return self._close(args[0])
        if num == SYS_SBRK:
            return self._sbrk(args[0])
        if num == SYS_SBRK2:
            return self._sbrk2(args[0], args[1])
        if num == SYS_CYCLES:
            return cycles
        raise SyscallError(f"unknown syscall number {num}")

    # ---- files --------------------------------------------------------------

    def _open(self, path_ptr: int, flags: int) -> int:
        name = self.memory.read_cstring(path_ptr).decode("utf-8",
                                                         "replace")
        if flags == O_RDONLY:
            if name not in self.files:
                return _neg(1)   # ENOENT
        elif flags == O_WRONLY:
            self.files[name] = bytearray()
        elif flags == O_APPEND:
            self.files.setdefault(name, bytearray())
        else:
            return _neg(22)      # EINVAL
        fd = self._next_fd
        self._next_fd += 1
        pos = len(self.files[name]) if flags == O_APPEND else 0
        self._fds[fd] = _OpenFile(name, flags, pos)
        return fd

    def _close(self, fd: int) -> int:
        if fd in self._fds:
            del self._fds[fd]
            return 0
        return 0 if fd in (0, 1, 2) else _neg(9)   # EBADF

    def _write(self, fd: int, buf: int, count: int) -> int:
        data = self.memory.read(buf, count)
        if fd == 1:
            self.stdout.extend(data)
            return count
        if fd == 2:
            self.stderr.extend(data)
            return count
        open_file = self._fds.get(fd)
        if open_file is None or open_file.mode == O_RDONLY:
            return _neg(9)
        content = self.files[open_file.name]
        end = open_file.pos + count
        if end > len(content):
            content.extend(b"\x00" * (end - len(content)))
        content[open_file.pos:end] = data
        open_file.pos = end
        return count

    def _read(self, fd: int, buf: int, count: int) -> int:
        if fd == 0:
            chunk = self.stdin[self._stdin_pos:self._stdin_pos + count]
            self._stdin_pos += len(chunk)
            self.memory.write(buf, chunk)
            return len(chunk)
        open_file = self._fds.get(fd)
        if open_file is None:
            return _neg(9)
        content = self.files.get(open_file.name, bytearray())
        chunk = bytes(content[open_file.pos:open_file.pos + count])
        open_file.pos += len(chunk)
        if chunk:
            self.memory.write(buf, chunk)
        return len(chunk)

    # ---- heap -----------------------------------------------------------------

    def _sbrk(self, incr: int) -> int:
        incr = _signed64(incr)
        old = self.brk
        new = old + incr
        if incr > 0:
            self.memory.extend_region("heap",
                                      (new + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1))
        self.brk = new
        return old

    def _sbrk2(self, incr: int, base: int) -> int:
        """The analysis-heap break for ATOM's partitioned mode."""
        incr = _signed64(incr)
        if self.brk2 == 0:
            self.brk2 = base
            # A fresh region; deliberately no overlap check with "heap".
            self.memory.map_region(base, 0, "heap2")
        old = self.brk2
        new = old + incr
        if incr > 0:
            self.memory.extend_region("heap2",
                                      (new + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1))
        self.brk2 = new
        return old


def _neg(errno: int) -> int:
    return (-errno) & 0xFFFF_FFFF_FFFF_FFFF


def _signed64(value: int) -> int:
    value &= 0xFFFF_FFFF_FFFF_FFFF
    return value - (1 << 64) if value & (1 << 63) else value
