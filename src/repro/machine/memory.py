"""Sparse paged memory for the WRL-64 machine.

Pages are allocated lazily within explicitly mapped regions; access outside
any mapped region raises :class:`MemoryFault`.  ATOM's partitioned-heap
scheme deliberately has *no* overlap check between the application and
analysis heaps (paper Section 4), which this model makes possible: both
regions are simply mapped, and nothing stops one growing into the other.
"""

from __future__ import annotations

from dataclasses import dataclass

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class MemoryFault(Exception):
    def __init__(self, addr: int, why: str = "unmapped address"):
        self.addr = addr
        super().__init__(f"{why}: {addr:#x}")


@dataclass
class Region:
    start: int
    end: int
    label: str

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end


class Memory:
    """Byte-addressable sparse memory with mapped-region checking."""

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}
        self._regions: list[Region] = []
        #: most-recently-hit region: memory accesses are highly local, so
        #: this turns the region scan into one compare almost always.
        self._hot: Region | None = None
        #: page numbers that lie entirely inside some mapped region.
        #: Regions are only ever created or grown, never shrunk, so
        #: membership is monotone: once a page is known fully mapped, any
        #: in-page access to it is valid forever and can skip the region
        #: check.  Populated as a side effect of :meth:`check`.
        self._full: set[int] = set()
        #: the intersection of ``_full`` and ``_pages``: pages both fully
        #: mapped and allocated.  One dict probe answers "is this in-page
        #: access valid, and if so on which bytes" — the fast path for
        #: typed access here and for the fused-superblock inline code.
        self._fast: dict[int, bytearray] = {}
        #: typed views over ``_fast`` pages (little-endian hosts), so
        #: compiled code can do aligned loads/stores as one index
        #: operation instead of slice + int conversion.  The views write
        #: through to the same page bytearrays, and pages never resize,
        #: so the views stay valid for the page's lifetime.
        self._fastq: dict[int, memoryview] = {}
        self._fastl: dict[int, memoryview] = {}
        self._fastw: dict[int, memoryview] = {}
        #: page number -> (lo, hi): the slice of the page known to lie
        #: inside one mapped region.  Same monotonicity argument as
        #: ``_full``, but also covers partially-mapped pages (small data
        #: sections, region edges), making the common check one dict hit.
        self._extent: dict[int, tuple[int, int]] = {}

    # ---- mapping ----------------------------------------------------------

    def map_region(self, start: int, size: int, label: str) -> Region:
        region = Region(start, start + size, label)
        self._regions.append(region)
        return region

    def extend_region(self, label: str, new_end: int) -> None:
        for region in self._regions:
            if region.label == label:
                region.end = max(region.end, new_end)
                return
        raise KeyError(f"no region labelled {label!r}")

    def region_at(self, addr: int) -> Region | None:
        for region in self._regions:
            if addr in region:
                return region
        return None

    def check(self, addr: int, size: int) -> None:
        span = self._extent.get(addr >> PAGE_SHIFT)
        if span is not None and span[0] <= addr and \
                addr + size <= span[1]:
            return
        hot = self._hot
        if hot is not None and hot.start <= addr and \
                addr + size <= hot.end:
            region = hot
        else:
            region = self.region_at(addr)
            if region is None or addr + size > region.end:
                raise MemoryFault(addr)
            self._hot = region
        page_no = addr >> PAGE_SHIFT
        page_lo = page_no << PAGE_SHIFT
        page_hi = page_lo + PAGE_SIZE
        if region.start <= page_lo and page_hi <= region.end:
            self._full.add(page_no)
            page = self._pages.get(page_no)
            if page is not None:
                self._install_fast(page_no, page)
        self._extent[page_no] = (max(region.start, page_lo),
                                 min(region.end, page_hi))

    def regions(self) -> list[Region]:
        return list(self._regions)

    # ---- raw page access ----------------------------------------------------

    def _install_fast(self, page_no: int, page: bytearray) -> None:
        self._fast[page_no] = page
        view = memoryview(page)
        self._fastq[page_no] = view.cast("Q")
        self._fastl[page_no] = view.cast("I")
        self._fastw[page_no] = view.cast("H")

    def _page(self, page_no: int) -> bytearray:
        page = self._pages.get(page_no)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_no] = page
            if page_no in self._full:
                self._install_fast(page_no, page)
        return page

    def read(self, addr: int, size: int) -> bytes:
        self.check(addr, size)
        return self._read_nocheck(addr, size)

    def _read_nocheck(self, addr: int, size: int) -> bytes:
        out = bytearray()
        while size:
            page_no, off = addr >> PAGE_SHIFT, addr & PAGE_MASK
            chunk = min(size, PAGE_SIZE - off)
            out += self._page(page_no)[off:off + chunk]
            addr += chunk
            size -= chunk
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        self.check(addr, len(data))
        self._write_nocheck(addr, data)

    def _write_nocheck(self, addr: int, data: bytes) -> None:
        pos = 0
        size = len(data)
        while pos < size:
            page_no, off = addr >> PAGE_SHIFT, addr & PAGE_MASK
            chunk = min(size - pos, PAGE_SIZE - off)
            self._page(page_no)[off:off + chunk] = data[pos:pos + chunk]
            addr += chunk
            pos += chunk

    # ---- typed access (little endian) ---------------------------------------

    def read_u8(self, addr: int) -> int:
        self.check(addr, 1)
        return self._page(addr >> PAGE_SHIFT)[addr & PAGE_MASK]

    def write_u8(self, addr: int, value: int) -> None:
        self.check(addr, 1)
        self._page(addr >> PAGE_SHIFT)[addr & PAGE_MASK] = value & 0xFF

    def read_uint(self, addr: int, size: int) -> int:
        off = addr & PAGE_MASK
        if off + size <= PAGE_SIZE:
            page = self._fast.get(addr >> PAGE_SHIFT)
            if page is not None:
                return int.from_bytes(page[off:off + size], "little")
            self.check(addr, size)
            return int.from_bytes(self._page(addr >> PAGE_SHIFT)
                                  [off:off + size], "little")
        self.check(addr, size)
        return int.from_bytes(self._read_nocheck(addr, size), "little")

    def write_uint(self, addr: int, value: int, size: int) -> None:
        off = addr & PAGE_MASK
        raw = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        if off + size <= PAGE_SIZE:
            page = self._fast.get(addr >> PAGE_SHIFT)
            if page is None:
                self.check(addr, size)
                page = self._page(addr >> PAGE_SHIFT)
            page[off:off + size] = raw
        else:
            self.check(addr, size)
            self._write_nocheck(addr, raw)

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> bytes:
        out = bytearray()
        while len(out) < limit:
            byte = self.read_u8(addr)
            if byte == 0:
                return bytes(out)
            out.append(byte)
            addr += 1
        raise MemoryFault(addr, "unterminated string")
