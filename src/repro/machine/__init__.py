"""Execution substrate: the WRL-64 machine simulator and its tiny OS."""

from .costmodel import CostModel
from .cpu import BudgetExhausted, Cpu, MachineError
from .jit import JitManager
from .loader import Machine, RunResult, run_module
from .memory import Memory, MemoryFault
from .syscalls import ExitProgram, Kernel

__all__ = [
    "BudgetExhausted", "CostModel", "Cpu", "JitManager", "MachineError",
    "Machine", "RunResult", "run_module", "Memory", "MemoryFault",
    "ExitProgram", "Kernel",
]
