"""The WRL-64 interpreter core.

The text segment is pre-decoded once into per-instruction closures (the
machine never self-modifies code), so the dispatch loop is a tight
``i = code[i]()``.  Each closure charges its cycle cost, updates registers
or memory, and returns the index of the next instruction.

On top of the per-instruction closures the decoder builds *superblocks*:
maximal straight-line runs of non-control-transfer instructions (loads,
stores, operates, address arithmetic) are fused into a single closure that
executes the whole run with one dispatch and a single batched ``stats``
update.  The branch or jump that ends a run is absorbed into the
superblock as its *terminator* (the fused closure computes and returns the
successor index itself), so a tight loop body costs exactly one dispatch
per iteration.  Runs end at every syscall and are split at every static
branch target, so control entering a run's head takes the fused path.  Control can also enter a run mid-way (computed jumps); every
index keeps its per-instruction closure, so such entries simply execute
per-instruction until the next control transfer re-synchronizes them with
a superblock head.  Architectural state (``regs``, ``stats``, ``memory``)
is bit-identical either way.

The fused executor is *compiled*: the run's semantics are emitted as
Python source and ``compile()``d into one code object, so straight-line
code pays no per-instruction dispatch, closure call, or stats update at
all — the classic threaded-code-to-template-JIT step.  Compilation is
lazy (a counting trampoline compiles a superblock on its second entry),
so cold startup code never pays the compile cost.

Above fusion sits the region JIT (:mod:`repro.machine.jit`, ``jit=``):
superblock heads that stay hot past a threshold are recompiled together
with their successor blocks into one multi-block Python function that
keeps register state in locals and loops entirely inside compiled code,
side-exiting back to this dispatch loop at region boundaries.  The JIT
honours ``_jit_limit`` (a one-element fuel list set by :meth:`run` and
:meth:`_run_sampled`): a region never pushes ``stats[1]`` past the
current limit, which is how both the instruction budget and the
deterministic sampling boundaries survive multi-block execution.

This simulator is the reproduction's stand-in for Alpha silicon.  ATOM
itself uses *no* simulation — the instrumented executable is ordinary
machine code that runs here natively, analysis routines and all.
"""

from __future__ import annotations

from ..isa import encoding, opcodes, registers
from ..isa.instruction import Instruction
from ..isa.opcodes import Format, InstClass
from .costmodel import CostModel, DEFAULT
from .memory import Memory, MemoryFault
from .syscalls import ExitProgram, Kernel

MASK = (1 << 64) - 1
SIGN = 1 << 63

#: Longest run fused into one superblock.  Bounds how far a single
#: dispatch can advance ``stats``, which in turn bounds how close to the
#: instruction budget the fused path may run (see :meth:`Cpu.run`).
FUSE_CAP = 64

#: Runs shorter than this stay on per-instruction closures: a superblock
#: of one saves nothing.
FUSE_MIN = 2

#: Compiled superblock code objects, keyed by generated source.  The
#: source is a pure function of the decoded text, so separate runs of the
#: same executable (common in tests and benchmarking) share one
#: ``compile()`` — the per-Cpu state is bound at ``exec`` time through
#: default arguments.  Cleared wholesale when it grows past the cap.
_SB_CACHE: dict[str, object] = {}
_SB_CACHE_CAP = 4096


class MachineError(Exception):
    """A trap: illegal jump, division by zero, halt, memory fault, ..."""

    def __init__(self, message: str, pc: int | None = None):
        self.pc = pc
        if pc is not None:
            message = f"pc={pc:#x}: {message}"
        super().__init__(message)


class BudgetExhausted(MachineError):
    """The ``max_insts`` instruction budget ran out before the program
    exited.  Distinct from other traps so harnesses can treat a budget
    overrun as a timeout rather than a machine fault."""


def _signed(value: int) -> int:
    return value - (1 << 64) if value & SIGN else value


class Cpu:
    """Decoder + dispatch loop over a fixed text segment."""

    def __init__(self, memory: Memory, kernel: Kernel, text_base: int,
                 text: bytes, cost_model: CostModel = DEFAULT,
                 fuse: bool = True, jit: bool = True,
                 cost_streams=None):
        self.memory = memory
        self.kernel = kernel
        self.text_base = text_base
        self.regs: list[int] = [0] * 32
        #: stats[0] = cycles, stats[1] = instructions executed
        self.stats = [0, 0]
        self.fused = fuse
        #: Region-JIT manager (None when jit or fuse is off).
        self.jit = None
        #: Fuel ceiling for JIT'd regions: a region returns before
        #: stats[1] would exceed ``_jit_limit[0]``.  One-element list so
        #: generated code can share it by reference.
        self._jit_limit = [0]
        #: Fusion bookkeeping the observability layer reads per run:
        #: runs found at decode, fused executors actually compiled, and
        #: compiles served from the shared source cache.  Plain integer
        #: increments — no tracer call ever happens inside this module.
        self.sb_runs = 0
        self.sb_compiled = 0
        self.sb_cache_hits = 0
        self._insts = encoding.decode_stream(text)
        #: Lazy call/return classification table for shadow-stack sampling.
        self._ctl: bytearray | None = None
        self._costs = cost_model.sequence_costs(self._insts,
                                                cost_streams)
        self._code = [self._compile(inst, i, self._costs[i])
                      for i, inst in enumerate(self._insts)]
        if fuse:
            self._dispatch, self._max_fused = self._build_superblocks()
            if jit:
                from .jit import JitManager
                self.jit = JitManager(self)
        else:
            self._dispatch, self._max_fused = self._code, 1

    # ---- public API -------------------------------------------------------

    @property
    def cycles(self) -> int:
        return self.stats[0]

    @property
    def inst_count(self) -> int:
        return self.stats[1]

    def jit_stats(self) -> dict | None:
        """Region-JIT cache counters for this Cpu (None when jit off)."""
        return self.jit.stats() if self.jit is not None else None

    def run(self, entry: int, max_insts: int = 2_000_000_000,
            sampler=None) -> int:
        """Run from ``entry`` until the program exits; returns exit status.

        ``sampler`` (see :mod:`repro.obs.runtime`) turns on deterministic
        PC sampling: after every ``sampler.interval`` retired instructions
        the sampler observes the instruction that crossed the boundary.
        The unsampled path below is untouched — sampling off costs one
        ``is None`` test per call to :meth:`run`, nothing per instruction.
        """
        if sampler is not None:
            return self._run_sampled(self._index_of(entry), max_insts,
                                     sampler.bind(self))
        index = self._index_of(entry)
        dispatch = self._dispatch
        code = self._code
        stats = self.stats
        # JIT'd regions meter themselves against the budget directly.
        self._jit_limit[0] = max_insts
        # While at least ``_max_fused`` instructions of budget remain, no
        # single dispatch — superblock or not — can push stats[1] past
        # max_insts, so the fast loop needs only one check per dispatch.
        fused_safe = max_insts - self._max_fused
        try:
            while stats[1] <= fused_safe:
                index = dispatch[index]()
            # Budget nearly exhausted: finish per-instruction so the
            # budget is checked *before* each instruction — exactly
            # ``max_insts`` retire, never one more.
            while True:
                if stats[1] >= max_insts:
                    raise BudgetExhausted("instruction budget exhausted",
                                          self.text_base + 4 * index)
                index = code[index]()
        except ExitProgram as exc:
            return exc.status
        except IndexError:
            # Only a dispatch-table lookup can raise this for us; an
            # IndexError out of a handler body (in-bounds ``index``) is a
            # simulator bug and must keep its real traceback.
            if 0 <= index < len(code):
                raise
            raise MachineError("control left the text segment",
                               self.text_base + 4 * index) from None
        except MemoryFault as exc:
            raise MachineError(str(exc), self.text_base + 4 * index) from None

    def _run_sampled(self, index: int, max_insts: int, sampler) -> int:
        """Dispatch loop with deterministic instruction-count sampling.

        Samples fire at exact retired-instruction boundaries: the fused
        fast path only runs while more than ``_max_fused`` instructions
        remain before the next boundary (a superblock advances ``stats[1]``
        by at most ``_max_fused``, so it can never straddle one), and the
        per-instruction loop advances by exactly one, landing precisely on
        the boundary with ``prev`` holding the crossing instruction.  The
        sampled stream is therefore a pure function of (text, entry,
        interval) — identical with fusion on or off.

        When ``sampler.track_calls`` is set the run stays entirely on
        per-instruction closures and feeds call/return transitions to the
        sampler's shadow stack (slower, but exact).
        """
        dispatch = self._dispatch
        code = self._code
        stats = self.stats
        interval = sampler.interval
        if interval < 1:
            raise ValueError(f"sample interval must be >= 1: {interval}")
        track = sampler.track_calls
        ctl = self._call_table() if track else None
        sample = sampler.sample
        max_fused = self._max_fused
        budget_cap = max_insts + 1
        next_at = stats[1] + interval
        prev = index
        try:
            if track:
                enter = sampler.enter
                leave = sampler.leave
                while True:
                    while stats[1] < next_at:
                        if stats[1] >= max_insts:
                            raise BudgetExhausted(
                                "instruction budget exhausted",
                                self.text_base + 4 * index)
                        prev = index
                        index = code[prev]()
                        k = ctl[prev]
                        if k:
                            if k == 1:
                                enter(prev, index)
                            else:
                                leave(index)
                    sample(prev)
                    next_at += interval
            jit_limit = self._jit_limit
            while True:
                limit = next_at if next_at < budget_cap else budget_cap
                # Regions stop strictly short of the boundary (and the
                # budget), so the slow loop below always lands on it.
                jit_limit[0] = limit - 1
                fast_limit = limit - max_fused
                while stats[1] < fast_limit:
                    index = dispatch[index]()
                while stats[1] < next_at:
                    if stats[1] >= max_insts:
                        raise BudgetExhausted("instruction budget exhausted",
                                              self.text_base + 4 * index)
                    prev = index
                    index = code[prev]()
                sample(prev)
                next_at += interval
        except ExitProgram as exc:
            # The exit syscall raises *after* charging stats, bypassing the
            # boundary checks above.  The fused path cannot reach a
            # boundary (it stops _max_fused short), so if one was crossed
            # the crossing instruction is ``prev`` from the slow loop.
            if stats[1] >= next_at:
                sample(prev)
            return exc.status
        except IndexError:
            if 0 <= index < len(code):
                raise
            raise MachineError("control left the text segment",
                               self.text_base + 4 * index) from None
        except MemoryFault as exc:
            raise MachineError(str(exc), self.text_base + 4 * index) from None

    def _call_table(self) -> bytearray:
        """Per-index control class: 1 = call (bsr/jsr), 2 = return."""
        tbl = self._ctl
        if tbl is None:
            tbl = bytearray(len(self._insts))
            for i, inst in enumerate(self._insts):
                klass = inst.op.inst_class
                if klass is InstClass.CALL:
                    tbl[i] = 1
                elif klass is InstClass.RET:
                    tbl[i] = 2
            self._ctl = tbl
        return tbl

    def _index_of(self, addr: int) -> int:
        offset = addr - self.text_base
        if offset % 4 or not 0 <= offset < 4 * len(self._insts):
            raise MachineError(f"bad text address {addr:#x}")
        return offset >> 2

    # ---- superblock fusion -------------------------------------------------

    def superblock_runs(self) -> list[tuple[int, int, int | None]]:
        """``(start, end, term)`` ranges fused into superblocks.

        ``[start, end)`` is a maximal straight-line stretch of fusible
        instructions (memory and operate formats) containing no static
        join point: every control transfer or syscall ends a run, and
        every branch target splits one.  When the instruction at ``end``
        is a branch or jump, it is included as the superblock's
        *terminator* (``term == end``); syscalls and halts stay on their
        per-instruction closures (``term is None``).  Runs longer than
        :data:`FUSE_CAP` are chained as consecutive superblocks.
        """
        insts = self._insts
        n = len(insts)
        fusible = [False] * n
        # leader[i]: control may enter at i from somewhere other than i-1.
        leader = bytearray(n + 1)
        for i, inst in enumerate(insts):
            fmt = inst.op.format
            if fmt is Format.MEMORY or fmt is Format.OPERATE:
                fusible[i] = True
                continue
            leader[i + 1] = 1
            if fmt is Format.BRANCH:
                target = i + 1 + inst.disp
                if 0 <= target <= n:
                    leader[target] = 1
        runs: list[tuple[int, int, int | None]] = []
        i = 0
        while i < n:
            if not fusible[i]:
                i += 1
                continue
            j = i + 1
            while j < n and fusible[j] and not leader[j] \
                    and j - i < FUSE_CAP:
                j += 1
            term = None
            if j < n and j - i < FUSE_CAP and not fusible[j] \
                    and insts[j].op.format in (Format.BRANCH, Format.JUMP):
                term = j
            if (j - i) + (term is not None) >= FUSE_MIN:
                runs.append((i, j, term))
            i = j if term is None else j + 1
        return runs

    def _build_superblocks(self):
        dispatch = list(self._code)
        max_len = 1
        runs = self.superblock_runs()
        self.sb_runs = len(runs)
        for start, end, term in runs:
            dispatch[start] = self._trampoline(start, end, term)
            max_len = max(max_len, (end - start) + (term is not None))
        return dispatch, max_len

    def _trampoline(self, start: int, end: int, term: int | None):
        """Lazy superblock installer.

        The first entry executes the run on the ordinary per-instruction
        closures (startup code that runs once never pays a compile); the
        second entry compiles the fused executor and patches it into the
        dispatch table, where every later entry finds it directly.
        """
        cold = True

        def trampoline():
            nonlocal cold
            if cold:
                cold = False
                return self._step_run(start, end, term)
            fused = self._fuse(start, end, term)
            self._dispatch[start] = fused
            return fused()
        return trampoline

    def _step_run(self, start: int, end: int, term: int | None) -> int:
        """Execute run ``[start, end)`` (+ terminator) on the ordinary
        per-instruction closures; the cold path under both the lazy
        fusion trampoline and the JIT's hotness counters."""
        code = self._code
        i = start
        try:
            while i < end:
                i = code[i]()
        except MemoryFault as exc:
            raise MachineError(str(exc),
                               self.text_base + 4 * i) from None
        return code[term]() if term is not None else i

    def _fuse(self, start: int, end: int, term: int | None):
        """Compile insts [start, end) (+ terminator) into one function.

        The generated source charges the whole superblock's cost and
        count with one batched ``stats`` update, then executes every
        instruction's semantics inline — no per-instruction dispatch or
        call — and returns the successor index (the terminator's target
        or fall-through, or ``end`` for a terminator-less run).  Reads of
        the zero register constant-fold to 0 and writes to it are elided
        (their cycles are still charged), exactly matching the
        per-instruction closures.  ``p`` tracks the pc of the trappable
        instruction being executed so faults escape with a precise
        location.
        """
        base = self.text_base
        body: list[str] = []
        trappable = False
        for k in range(start, end):
            lines, traps = _gen_inst(self._insts[k], base + 4 * k)
            trappable |= traps
            body.extend(lines)
        if term is not None:
            body.extend(_gen_term(self._insts[term], term, base))
            count = (end - start) + 1
            total_cost = sum(self._costs[start:term + 1])
        else:
            body.append(f"return {end}")
            count = end - start
            total_cost = sum(self._costs[start:end])
        head = (f"def sb(r=_regs, read=_read, write=_write, "
                f"stats=_stats, div=_div, rem=_rem, "
                f"fast=_fast, fb=_fb):\n"
                f"    stats[0] += {total_cost}; stats[1] += {count}\n")
        if trappable:
            src = head
            src += f"    p = {base + 4 * start}\n"
            src += "    try:\n"
            src += "".join(f"        {line}\n" for line in body)
            src += ("    except MemoryFault as exc:\n"
                    "        raise MachineError(str(exc), p) from None\n"
                    "    except MachineError as exc:\n"
                    "        if exc.pc is not None:\n"
                    "            raise\n"
                    "        raise MachineError(str(exc), p) from None\n")
        else:
            src = head + "".join(f"    {line}\n" for line in body)
        env = {
            "_regs": self.regs,
            "_read": self.memory.read_uint,
            "_write": self.memory.write_uint,
            # The generated fast path shares Memory's validated-page map
            # directly (same trust domain as the read_uint/write_uint
            # fast path — see memory.py).
            "_fast": self.memory._fast,
            "_fb": int.from_bytes,
            "_stats": self.stats,
            "_div": _divq,
            "_rem": _remq,
            "MemoryFault": MemoryFault,
            "MachineError": MachineError,
        }
        self.sb_compiled += 1
        code = _SB_CACHE.get(src)
        if code is None:
            if len(_SB_CACHE) >= _SB_CACHE_CAP:
                _SB_CACHE.clear()
            code = compile(src, f"<superblock@{base + 4 * start:#x}>",
                           "exec")
            _SB_CACHE[src] = code
        else:
            self.sb_cache_hits += 1
        exec(code, env)
        return env["sb"]

    # ---- per-instruction compilation ------------------------------------------

    def _compile(self, inst: Instruction, index: int, cost: int):
        op = inst.op
        regs = self.regs
        stats = self.stats
        nxt = index + 1
        pc_addr = self.text_base + 4 * index

        if op.format is Format.MEMORY:
            return self._compile_memory(inst, nxt, cost)
        if op.format is Format.BRANCH:
            return self._compile_branch(inst, index, nxt, cost)
        if op.format is Format.JUMP:
            return self._compile_jump(inst, nxt, cost, pc_addr)
        if op.format is Format.OPERATE:
            return self._compile_operate(inst, nxt, cost, pc_addr)
        if op is opcodes.SYS:
            kernel = self.kernel

            def do_sys():
                stats[0] += cost
                stats[1] += 1
                result = kernel.syscall(
                    regs[0],
                    (regs[16], regs[17], regs[18], regs[19], regs[20],
                     regs[21]),
                    stats[0])
                regs[0] = result & MASK
                return nxt
            return do_sys

        def do_halt():
            raise MachineError("halt executed", pc_addr)
        return do_halt

    def _compile_memory(self, inst: Instruction, nxt: int, cost: int):
        regs, stats, mem = self.regs, self.stats, self.memory
        op, ra, rb, disp = inst.op, inst.ra, inst.rb, inst.disp
        if op is opcodes.LDA or op is opcodes.LDAH:
            add = disp if op is opcodes.LDA else (disp << 16)
            if ra == 31:
                def do_nop():
                    stats[0] += cost
                    stats[1] += 1
                    return nxt
                return do_nop

            def do_lda():
                stats[0] += cost
                stats[1] += 1
                regs[ra] = (regs[rb] + add) & MASK
                return nxt
            return do_lda

        size = op.access_size
        read_uint = mem.read_uint
        write_uint = mem.write_uint
        if op.inst_class is InstClass.LOAD:
            sign = op.sign_extend
            top = 1 << (8 * size - 1)
            wrap = 1 << (8 * size)

            def do_load():
                stats[0] += cost
                stats[1] += 1
                value = read_uint((regs[rb] + disp) & MASK, size)
                if sign and value & top:
                    value -= wrap
                if ra != 31:
                    regs[ra] = value & MASK
                return nxt
            return do_load

        def do_store():
            stats[0] += cost
            stats[1] += 1
            write_uint((regs[rb] + disp) & MASK, regs[ra], size)
            return nxt
        return do_store

    def _compile_branch(self, inst: Instruction, index: int, nxt: int,
                        cost: int):
        regs, stats = self.regs, self.stats
        op, ra = inst.op, inst.ra
        target = index + 1 + inst.disp
        retaddr = (self.text_base + 4 * (index + 1)) & MASK

        if op.inst_class in (InstClass.UNCOND_BRANCH, InstClass.CALL):
            def do_br():
                stats[0] += cost
                stats[1] += 1
                if ra != 31:
                    regs[ra] = retaddr
                return target
            return do_br

        test = _BRANCH_TESTS[op.mnemonic]

        def do_bcc():
            stats[0] += cost
            stats[1] += 1
            return target if test(regs[ra]) else nxt
        return do_bcc

    def _compile_jump(self, inst: Instruction, nxt: int, cost: int,
                      pc_addr: int):
        regs, stats = self.regs, self.stats
        ra, rb = inst.ra, inst.rb
        base = self.text_base
        retaddr = (pc_addr + 4) & MASK
        is_link = inst.op.inst_class in (InstClass.CALL, InstClass.JUMP)

        def do_jump():
            stats[0] += cost
            stats[1] += 1
            dest = regs[rb] & ~3
            if is_link and ra != 31:
                regs[ra] = retaddr
            offset = dest - base
            if offset < 0:
                raise MachineError(f"jump to {dest:#x} outside text", pc_addr)
            return offset >> 2
        return do_jump

    def _compile_operate(self, inst: Instruction, nxt: int, cost: int,
                         pc_addr: int):
        regs, stats = self.regs, self.stats
        op, ra, rc = inst.op, inst.ra, inst.rc
        fn = _ALU[op.mnemonic]
        can_trap = op.mnemonic in ("divq", "remq")
        if inst.is_lit:
            lit = inst.lit
            if can_trap:
                def do_trap_lit():
                    stats[0] += cost
                    stats[1] += 1
                    if rc != 31:
                        try:
                            regs[rc] = fn(regs[ra], lit, regs[rc])
                        except MachineError as exc:
                            raise MachineError(str(exc), pc_addr) from None
                    return nxt
                return do_trap_lit

            def do_op_lit():
                stats[0] += cost
                stats[1] += 1
                if rc != 31:
                    regs[rc] = fn(regs[ra], lit, regs[rc])
                return nxt
            return do_op_lit
        rb = inst.rb
        if can_trap:
            def do_trap_reg():
                stats[0] += cost
                stats[1] += 1
                if rc != 31:
                    try:
                        regs[rc] = fn(regs[ra], regs[rb], regs[rc])
                    except MachineError as exc:
                        raise MachineError(str(exc), pc_addr) from None
                return nxt
            return do_trap_reg

        def do_op_reg():
            stats[0] += cost
            stats[1] += 1
            if rc != 31:
                regs[rc] = fn(regs[ra], regs[rb], regs[rc])
            return nxt
        return do_op_reg


# ---- superblock source generation ------------------------------------------

_M = f"{MASK:#x}"
_S = f"{SIGN:#x}"


def _reg(i: int) -> str:
    """Source expression for a register read (zero folds to a constant)."""
    return "0" if i == 31 else f"r[{i}]"


def _gen_inst(inst: Instruction, pc: int) -> tuple[list[str], bool]:
    """Python source lines executing one fusible instruction's semantics.

    Returns ``(lines, trappable)``; an architectural no-op yields no lines
    (the superblock's batched stats update still charges it).  Trappable
    instructions set the local ``p`` to their pc first, so the enclosing
    handler reports faults precisely.
    """
    op = inst.op
    if op.format is Format.MEMORY:
        ra, rb, disp = inst.ra, inst.rb, inst.disp
        if op is opcodes.LDA or op is opcodes.LDAH:
            add = disp if op is opcodes.LDA else (disp << 16)
            if ra == 31:
                return [], False
            if rb == 31:
                return [f"r[{ra}] = {add & MASK:#x}"], False
            return [f"r[{ra}] = (r[{rb}] + {add}) & {_M}"], False
        size = op.access_size
        addr = f"{disp & MASK:#x}" if rb == 31 \
            else f"(r[{rb}] + {disp}) & {_M}"
        # Loads and stores inline the fully-mapped-page fast path (see
        # Memory._fast): a known-valid allocated page needs no region
        # check and no call into Memory at all.  Page-crossing or
        # not-yet-validated accesses fall back to read()/write(), which
        # keep full fault semantics; ``p`` is set only on that slow path
        # since the fast path cannot fault.
        lim = 4097 - size
        head = [f"a = {addr}",
                "o = a & 4095",
                "pg = fast.get(a >> 12)",
                f"if pg is not None and o < {lim}:"]
        if op.inst_class is InstClass.LOAD:
            if ra == 31:
                # Discarded load: only the fault check is architectural.
                return [f"a = {addr}",
                        f"if fast.get(a >> 12) is None "
                        f"or (a & 4095) >= {lim}:",
                        f"    p = {pc}",
                        f"    read(a, {size})"], True
            fetch = "pg[o]" if size == 1 \
                else f"fb(pg[o:o + {size}], 'little')"
            if op.sign_extend:
                top = 1 << (8 * size - 1)
                wrap = 1 << (8 * size)
                return head + [
                    f"    v = {fetch}",
                    "else:",
                    f"    p = {pc}",
                    f"    v = read(a, {size})",
                    f"r[{ra}] = (v - {wrap:#x}) & {_M} "
                    f"if v & {top:#x} else v"], True
            return head + [
                f"    r[{ra}] = {fetch}",
                "else:",
                f"    p = {pc}",
                f"    r[{ra}] = read(a, {size})"], True
        if ra == 31:
            store = f"pg[o] = 0" if size == 1 \
                else f"pg[o:o + {size}] = {bytes(size)!r}"
        elif size == 1:
            store = f"pg[o] = r[{ra}] & 0xFF"
        elif size == 8:
            store = f"pg[o:o + 8] = r[{ra}].to_bytes(8, 'little')"
        else:
            mask = (1 << (8 * size)) - 1
            store = (f"pg[o:o + {size}] = "
                     f"(r[{ra}] & {mask:#x}).to_bytes({size}, 'little')")
        return head + [
            f"    {store}",
            "else:",
            f"    p = {pc}",
            f"    write(a, {_reg(ra)}, {size})"], True

    # Operate format.
    rc = inst.rc
    if rc == 31:
        # The per-instruction closure never evaluates the ALU function
        # when rc is the zero register, so neither do we (a divq into
        # zero does not trap).
        return [], False
    mn = op.mnemonic
    a = _reg(inst.ra)
    b = str(inst.lit) if inst.is_lit else _reg(inst.rb)
    c = f"r[{rc}]"
    if mn == "addq":
        return [f"{c} = ({a} + {b}) & {_M}"], False
    if mn == "subq":
        return [f"{c} = ({a} - {b}) & {_M}"], False
    if mn == "mulq":
        return [f"{c} = ({a} * {b}) & {_M}"], False
    if mn == "umulh":
        return [f"{c} = ({a} * {b}) >> 64"], False
    if mn == "and":
        return [f"{c} = {a} & {b}"], False
    if mn == "bis":
        return [f"{c} = {a} | {b}"], False
    if mn == "xor":
        return [f"{c} = {a} ^ {b}"], False
    if mn == "bic":
        return [f"{c} = {a} & ~{b} & {_M}"], False
    if mn == "ornot":
        return [f"{c} = ({a} | ~{b}) & {_M}"], False
    if mn == "sll":
        sh = str(inst.lit & 63) if inst.is_lit else f"({b} & 63)"
        return [f"{c} = ({a} << {sh}) & {_M}"], False
    if mn == "srl":
        sh = str(inst.lit & 63) if inst.is_lit else f"({b} & 63)"
        return [f"{c} = {a} >> {sh}"], False
    if mn == "sra":
        sh = str(inst.lit & 63) if inst.is_lit else f"s"
        lines = [] if inst.is_lit else [f"s = {b} & 63"]
        lines += [f"v = {a}",
                  f"{c} = ((v - {(1 << 64):#x}) >> {sh}) & {_M} "
                  f"if v & {_S} else v >> {sh}"]
        return lines, False
    if mn == "cmpeq":
        return [f"{c} = 1 if {a} == {b} else 0"], False
    if mn == "cmplt":
        return [f"{c} = 1 if ({a} ^ {_S}) < ({b} ^ {_S}) else 0"], False
    if mn == "cmple":
        return [f"{c} = 1 if ({a} ^ {_S}) <= ({b} ^ {_S}) else 0"], False
    if mn == "cmpult":
        return [f"{c} = 1 if {a} < {b} else 0"], False
    if mn == "cmpule":
        return [f"{c} = 1 if {a} <= {b} else 0"], False
    if mn == "cmoveq":
        return [f"if {a} == 0: {c} = {b}"], False
    if mn == "cmovne":
        return [f"if {a} != 0: {c} = {b}"], False
    if mn == "sextb":
        return [f"v = {b}",
                f"{c} = ((v & 0xFF) - 0x100) & {_M} "
                f"if v & 0x80 else v & 0xFF"], False
    if mn == "sextw":
        return [f"v = {b}",
                f"{c} = ((v & 0xFFFF) - 0x10000) & {_M} "
                f"if v & 0x8000 else v & 0xFFFF"], False
    if mn == "sextl":
        return [f"v = {b}",
                f"{c} = ((v & 0xFFFFFFFF) - 0x100000000) & {_M} "
                f"if v & 0x80000000 else v & 0xFFFFFFFF"], False
    if mn == "divq":
        return [f"p = {pc}", f"{c} = div({a}, {b}, 0)"], True
    if mn == "remq":
        return [f"p = {pc}", f"{c} = rem({a}, {b}, 0)"], True
    # Unknown operate: fall back to the shared ALU table via div-style
    # call would lose cmov-old-value semantics; keep it strict instead.
    raise AssertionError(f"no superblock template for {mn}")


def _gen_term(inst: Instruction, index: int, base: int) -> list[str]:
    """Source lines for a superblock's terminating control transfer.

    Mirrors :meth:`Cpu._compile_branch` / :meth:`Cpu._compile_jump`: the
    generated code writes the link register when appropriate and returns
    the successor index (taken target, fall-through, or computed jump
    destination).
    """
    op = inst.op
    nxt = index + 1
    if op.format is Format.BRANCH:
        target = index + 1 + inst.disp
        if op.inst_class in (InstClass.UNCOND_BRANCH, InstClass.CALL):
            lines = []
            if inst.ra != 31:
                retaddr = (base + 4 * nxt) & MASK
                lines.append(f"r[{inst.ra}] = {retaddr:#x}")
            lines.append(f"return {target}")
            return lines
        a = _reg(inst.ra)
        test = {
            "beq": f"{a} == 0",
            "bne": f"{a} != 0",
            "blt": f"{a} & {_S}",
            "ble": f"{a} == 0 or {a} & {_S}",
            "bgt": f"{a} != 0 and not {a} & {_S}",
            "bge": f"not {a} & {_S}",
            "blbc": f"not {a} & 1",
            "blbs": f"{a} & 1",
        }[op.mnemonic]
        return [f"return {target} if {test} else {nxt}"]

    # Jump format: computed destination, optional link.
    pc = base + 4 * index
    lines = [f"dest = {_reg(inst.rb)} & ~3"]
    if op.inst_class in (InstClass.CALL, InstClass.JUMP) and inst.ra != 31:
        lines.append(f"r[{inst.ra}] = {(pc + 4) & MASK:#x}")
    lines.append(f"o = dest - {base}")
    lines.append("if o < 0:")
    lines.append(f"    raise MachineError('jump to %#x outside text' % dest, "
                 f"{pc})")
    lines.append("return o >> 2")
    return lines


_BRANCH_TESTS = {
    "beq": lambda v: v == 0,
    "bne": lambda v: v != 0,
    "blt": lambda v: bool(v & SIGN),
    "ble": lambda v: v == 0 or bool(v & SIGN),
    "bgt": lambda v: v != 0 and not v & SIGN,
    "bge": lambda v: not v & SIGN,
    "blbc": lambda v: not v & 1,
    "blbs": lambda v: bool(v & 1),
}


def _divq(a: int, b: int, old: int) -> int:
    if b == 0:
        raise MachineError("integer division by zero")
    sa, sb = _signed(a), _signed(b)
    return (abs(sa) // abs(sb) * (1 if (sa < 0) == (sb < 0) else -1)) & MASK


def _remq(a: int, b: int, old: int) -> int:
    if b == 0:
        raise MachineError("integer remainder by zero")
    sa, sb = _signed(a), _signed(b)
    return (sa - sb * (abs(sa) // abs(sb) * (1 if (sa < 0) == (sb < 0)
                                             else -1))) & MASK


_ALU = {
    "addq": lambda a, b, c: (a + b) & MASK,
    "subq": lambda a, b, c: (a - b) & MASK,
    "mulq": lambda a, b, c: (a * b) & MASK,
    "divq": _divq,
    "remq": _remq,
    "and": lambda a, b, c: a & b,
    "bis": lambda a, b, c: a | b,
    "xor": lambda a, b, c: a ^ b,
    "bic": lambda a, b, c: a & ~b & MASK,
    "ornot": lambda a, b, c: (a | ~b) & MASK,
    "sll": lambda a, b, c: (a << (b & 63)) & MASK,
    "srl": lambda a, b, c: a >> (b & 63),
    "sra": lambda a, b, c: (_signed(a) >> (b & 63)) & MASK,
    "cmpeq": lambda a, b, c: 1 if a == b else 0,
    "cmplt": lambda a, b, c: 1 if _signed(a) < _signed(b) else 0,
    "cmple": lambda a, b, c: 1 if _signed(a) <= _signed(b) else 0,
    "cmpult": lambda a, b, c: 1 if a < b else 0,
    "cmpule": lambda a, b, c: 1 if a <= b else 0,
    "cmoveq": lambda a, b, c: b if a == 0 else c,
    "cmovne": lambda a, b, c: b if a != 0 else c,
    "sextb": lambda a, b, c: (b & 0xFF) - 0x100 & MASK
        if b & 0x80 else b & 0xFF,
    "sextw": lambda a, b, c: ((b & 0xFFFF) - 0x10000) & MASK
        if b & 0x8000 else b & 0xFFFF,
    "sextl": lambda a, b, c: ((b & 0xFFFFFFFF) - 0x100000000) & MASK
        if b & 0x80000000 else b & 0xFFFFFFFF,
    "umulh": lambda a, b, c: (a * b) >> 64,
}
