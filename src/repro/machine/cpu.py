"""The WRL-64 interpreter core.

The text segment is pre-decoded once into per-instruction closures (the
machine never self-modifies code), so the dispatch loop is a tight
``i = code[i]()``.  Each closure charges its cycle cost, updates registers
or memory, and returns the index of the next instruction.

This simulator is the reproduction's stand-in for Alpha silicon.  ATOM
itself uses *no* simulation — the instrumented executable is ordinary
machine code that runs here natively, analysis routines and all.
"""

from __future__ import annotations

from ..isa import encoding, opcodes, registers
from ..isa.instruction import Instruction
from ..isa.opcodes import Format, InstClass
from .costmodel import CostModel, DEFAULT
from .memory import Memory, MemoryFault
from .syscalls import ExitProgram, Kernel

MASK = (1 << 64) - 1
SIGN = 1 << 63


class MachineError(Exception):
    """A trap: illegal jump, division by zero, halt, memory fault, ..."""

    def __init__(self, message: str, pc: int | None = None):
        self.pc = pc
        if pc is not None:
            message = f"pc={pc:#x}: {message}"
        super().__init__(message)


def _signed(value: int) -> int:
    return value - (1 << 64) if value & SIGN else value


class Cpu:
    """Decoder + dispatch loop over a fixed text segment."""

    def __init__(self, memory: Memory, kernel: Kernel, text_base: int,
                 text: bytes, cost_model: CostModel = DEFAULT):
        self.memory = memory
        self.kernel = kernel
        self.text_base = text_base
        self.regs: list[int] = [0] * 32
        #: stats[0] = cycles, stats[1] = instructions executed
        self.stats = [0, 0]
        self._insts = encoding.decode_stream(text)
        self._code = [self._compile(inst, i, cost_model.cost(inst.op))
                      for i, inst in enumerate(self._insts)]

    # ---- public API -------------------------------------------------------

    @property
    def cycles(self) -> int:
        return self.stats[0]

    @property
    def inst_count(self) -> int:
        return self.stats[1]

    def run(self, entry: int, max_insts: int = 2_000_000_000) -> int:
        """Run from ``entry`` until the program exits; returns exit status."""
        index = self._index_of(entry)
        code = self._code
        stats = self.stats
        try:
            while True:
                index = code[index]()
                if stats[1] > max_insts:
                    raise MachineError("instruction budget exhausted",
                                       self.text_base + 4 * index)
        except ExitProgram as exc:
            return exc.status
        except IndexError:
            raise MachineError("control left the text segment",
                               self.text_base + 4 * index) from None
        except MemoryFault as exc:
            raise MachineError(str(exc), self.text_base + 4 * index) from None

    def _index_of(self, addr: int) -> int:
        offset = addr - self.text_base
        if offset % 4 or not 0 <= offset < 4 * len(self._insts):
            raise MachineError(f"bad text address {addr:#x}")
        return offset >> 2

    # ---- per-instruction compilation ------------------------------------------

    def _compile(self, inst: Instruction, index: int, cost: int):
        op = inst.op
        regs = self.regs
        stats = self.stats
        nxt = index + 1
        pc_addr = self.text_base + 4 * index

        if op.format is Format.MEMORY:
            return self._compile_memory(inst, nxt, cost)
        if op.format is Format.BRANCH:
            return self._compile_branch(inst, index, nxt, cost)
        if op.format is Format.JUMP:
            return self._compile_jump(inst, nxt, cost, pc_addr)
        if op.format is Format.OPERATE:
            return self._compile_operate(inst, nxt, cost)
        if op is opcodes.SYS:
            kernel = self.kernel

            def do_sys():
                stats[0] += cost
                stats[1] += 1
                result = kernel.syscall(
                    regs[0],
                    (regs[16], regs[17], regs[18], regs[19], regs[20],
                     regs[21]),
                    stats[0])
                regs[0] = result & MASK
                return nxt
            return do_sys

        def do_halt():
            raise MachineError("halt executed", pc_addr)
        return do_halt

    def _compile_memory(self, inst: Instruction, nxt: int, cost: int):
        regs, stats, mem = self.regs, self.stats, self.memory
        op, ra, rb, disp = inst.op, inst.ra, inst.rb, inst.disp
        if op is opcodes.LDA or op is opcodes.LDAH:
            add = disp if op is opcodes.LDA else (disp << 16)
            if ra == 31:
                def do_nop():
                    stats[0] += cost
                    stats[1] += 1
                    return nxt
                return do_nop

            def do_lda():
                stats[0] += cost
                stats[1] += 1
                regs[ra] = (regs[rb] + add) & MASK
                return nxt
            return do_lda

        size = op.access_size
        read_uint = mem.read_uint
        write_uint = mem.write_uint
        if op.inst_class is InstClass.LOAD:
            sign = op.sign_extend
            top = 1 << (8 * size - 1)
            wrap = 1 << (8 * size)

            def do_load():
                stats[0] += cost
                stats[1] += 1
                value = read_uint((regs[rb] + disp) & MASK, size)
                if sign and value & top:
                    value -= wrap
                if ra != 31:
                    regs[ra] = value & MASK
                return nxt
            return do_load

        def do_store():
            stats[0] += cost
            stats[1] += 1
            write_uint((regs[rb] + disp) & MASK, regs[ra], size)
            return nxt
        return do_store

    def _compile_branch(self, inst: Instruction, index: int, nxt: int,
                        cost: int):
        regs, stats = self.regs, self.stats
        op, ra = inst.op, inst.ra
        target = index + 1 + inst.disp
        retaddr = (self.text_base + 4 * (index + 1)) & MASK

        if op.inst_class in (InstClass.UNCOND_BRANCH, InstClass.CALL):
            def do_br():
                stats[0] += cost
                stats[1] += 1
                if ra != 31:
                    regs[ra] = retaddr
                return target
            return do_br

        test = _BRANCH_TESTS[op.mnemonic]

        def do_bcc():
            stats[0] += cost
            stats[1] += 1
            return target if test(regs[ra]) else nxt
        return do_bcc

    def _compile_jump(self, inst: Instruction, nxt: int, cost: int,
                      pc_addr: int):
        regs, stats = self.regs, self.stats
        ra, rb = inst.ra, inst.rb
        base = self.text_base
        retaddr = (pc_addr + 4) & MASK
        is_link = inst.op.inst_class in (InstClass.CALL, InstClass.JUMP)

        def do_jump():
            stats[0] += cost
            stats[1] += 1
            dest = regs[rb] & ~3
            if is_link and ra != 31:
                regs[ra] = retaddr
            offset = dest - base
            if offset < 0:
                raise MachineError(f"jump to {dest:#x} outside text", pc_addr)
            return offset >> 2
        return do_jump

    def _compile_operate(self, inst: Instruction, nxt: int, cost: int):
        regs, stats = self.regs, self.stats
        op, ra, rc = inst.op, inst.ra, inst.rc
        fn = _ALU[op.mnemonic]
        if inst.is_lit:
            lit = inst.lit

            def do_op_lit():
                stats[0] += cost
                stats[1] += 1
                if rc != 31:
                    regs[rc] = fn(regs[ra], lit, regs[rc])
                return nxt
            return do_op_lit
        rb = inst.rb

        def do_op_reg():
            stats[0] += cost
            stats[1] += 1
            if rc != 31:
                regs[rc] = fn(regs[ra], regs[rb], regs[rc])
            return nxt
        return do_op_reg


_BRANCH_TESTS = {
    "beq": lambda v: v == 0,
    "bne": lambda v: v != 0,
    "blt": lambda v: bool(v & SIGN),
    "ble": lambda v: v == 0 or bool(v & SIGN),
    "bgt": lambda v: v != 0 and not v & SIGN,
    "bge": lambda v: not v & SIGN,
    "blbc": lambda v: not v & 1,
    "blbs": lambda v: bool(v & 1),
}


def _divq(a: int, b: int, old: int) -> int:
    if b == 0:
        raise MachineError("integer division by zero")
    sa, sb = _signed(a), _signed(b)
    return (abs(sa) // abs(sb) * (1 if (sa < 0) == (sb < 0) else -1)) & MASK


def _remq(a: int, b: int, old: int) -> int:
    if b == 0:
        raise MachineError("integer remainder by zero")
    sa, sb = _signed(a), _signed(b)
    return (sa - sb * (abs(sa) // abs(sb) * (1 if (sa < 0) == (sb < 0)
                                             else -1))) & MASK


_ALU = {
    "addq": lambda a, b, c: (a + b) & MASK,
    "subq": lambda a, b, c: (a - b) & MASK,
    "mulq": lambda a, b, c: (a * b) & MASK,
    "divq": _divq,
    "remq": _remq,
    "and": lambda a, b, c: a & b,
    "bis": lambda a, b, c: a | b,
    "xor": lambda a, b, c: a ^ b,
    "bic": lambda a, b, c: a & ~b & MASK,
    "ornot": lambda a, b, c: (a | ~b) & MASK,
    "sll": lambda a, b, c: (a << (b & 63)) & MASK,
    "srl": lambda a, b, c: a >> (b & 63),
    "sra": lambda a, b, c: (_signed(a) >> (b & 63)) & MASK,
    "cmpeq": lambda a, b, c: 1 if a == b else 0,
    "cmplt": lambda a, b, c: 1 if _signed(a) < _signed(b) else 0,
    "cmple": lambda a, b, c: 1 if _signed(a) <= _signed(b) else 0,
    "cmpult": lambda a, b, c: 1 if a < b else 0,
    "cmpule": lambda a, b, c: 1 if a <= b else 0,
    "cmoveq": lambda a, b, c: b if a == 0 else c,
    "cmovne": lambda a, b, c: b if a != 0 else c,
    "sextb": lambda a, b, c: (b & 0xFF) - 0x100 & MASK
        if b & 0x80 else b & 0xFF,
    "sextw": lambda a, b, c: ((b & 0xFFFF) - 0x10000) & MASK
        if b & 0x8000 else b & 0xFFFF,
    "sextl": lambda a, b, c: ((b & 0xFFFFFFFF) - 0x100000000) & MASK
        if b & 0x80000000 else b & 0xFFFFFFFF,
    "umulh": lambda a, b, c: (a * b) >> 64,
}
