"""``wrl-run``: load and execute a WOF executable from the command line."""

from __future__ import annotations

import argparse
import sys

from ..objfile.module import Module
from ..obs import TRACE, trace_path_from_env
from .cpu import MachineError
from .loader import run_module


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="wrl-run",
                                 description="run a WOF executable")
    ap.add_argument("executable")
    ap.add_argument("args", nargs="*", help="program arguments")
    ap.add_argument("--max-insts", type=int, default=2_000_000_000,
                    help="instruction budget (timeout; exit 124)")
    ap.add_argument("--stats", action="store_true",
                    help="print cycle/instruction counts to stderr")
    ap.add_argument("--dump-files", action="store_true",
                    help="print virtual-filesystem outputs to stderr")
    ap.add_argument("--trace", default=trace_path_from_env(),
                    metavar="PATH",
                    help="capture a structured trace of the run "
                         "(.json = Chrome trace, .jsonl = line-"
                         "delimited; default: $WRL_TRACE)")
    args = ap.parse_args(argv)
    if args.max_insts <= 0:
        ap.error("--max-insts must be positive")
    module = Module.load(args.executable)
    if args.trace:
        TRACE.reset()
        TRACE.enable()
    try:
        stdin = b""
        if not sys.stdin.isatty():
            stdin = sys.stdin.buffer.read()
    except (OSError, ValueError, AttributeError):
        stdin = b""      # no usable stdin (e.g. under a test harness)
    # Budget exhaustion is a *timeout* at this level, not a machine
    # fault: route through the eval runner so it surfaces as the typed
    # EvalTimeout (timeout convention: exit 124, like timeout(1)).
    from ..eval.errors import EvalTimeout
    from ..eval.runner import run_uninstrumented
    try:
        result = run_uninstrumented(module, args=tuple(args.args),
                                    stdin=stdin, max_insts=args.max_insts)
    except EvalTimeout as exc:
        print(f"wrl-run: {exc}", file=sys.stderr)
        return 124
    except MachineError as exc:
        print(f"wrl-run: {exc}", file=sys.stderr)
        return 125
    finally:
        if args.trace:
            TRACE.write(args.trace)
            TRACE.disable()
            print(f"wrl-run: wrote trace to {args.trace}",
                  file=sys.stderr)
    sys.stdout.buffer.write(result.stdout)
    sys.stderr.buffer.write(result.stderr)
    if args.stats:
        print(f"[cycles={result.cycles} insts={result.inst_count}]",
              file=sys.stderr)
    if args.dump_files:
        for name, content in sorted(result.files.items()):
            print(f"--- {name} ---", file=sys.stderr)
            sys.stderr.write(content.decode("utf-8", "replace"))
    return result.status


if __name__ == "__main__":
    raise SystemExit(main())
