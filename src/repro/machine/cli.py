"""``wrl-run``: load and execute a WOF executable from the command line."""

from __future__ import annotations

import argparse
import sys

from ..objfile.module import Module
from ..obs import TRACE, mint_trace_id, trace_id_from_env, \
    trace_path_from_env
from .cpu import MachineError
from .loader import run_module


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="wrl-run",
                                 description="run a WOF executable")
    ap.add_argument("executable")
    ap.add_argument("args", nargs="*", help="program arguments")
    ap.add_argument("--max-insts", type=int, default=2_000_000_000,
                    help="instruction budget (timeout; exit 124)")
    ap.add_argument("--stats", action="store_true",
                    help="print cycle/instruction counts (and JIT code "
                         "cache counters) to stderr")
    ap.add_argument("--jit", default=True,
                    action=argparse.BooleanOptionalAction,
                    help="JIT-compile hot superblock regions "
                         "(--no-jit to A/B against template fusion; "
                         "architecturally invisible either way)")
    ap.add_argument("--dump-files", action="store_true",
                    help="print virtual-filesystem outputs to stderr")
    ap.add_argument("--trace", default=trace_path_from_env(),
                    metavar="PATH",
                    help="capture a structured trace of the run "
                         "(.json = Chrome trace, .jsonl = line-"
                         "delimited; default: $WRL_TRACE)")
    ap.add_argument("--profile", default=None, metavar="PATH",
                    help="write a deterministic PC-sample profile "
                         "artifact (render with wrl-trace profile / "
                         "wrl-annotate)")
    ap.add_argument("--sample-interval", type=int, default=None,
                    metavar="N",
                    help="sample every N retired instructions "
                         "(default 1000; implies --profile semantics)")
    ap.add_argument("--call-stacks", action="store_true",
                    help="track shadow call stacks while profiling "
                         "(collapsed flamegraph stacks in the artifact; "
                         "slower: disables superblock dispatch)")
    ap.add_argument("--collapsed", default=None, metavar="PATH",
                    help="also write collapsed flamegraph stacks "
                         "(implies --call-stacks)")
    ap.add_argument("--server", default=None, metavar="SOCKET",
                    help="execute on a running wrl-serve daemon "
                         "instead of in-process (default: $WRL_SERVER "
                         "when set); artifacts are byte-identical to "
                         "the local path")
    ap.add_argument("--tenant", default=None,
                    help="cache namespace on the daemon (default: "
                         "$WRL_TENANT or 'default')")
    ap.add_argument("--trace-id", default=trace_id_from_env(),
                    metavar="ID",
                    help="request trace id stamped on every span "
                         "(server mode mints one when absent; default: "
                         "$WRL_TRACE_ID)")
    args = ap.parse_args(argv)
    if args.max_insts <= 0:
        ap.error("--max-insts must be positive")
    if args.sample_interval is not None and args.sample_interval < 1:
        ap.error("--sample-interval must be >= 1")

    import os
    server = args.server or os.environ.get("WRL_SERVER") or None
    if server:
        profiling = args.profile or args.collapsed \
            or args.sample_interval is not None or args.call_stacks
        if profiling or args.trace:
            ap.error("--profile/--collapsed/--sample-interval/"
                     "--call-stacks/--trace run in-process; drop "
                     "--server (or unset WRL_SERVER) to use them")
        return _main_via_server(args, server)

    module = Module.load(args.executable)

    sampler = None
    profiling = args.profile or args.collapsed \
        or args.sample_interval is not None or args.call_stacks
    if profiling:
        from ..obs import runtime
        interval = args.sample_interval or runtime.DEFAULT_INTERVAL
        if args.call_stacks or args.collapsed:
            sampler = runtime.StackSampler(interval)
        else:
            sampler = runtime.PcSampler(interval)
    if args.trace:
        TRACE.reset()
        TRACE.enable()
    if args.trace_id:
        from ..eval.runner import set_trace_id
        set_trace_id(args.trace_id)
    try:
        stdin = b""
        if not sys.stdin.isatty():
            stdin = sys.stdin.buffer.read()
    except (OSError, ValueError, AttributeError):
        stdin = b""      # no usable stdin (e.g. under a test harness)
    # Budget exhaustion is a *timeout* at this level, not a machine
    # fault: route through the eval runner so it surfaces as the typed
    # EvalTimeout (timeout convention: exit 124, like timeout(1)).
    from ..eval.errors import EvalTimeout
    from ..eval.runner import run_uninstrumented
    try:
        result = run_uninstrumented(module, args=tuple(args.args),
                                    stdin=stdin, max_insts=args.max_insts,
                                    jit=args.jit, sampler=sampler)
    except EvalTimeout as exc:
        print(f"wrl-run: {exc}", file=sys.stderr)
        return 124
    except MachineError as exc:
        print(f"wrl-run: {exc}", file=sys.stderr)
        return 125
    finally:
        if args.trace:
            TRACE.write(args.trace)
            TRACE.disable()
            print(f"wrl-run: wrote trace to {args.trace}",
                  file=sys.stderr)
        # A timeout still yields a valid (partial) profile; write what
        # was sampled either way.
        if sampler is not None and sampler.cpu is not None:
            from ..obs import runtime
            doc = runtime.profile_doc(sampler, module)
            if args.profile:
                runtime.write_profile(doc, args.profile)
                print(f"wrl-run: wrote profile to {args.profile}",
                      file=sys.stderr)
            if args.collapsed:
                runtime.write_collapsed(doc, args.collapsed)
                print(f"wrl-run: wrote collapsed stacks to "
                      f"{args.collapsed}", file=sys.stderr)
            if not args.profile and not args.collapsed:
                print(runtime.render_profile(doc), file=sys.stderr)
    sys.stdout.buffer.write(result.stdout)
    sys.stderr.buffer.write(result.stderr)
    if args.stats:
        print(f"[cycles={result.cycles} insts={result.inst_count}]",
              file=sys.stderr)
        if result.jit_stats is not None:
            pairs = " ".join(f"{k.removeprefix('jit_')}={v}"
                             for k, v in result.jit_stats.items())
            print(f"[jit {pairs}]", file=sys.stderr)
    if args.dump_files:
        for name, content in sorted(result.files.items()):
            print(f"--- {name} ---", file=sys.stderr)
            sys.stderr.write(content.decode("utf-8", "replace"))
    return result.status


def _main_via_server(args, server: str) -> int:
    """The thin-client half of wrl-run: ship the exe to a wrl-serve
    daemon and map its structured replies onto the same exit codes as
    the in-process path (timeout 124, machine fault 125)."""
    import os

    from ..serve.client import ServeClient
    from ..serve.protocol import ServeError
    tenant = args.tenant or os.environ.get("WRL_TENANT") or "default"
    # Thin clients mint the request context (v2 protocol); the daemon
    # tags its queue/execute spans and the worker's spans with it.
    trace_id = args.trace_id or mint_trace_id()
    exe = open(args.executable, "rb").read()
    try:
        stdin = b""
        if not sys.stdin.isatty():
            stdin = sys.stdin.buffer.read()
    except (OSError, ValueError, AttributeError):
        stdin = b""
    client = ServeClient(server)
    try:
        reply = client.run_exe(exe, args=tuple(args.args), stdin=stdin,
                               max_insts=args.max_insts, jit=args.jit,
                               tenant=tenant, trace_id=trace_id)
    except ServeError as exc:
        print(f"wrl-run: {exc}", file=sys.stderr)
        if exc.kind == "machine-error":
            return 125
        if exc.kind == "overloaded":
            return 75          # EX_TEMPFAIL: back off and retry
        return 1
    if reply.timeout:
        print(f"wrl-run: {reply.message}", file=sys.stderr)
        return 124
    sys.stdout.buffer.write(reply.stdout)
    sys.stderr.buffer.write(reply.stderr)
    if args.stats:
        print(f"[cycles={reply.cycles} insts={reply.insts}]",
              file=sys.stderr)
        if reply.jit_stats is not None:
            pairs = " ".join(f"{k.removeprefix('jit_')}={v}"
                             for k, v in reply.jit_stats.items())
            print(f"[jit {pairs}]", file=sys.stderr)
    if args.dump_files:
        for name, content in sorted((reply.files or {}).items()):
            print(f"--- {name} ---", file=sys.stderr)
            sys.stderr.write(content.decode("utf-8", "replace"))
    return int(reply.status)


if __name__ == "__main__":
    raise SystemExit(main())
