"""The superblock region JIT: a code cache above template fusion.

Template fusion (:mod:`repro.machine.cpu`) compiles each straight-line
run into one Python function, but control still returns to the dispatch
loop after every run — a hot loop pays one dispatch, one bounds check
and one batched ``stats`` update per iteration, and every register
access goes through the shared ``regs`` list.

This module promotes *hot* superblock heads one level further, the way
Pin/DynamoRIO-style binary translators grow traces out of basic blocks.
A counting closure sits on each superblock head; once its entry count
passes :data:`JIT_THRESHOLD` the surrounding control-flow region (up to
:data:`MAX_BLOCKS` blocks reachable from the head) is compiled into a
single Python function in which

* register state lives in plain locals (``g9`` for ``r[9]``), loaded on
  entry and written back on every exit — including fault exits, so
  trap-time architectural state is bit-identical to the fused path;
* guest memory operations are inlined with the same validated-page fast
  path the fused templates use;
* control transfers between blocks are a ``w``-label state machine that
  never leaves compiled code, and transfers out of the region are
  guard-checked *side exits* returning the successor index to the
  ordinary dispatch loop.

Block extents replicate the superblock runs exactly (same leader, cap
and terminator-absorption rules), and each block charges its full
cost/count on entry exactly as a fused dispatch would, so ``stats`` —
even mid-fault — cannot distinguish jit on from jit off.

**Fuel contract.**  A region reads ``cpu._jit_limit[0]`` on entry and
guarantees ``stats[1] <= limit`` on return: back-edges check a
precomputed fuel residue and side-exit when it runs out, and the entry
closure falls back to the head's plain fused executor when the residue
would start negative (which also guarantees forward progress).  The
interpreter sets the limit to ``max_insts`` for plain runs and to one
instruction *short* of the next sampling boundary for sampled runs, so
the deterministic PC sampler still lands on exact instruction
boundaries with the JIT engaged.

Compiled regions are installed in a per-Cpu, capacity-bounded code
cache with FIFO eviction (the evicted head gets a fresh counting
closure, so it can re-promote) and explicit invalidation hooks.  Code
objects are memoized by generated source in a module-level cache shared
across Cpus, mirroring the fused template cache.
"""

from __future__ import annotations

import re

from ..isa import opcodes
from ..isa.opcodes import Format, InstClass
from .cpu import MASK, SIGN, FUSE_CAP, MachineError, _gen_inst, _divq, _remq
from .memory import MemoryFault

#: Superblock-head entries before the surrounding region is compiled.
JIT_THRESHOLD = 16

#: Most blocks one region may span.  Kept modest: label dispatch inside
#: a region is a compare chain, and entry/exit cost scales with the
#: region's register footprint, so huge regions stop paying for
#: themselves (hot loops need few blocks).
MAX_BLOCKS = 24

#: Longest straight-line block (same cap as fusion, so block extents
#: replicate superblock runs exactly).
BLOCK_CAP = FUSE_CAP

#: Default per-Cpu code cache capacity, in resident regions.
DEFAULT_CACHE_CAP = 128

#: Compiled region code objects keyed by generated source, shared
#: across Cpus exactly like ``cpu._SB_CACHE``.
_JIT_CACHE: dict[str, object] = {}
_JIT_CACHE_CAP = 1024

_S = f"{SIGN:#x}"
_M = f"{MASK:#x}"

#: access size -> (page-view getter, misalignment mask, store mask).
#: The typed views index whole elements, so an aligned access can never
#: cross a page and needs no limit check; size 1 uses the raw page
#: bytearray (``fget``) and cannot be misaligned.
_VIEWS = {1: ("fget", 0, "0xFF"),
          2: ("fw", 1, "0xFFFF"),
          4: ("fl", 3, "0xFFFFFFFF"),
          8: ("fq", 7, None)}

#: ``r[<n>]`` register references in fused-template source; regions
#: rewrite them to ``g<n>`` locals.
_RREF = re.compile(r"\br\[(\d+)\]")
_GREF = re.compile(r"\bg(\d+)\b")
_GWRITE = re.compile(r"\bg(\d+)\s*=[^=]")


def _localize(line: str) -> str:
    """Rewrite one fused-template source line for region locals."""
    return _RREF.sub(lambda m: "g" + m.group(1), line) \
                .replace("fast.get(", "fget(")


def _slot_key(inst):
    """The hoisting key of one memory access, or None.

    An access whose base register is stable inside the region (never
    written, or only adjusted by ``lda``-style address arithmetic that
    triggers a slot refresh) has a predictable address: the address
    arithmetic, page-view lookup and element offset can all be computed
    once at region entry.  The access itself still goes through real
    guest memory every time (plain write-through), so aliasing needs no
    analysis at all — only the address computation is hoisted.
    """
    op = inst.op
    if op.format is not Format.MEMORY \
            or op is opcodes.LDA or op is opcodes.LDAH:
        return None
    return (inst.rb, inst.disp, op.access_size)


def _slot_setup(key, names) -> list[str]:
    """Source lines (re)computing one hoisted slot's address, page view
    and element offset from the base register's current value."""
    b, disp, size = key
    av, mvn, ov = names
    view, amask, _ = _VIEWS[size]
    shift = size.bit_length() - 1
    addr = f"{disp & MASK:#x}" if b == 31 else f"(g{b} + {disp}) & {_M}"
    lines = [f"{av} = {addr}"]
    if amask:
        lines.append(f"{mvn} = None if {av} & {amask} "
                     f"else {view}({av} >> 12)")
    else:
        lines.append(f"{mvn} = {view}({av} >> 12)")
    lines.append(f"{ov} = ({av} & 4095) >> {shift}" if shift
                 else f"{ov} = {av} & 4095")
    return lines


def _effective_keys(insts, order, scans, eligible) -> dict[int, tuple]:
    """Map instruction index -> hoistable slot key, with block-local
    LDA alias propagation.

    mlc-generated code addresses locals as ``lda rA, off(sp)`` followed
    by ``ldq/stq d(rA)``, and globals as ``ldah``/``lda`` pairs.  Within
    one straight-line block the alias is exact: while ``rA`` holds
    ``(base + k) & M`` for a stable ``base`` (or an absolute constant),
    an access through ``rA`` is an access to predictable address
    ``base + k + d`` and shares that hoisted slot.  Any other write to
    ``rA`` — or any write to the base itself — kills the alias; block
    boundaries reset the map (no cross-block dataflow needed for
    soundness).
    """
    eff: dict[int, tuple] = {}
    for i in order:
        end, _ = scans[i]
        aliases: dict[int, tuple[int, int]] = {}
        for k in range(i, end):
            inst = insts[k]
            op = inst.op
            if op is opcodes.LDA or op is opcodes.LDAH:
                ra, rb = inst.ra, inst.rb
                add = inst.disp if op is opcodes.LDA else inst.disp << 16
                if ra == 31:
                    continue
                if rb == 31:
                    alias = (31, add)
                elif rb in aliases:
                    b, off = aliases[rb]
                    alias = (b, off + add)
                elif rb in eligible:
                    alias = (rb, add)
                else:
                    alias = None
                aliases = {t: v for t, v in aliases.items()
                           if t != ra and v[0] != ra}
                if alias is not None and alias[0] != ra:
                    aliases[ra] = alias
                continue
            key = _slot_key(inst)
            if key is not None:
                rb, disp, size = key
                if rb in aliases:
                    b, off = aliases[rb]
                    eff[k] = (b, off + disp, size)
                elif rb == 31 or rb in eligible:
                    eff[k] = key
            d = _def_reg(inst)
            if d is not None:
                aliases = {t: v for t, v in aliases.items()
                           if t != d and v[0] != d}
    return eff


def _gen_mem(inst, pc: int, slot) -> tuple[list[str] | None, bool]:
    """Region-tier code for one aligned-capable load/store.

    Hoisted accesses (``slot`` set — see :func:`_slot_key` and
    :func:`_effective_keys`) reduce to one ``is None`` guard plus one
    typed-view index.  Other multi-byte accesses go through the
    pre-cast typed page views (:attr:`Memory._fastq` and friends):
    address arithmetic, one dict probe, one alignment test, one element
    index.  Misaligned or not-yet-validated accesses fall back to
    ``read``/``write`` with ``p`` set, keeping full fault semantics.
    Returns ``(None, False)`` for shapes the fused template already
    handles optimally (byte accesses).
    """
    op = inst.op
    ra, rb, disp = inst.ra, inst.rb, inst.disp
    size = op.access_size
    if slot is not None:
        av, mv_, ov = slot
        load = op.inst_class is InstClass.LOAD
        if load and ra == 31:
            return [f"if {mv_} is None:",
                    f"    p = {pc}",
                    f"    read({av}, {size})"], True
        if load:
            dst = "v" if op.sign_extend else f"g{ra}"
            lines = [f"if {mv_} is None:",
                     f"    p = {pc}",
                     f"    {dst} = read({av}, {size})",
                     "else:",
                     f"    {dst} = {mv_}[{ov}]"]
            if op.sign_extend:
                top = 1 << (8 * size - 1)
                wrap = 1 << (8 * size)
                lines.append(f"g{ra} = (v - {wrap:#x}) & {_M} "
                             f"if v & {top:#x} else v")
            return lines, True
        _, _, smask = _VIEWS[size]
        raw = "0" if ra == 31 else f"g{ra}"
        masked = raw if smask is None or ra == 31 else f"g{ra} & {smask}"
        return [f"if {mv_} is None:",
                f"    p = {pc}",
                f"    write({av}, {raw}, {size})",
                "else:",
                f"    {mv_}[{ov}] = {masked}"], True
    if size == 1 or (op.inst_class is InstClass.LOAD and ra == 31):
        return None, False
    view, amask, smask = _VIEWS[size]
    shift = size.bit_length() - 1
    addr = f"{disp & MASK:#x}" if rb == 31 else f"(g{rb} + {disp}) & {_M}"
    lines = [f"a = {addr}",
             f"mv = {view}(a >> 12)",
             f"if mv is None or a & {amask}:"]
    if op.inst_class is InstClass.LOAD:
        if op.sign_extend:
            top = 1 << (8 * size - 1)
            wrap = 1 << (8 * size)
            lines += [f"    p = {pc}",
                      f"    v = read(a, {size})",
                      "else:",
                      f"    v = mv[(a & 4095) >> {shift}]",
                      f"g{ra} = (v - {wrap:#x}) & {_M} "
                      f"if v & {top:#x} else v"]
        else:
            lines += [f"    p = {pc}",
                      f"    g{ra} = read(a, {size})",
                      "else:",
                      f"    g{ra} = mv[(a & 4095) >> {shift}]"]
        return lines, True
    raw = "0" if ra == 31 else f"g{ra}"
    masked = raw if smask is None or ra == 31 else f"g{ra} & {smask}"
    lines += [f"    p = {pc}",
              f"    write(a, {raw}, {size})",
              "else:",
              f"    mv[(a & 4095) >> {shift}] = {masked}"]
    return lines, True


def _gen_inst_jit(inst, pc: int, slot) -> tuple[list[str], bool]:
    """One instruction's region-tier source: the specialized memory
    templates above when they apply, else the fused template rewritten
    for register locals."""
    op = inst.op
    if op.format is Format.MEMORY and op is not opcodes.LDA \
            and op is not opcodes.LDAH:
        lines, traps = _gen_mem(inst, pc, slot)
        if lines is not None:
            return lines, traps
    gen, traps = _gen_inst(inst, pc)
    return [_localize(line) for line in gen], traps


def _def_reg(inst) -> int | None:
    """The register an instruction writes, at ISA level (31 and pure
    stores return None)."""
    op = inst.op
    fmt = op.format
    if fmt is Format.MEMORY:
        if op.inst_class is InstClass.STORE:
            return None
        return inst.ra if inst.ra != 31 else None
    if fmt is Format.OPERATE:
        return inst.rc if inst.rc != 31 else None
    # Branch/jump linkage (conditional branches leave ra untouched).
    if op.inst_class in (InstClass.UNCOND_BRANCH, InstClass.CALL,
                         InstClass.JUMP):
        return inst.ra if inst.ra != 31 else None
    return None


def _branch_test(mnemonic: str, a: str) -> str:
    return {
        "beq": f"{a} == 0",
        "bne": f"{a} != 0",
        "blt": f"{a} & {_S}",
        "ble": f"{a} == 0 or {a} & {_S}",
        "bgt": f"{a} != 0 and not {a} & {_S}",
        "bge": f"not {a} & {_S}",
        "blbc": f"not {a} & 1",
        "blbs": f"{a} & 1",
    }[mnemonic]


def _leader_table(insts) -> bytearray:
    """``leader[i]`` — control may enter at ``i`` from somewhere other
    than ``i - 1`` (the same table superblock fusion splits runs on)."""
    n = len(insts)
    leader = bytearray(n + 1)
    for i, inst in enumerate(insts):
        fmt = inst.op.format
        if fmt is Format.MEMORY or fmt is Format.OPERATE:
            continue
        leader[i + 1] = 1
        if fmt is Format.BRANCH:
            target = i + 1 + inst.disp
            if 0 <= target <= n:
                leader[target] = 1
    return leader


def _scan_block(insts, i: int, starts, leader) -> tuple[int, str]:
    """Extent and terminator kind of the block at index ``i``.

    Returns ``(end, kind)`` where ``[i, end)`` is straight-line code and
    ``kind`` classifies what stopped the scan: ``branch``/``jump`` (a
    terminator at ``end``, absorbed into the block), ``stop`` (syscall
    or halt at ``end``: side-exit *before* it, uncharged), or ``fall``
    (leader, region start, cap, or end of text: fall through to
    ``end``).  Stop conditions mirror :meth:`Cpu.superblock_runs`
    exactly so block charging matches fused dispatch charging.
    """
    n = len(insts)
    j = i
    while j < n and j - i < BLOCK_CAP:
        fmt = insts[j].op.format
        if fmt is not Format.MEMORY and fmt is not Format.OPERATE:
            if fmt is Format.BRANCH:
                return j, "branch"
            if fmt is Format.JUMP:
                return j, "jump"
            return j, "stop"
        if j > i and (leader[j] or j in starts):
            return j, "fall"
        j += 1
    return j, "fall"


def _successors(insts, end: int, kind: str) -> tuple[int, ...]:
    if kind == "fall":
        return (end,)
    if kind == "branch":
        inst = insts[end]
        target = end + 1 + inst.disp
        if inst.op.inst_class is InstClass.UNCOND_BRANCH:
            return (target,)
        if inst.op.inst_class is InstClass.CALL:
            # Direct call: the callee, plus the return point — the
            # callee's ret re-enters through the dynamic label map.
            return (target, end + 1)
        return (target, end + 1)
    return ()


def _loops_from_head(insts, order, starts, leader, label_of) -> bool:
    """True when some back-edge (internal edge to an equal-or-earlier
    label) is reachable from the head along internal edges.  Computed
    jumps (``ret``/``jsr``) count as edges to every in-region call
    return point — the dynamic label-map re-entry the generated code
    performs — so call/return cycles register as loops."""
    succ: list[list[int]] = []
    retlabels: list[int] = []
    jumps: list[int] = []
    for i in order:
        end, kind = _scan_block(insts, i, starts, leader)
        if kind == "jump":
            jumps.append(len(succ))
        elif kind == "branch" \
                and insts[end].op.inst_class is InstClass.CALL:
            ret = label_of.get(end + 1)
            if ret is not None:
                retlabels.append(ret)
        succ.append([label_of[s] for s in _successors(insts, end, kind)
                     if s in label_of])
    for j in jumps:
        succ[j] = succ[j] + retlabels
    seen = {0}
    work = [0]
    while work:
        label = work.pop()
        for nxt in succ[label]:
            if nxt <= label:
                return True
            if nxt not in seen:
                seen.add(nxt)
                work.append(nxt)
    return False


class Region:
    """One compiled multi-block region resident in the code cache."""

    __slots__ = ("head", "fn", "source", "min_fuel", "lo", "hi")

    def __init__(self, head, fn, source, min_fuel, lo, hi):
        self.head = head
        self.fn = fn
        self.source = source
        self.min_fuel = min_fuel
        #: Text-index range covered, for invalidation overlap tests.
        self.lo = lo
        self.hi = hi


def _region_source(cpu, head: int, leader) -> tuple[str, int, int, int]:
    """Generate a region's Python source rooted at superblock ``head``.

    Returns ``(source, min_fuel, lo, hi)``.  Raises :class:`AssertionError`
    when some instruction has no fused template (the caller denies the
    promotion and keeps the plain fused executor).
    """
    insts = cpu._insts
    costs = cpu._costs
    base = cpu.text_base
    n = len(insts)

    # Breadth-first block discovery from the head.  Every discovered
    # start is a superblock-run boundary (head, branch target, branch
    # fall-through, or cap split), so the final scan below reproduces
    # fused run extents exactly.
    starts = {head}
    order = [head]
    qi = 0
    while qi < len(order):
        end, kind = _scan_block(insts, order[qi], starts, leader)
        qi += 1
        for succ in _successors(insts, end, kind):
            if 0 <= succ < n and succ not in starts \
                    and len(order) < MAX_BLOCKS:
                starts.add(succ)
                order.append(succ)
    label_of = {idx: lab for lab, idx in enumerate(order)}

    # Deny regions with no back-edge reachable from the head: without an
    # internal loop the region can only replay what fused dispatch
    # already does, minus the entry/writeback overhead.
    if not _loops_from_head(insts, order, starts, leader, label_of):
        raise AssertionError("region has no reachable back-edge")

    scans = {i: _scan_block(insts, i, starts, leader) for i in order}

    # Where each register is written (at ISA level, including absorbed
    # terminator linkage).  A base register is *stable* — its accesses
    # hoistable — when its only writes are lda/ldah address arithmetic
    # (the sp-adjust idiom): each such write gets slot-refresh lines
    # emitted right after it, so hoisted values always track the base.
    def_sites: dict[int, list[int]] = {}
    for i in order:
        end, kind = scans[i]
        stop = end + (1 if kind in ("branch", "jump") else 0)
        for k in range(i, stop):
            d = _def_reg(insts[k])
            if d is not None:
                def_sites.setdefault(d, []).append(k)
    eligible = {reg for reg in range(31)
                if all(insts[k].op is opcodes.LDA
                       or insts[k].op is opcodes.LDAH
                       for k in def_sites.get(reg, ()))}
    eff = _effective_keys(insts, order, scans, eligible)
    slots: dict[tuple[int, int, int], tuple[str, str, str]] = {}
    for key in eff.values():
        if key not in slots:
            s = len(slots)
            slots[key] = (f"ia{s}", f"im{s}", f"io{s}")
    refresh: dict[int, list] = {}
    for key, names in slots.items():
        if key[0] != 31 and key[0] in def_sites:
            refresh.setdefault(key[0], []).append((key, names))

    binfo = []           # (charge_count, charge_cost, body_lines, term)
    trappable = False
    lo, hi = head, head
    total_count = 0
    for label, i in enumerate(order):
        end, kind = scans[i]
        count = end - i
        cost = sum(costs[i:end])
        lines: list[str] = []
        # Block-local store-to-load forwarding over 8-byte slots: while
        # no store can have touched a slot since its value was last seen
        # in a register local, a re-load of it is a plain copy.  Every
        # store clears the cache (no aliasing analysis needed), and
        # redefining a register drops the entries it backed.
        cache: dict[str, str] = {}
        for k in range(i, end):
            inst = insts[k]
            op = inst.op
            slot = slots.get(eff.get(k))
            d = _def_reg(inst)
            held = None
            if slot is not None and op.access_size == 8 \
                    and op.inst_class is InstClass.LOAD and inst.ra != 31:
                held = cache.get(slot[1])
            if held is not None:
                gen, traps = ([] if held == f"g{inst.ra}"
                              else [f"g{inst.ra} = {held}"]), False
            else:
                gen, traps = _gen_inst_jit(inst, base + 4 * k, slot)
            trappable |= traps
            lines.extend(gen)
            if d is not None:
                dead = f"g{d}"
                for s in [s for s, v in cache.items() if v == dead]:
                    del cache[s]
            if op.format is Format.MEMORY \
                    and op.inst_class is InstClass.STORE:
                cache.clear()
                if slot is not None and op.access_size == 8:
                    cache[slot[1]] = "0" if inst.ra == 31 \
                        else f"g{inst.ra}"
            elif slot is not None and op.access_size == 8 \
                    and op.inst_class is InstClass.LOAD and inst.ra != 31:
                cache[slot[1]] = f"g{inst.ra}"
            if d is not None and d in refresh:
                for rkey, rnames in refresh[d]:
                    lines.extend(_slot_setup(rkey, rnames))
                    cache.pop(rnames[1], None)
        term: tuple
        if kind == "branch":
            inst = insts[end]
            count += 1
            cost += costs[end]
            target = end + 1 + inst.disp
            if inst.op.inst_class in (InstClass.UNCOND_BRANCH,
                                      InstClass.CALL):
                if inst.ra != 31:
                    retaddr = (base + 4 * (end + 1)) & MASK
                    lines.append(f"g{inst.ra} = {retaddr:#x}")
                term = ("goto", target)
            elif target == i:
                a = "0" if inst.ra == 31 else f"g{inst.ra}"
                term = ("selfloop", _branch_test(inst.op.mnemonic, a),
                        end + 1, i)
            else:
                a = "0" if inst.ra == 31 else f"g{inst.ra}"
                term = ("cond", _branch_test(inst.op.mnemonic, a),
                        target, end + 1)
        elif kind == "jump":
            inst = insts[end]
            count += 1
            cost += costs[end]
            trappable = True
            pc = base + 4 * end
            rb = "0" if inst.rb == 31 else f"g{inst.rb}"
            lines.append(f"dest = {rb} & ~3")
            if inst.op.inst_class in (InstClass.CALL, InstClass.JUMP) \
                    and inst.ra != 31:
                lines.append(f"g{inst.ra} = {(pc + 4) & MASK:#x}")
            lines.append(f"o = dest - {base}")
            lines.append("if o < 0:")
            lines.append("    raise MachineError("
                         f"'jump to %#x outside text' % dest, {pc})")
            lines.append("t = o >> 2")
            # Dynamic re-entry: a computed jump landing on an in-region
            # block (the common case: ret to an in-region call site)
            # stays in compiled code.  Fuel-checked like any back-edge —
            # call/return cycles must not outrun the limit.
            lines.append("lab = lmap(t)")
            lines.append("if lab is None or n > F:")
            lines.append("    xi = t")
            lines.append("    break")
            lines.append("w = lab")
            lines.append("continue")
            term = ("jump",)
        elif kind == "fall":
            term = ("goto", end)
        else:             # syscall / halt: side-exit before executing it
            term = ("exit", end)
        binfo.append((count, cost, lines, term))
        total_count += count
        lo = min(lo, i)
        hi = max(hi, end + (kind in ("branch", "jump")))

    # Internal predecessor-edge counts.  A block entered by exactly one
    # forward edge gets spliced inline at that edge — trace layout —
    # instead of a ``w``-dispatch round trip, so the elif chain holds
    # only loop heads, merge points, and dynamic re-entry labels.
    # Back-edge targets and computed-jump landing pads are forced to
    # stay dispatchable (count 2), as is the region entry.
    preds = [0] * len(order)
    preds[0] += 2
    for label, (_, _, _, term) in enumerate(binfo):
        kind = term[0]
        if kind == "goto":
            targets = (term[1],)
        elif kind == "cond":
            targets = (term[2], term[3])
        elif kind == "selfloop":
            targets = (term[2],)
        else:
            targets = ()
        for t in targets:
            tl = label_of.get(t)
            if tl is not None:
                preds[tl] += 1 if tl > label else 2
    for label, i in enumerate(order):
        end, kind = scans[i]
        if kind == "branch" \
                and insts[end].op.inst_class is InstClass.CALL:
            tl = label_of.get(end + 1)
            if tl is not None:
                preds[tl] += 2     # ret re-enters via the label map

    def edge(target: int, src: int) -> list[str]:
        """Transfer-of-control lines for an edge leaving label ``src``:
        single-predecessor forward targets are inlined here, back-edges
        burn fuel then dispatch, everything else dispatches or
        side-exits."""
        tl = label_of.get(target)
        if tl is None:
            return [f"xi = {target}", "break"]
        if tl <= src:
            return ["if n > F:",
                    f"    xi = {target}",
                    "    break",
                    f"w = {tl}",
                    "continue"]
        if preds[tl] == 1:
            return emit(tl)
        return [f"w = {tl}", "continue"]

    def emit(label: int) -> list[str]:
        count, cost, body, term = binfo[label]
        kind = term[0]
        out_: list[str] = []
        if kind == "selfloop":
            # Single-block loop — the hottest shape there is.  Iterate
            # in a private inner loop so the back-edge costs one branch
            # test and one fuel compare, never a dispatch round trip.
            test, fall, start_i = term[1], term[2], term[3]
            out_.append("w = -1")
            out_.append("while 1:")
            out_.append(f"    n += {count}; c += {cost}")
            out_.extend("    " + line for line in body)
            out_.append(f"    if {test}:")
            out_.append("        if n <= F:")
            out_.append("            continue")
            out_.append(f"        xi = {start_i}")
            out_.append("        w = -2")
            out_.append("    break")
            out_.append("if w == -2:")
            out_.append("    break")
            out_.extend(edge(fall, label))
            return out_
        if count:
            out_.append(f"n += {count}; c += {cost}")
        out_.extend(body)
        if kind == "cond":
            out_.append(f"if {term[1]}:")
            out_.extend("    " + line for line in edge(term[2], label))
            out_.append("else:")
            out_.extend("    " + line for line in edge(term[3], label))
        elif kind == "goto":
            out_.extend(edge(term[1], label))
        elif kind == "exit":
            out_.append(f"xi = {term[1]}")
            out_.append("break")
        return out_           # "jump": body already ends in a transfer

    chain = [lab for lab in range(len(order)) if preds[lab] != 1]
    bodies = {lab: emit(lab) for lab in chain}

    # Entry preamble: hoisted address arithmetic and page-view lookups
    # for invariant-base slots.  Nothing here touches guest state, so a
    # later fault still sees bit-identical architectural state.
    preamble: list[str] = []
    for key, names in slots.items():
        preamble.extend(_slot_setup(key, names))

    used: set[int] = set()
    written: set[int] = set()
    for line in preamble:
        used.update(int(m) for m in _GREF.findall(line))
    for lines in bodies.values():
        for line in lines:
            used.update(int(m) for m in _GREF.findall(line))
            written.update(int(m) for m in _GWRITE.findall(line))

    # Only dispatchable labels are valid ``w`` states, so the dynamic
    # re-entry map covers exactly those; a computed jump landing on an
    # inlined block's start side-exits instead.
    lmap = "{" + ", ".join(f"{order[lab]}: {lab}"
                           for lab in chain) + "}.get"
    out = ["def jr(jl=_jl, r=_r, stats=_stats, read=_read, write=_write, "
           "fget=_fget, fb=_fb, div=_div, rem=_rem, "
           f"fq=_fq, fl=_fl, fw=_fw, lmap={lmap}):",
           # Fuel residue: back-edges stop once ``n`` exceeds F, and no
           # forward chain executes any block twice, so the final charge
           # never exceeds F + total_count = jl[0] - stats[1] on entry.
           f"    F = jl[0] - stats[1] - {total_count}"]
    out.extend(f"    g{i} = r[{i}]" for i in sorted(used))
    out.extend("    " + line for line in preamble)
    out.append("    n = 0; c = 0; w = 0; xi = 0; p = 0")
    flush = ["stats[0] += c; stats[1] += n"]
    flush.extend(f"r[{i}] = g{i}" for i in sorted(written))
    loop_indent = "        " if trappable else "    "
    if trappable:
        out.append("    try:")
    out.append(loop_indent + "while True:")
    for pos, lab in enumerate(chain):
        kw = "if" if pos == 0 else "elif"
        out.append(loop_indent + f"    {kw} w == {lab}:")
        out.extend(loop_indent + "        " + line
                   for line in bodies[lab])
    if trappable:
        out.append("    except MemoryFault as exc:")
        out.extend("        " + line for line in flush)
        out.append("        raise MachineError(str(exc), p) from None")
        out.append("    except MachineError as exc:")
        out.extend("        " + line for line in flush)
        out.append("        if exc.pc is not None:")
        out.append("            raise")
        out.append("        raise MachineError(str(exc), p) from None")
    out.extend("    " + line for line in flush)
    out.append("    return xi")
    return "\n".join(out) + "\n", total_count, lo, hi


class JitManager:
    """Hotness tracking, region compilation and the per-Cpu code cache."""

    def __init__(self, cpu, cache_cap: int = DEFAULT_CACHE_CAP,
                 threshold: int = JIT_THRESHOLD):
        self.cpu = cpu
        self.cache_cap = cache_cap
        self.threshold = threshold
        self.promoted = 0
        self.compiled = 0
        self.cache_hits = 0
        self.evictions = 0
        self.invalidations = 0
        self.denied = 0
        #: Insertion-ordered: FIFO eviction order.
        self._installed: dict[int, Region] = {}
        #: Memoized fused executors (the counter warm path and the
        #: region entry's low-fuel fallback).
        self._fused: dict[int, object] = {}
        self._runs: dict[int, tuple[int, int | None]] = {}
        self._leader = _leader_table(cpu._insts)
        for start, end, term in cpu.superblock_runs():
            self._runs[start] = (end, term)
            cpu._dispatch[start] = self._counter(start, end, term)

    # ---- hotness ---------------------------------------------------------

    def _counter(self, start: int, end: int, term: int | None):
        """The dispatch-slot closure for a not-yet-promoted head: cold
        first entry walks per-instruction closures, warm entries run the
        fused executor, and crossing the threshold promotes."""
        cpu = self.cpu
        dispatch = cpu._dispatch
        count = 0
        fused = None

        def counting():
            nonlocal count, fused
            count += 1
            if count == 1:
                return cpu._step_run(start, end, term)
            if fused is None:
                fused = self._fused_for(start, end, term)
            if count <= self.threshold:
                return fused()
            handler = self.promote(start, fused)
            dispatch[start] = handler
            return handler()
        return counting

    def _fused_for(self, start: int, end: int, term: int | None):
        fn = self._fused.get(start)
        if fn is None:
            fn = self._fused[start] = self.cpu._fuse(start, end, term)
        return fn

    # ---- promotion and the code cache ------------------------------------

    def promote(self, head: int, fused):
        """Compile and install the region at ``head``; returns the new
        dispatch entry (the plain fused executor when promotion is
        denied — an instruction with no template keeps fusion-level
        service permanently)."""
        try:
            region = self._build(head)
        except AssertionError:
            self.denied += 1
            return fused
        cap = max(1, self.cache_cap)
        while len(self._installed) >= cap:
            self._evict(next(iter(self._installed)))
            self.evictions += 1
        self._installed[head] = region
        self.promoted += 1
        return self._entry(region, fused)

    def _build(self, head: int) -> Region:
        cpu = self.cpu
        source, min_fuel, lo, hi = _region_source(cpu, head, self._leader)
        code = _JIT_CACHE.get(source)
        if code is None:
            if len(_JIT_CACHE) >= _JIT_CACHE_CAP:
                _JIT_CACHE.clear()
            code = compile(source,
                           f"<jitregion@{cpu.text_base + 4 * head:#x}>",
                           "exec")
            _JIT_CACHE[source] = code
            self.compiled += 1
        else:
            self.cache_hits += 1
        env = {
            "_jl": cpu._jit_limit,
            "_r": cpu.regs,
            "_stats": cpu.stats,
            "_read": cpu.memory.read_uint,
            "_write": cpu.memory.write_uint,
            "_fget": cpu.memory._fast.get,
            "_fq": cpu.memory._fastq.get,
            "_fl": cpu.memory._fastl.get,
            "_fw": cpu.memory._fastw.get,
            "_fb": int.from_bytes,
            "_div": _divq,
            "_rem": _remq,
            "MemoryFault": MemoryFault,
            "MachineError": MachineError,
        }
        exec(code, env)
        return Region(head, env["jr"], source, min_fuel, lo, hi)

    def _entry(self, region: Region, fused):
        """The installed dispatch closure: run the region when enough
        fuel remains for its worst-case first chain, else fall back to
        the fused executor (which both makes progress and stays within
        the dispatch loop's ``_max_fused`` headroom)."""
        jl = self.cpu._jit_limit
        stats = self.cpu.stats
        fn = region.fn
        need = region.min_fuel

        def entry():
            if jl[0] - stats[1] < need:
                return fused()
            return fn()
        return entry

    # ---- eviction and invalidation ---------------------------------------

    def _evict(self, head: int) -> None:
        del self._installed[head]
        end, term = self._runs[head]
        self.cpu._dispatch[head] = self._counter(head, end, term)

    def invalidate(self, lo: int = 0, hi: int | None = None) -> int:
        """Drop resident regions overlapping text indices ``[lo, hi)``
        (the hook a self-modifying-code or breakpoint layer would call);
        their heads fall back to fresh hotness counters.  Returns the
        number of regions dropped."""
        if hi is None:
            hi = len(self.cpu._insts)
        victims = [head for head, region in self._installed.items()
                   if region.lo < hi and region.hi > lo]
        for head in victims:
            self._evict(head)
        self.invalidations += len(victims)
        return len(victims)

    def invalidate_all(self) -> int:
        return self.invalidate()

    # ---- introspection ---------------------------------------------------

    def stats(self) -> dict:
        return {
            "jit_regions": self.promoted,
            "jit_compiled": self.compiled,
            "jit_cache_hits": self.cache_hits,
            "jit_evictions": self.evictions,
            "jit_invalidations": self.invalidations,
            "jit_denied": self.denied,
            "jit_resident": len(self._installed),
        }
