"""Building OM's symbolic IR from a fully linked executable.

Procedure boundaries come from FUNC symbols (every toolchain component
emits ``.ent``/``.end`` brackets, mirroring OSF/1 procedure descriptors).
Basic-block leaders are branch targets and the successors of
block-terminating instructions; calls and syscalls terminate blocks, the
Pixie-era convention ATOM's block tools assume.

Every retained relocation whose patch site is a text instruction gets
attached to that instruction so the code generator can re-resolve it after
code moves.
"""

from __future__ import annotations

from ..isa import encoding
from ..isa.opcodes import Format
from ..obs import TRACE
from ..objfile.module import Module
from ..objfile.sections import TEXT
from ..objfile.symtab import SymBind, SymKind
from .ir import IRBlock, IRInst, IRProc, IRProgram


class BuildError(Exception):
    pass


def build_ir(module: Module) -> IRProgram:
    """Disassemble a linked executable into the annotated IR."""
    with TRACE.span("om.build", "om") as sp:
        program = _build_ir(module)
        sp.add(procs=len(program.procs), insts=program.inst_count())
        return program


def _build_ir(module: Module) -> IRProgram:
    if not module.linked:
        raise BuildError("OM requires a fully linked module")
    text_sec = module.section(TEXT)
    base = text_sec.vaddr
    insts = encoding.decode_stream(bytes(text_sec.data))
    count = len(insts)

    def index_of(addr: int) -> int:
        off = addr - base
        if off % 4 or not 0 <= off < 4 * count:
            raise BuildError(f"text address out of range: {addr:#x}")
        return off >> 2

    # ---- procedure extents from FUNC symbols -----------------------------
    funcs = [s for s in module.symtab
             if s.kind is SymKind.FUNC and s.section == TEXT]
    funcs.sort(key=lambda s: s.value)
    if not funcs:
        raise BuildError("no FUNC symbols: cannot recover procedures")
    extents: list[tuple[str, int, int, bool]] = []   # name, start, end idx
    for i, sym in enumerate(funcs):
        start = index_of(sym.value)
        # A procedure extends to the next procedure's entry so every text
        # instruction belongs to exactly one procedure (declared .ent/.end
        # sizes can undershoot alignment padding).
        end = index_of(funcs[i + 1].value) if i + 1 < len(funcs) else count
        extents.append((sym.name, start, end,
                        sym.bind is SymBind.GLOBAL))
    if extents[0][1] != 0:
        extents.insert(0, ("__head", 0, extents[0][1], False))

    # ---- wrap instructions -------------------------------------------------
    ir_insts = [IRInst(inst, orig_pc=base + 4 * i)
                for i, inst in enumerate(insts)]

    # Attach text relocations to their instructions.
    for rel in module.relocs:
        if rel.section != TEXT:
            continue
        idx = rel.offset >> 2
        if 0 <= idx < count:
            ir_insts[idx].relocs.append(rel)

    # ---- leaders -------------------------------------------------------------
    leaders = set()
    for _, start, end, _g in extents:
        leaders.add(start)
        for i in range(start, end):
            inst = insts[i]
            if inst.ends_block() and i + 1 < end:
                leaders.add(i + 1)
            if inst.op.format is Format.BRANCH and inst.is_control_transfer():
                target = i + 1 + inst.disp
                if start <= target < end:
                    leaders.add(target)
                # Cross-procedure branch targets are procedure entries
                # (bsr); they are already leaders.

    program = IRProgram(module=module)
    index_to_block: dict[int, IRBlock] = {}
    block_counter = 0

    for name, start, end, is_global in extents:
        proc = IRProc(name=name, orig_addr=base + 4 * start,
                      is_global=is_global,
                      frame_size=module.meta.get(f"frame:{name}"),
                      frame_outgoing=module.meta.get(f"outgoing:{name}"))
        current: IRBlock | None = None
        for i in range(start, end):
            if i in leaders or current is None:
                current = IRBlock(index=block_counter, proc=proc)
                block_counter += 1
                proc.blocks.append(current)
                index_to_block[i] = current
            current.insts.append(ir_insts[i])
        if proc.blocks:
            program.procs.append(proc)

    # ---- symbolic branch targets and CFG edges ----------------------------------
    addr_to_proc = {base + 4 * start: name
                    for name, start, _e, _g in extents}
    for name, start, end, _g in extents:
        proc = program.proc(name)
        for i in range(start, end):
            ir = ir_insts[i]
            inst = ir.inst
            if inst.op.format is not Format.BRANCH:
                continue
            target = i + 1 + inst.disp
            if inst.is_call():
                target_addr = base + 4 * target
                callee = addr_to_proc.get(target_addr)
                if callee is not None:
                    ir.target = ("symbol", callee)
                else:
                    # bsr into the middle of a procedure: keep a raw label.
                    ir.target = ("symbol",
                                 _label_for(program, ir_insts, target,
                                            base))
            elif start <= target < end:
                ir.target = ("block", index_to_block[target])
            else:
                ir.target = ("symbol",
                             _label_for(program, ir_insts, target, base))

    # Record local text labels (non-FUNC text symbols) so they can be
    # repositioned after instrumentation.
    for sym in module.symtab:
        if sym.section == TEXT and sym.kind is not SymKind.FUNC \
                and not sym.is_abs:
            idx = index_of(sym.value)
            if idx < count:
                program.text_labels[sym.name] = ir_insts[idx]

    _build_edges(program, index_to_block, ir_insts, base, count)
    return program


def _label_for(program: IRProgram, ir_insts, index: int, base: int) -> str:
    """Synthesize a stable label name for a raw branch target."""
    name = f"$omtarget_{index}"
    program.text_labels[name] = ir_insts[index]
    return name


def _build_edges(program: IRProgram, index_to_block, ir_insts, base,
                 count) -> None:
    # Map each block to the index of its first instruction.
    block_start = {}
    for idx, block in index_to_block.items():
        block_start[id(block)] = idx
    for proc in program.procs:
        for bi, block in enumerate(proc.blocks):
            last = block.last.inst
            next_block = proc.blocks[bi + 1] if bi + 1 < len(proc.blocks) \
                else None

            def add_edge(dst: IRBlock) -> None:
                block.succs.append(dst)
                dst.preds.append(block)

            if last.is_cond_branch():
                tgt = block.last.target
                if tgt and tgt[0] == "block":
                    add_edge(tgt[1])
                if next_block is not None:
                    add_edge(next_block)
            elif last.is_uncond_branch():
                tgt = block.last.target
                if tgt and tgt[0] == "block":
                    add_edge(tgt[1])
            elif last.is_call() or last.is_syscall():
                if next_block is not None:
                    add_edge(next_block)
            elif last.is_ret() or last.is_jump():
                pass        # returns and computed jumps end the CFG here
            else:
                if next_block is not None:
                    add_edge(next_block)
