"""OM's code generator: annotated IR -> executable text.

Because every insertion happened on the IR, no ad-hoc address fixups are
needed (paper Section 4): this pass simply lays the instructions back out,
recomputes every branch displacement from its *symbolic* target, moves each
retained relocation to its instruction's new offset, re-resolves all
address-bearing relocations against the updated symbol table, and emits the
static new-pc -> original-pc map.

Data sections are copied byte-for-byte at their original addresses — the
pristine-data half of ATOM's guarantee falls out of this by construction.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..isa import encoding
from ..isa.opcodes import Format
from ..obs import TRACE
from ..objfile.linker import apply_relocation
from ..objfile.module import (Module, PC_ATTR_GLUE, PC_ATTR_SAVE,
                              PC_ATTR_SPLICE)
from ..objfile.relocs import Relocation
from ..objfile.sections import BSS, DATA, LITA, TEXT, Section
from ..objfile.symtab import SymBind, SymKind, Symbol, SymbolTable
from .ir import IRInst, IRProgram

#: Prefix of the local marker symbols labelling inlined analysis bodies
#: (ATOM O4) so disassembly and traces stay attributable.
INLINE_PREFIX = "__atominl$"


class CodegenError(Exception):
    pass


@dataclass
class EmitResult:
    module: Module
    #: id(IRInst) -> new absolute address
    inst_addr: dict[int, int] = field(default_factory=dict)
    #: new address -> original address, for instructions that existed
    pc_map: dict[int, int] = field(default_factory=dict)
    #: new address -> PC_ATTR_* code, for instructions ATOM inserted
    pc_attr: dict[int, int] = field(default_factory=dict)
    text_end: int = 0


def emit(program: IRProgram, *,
         extra_symbols: dict[str, int] | None = None,
         text_base: int | None = None) -> EmitResult:
    """Regenerate an executable module from the (possibly rewritten) IR.

    ``extra_symbols`` supplies addresses for symbols outside the program's
    own symbol table (ATOM's analysis routines, for example).
    """
    with TRACE.span("om.codegen", "om") as sp:
        result = _emit(program, extra_symbols=extra_symbols,
                       text_base=text_base)
        sp.add(insts=(result.text_end
                      - result.module.section(TEXT).vaddr) // 4)
        return result


def _emit(program: IRProgram, *,
          extra_symbols: dict[str, int] | None = None,
          text_base: int | None = None) -> EmitResult:
    source: Module = program.module
    old_text = source.section(TEXT)
    base = text_base if text_base is not None else old_text.vaddr
    extra = extra_symbols or {}

    # ---- pass 1: assign addresses -----------------------------------------
    result = EmitResult(module=None)
    flat: list[IRInst] = []
    proc_bounds: dict[str, tuple[int, int]] = {}
    addr = base
    for proc in program.procs:
        start = addr
        for block in proc.blocks:
            for ir in block.insts:
                result.inst_addr[id(ir)] = addr
                flat.append(ir)
                addr += 4
        proc_bounds[proc.name] = (start, addr)
    result.text_end = addr

    # ---- new symbol table ----------------------------------------------------
    symtab = SymbolTable()
    text_label_addr: dict[str, int] = {}
    for name, ir in program.text_labels.items():
        inst_addr = result.inst_addr.get(id(ir))
        if inst_addr is not None:
            text_label_addr[name] = inst_addr

    for sym in source.symtab:
        clone = Symbol(name=sym.name, section=sym.section, value=sym.value,
                       kind=sym.kind, bind=sym.bind, size=sym.size,
                       is_abs=sym.is_abs)
        if sym.name in proc_bounds:
            start, end = proc_bounds[sym.name]
            clone.value = start
            clone.size = end - start
        elif sym.name in text_label_addr:
            clone.value = text_label_addr[sym.name]
        elif sym.is_abs and sym.name == "__text_end":
            clone.value = result.text_end
        elif sym.section == TEXT and not sym.is_abs:
            if sym.kind is SymKind.FUNC \
                    or sym.name in program.text_labels \
                    or sym.name in program.removed_labels:
                # Tracked but not placed: its procedure was removed
                # (unreachable-procedure elimination).  Drop the symbol.
                continue
            # A text symbol we failed to track would silently point into
            # the wrong instruction after layout: refuse.
            raise CodegenError(f"untracked text symbol {sym.name!r}")
        symtab.add(clone)
    # Procedures ATOM added (wrappers, veneer) that have no source symbol.
    for name, (start, end) in proc_bounds.items():
        if name not in symtab:
            symtab.add(Symbol(name=name, section=TEXT, value=start,
                              kind=SymKind.FUNC, size=end - start))
    # Local markers labelling each inlined analysis body (O4).  NOTYPE so
    # nothing mistakes them for procedures; LOCAL so they cannot collide
    # with application globals.
    counters: dict[str, int] = {}
    prev_origin = None
    for ir in flat:
        if ir.origin is not None and ir.origin != prev_origin:
            n = counters.get(ir.origin, 0)
            counters[ir.origin] = n + 1
            symtab.add(Symbol(name=f"{INLINE_PREFIX}{ir.origin}.{n}",
                              section=TEXT,
                              value=result.inst_addr[id(ir)],
                              bind=SymBind.LOCAL))
        prev_origin = ir.origin

    def resolve(name: str, line_ctx: IRInst) -> int:
        if name in proc_bounds:
            return proc_bounds[name][0]
        if name in text_label_addr:
            return text_label_addr[name]
        sym = symtab.get(name)
        if sym is not None and sym.defined:
            return sym.value
        if name in extra:
            return extra[name]
        raise CodegenError(f"unresolved branch target {name!r} "
                           f"(from {line_ctx})")

    # ---- pass 2: encode with recomputed branch displacements ------------------
    words = bytearray()
    new_relocs: list[Relocation] = []
    for ir in flat:
        inst = ir.inst
        pc = result.inst_addr[id(ir)]
        if inst.op.format is Format.BRANCH and ir.target is not None:
            kind, payload = ir.target
            if kind == "block":
                target_addr = result.inst_addr.get(id(payload.insts[0])) \
                    if payload.insts else None
                if target_addr is None:
                    raise CodegenError(f"branch to an empty block from "
                                       f"{ir}")
            else:
                target_addr = resolve(payload, ir)
            disp = (target_addr - (pc + 4)) // 4
            if (target_addr - (pc + 4)) % 4:
                raise CodegenError(f"misaligned branch target from {ir}")
            if not encoding.branch_reach_ok(disp):
                raise CodegenError(
                    f"branch out of range after instrumentation: "
                    f"{ir} -> {target_addr:#x}")
            inst = inst.copy(disp=disp)
        words += struct.pack("<I", encoding.encode(inst))
        if ir.orig_pc is not None:
            result.pc_map[pc] = ir.orig_pc
        else:
            # Inserted instruction: classify it so runtime profilers can
            # bucket its cycles (save bracket / inlined splice / call glue).
            if ir.origin is not None:
                result.pc_attr[pc] = PC_ATTR_SPLICE
            elif ir.snip is not None:
                result.pc_attr[pc] = PC_ATTR_SAVE
            else:
                result.pc_attr[pc] = PC_ATTR_GLUE
        for rel in ir.relocs:
            new_relocs.append(Relocation(
                section=TEXT, offset=pc - base, type=rel.type,
                symbol=rel.symbol, addend=rel.addend,
                got_slot=rel.got_slot))

    # ---- assemble the output module -------------------------------------------
    out = Module(name=source.name + ".om")
    out.linked = True
    out.gp_value = source.gp_value
    text = Section(TEXT, data=words, align=old_text.align)
    text.vaddr = base
    out.sections[TEXT] = text
    for name in (LITA, DATA, BSS):
        src_sec = source.sections.get(name)
        if src_sec is None:
            continue
        sec = Section(name, data=bytearray(src_sec.data),
                      bss_size=src_sec.bss_size, align=src_sec.align)
        sec.vaddr = src_sec.vaddr
        out.sections[name] = sec
    out.symtab = symtab
    out.meta = dict(source.meta)
    out.pc_map = result.pc_map
    out.pc_attr = result.pc_attr

    # Keep non-text relocations (data words, GOT slots) and the relocated
    # text ones, then re-resolve everything against the new symbol values.
    for rel in source.relocs:
        if rel.section != TEXT:
            new_relocs.append(Relocation(
                section=rel.section, offset=rel.offset, type=rel.type,
                symbol=rel.symbol, addend=rel.addend,
                got_slot=rel.got_slot))
    out.relocs = new_relocs
    for rel in out.relocs:
        apply_relocation(out, rel)

    # Entry: same symbol as before, at its new home.
    if source.entry:
        entry_sym = _symbol_at(source, source.entry)
        if entry_sym is not None and entry_sym.name in proc_bounds:
            out.entry = proc_bounds[entry_sym.name][0]
        else:
            out.entry = source.entry
    result.module = out
    return result


def _symbol_at(module: Module, addr: int):
    for sym in module.symtab:
        if sym.section == TEXT and not sym.is_abs and sym.value == addr \
                and sym.kind is SymKind.FUNC:
            return sym
    return None
