"""OM: the link-time code modification system ATOM is built on."""

from .build import BuildError, build_ir
from .codegen import CodegenError, EmitResult, emit
from .dataflow import (Liveness, call_graph, call_sites_in_loops,
                       direct_writes, modified_registers, proc_writes,
                       rename_registers)
from .ir import Action, IRBlock, IRInst, IRProc, IRProgram
from .opt import (eliminate_unreachable, optimize_address_calculation,
                  optimize_got_loads)

__all__ = [
    "BuildError", "build_ir", "CodegenError", "EmitResult", "emit",
    "Liveness", "call_graph", "call_sites_in_loops", "direct_writes",
    "modified_registers", "proc_writes", "rename_registers",
    "Action", "IRBlock", "IRInst", "IRProc", "IRProgram",
    "eliminate_unreachable", "optimize_address_calculation",
    "optimize_got_loads",
]
